//! Criterion microbenches for the pseudorandomization primitives — the
//! per-variate costs that the paper's O(·) analyses charge as constants.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kagen_dist::{binomial, hypergeometric};
use kagen_sampling::vitter::sample_sorted;
use kagen_util::{derive_seed, Mt64, Rng64, SplitMix64};

fn bench_hash(c: &mut Criterion) {
    c.bench_function("spooky/derive_seed_3words", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(derive_seed(42, &[1, i, 3]))
        })
    });
}

fn bench_prng(c: &mut Criterion) {
    let mut g = c.benchmark_group("prng");
    g.bench_function("mt19937_64/next_u64", |b| {
        let mut rng = Mt64::new(1);
        b.iter(|| black_box(rng.next_u64()))
    });
    g.bench_function("mt19937_64/init", |b| {
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            black_box(Mt64::new(s).next_u64())
        })
    });
    g.bench_function("splitmix64/next_u64", |b| {
        let mut rng = SplitMix64::new(1);
        b.iter(|| black_box(rng.next_u64()))
    });
    g.finish();
}

fn bench_variates(c: &mut Criterion) {
    let mut g = c.benchmark_group("variates");
    g.bench_function("binomial/btpe_large", |b| {
        let mut rng = Mt64::new(2);
        b.iter(|| black_box(binomial(&mut rng, 1 << 30, 0.3)))
    });
    g.bench_function("binomial/binv_small", |b| {
        let mut rng = Mt64::new(3);
        b.iter(|| black_box(binomial(&mut rng, 1000, 0.01)))
    });
    g.bench_function("hypergeometric/hrua_large", |b| {
        let mut rng = Mt64::new(4);
        b.iter(|| black_box(hypergeometric(&mut rng, 1 << 40, 1 << 39, 1 << 20)))
    });
    g.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampling");
    g.bench_function("vitter_d/1k_of_1G", |b| {
        let mut rng = Mt64::new(5);
        b.iter(|| {
            let mut sum = 0u64;
            sample_sorted(&mut rng, 1 << 30, 1000, &mut |x| sum += x);
            black_box(sum)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_hash,
    bench_prng,
    bench_variates,
    bench_sampling
);
criterion_main!(benches);
