//! # kagen-sampling
//!
//! Sampling algorithms underlying all KaGen generators.
//!
//! * [`vitter`] — sequential sampling without replacement in sorted order:
//!   Vitter's Algorithm A (linear scan) and Algorithm D (skip-based,
//!   expected O(k) for k samples) [Vitter 1987].
//! * [`skip`] — Bernoulli sampling with geometric skips (Batagelj–Brandes).
//! * [`distributed`] — the divide-and-conquer sampler of Sanders et al.
//!   \[18\]: the universe is split into blocks, sample counts per block are
//!   derived by recursive hypergeometric splitting with subtree-seeded
//!   PRNGs, and leaves are drawn with Algorithm D. Any PE can compute the
//!   counts and samples of any block range *without communication*, and all
//!   PEs agree bit-for-bit.

pub mod distributed;
pub mod skip;
pub mod vitter;

pub use distributed::DistributedSampler;
pub use skip::{bernoulli_sample, bernoulli_sample_batched};
pub use vitter::{sample_sorted, sample_sorted_batched, vitter_a, vitter_d};
