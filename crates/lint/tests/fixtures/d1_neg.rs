// Fixture: D1 must stay silent — BTree collections everywhere, and the
// HashSet below lives in test-gated code, which is exempt.
use std::collections::BTreeMap;

pub fn degree_histogram(edges: &[(u64, u64)]) -> BTreeMap<u64, u64> {
    let mut h = BTreeMap::new();
    for &(u, _) in edges {
        *h.entry(u).or_insert(0) += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    #[test]
    fn dedup_check() {
        let s: std::collections::HashSet<u64> = [1, 2, 3].into_iter().collect();
        assert_eq!(s.len(), 3);
    }
}
