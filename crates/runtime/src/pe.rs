//! Running logical PEs on a thread pool.

use std::time::{Duration, Instant};

/// Build a rayon pool with a fixed thread count (0 = rayon default).
pub fn thread_pool(threads: usize) -> rayon::ThreadPool {
    let mut builder = rayon::ThreadPoolBuilder::new();
    if threads > 0 {
        builder = builder.num_threads(threads);
    }
    builder.build().expect("failed to build thread pool")
}

/// Execute `f(pe)` for every logical PE `0..num_pes` on `threads` worker
/// threads and collect the results in PE order.
///
/// The results are identical for every `threads` value — that is the
/// communication-free property, and the integration tests assert it.
pub fn run_chunks<T: Send>(
    num_pes: usize,
    threads: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let pool = thread_pool(threads);
    pool.install(|| {
        use rayon::prelude::*;
        (0..num_pes).into_par_iter().map(&f).collect()
    })
}

/// Like [`run_chunks`] but also measures each PE's busy time.
pub fn run_chunks_timed<T: Send>(
    num_pes: usize,
    threads: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<(T, Duration)> {
    let pool = thread_pool(threads);
    pool.install(|| {
        use rayon::prelude::*;
        (0..num_pes)
            .into_par_iter()
            .map(|pe| {
                let start = Instant::now();
                let out = f(pe);
                (out, start.elapsed())
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_pe_order() {
        let out = run_chunks(16, 4, |pe| pe * 10);
        assert_eq!(out, (0..16).map(|pe| pe * 10).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let f = |pe: usize| (pe as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let a = run_chunks(32, 1, f);
        let b = run_chunks(32, 8, f);
        assert_eq!(a, b);
    }

    #[test]
    fn timing_is_recorded() {
        let out = run_chunks_timed(4, 2, |pe| {
            // Busy-wait a tiny deterministic amount.
            let mut acc = pe as u64;
            for i in 0..50_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        });
        assert_eq!(out.len(), 4);
        for (_, d) in &out {
            assert!(*d > Duration::ZERO);
        }
    }

    #[test]
    fn zero_pes() {
        let out: Vec<u32> = run_chunks(0, 2, |_| unreachable!());
        assert!(out.is_empty());
    }
}
