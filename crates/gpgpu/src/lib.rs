//! # kagen-gpgpu
//!
//! A simulated GPGPU accelerator and the paper's GPGPU adaptations of the
//! KaGen generators (§2.3, §4.3.1, §5.3).
//!
//! The paper describes an accelerator model in which "computations are
//! organized in blocks of threads. All threads of a block have access to
//! some common memory block [...]. Blocks, on the other hand, are scheduled
//! independent from each other and have no means of synchronization or
//! communication. The threads of a block are processed in a SIMD-style
//! manner" (§2.3). No GPU is available in this reproduction environment, so
//! this crate implements that *execution model* as a simulation (see
//! DESIGN.md, substitutions):
//!
//! * [`device`] — a [`device::Device`] executes kernels as a grid
//!   of independent blocks on the rayon pool (blocks never communicate,
//!   mirroring CUDA semantics); inside a block, work items advance in
//!   warp-sized lockstep groups, with branch divergence and global-memory
//!   traffic accounted in [`device::DeviceStats`].
//! * [`scan`] — device-side exclusive prefix sum (the reduce–scan–downsweep
//!   three-kernel scheme every GPU edge-output pipeline relies on, §5.3
//!   step 2).
//! * [`er`] — §4.3.1: the CPU computes chunk sample sizes and PRNG seeds;
//!   the device samples the edges. Output is bit-identical to the CPU
//!   [`kagen_core::GnmDirected`]/[`kagen_core::GnpDirected`] generators.
//! * [`rgg`] — §5.3: per-cell point sampling (big cells get a block of
//!   their own, small cells are grouped), then the three-step
//!   count → prefix-sum → fill edge generation into a preallocated edge
//!   array. Output is identical to the CPU [`kagen_core::Rgg2d`].
//! * [`rmat`] — the linear-work composed-table R-MAT kernel: one device
//!   block per seed block of edge indices, bit-identical to
//!   [`kagen_core::Rmat`] for every descent kernel.
//! * [`ba`] — Barabási–Albert chain recomputation per slot block, with
//!   the chains' variable length surfacing as warp divergence;
//!   bit-identical to [`kagen_core::BarabasiAlbert`].
//!
//! Because the simulation executes the same arithmetic as the CPU path,
//! the value of this crate is *structural*: it demonstrates (and tests)
//! that the communication-free decomposition maps onto an accelerator's
//! block model exactly as §4.3.1/§5.3 claim — chunk seeds and counts are
//! computed host-side, bulk sampling is embarrassingly block-parallel, and
//! edge output needs only a prefix sum, never inter-block communication.

pub mod ba;
pub mod device;
pub mod er;
pub mod rgg;
pub mod rmat;
pub mod scan;

pub use ba::GpuBarabasiAlbert;
pub use device::{Device, DeviceConfig, DeviceStats, StatsSnapshot};
pub use er::{GpuGnmDirected, GpuGnpDirected};
pub use rgg::{GpuRgg, GpuRgg2d, GpuRgg3d};
pub use rmat::GpuRmat;
pub use scan::exclusive_scan;
