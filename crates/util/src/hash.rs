//! SpookyHash V2 (Bob Jenkins, public domain), reimplemented in Rust.
//!
//! The reference KaGen implementation uses SpookyHash to map recursion-tree
//! ids to PRNG seeds. We reproduce the full algorithm: the *short* path for
//! messages below 192 bytes (the overwhelmingly common case here — we hash
//! tuples of a few `u64`s) and the *long* path for larger messages, so the
//! crate is a complete, general-purpose non-cryptographic 128-bit hash.
//!
//! SpookyHash was chosen by the paper for exactly the property we need:
//! high-quality avalanche behaviour so that *adjacent* recursion-node ids
//! yield statistically independent seeds.

const SC_CONST: u64 = 0xdead_beef_dead_beef;
const SC_NUM_VARS: usize = 12;
const SC_BLOCK_SIZE: usize = SC_NUM_VARS * 8; // 96
const SC_BUF_SIZE: usize = 2 * SC_BLOCK_SIZE; // 192

#[inline(always)]
fn rot64(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

/// Read a little-endian u64 from `bytes` starting at `off`, zero-padding
/// past the end of the slice.
#[inline]
fn read_u64_padded(bytes: &[u8], off: usize) -> u64 {
    let mut buf = [0u8; 8];
    let end = bytes.len().min(off + 8);
    if off < end {
        buf[..end - off].copy_from_slice(&bytes[off..end]);
    }
    u64::from_le_bytes(buf)
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn short_mix(h0: &mut u64, h1: &mut u64, h2: &mut u64, h3: &mut u64) {
    *h2 = rot64(*h2, 50);
    *h2 = h2.wrapping_add(*h3);
    *h0 ^= *h2;
    *h3 = rot64(*h3, 52);
    *h3 = h3.wrapping_add(*h0);
    *h1 ^= *h3;
    *h0 = rot64(*h0, 30);
    *h0 = h0.wrapping_add(*h1);
    *h2 ^= *h0;
    *h1 = rot64(*h1, 41);
    *h1 = h1.wrapping_add(*h2);
    *h3 ^= *h1;
    *h2 = rot64(*h2, 54);
    *h2 = h2.wrapping_add(*h3);
    *h0 ^= *h2;
    *h3 = rot64(*h3, 48);
    *h3 = h3.wrapping_add(*h0);
    *h1 ^= *h3;
    *h0 = rot64(*h0, 38);
    *h0 = h0.wrapping_add(*h1);
    *h2 ^= *h0;
    *h1 = rot64(*h1, 37);
    *h1 = h1.wrapping_add(*h2);
    *h3 ^= *h1;
    *h2 = rot64(*h2, 62);
    *h2 = h2.wrapping_add(*h3);
    *h0 ^= *h2;
    *h3 = rot64(*h3, 34);
    *h3 = h3.wrapping_add(*h0);
    *h1 ^= *h3;
    *h0 = rot64(*h0, 5);
    *h0 = h0.wrapping_add(*h1);
    *h2 ^= *h0;
    *h1 = rot64(*h1, 36);
    *h1 = h1.wrapping_add(*h2);
    *h3 ^= *h1;
}

#[inline(always)]
fn short_end(h0: &mut u64, h1: &mut u64, h2: &mut u64, h3: &mut u64) {
    *h3 ^= *h2;
    *h2 = rot64(*h2, 15);
    *h3 = h3.wrapping_add(*h2);
    *h0 ^= *h3;
    *h3 = rot64(*h3, 52);
    *h0 = h0.wrapping_add(*h3);
    *h1 ^= *h0;
    *h0 = rot64(*h0, 26);
    *h1 = h1.wrapping_add(*h0);
    *h2 ^= *h1;
    *h1 = rot64(*h1, 51);
    *h2 = h2.wrapping_add(*h1);
    *h3 ^= *h2;
    *h2 = rot64(*h2, 28);
    *h3 = h3.wrapping_add(*h2);
    *h0 ^= *h3;
    *h3 = rot64(*h3, 9);
    *h0 = h0.wrapping_add(*h3);
    *h1 ^= *h0;
    *h0 = rot64(*h0, 47);
    *h1 = h1.wrapping_add(*h0);
    *h2 ^= *h1;
    *h1 = rot64(*h1, 54);
    *h2 = h2.wrapping_add(*h1);
    *h3 ^= *h2;
    *h2 = rot64(*h2, 32);
    *h3 = h3.wrapping_add(*h2);
    *h0 ^= *h3;
    *h3 = rot64(*h3, 25);
    *h0 = h0.wrapping_add(*h3);
    *h1 ^= *h0;
    *h0 = rot64(*h0, 63);
    *h1 = h1.wrapping_add(*h0);
}

/// The short-message path (`len < 192`), the hot path for seed derivation.
pub fn spooky_short128(message: &[u8], seed1: u64, seed2: u64) -> (u64, u64) {
    let length = message.len();
    let remainder = length % 32;
    let mut a = seed1;
    let mut b = seed2;
    let mut c = SC_CONST;
    let mut d = SC_CONST;
    let mut off = 0usize;

    if length > 15 {
        // Whole 32-byte blocks.
        let blocks = length / 32;
        for _ in 0..blocks {
            c = c.wrapping_add(read_u64_padded(message, off));
            d = d.wrapping_add(read_u64_padded(message, off + 8));
            short_mix(&mut a, &mut b, &mut c, &mut d);
            a = a.wrapping_add(read_u64_padded(message, off + 16));
            b = b.wrapping_add(read_u64_padded(message, off + 24));
            off += 32;
        }
        // A half block if 16..=31 bytes remain.
        if remainder >= 16 {
            c = c.wrapping_add(read_u64_padded(message, off));
            d = d.wrapping_add(read_u64_padded(message, off + 8));
            short_mix(&mut a, &mut b, &mut c, &mut d);
            off += 16;
        }
    }

    // Last 0..15 bytes, plus the length in the top byte of d.
    let rem = length - off;
    d = d.wrapping_add((length as u64) << 56);
    let tail = &message[off..];
    match rem {
        8..=15 => {
            // Bytes 8..rem accumulate into d (shifted), the first 8 into c.
            let mut dv = 0u64;
            for (i, &byte) in tail[8..rem].iter().enumerate() {
                dv |= (byte as u64) << (8 * i);
            }
            d = d.wrapping_add(dv);
            c = c.wrapping_add(read_u64_padded(tail, 0));
        }
        1..=7 => {
            let mut cv = 0u64;
            for (i, &byte) in tail[..rem].iter().enumerate() {
                cv |= (byte as u64) << (8 * i);
            }
            c = c.wrapping_add(cv);
        }
        0 => {
            c = c.wrapping_add(SC_CONST);
            d = d.wrapping_add(SC_CONST);
        }
        _ => unreachable!(),
    }
    short_end(&mut a, &mut b, &mut c, &mut d);
    (a, b)
}

#[inline(always)]
fn mix(data: &[u64; 12], s: &mut [u64; 12]) {
    // Reference structure per lane i:
    //   s_i += data_i; s_{i+2} ^= s_{i+10}; s_{i+11} ^= s_i;
    //   s_i = rot(s_i, k_i); s_{i+11} += s_{i+1};
    const ROTS: [u32; 12] = [11, 32, 43, 31, 17, 28, 39, 57, 55, 54, 22, 46];
    for i in 0..12 {
        s[i] = s[i].wrapping_add(data[i]);
        s[(i + 2) % 12] ^= s[(i + 10) % 12];
        s[(i + 11) % 12] ^= s[i];
        s[i] = rot64(s[i], ROTS[i]);
        s[(i + 11) % 12] = s[(i + 11) % 12].wrapping_add(s[(i + 1) % 12]);
    }
}

#[inline(always)]
fn end_partial(h: &mut [u64; 12]) {
    const ROTS: [u32; 12] = [44, 15, 34, 21, 38, 33, 10, 13, 38, 53, 42, 54];
    for (i, &rot) in ROTS.iter().enumerate() {
        // h[(i+11)%12] += h[(i+1)%12]; h[(i+2)%12] ^= h[(i+11)%12]; h[(i+1)%12] = rot(...)
        let j11 = (i + 11) % 12;
        let j1 = (i + 1) % 12;
        let j2 = (i + 2) % 12;
        h[j11] = h[j11].wrapping_add(h[j1]);
        h[j2] ^= h[j11];
        h[j1] = rot64(h[j1], rot);
    }
}

#[inline]
fn long_end(data: &[u64; 12], h: &mut [u64; 12]) {
    for i in 0..12 {
        h[i] = h[i].wrapping_add(data[i]);
    }
    end_partial(h);
    end_partial(h);
    end_partial(h);
}

/// Full SpookyHash V2, 128-bit result.
pub fn spooky_hash128(message: &[u8], seed1: u64, seed2: u64) -> (u64, u64) {
    let length = message.len();
    if length < SC_BUF_SIZE {
        return spooky_short128(message, seed1, seed2);
    }

    let mut h = [0u64; 12];
    for i in (0..12).step_by(3) {
        h[i] = seed1;
        h[i + 1] = seed2;
        h[i + 2] = SC_CONST;
    }

    let mut off = 0usize;
    let whole = length / SC_BLOCK_SIZE;
    let mut data = [0u64; 12];
    for _ in 0..whole {
        for (k, d) in data.iter_mut().enumerate() {
            *d = read_u64_padded(message, off + 8 * k);
        }
        mix(&data, &mut h);
        off += SC_BLOCK_SIZE;
    }

    // Final partial block: zero-padded, length byte in the last position.
    let remainder = length - off;
    let mut buf = [0u8; SC_BLOCK_SIZE];
    buf[..remainder].copy_from_slice(&message[off..]);
    buf[SC_BLOCK_SIZE - 1] = remainder as u8;
    for (k, d) in data.iter_mut().enumerate() {
        let mut word = [0u8; 8];
        word.copy_from_slice(&buf[8 * k..8 * k + 8]);
        *d = u64::from_le_bytes(word);
    }
    long_end(&data, &mut h);
    (h[0], h[1])
}

/// 64-bit convenience wrapper (first word of the 128-bit hash).
#[inline]
pub fn spooky_hash64(message: &[u8], seed: u64) -> u64 {
    spooky_hash128(message, seed, seed).0
}

/// Hash a slice of `u64` words (little-endian encoded). This is the hot
/// seed-derivation entry point.
#[inline]
pub fn spooky_hash_words(words: &[u64], seed: u64) -> u64 {
    let mut bytes = [0u8; 64];
    assert!(words.len() <= 8, "seed tuples are at most 8 words");
    for (i, w) in words.iter().enumerate() {
        bytes[8 * i..8 * i + 8].copy_from_slice(&w.to_le_bytes());
    }
    spooky_short128(&bytes[..8 * words.len()], seed, seed).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let m = b"communication-free graph generation";
        assert_eq!(
            spooky_hash128(m, 1, 2),
            spooky_hash128(m, 1, 2),
            "hash must be a pure function"
        );
    }

    #[test]
    fn seed_sensitivity() {
        let m = b"kagen";
        assert_ne!(spooky_hash128(m, 1, 2), spooky_hash128(m, 1, 3));
        assert_ne!(spooky_hash128(m, 1, 2), spooky_hash128(m, 2, 2));
    }

    #[test]
    fn length_sensitivity() {
        // Every prefix length must give a distinct hash (checks the tail
        // handling of the short path).
        let m: Vec<u8> = (0..200u16).map(|x| (x % 251) as u8).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=m.len() {
            assert!(
                seen.insert(spooky_hash128(&m[..len], 7, 7)),
                "collision at prefix length {len}"
            );
        }
    }

    #[test]
    fn short_long_boundary() {
        // Exercise both paths near the 192-byte switch-over.
        for len in [190usize, 191, 192, 193, 287, 288, 289, 500] {
            let m: Vec<u8> = (0..len).map(|x| (x * 37 % 256) as u8).collect();
            let h = spooky_hash128(&m, 3, 4);
            assert_eq!(h, spooky_hash128(&m, 3, 4));
            // Flipping any single byte changes the hash.
            let mut m2 = m.clone();
            m2[len / 2] ^= 1;
            assert_ne!(h, spooky_hash128(&m2, 3, 4), "len {len}");
        }
    }

    #[test]
    fn avalanche_bits() {
        // Flipping one input bit should flip ~half the output bits.
        let base = 0x0123_4567_89ab_cdefu64;
        let h0 = spooky_hash_words(&[base], 0);
        let mut total = 0u32;
        for bit in 0..64 {
            let h1 = spooky_hash_words(&[base ^ (1 << bit)], 0);
            total += (h0 ^ h1).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!(
            (24.0..40.0).contains(&avg),
            "poor avalanche: average {avg} flipped bits"
        );
    }

    #[test]
    fn word_hash_matches_byte_hash() {
        let words = [1u64, 2, 3];
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(
            spooky_hash_words(&words, 9),
            spooky_short128(&bytes, 9, 9).0
        );
    }
}
