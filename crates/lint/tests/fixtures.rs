//! Fixture-based rule tests: every rule has a file that must fire it and
//! a file that must stay silent. The fixtures live under `fixtures/`,
//! which the workspace scanner skips — they document what each rule
//! catches without tripping CI themselves.

use kagen_lint::{lint_source, Rule, RuleSet};

/// Every rule armed — fixtures are self-contained, so the strictest
/// classification is the right harness.
fn full() -> RuleSet {
    RuleSet {
        deterministic_output: true,
        clock_allowlisted: false,
        generator: true,
        parallel_numeric: true,
    }
}

/// Assert `src` fires `rule` at least `min` times and nothing else.
fn assert_fires(src: &str, rule: Rule, min: usize) {
    let v = lint_source(src, full());
    let hits = v.iter().filter(|x| x.rule == rule).count();
    assert!(hits >= min, "expected ≥{min} {rule:?}, got {v:#?}");
    assert!(
        v.iter().all(|x| x.rule == rule),
        "expected only {rule:?}, got {v:#?}"
    );
}

fn assert_silent(src: &str) {
    let v = lint_source(src, full());
    assert!(v.is_empty(), "expected no violations, got {v:#?}");
}

#[test]
fn d1_hash_collections() {
    assert_fires(include_str!("fixtures/d1_pos.rs"), Rule::D1, 2);
    assert_silent(include_str!("fixtures/d1_neg.rs"));
}

#[test]
fn d2_clock_env_cores() {
    let src = include_str!("fixtures/d2_pos.rs");
    let v = lint_source(src, full());
    // Instant::now, env::var, available_parallelism — three distinct reads.
    assert_eq!(v.iter().filter(|x| x.rule == Rule::D2).count(), 3, "{v:#?}");
    assert!(v.iter().all(|x| x.rule == Rule::D2), "{v:#?}");
    // The same file is clean when the crate is on the allowlist.
    let allowed = RuleSet {
        clock_allowlisted: true,
        ..full()
    };
    assert!(lint_source(src, allowed).is_empty());
    assert_silent(include_str!("fixtures/d2_neg.rs"));
}

#[test]
fn d3_literal_seeds() {
    assert_fires(include_str!("fixtures/d3_pos.rs"), Rule::D3, 1);
    assert_silent(include_str!("fixtures/d3_neg.rs"));
}

#[test]
fn s1_safety_comments() {
    assert_fires(include_str!("fixtures/s1_pos.rs"), Rule::S1, 1);
    assert_silent(include_str!("fixtures/s1_neg.rs"));
}

#[test]
fn f1_parallel_float_reduction() {
    assert_fires(include_str!("fixtures/f1_pos.rs"), Rule::F1, 1);
    assert_silent(include_str!("fixtures/f1_neg.rs"));
}

#[test]
fn p0_pragma_hygiene() {
    assert_fires(include_str!("fixtures/p0_pos.rs"), Rule::P0, 3);
    assert_silent(include_str!("fixtures/p0_neg.rs"));
}
