//! # kagen-dist
//!
//! Random variate generation for the communication-free generators.
//!
//! The paper's divide-and-conquer schemes reduce every generator to a
//! small set of discrete distributions, each drawn from a *seeded* PRNG so
//! any PE reproduces any other PE's variates without communication:
//!
//! * [`binomial`] — chunk edge counts for G(n,p)-type models (§4.3) and
//!   the 2^d-ary count-splitting trees (§5); BINV inversion for small
//!   means, Hörmann's BTRS transformed rejection for large ones.
//! * [`hypergeometric`] — recursive splitting of a fixed sample count
//!   over sub-universes (§4.1, §4.2); inverse urn simulation for small
//!   draws, the HRUA ratio-of-uniforms rejection for large ones.
//! * [`multinomial`] — vertex counts per hyperbolic annulus (§7.1), via
//!   the conditional-binomial chain (exact, conserves the total).
//! * [`geometric`] — skip lengths for Bernoulli sampling
//!   (Batagelj–Brandes), used by the G(n,p) leaves.
//! * [`AliasTable`] — O(1) discrete sampling (Vose), used by the
//!   multi-level R-MAT descent tables (§9).
//!
//! All samplers take any [`Rng64`] and use f64 arithmetic internally, so
//! universes up to 2^127 (edge indices of n > 2^32 vertices) are
//! supported; results are clamped to the distribution's exact support so
//! the count-conservation identities downstream hold bit-exactly.

pub mod alias;
pub mod binomial;
pub mod geometric;
pub mod hypergeometric;
pub mod multinomial;

mod loggamma;

pub use alias::AliasTable;
pub use binomial::binomial;
pub use hypergeometric::hypergeometric;
pub use multinomial::multinomial;
