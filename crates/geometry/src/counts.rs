//! The 2^d-ary count-splitting tree (§5, §6, §7.1).
//!
//! Distributing `n` points uniformly over `[0,1)^d` induces, for any
//! partition into equal sub-cubes, multinomially distributed sub-counts.
//! The tree realizes this recursively: each node splits its count over its
//! 2^d equal children with conditional binomials, using a PRNG seeded by
//! the node id. Every PE replays identical splits, so the *entire point
//! set* is a pure function of `(seed, n, levels)` — independent of which PE
//! asks for which cell, and independent of the number of PEs.

use kagen_dist::binomial;
use kagen_util::seed::{stream, SeedTree};

/// Count-splitting tree over a `2^levels`-per-dim grid (leaves in Morton
/// order).
#[derive(Clone, Copy, Debug)]
pub struct CountTree<const D: usize> {
    seed: u64,
    total: u64,
    levels: u32,
}

impl<const D: usize> CountTree<D> {
    /// Tree distributing `total` points over `2^(levels·D)` leaf cells.
    pub fn new(seed: u64, total: u64, levels: u32) -> Self {
        assert!(D == 2 || D == 3);
        CountTree {
            seed,
            total,
            levels,
        }
    }

    /// Number of leaf cells.
    pub fn num_leaves(&self) -> u64 {
        1u64 << (self.levels * D as u32)
    }

    /// Total number of points.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Grid refinement depth.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Split a node's count over its 2^D children (deterministic per node).
    fn split(&self, node: &SeedTree, count: u64) -> Vec<u64> {
        let k = 1usize << D;
        let mut rng = node.rng();
        // Sequential conditional binomials over equally likely children.
        let mut counts = Vec::with_capacity(k);
        let mut remaining = count;
        for i in 0..k {
            if i + 1 == k {
                counts.push(remaining);
            } else {
                let c = binomial(&mut rng, remaining as u128, 1.0 / (k - i) as f64);
                counts.push(c);
                remaining -= c;
            }
        }
        counts
    }

    /// Point count of the single leaf cell with Morton rank `leaf`.
    /// O(levels) binomial draws.
    pub fn leaf_count(&self, leaf: u64) -> u64 {
        debug_assert!(leaf < self.num_leaves());
        let mut node = SeedTree::root(self.seed, stream::COUNT, 1 << D);
        let mut count = self.total;
        for level in (0..self.levels).rev() {
            let child = (leaf >> (level * D as u32)) & ((1 << D) - 1);
            count = self.split(&node, count)[child as usize];
            node = node.child(child);
            if count == 0 {
                break;
            }
        }
        count
    }

    /// Number of points in all leaves strictly before `leaf` (Morton
    /// order): the communication-free global vertex-id offset of a cell.
    /// O(levels · 2^D) binomial draws.
    pub fn prefix_before(&self, leaf: u64) -> u64 {
        debug_assert!(leaf < self.num_leaves());
        let mut node = SeedTree::root(self.seed, stream::COUNT, 1 << D);
        let mut count = self.total;
        let mut prefix = 0u64;
        for level in (0..self.levels).rev() {
            let child = ((leaf >> (level * D as u32)) & ((1 << D) - 1)) as usize;
            let counts = self.split(&node, count);
            for &c in &counts[..child] {
                prefix += c;
            }
            count = counts[child];
            node = node.child(child as u64);
            if count == 0 {
                break;
            }
        }
        prefix
    }

    /// Visit every leaf in the Morton range `[lo, hi)` with its count.
    /// O(range + levels) expected work.
    pub fn for_leaf_counts(&self, lo: u64, hi: u64, f: &mut impl FnMut(u64, u64)) {
        assert!(lo <= hi && hi <= self.num_leaves());
        if lo == hi {
            return;
        }
        let root = SeedTree::root(self.seed, stream::COUNT, 1 << D);
        self.descend(&root, 0, self.num_leaves(), self.total, lo, hi, f);
    }

    #[allow(clippy::too_many_arguments)] // recursion state, not an API
    fn descend(
        &self,
        node: &SeedTree,
        a: u64,
        b: u64,
        count: u64,
        lo: u64,
        hi: u64,
        f: &mut impl FnMut(u64, u64),
    ) {
        if hi <= a || b <= lo {
            return;
        }
        if b - a == 1 {
            f(a, count);
            return;
        }
        if count == 0 {
            // Entire empty subtree: report the overlapped leaves as empty.
            for leaf in a.max(lo)..b.min(hi) {
                f(leaf, 0);
            }
            return;
        }
        let counts = self.split(node, count);
        let width = (b - a) >> D;
        for (i, &c) in counts.iter().enumerate() {
            let ca = a + i as u64 * width;
            self.descend(&node.child(i as u64), ca, ca + width, c, lo, hi, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_conserve_total() {
        let t: CountTree<2> = CountTree::new(42, 10_000, 3);
        let mut sum = 0;
        t.for_leaf_counts(0, t.num_leaves(), &mut |_, c| sum += c);
        assert_eq!(sum, 10_000);
    }

    #[test]
    fn counts_conserve_total_3d() {
        let t: CountTree<3> = CountTree::new(7, 5_000, 2);
        let mut sum = 0;
        t.for_leaf_counts(0, t.num_leaves(), &mut |_, c| sum += c);
        assert_eq!(sum, 5_000);
    }

    #[test]
    fn leaf_count_matches_range_query() {
        let t: CountTree<2> = CountTree::new(13, 3_000, 3);
        let mut all = vec![0u64; t.num_leaves() as usize];
        t.for_leaf_counts(0, t.num_leaves(), &mut |l, c| all[l as usize] = c);
        for leaf in 0..t.num_leaves() {
            assert_eq!(t.leaf_count(leaf), all[leaf as usize], "leaf {leaf}");
        }
    }

    #[test]
    fn partial_ranges_consistent() {
        let t: CountTree<2> = CountTree::new(5, 2_000, 4);
        let mut all = vec![0u64; t.num_leaves() as usize];
        t.for_leaf_counts(0, t.num_leaves(), &mut |l, c| all[l as usize] = c);
        // Any split point yields the same per-leaf counts.
        for split in [1u64, 17, 100, 255] {
            let mut partial = vec![0u64; t.num_leaves() as usize];
            t.for_leaf_counts(0, split, &mut |l, c| partial[l as usize] = c);
            t.for_leaf_counts(split, t.num_leaves(), &mut |l, c| partial[l as usize] = c);
            assert_eq!(partial, all, "split {split}");
        }
    }

    #[test]
    fn balanced_distribution() {
        // Each leaf of a depth-2 2D tree expects total/16 points.
        let total = 160_000u64;
        let t: CountTree<2> = CountTree::new(99, total, 2);
        let expect = total as f64 / 16.0;
        let sd = (total as f64 * (1.0 / 16.0) * (15.0 / 16.0)).sqrt();
        t.for_leaf_counts(0, 16, &mut |l, c| {
            assert!(
                (c as f64 - expect).abs() < 6.0 * sd,
                "leaf {l}: count {c} vs {expect}"
            );
        });
    }

    #[test]
    fn prefix_matches_cumulative_counts() {
        let t: CountTree<2> = CountTree::new(21, 4_321, 3);
        let mut counts = vec![0u64; t.num_leaves() as usize];
        t.for_leaf_counts(0, t.num_leaves(), &mut |l, c| counts[l as usize] = c);
        let mut acc = 0u64;
        for leaf in 0..t.num_leaves() {
            assert_eq!(t.prefix_before(leaf), acc, "leaf {leaf}");
            acc += counts[leaf as usize];
        }
    }

    #[test]
    fn prefix_matches_cumulative_counts_3d() {
        let t: CountTree<3> = CountTree::new(8, 999, 2);
        let mut counts = vec![0u64; t.num_leaves() as usize];
        t.for_leaf_counts(0, t.num_leaves(), &mut |l, c| counts[l as usize] = c);
        let mut acc = 0u64;
        for leaf in 0..t.num_leaves() {
            assert_eq!(t.prefix_before(leaf), acc, "leaf {leaf}");
            acc += counts[leaf as usize];
        }
    }

    #[test]
    fn zero_total() {
        let t: CountTree<2> = CountTree::new(1, 0, 3);
        let mut visited = 0;
        t.for_leaf_counts(0, 64, &mut |_, c| {
            assert_eq!(c, 0);
            visited += 1;
        });
        assert_eq!(visited, 64);
    }

    #[test]
    fn depth_zero_tree() {
        let t: CountTree<2> = CountTree::new(1, 55, 0);
        assert_eq!(t.num_leaves(), 1);
        assert_eq!(t.leaf_count(0), 55);
    }

    #[test]
    fn seed_sensitivity() {
        let a: CountTree<2> = CountTree::new(1, 1000, 3);
        let b: CountTree<2> = CountTree::new(2, 1000, 3);
        let mut va = Vec::new();
        let mut vb = Vec::new();
        a.for_leaf_counts(0, 64, &mut |_, c| va.push(c));
        b.for_leaf_counts(0, 64, &mut |_, c| vb.push(c));
        assert_ne!(va, vb);
    }
}
