//! # kagen-util
//!
//! Foundation utilities for the KaGen reproduction: pseudorandomization
//! primitives that every generator builds on.
//!
//! The paper's communication-free paradigm rests on one idea: every random
//! decision is made by a PRNG whose seed is a *hash of the decision's
//! identity* (a recursion-tree node id, a chunk id, a cell id, ...) combined
//! with the global instance seed. Any PE that needs the same decision
//! recomputes the same hash, seeds the same PRNG and obtains the same value —
//! without communication.
//!
//! This crate provides, implemented from scratch:
//!
//! * [`hash`] — SpookyHash V2 (the hash function used by the reference
//!   KaGen implementation),
//! * [`mt`] — the MT19937-64 Mersenne Twister (the reference PRNG),
//! * [`splitmix`] — SplitMix64, a cheap statistically-strong mixer used for
//!   per-position randomness (e.g. the Barabási–Albert edge chains),
//! * [`rng`] — the [`rng::Rng64`] trait with unbiased bounded
//!   sampling and float conversion helpers,
//! * [`seed`] — the seed-derivation scheme tying it all together.

pub mod alloc;
pub mod cache;
pub mod hash;
pub mod mt;
pub mod rng;
pub mod seed;
pub mod splitmix;

pub use cache::l2_cache_bytes;
pub use hash::{spooky_hash128, spooky_hash64, spooky_short128};
pub use mt::Mt64;
pub use rng::{f64_open_of_word, BlockRng, Rng64};
pub use seed::{derive_seed, rng_at, SeedTree};
pub use splitmix::SplitMix64;
