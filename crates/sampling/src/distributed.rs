//! The communication-free divide-and-conquer sampler (Sanders et al. \[18\]).
//!
//! The universe `[0, N)` is cut into `B` equal blocks (B a power of two).
//! A binary recursion over block ranges assigns each range its sample
//! count: at every node the count is split between the two halves with a
//! hypergeometric variate whose PRNG is seeded by the *node id* — so every
//! PE that walks to a node draws the identical variate (pseudorandomization,
//! §2.2). Leaves are sampled with Vitter's Algorithm D under a block-seeded
//! PRNG.
//!
//! Consequences (verified in tests):
//! * any PE can compute any block's sample, bit-for-bit, in
//!   O(count + log B) time;
//! * the union over disjoint block ranges of one instance is exactly the
//!   instance — independent of which PE computes what;
//! * the instance depends only on `(universe, samples, blocks, seed)` —
//!   *not* on the number of PEs (see DESIGN.md: instance-vs-P decoupling).

use kagen_dist::hypergeometric;
use kagen_util::seed::{stream, SeedTree};
use kagen_util::{derive_seed, Mt64};

use crate::vitter::{sample_sorted, sample_sorted_batched};

/// Divide-and-conquer sampler over a blocked universe.
#[derive(Clone, Copy, Debug)]
pub struct DistributedSampler {
    universe: u128,
    samples: u64,
    blocks: u64,
    seed: u64,
}

impl DistributedSampler {
    /// Create a sampler drawing `samples` distinct indices from
    /// `[0, universe)`, organized in `blocks` leaf blocks.
    ///
    /// `blocks` must be a power of two and `samples <= universe`.
    pub fn new(universe: u128, samples: u64, blocks: u64, seed: u64) -> Self {
        assert!(blocks.is_power_of_two(), "blocks must be a power of two");
        assert!(
            (samples as u128) <= universe,
            "cannot draw {samples} from a universe of {universe}"
        );
        assert!(
            blocks as u128 <= universe.max(1),
            "more blocks than universe elements"
        );
        DistributedSampler {
            universe,
            samples,
            blocks,
            seed,
        }
    }

    /// Number of leaf blocks.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Total number of samples in the whole universe.
    pub fn total_samples(&self) -> u64 {
        self.samples
    }

    /// Global index range `[start, end)` covered by block `b`.
    #[inline]
    pub fn block_range(&self, b: u64) -> (u128, u128) {
        debug_assert!(b < self.blocks);
        let start = self.universe * b as u128 / self.blocks as u128;
        let end = self.universe * (b + 1) as u128 / self.blocks as u128;
        (start, end)
    }

    /// Visit every block in `[lo, hi)` with its sample count.
    ///
    /// Runs in O((hi−lo) + log B) hypergeometric draws.
    pub fn for_block_counts(&self, lo: u64, hi: u64, f: &mut impl FnMut(u64, u64)) {
        assert!(lo <= hi && hi <= self.blocks);
        if lo == hi {
            return;
        }
        let root = SeedTree::root(self.seed, stream::SPLIT, 2);
        self.descend(root, 0, self.blocks, self.samples, lo, hi, f);
    }

    #[allow(clippy::too_many_arguments)] // recursion state, not an API
    fn descend(
        &self,
        node: SeedTree,
        a: u64,
        b: u64,
        count: u64,
        lo: u64,
        hi: u64,
        f: &mut impl FnMut(u64, u64),
    ) {
        if hi <= a || b <= lo {
            return; // disjoint from the query range
        }
        if b - a == 1 {
            f(a, count);
            return;
        }
        let mid = a + (b - a) / 2;
        let (a_start, _) = self.block_range(a);
        let (mid_start, _) = self.block_range(mid);
        let end = if b == self.blocks {
            self.universe
        } else {
            self.block_range(b).0
        };
        let left_universe = mid_start - a_start;
        let total = end - a_start;
        let mut rng = node.rng();
        let left_count = hypergeometric(&mut rng, total, left_universe, count);
        self.descend(node.child(0), a, mid, left_count, lo, hi, f);
        self.descend(node.child(1), mid, b, count - left_count, lo, hi, f);
    }

    /// Sample count of a single block (convenience).
    pub fn block_count(&self, b: u64) -> u64 {
        let mut out = 0;
        self.for_block_counts(b, b + 1, &mut |_, c| out = c);
        out
    }

    /// Emit the sorted global sample indices of block `b`.
    ///
    /// Deterministic: depends only on the sampler parameters and `b`.
    pub fn sample_block(&self, b: u64, emit: &mut impl FnMut(u128)) {
        let count = self.block_count(b);
        self.sample_block_with_count(b, count, emit);
    }

    /// One body for both delivery shapes — `BATCHED` only selects the
    /// leaf sampler, so the leaf seeding and range decode can never
    /// drift apart between the per-draw and block-treated paths.
    fn sample_block_impl<const BATCHED: bool>(
        &self,
        b: u64,
        count: u64,
        emit: &mut impl FnMut(u128),
    ) {
        let (start, end) = self.block_range(b);
        let len = end - start;
        assert!(
            len <= u64::MAX as u128,
            "leaf block larger than 2^64; increase the block count"
        );
        let mut rng = Mt64::new(derive_seed(self.seed, &[stream::SAMPLE, b]));
        let mut on_i = |i: u64| emit(start + i as u128);
        if BATCHED {
            sample_sorted_batched(&mut rng, len as u64, count, &mut on_i);
        } else {
            sample_sorted(&mut rng, len as u64, count, &mut on_i);
        }
    }

    /// Like [`Self::sample_block`] when the caller already knows the count
    /// (e.g. from [`Self::for_block_counts`]).
    pub fn sample_block_with_count(&self, b: u64, count: u64, emit: &mut impl FnMut(u128)) {
        self.sample_block_impl::<false>(b, count, emit);
    }

    /// Emit all samples of blocks `[lo, hi)` in sorted order.
    pub fn sample_range(&self, lo: u64, hi: u64, emit: &mut impl FnMut(u128)) {
        let mut pending: Vec<(u64, u64)> = Vec::new();
        self.for_block_counts(lo, hi, &mut |b, c| pending.push((b, c)));
        for (b, c) in pending {
            self.sample_block_impl::<false>(b, c, emit);
        }
    }

    /// Block-treated [`Self::sample_range`]: the identical sample
    /// stream, with every leaf's Method D uniforms served from a
    /// block-buffered PRNG
    /// ([`sample_sorted_batched`](crate::vitter::sample_sorted_batched)).
    /// Safe because each leaf PRNG exists only for its leaf — the
    /// buffer's read-ahead words are never observed by anyone else.
    pub fn sample_range_batched(&self, lo: u64, hi: u64, emit: &mut impl FnMut(u128)) {
        let mut pending: Vec<(u64, u64)> = Vec::new();
        self.for_block_counts(lo, hi, &mut |b, c| pending.push((b, c)));
        for (b, c) in pending {
            self.sample_block_impl::<true>(b, c, emit);
        }
    }
}

/// Recommended block count: enough blocks for `parts` owners while keeping
/// leaves below 2^44 elements (f64-exact Algorithm D regime).
pub fn choose_blocks(universe: u128, parts: u64) -> u64 {
    let mut blocks = parts.next_power_of_two().max(1);
    while (universe / blocks as u128) > (1u128 << 44) {
        blocks = blocks
            .checked_mul(2)
            .expect("universe too large for block addressing");
    }
    blocks.min(u64::MAX / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_samples(s: &DistributedSampler) -> Vec<u128> {
        let mut out = Vec::new();
        s.sample_range(0, s.blocks(), &mut |x| out.push(x));
        out
    }

    #[test]
    fn counts_conserve_total() {
        let s = DistributedSampler::new(1 << 20, 5000, 64, 42);
        let mut sum = 0u64;
        s.for_block_counts(0, 64, &mut |_, c| sum += c);
        assert_eq!(sum, 5000);
    }

    #[test]
    fn counts_match_across_queries() {
        // Querying a block alone or as part of a range gives the same count.
        let s = DistributedSampler::new(1 << 16, 777, 32, 7);
        let mut whole = vec![0u64; 32];
        s.for_block_counts(0, 32, &mut |b, c| whole[b as usize] = c);
        for b in 0..32 {
            assert_eq!(s.block_count(b), whole[b as usize], "block {b}");
        }
        let mut partial = Vec::new();
        s.for_block_counts(5, 13, &mut |b, c| partial.push((b, c)));
        for (b, c) in partial {
            assert_eq!(c, whole[b as usize]);
        }
    }

    #[test]
    fn samples_valid() {
        let s = DistributedSampler::new(100_000, 2_000, 16, 3);
        let all = all_samples(&s);
        assert_eq!(all.len(), 2000);
        for w in all.windows(2) {
            assert!(w[0] < w[1], "not sorted/unique");
        }
        assert!(*all.last().unwrap() < 100_000);
    }

    #[test]
    fn block_samples_within_block_range() {
        let s = DistributedSampler::new(10_000, 500, 8, 9);
        for b in 0..8 {
            let (lo, hi) = s.block_range(b);
            s.sample_block(b, &mut |x| assert!(x >= lo && x < hi));
        }
    }

    #[test]
    fn union_independent_of_partitioning() {
        // Computing per-block vs in two big ranges gives the same instance.
        let s = DistributedSampler::new(1 << 18, 3333, 64, 11);
        let whole = all_samples(&s);
        let mut split = Vec::new();
        s.sample_range(0, 17, &mut |x| split.push(x));
        s.sample_range(17, 64, &mut |x| split.push(x));
        assert_eq!(whole, split);
        let mut per_block = Vec::new();
        for b in 0..64 {
            s.sample_block(b, &mut |x| per_block.push(x));
        }
        assert_eq!(whole, per_block);
    }

    #[test]
    fn seed_changes_instance() {
        let a = all_samples(&DistributedSampler::new(1 << 16, 1000, 16, 1));
        let b = all_samples(&DistributedSampler::new(1 << 16, 1000, 16, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn exhaustive_sampling() {
        // samples == universe must enumerate everything.
        let s = DistributedSampler::new(256, 256, 8, 5);
        let all = all_samples(&s);
        assert_eq!(all, (0..256u128).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_inclusion_over_blocks() {
        // Each element appears with probability k/N across seeds.
        let universe = 64u128;
        let k = 16u64;
        let reps = 8000;
        let mut counts = vec![0u32; 64];
        for seed in 0..reps {
            let s = DistributedSampler::new(universe, k, 4, seed);
            s.sample_range(0, 4, &mut |x| counts[x as usize] += 1);
        }
        let expect = reps as f64 * (k as f64 / universe as f64);
        let sd = (expect * (1.0 - 0.25)).sqrt();
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 6.0 * sd,
                "element {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn huge_universe_splitting() {
        // u128 universe: counts must still conserve and samples stay sorted
        // within blocks.
        let s = DistributedSampler::new(1 << 90, 10_000, 1 << 30, 13);
        // A narrow block range must be reachable in O(width + log B) work.
        let mut ranged = 0u64;
        s.for_block_counts(1000, 1064, &mut |b, c| {
            assert!((1000..1064).contains(&b));
            ranged += c;
        });
        assert!(ranged <= 10_000);
        // A moderate block count still conserves the total exactly.
        let s16 = DistributedSampler::new(1 << 60, 10_000, 1 << 16, 13);
        let mut sum = 0u64;
        s16.for_block_counts(0, 1 << 16, &mut |_, c| sum += c);
        assert_eq!(sum, 10_000);
        // Spot-check one block.
        let mut prev: Option<u128> = None;
        s.sample_block(12345, &mut |x| {
            if let Some(p) = prev {
                assert!(x > p);
            }
            prev = Some(x);
        });
    }

    #[test]
    fn choose_blocks_covers_parts() {
        assert!(choose_blocks(1 << 20, 7) >= 7);
        assert!(choose_blocks(1 << 20, 8).is_power_of_two());
        // Large universes get enough blocks to keep leaves small.
        let b = choose_blocks(1 << 60, 4);
        assert!((1u128 << 60) / b as u128 <= 1 << 44);
    }
}
