//! Undirected G(n,m) and G(n,p): the triangular chunk-matrix scheme (§4.2).
//!
//! The adjacency matrix is restricted to its lower triangle and divided
//! into a Q×Q triangular chunk matrix. PE i is responsible for chunk row i
//! and chunk column i — so the edges of chunk (i,j) are generated twice,
//! once by PE i and once by PE j, from the *same* chunk-seeded PRNG, which
//! makes the copies bit-identical without communication. The recomputation
//! overhead is bounded by 2m.
//!
//! Chunk sample counts come from a quadrant recursion over the chunk
//! matrix: a triangular region splits into (triangle, rectangle, triangle)
//! with hypergeometric variates; rectangles split along their longer axis.
//! All variates are drawn from recursion-node-seeded PRNGs, so every PE
//! reconstructs identical counts along its paths.

use super::{GnpLeaves, MonotoneTriangleDecoder, RowSplitter64};
use crate::{Generator, PeGraph};
use kagen_dist::{binomial, hypergeometric};
use kagen_sampling::vitter::{sample_sorted, sample_sorted_batched};
use kagen_sampling::{bernoulli_sample, bernoulli_sample_batched};
use kagen_util::seed::{stream, SeedTree};
use kagen_util::{derive_seed, Mt64};

/// Geometry of the Q×Q triangular chunk matrix over `n` vertices.
#[derive(Clone, Copy, Debug)]
struct ChunkMatrix {
    n: u64,
    q: u64,
}

impl ChunkMatrix {
    fn new(n: u64, chunks: usize) -> Self {
        // At most one chunk per vertex.
        let q = (chunks as u64).clamp(1, n.max(1));
        ChunkMatrix { n, q }
    }

    /// First vertex of chunk row/column `i`.
    #[inline]
    fn start(&self, i: u64) -> u64 {
        (self.n as u128 * i as u128 / self.q as u128) as u64
    }

    /// Vertices covered by rows `[a, b)`.
    #[inline]
    fn span(&self, a: u64, b: u64) -> u64 {
        self.start(b) - self.start(a)
    }

    /// Universe of a triangular region over rows = cols `[a, b)`.
    #[inline]
    fn tri_universe(&self, a: u64, b: u64) -> u128 {
        let s = self.span(a, b) as u128;
        s * s.saturating_sub(1) / 2
    }

    /// Universe of a rectangular region rows `[ra, rb)` × cols `[ca, cb)`.
    #[inline]
    fn rect_universe(&self, ra: u64, rb: u64, ca: u64, cb: u64) -> u128 {
        self.span(ra, rb) as u128 * self.span(ca, cb) as u128
    }
}

/// The shared chunk-count recursion; calls `f(i, j, count)` for every chunk
/// of PE `pe` (row `pe` and column `pe`) with a nonzero sample count.
struct Recursion<'a, F: FnMut(u64, u64, u64)> {
    grid: ChunkMatrix,
    pe: u64,
    f: &'a mut F,
}

impl<F: FnMut(u64, u64, u64)> Recursion<'_, F> {
    fn tri(&mut self, node: SeedTree, a: u64, b: u64, count: u64) {
        if count == 0 || self.pe < a || self.pe >= b {
            return;
        }
        if b - a == 1 {
            (self.f)(a, a, count);
            return;
        }
        let mid = a + (b - a).div_ceil(2);
        let u_t1 = self.grid.tri_universe(a, mid);
        let u_rect = self.grid.rect_universe(mid, b, a, mid);
        let u_t2 = self.grid.tri_universe(mid, b);
        let mut rng = node.rng();
        let x1 = hypergeometric(&mut rng, u_t1 + u_rect + u_t2, u_t1, count);
        let x2 = hypergeometric(&mut rng, u_rect + u_t2, u_rect, count - x1);
        let x3 = count - x1 - x2;
        self.tri(node.child(0), a, mid, x1);
        self.rect(node.child(1), mid, b, a, mid, x2);
        self.tri(node.child(2), mid, b, x3);
    }

    fn rect(&mut self, node: SeedTree, ra: u64, rb: u64, ca: u64, cb: u64, count: u64) {
        if count == 0 {
            return;
        }
        let in_rows = (ra..rb).contains(&self.pe);
        let in_cols = (ca..cb).contains(&self.pe);
        if !in_rows && !in_cols {
            return;
        }
        if rb - ra == 1 && cb - ca == 1 {
            (self.f)(ra, ca, count);
            return;
        }
        // Split the longer dimension.
        let mut rng = node.rng();
        if rb - ra >= cb - ca {
            let mid = ra + (rb - ra).div_ceil(2);
            let u_top = self.grid.rect_universe(ra, mid, ca, cb);
            let u_bot = self.grid.rect_universe(mid, rb, ca, cb);
            let x = hypergeometric(&mut rng, u_top + u_bot, u_top, count);
            self.rect(node.child(0), ra, mid, ca, cb, x);
            self.rect(node.child(1), mid, rb, ca, cb, count - x);
        } else {
            let mid = ca + (cb - ca).div_ceil(2);
            let u_left = self.grid.rect_universe(ra, rb, ca, mid);
            let u_right = self.grid.rect_universe(ra, rb, mid, cb);
            let x = hypergeometric(&mut rng, u_left + u_right, u_left, count);
            self.rect(node.child(0), ra, rb, ca, mid, x);
            self.rect(node.child(1), ra, rb, mid, cb, count - x);
        }
    }
}

/// The universe size of chunk `(i, j)` as a `u64` (asserted to fit:
/// chunk spans are bounded by the Q×Q decomposition).
fn chunk_universe(grid: &ChunkMatrix, i: u64, j: u64) -> u64 {
    let universe = if i == j {
        let s = grid.span(i, i + 1) as u128;
        s * s.saturating_sub(1) / 2
    } else {
        grid.span(i, i + 1) as u128 * grid.span(j, j + 1) as u128
    };
    assert!(
        universe <= u64::MAX as u128,
        "chunk too large: raise chunks"
    );
    universe as u64
}

/// Sample the `count` edges of chunk `(i, j)` — identical on both owning
/// PEs because the PRNG is seeded by the chunk id alone. `BATCHED`
/// selects the block-treated Method D (same edges, buffered uniforms);
/// the index consumers stay monomorphic either way, so the decode loops
/// inline into the caller's batcher.
fn sample_chunk_impl<const BATCHED: bool, F: FnMut(u64, u64) + ?Sized>(
    grid: &ChunkMatrix,
    seed: u64,
    i: u64,
    j: u64,
    count: u64,
    emit: &mut F,
) {
    let mut rng = Mt64::new(derive_seed(seed, &[stream::SAMPLE, i, j]));
    let universe = chunk_universe(grid, i, j);
    let row_start = grid.start(i);
    if i == j {
        // Sorted samples: advance the triangle row incrementally.
        let mut dec = MonotoneTriangleDecoder::new();
        let mut on_t = |t: u64| {
            let (u, v) = dec.decode(t as u128);
            emit(row_start + u, row_start + v);
        };
        if BATCHED {
            sample_sorted_batched(&mut rng, universe, count, &mut on_t);
        } else {
            sample_sorted(&mut rng, universe, count, &mut on_t);
        }
    } else {
        let col_start = grid.start(j);
        // Reciprocal row split: sampled gaps hop many rows at once, so
        // the O(1) estimate beats a monotone advance.
        let rows = RowSplitter64::new(grid.span(j, j + 1));
        let mut on_t = |t: u64| {
            let (row, off) = rows.split(t);
            emit(row_start + row, col_start + off);
        };
        if BATCHED {
            sample_sorted_batched(&mut rng, universe, count, &mut on_t);
        } else {
            sample_sorted(&mut rng, universe, count, &mut on_t);
        }
    }
}

/// Skip-sample chunk `(i, j)` of a G(n,p) instance: every pair kept with
/// probability `p` via geometric skips from the chunk-seeded PRNG —
/// identical on both owning PEs. `BATCHED` selects the block-converted
/// kernel; the edge stream is bit-identical either way.
fn skip_chunk_impl<const BATCHED: bool, F: FnMut(u64, u64) + ?Sized>(
    grid: &ChunkMatrix,
    seed: u64,
    p: f64,
    i: u64,
    j: u64,
    emit: &mut F,
) {
    let mut rng = Mt64::new(derive_seed(seed, &[stream::SAMPLE, i, j]));
    let universe = chunk_universe(grid, i, j);
    let row_start = grid.start(i);
    if i == j {
        let mut dec = MonotoneTriangleDecoder::new();
        let mut on_t = |t: u64| {
            let (u, v) = dec.decode(t as u128);
            emit(row_start + u, row_start + v);
        };
        if BATCHED {
            bernoulli_sample_batched(&mut rng, universe, p, &mut |idxs| {
                for &t in idxs {
                    on_t(t);
                }
            });
        } else {
            bernoulli_sample(&mut rng, universe, p, &mut on_t);
        }
    } else {
        let col_start = grid.start(j);
        let rows = RowSplitter64::new(grid.span(j, j + 1));
        let mut on_t = |t: u64| {
            let (row, off) = rows.split(t);
            emit(row_start + row, col_start + off);
        };
        if BATCHED {
            bernoulli_sample_batched(&mut rng, universe, p, &mut |idxs| {
                for &t in idxs {
                    on_t(t);
                }
            });
        } else {
            bernoulli_sample(&mut rng, universe, p, &mut on_t);
        }
    }
}

/// Undirected Erdős–Rényi G(n,m): uniform over all simple undirected
/// graphs with exactly `m` edges (§4.2).
#[derive(Clone, Debug)]
pub struct GnmUndirected {
    n: u64,
    m: u64,
    seed: u64,
    chunks: usize,
}

impl GnmUndirected {
    /// New instance with `n` vertices and `m` edges.
    ///
    /// Panics if `m` exceeds `n(n−1)/2`.
    pub fn new(n: u64, m: u64) -> Self {
        let universe = (n as u128) * (n as u128).saturating_sub(1) / 2;
        assert!(
            (m as u128) <= universe,
            "m={m} exceeds the undirected universe n(n-1)/2={universe}"
        );
        GnmUndirected {
            n,
            m,
            seed: 1,
            chunks: 64,
        }
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of logical PEs (also the chunk-matrix dimension Q;
    /// part of the instance definition, see DESIGN.md).
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks >= 1);
        self.chunks = chunks;
        self
    }
}

impl Generator for GnmUndirected {
    fn num_vertices(&self) -> u64 {
        self.n
    }

    fn num_chunks(&self) -> usize {
        ChunkMatrix::new(self.n, self.chunks).q as usize
    }

    fn directed(&self) -> bool {
        false
    }

    fn generate_pe(&self, pe: usize) -> PeGraph {
        let grid = ChunkMatrix::new(self.n, self.chunks);
        let mut out = PeGraph {
            pe,
            vertex_begin: grid.start(pe as u64),
            vertex_end: grid.start(pe as u64 + 1),
            ..PeGraph::default()
        };
        self.stream_edges(pe, &mut |u, v| out.edges.push((u, v)));
        out
    }
}

impl GnmUndirected {
    /// One body for both delivery shapes — `BATCHED` only selects the
    /// chunk kernel (block-treated Method D vs per-draw), so the count
    /// recursion and chunk walk can never drift apart between the two
    /// paths.
    fn stream_edges_impl<const BATCHED: bool, F: FnMut(u64, u64) + ?Sized>(
        &self,
        pe: usize,
        emit: &mut F,
    ) {
        let grid = ChunkMatrix::new(self.n, self.chunks);
        if self.n < 2 {
            return;
        }
        let root = SeedTree::root(
            derive_seed(self.seed, &[stream::MISC, 0x6d75]), // "mu" = gnm undirected
            stream::SPLIT,
            3,
        );
        let mut chunks_found: Vec<(u64, u64, u64)> = Vec::new();
        {
            let mut f = |i: u64, j: u64, c: u64| chunks_found.push((i, j, c));
            let mut rec = Recursion {
                grid,
                pe: pe as u64,
                f: &mut f,
            };
            rec.tri(root, 0, grid.q, self.m);
        }
        for (i, j, c) in chunks_found {
            sample_chunk_impl::<BATCHED, F>(&grid, self.seed, i, j, c, emit);
        }
    }

    /// Emit PE `pe`'s edges without materializing them (§9 streaming).
    /// Generic over the consumer so concrete callers monomorphize.
    pub(crate) fn stream_edges<F: FnMut(u64, u64) + ?Sized>(&self, pe: usize, emit: &mut F) {
        self.stream_edges_impl::<false, F>(pe, emit);
    }

    /// Block-treated [`Self::stream_edges`]: the identical edge stream,
    /// with every chunk's Method D uniforms served from a block-buffered
    /// PRNG; `emit` is monomorphic, so the decode loops inline into the
    /// caller's batcher.
    pub(crate) fn stream_edges_batched<F: FnMut(u64, u64)>(&self, pe: usize, emit: &mut F) {
        self.stream_edges_impl::<true, F>(pe, emit);
    }
}

/// Undirected Gilbert G(n,p) (§4.3): per-chunk binomial counts, no
/// recursion needed because chunk universes are predetermined.
#[derive(Clone, Debug)]
pub struct GnpUndirected {
    n: u64,
    p: f64,
    seed: u64,
    chunks: usize,
    leaves: GnpLeaves,
}

impl GnpUndirected {
    /// New instance with `n` vertices and edge probability `p`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
        GnpUndirected {
            n,
            p,
            seed: 1,
            chunks: 64,
            leaves: GnpLeaves::default(),
        }
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of logical PEs (= chunk-matrix dimension Q).
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks >= 1);
        self.chunks = chunks;
        self
    }

    /// Select the chunk-sampling algorithm (part of the instance
    /// definition — see [`GnpLeaves`]).
    pub fn with_leaves(mut self, leaves: GnpLeaves) -> Self {
        self.leaves = leaves;
        self
    }
}

impl Generator for GnpUndirected {
    fn num_vertices(&self) -> u64 {
        self.n
    }

    fn num_chunks(&self) -> usize {
        ChunkMatrix::new(self.n, self.chunks).q as usize
    }

    fn directed(&self) -> bool {
        false
    }

    fn generate_pe(&self, pe: usize) -> PeGraph {
        let grid = ChunkMatrix::new(self.n, self.chunks);
        let pe_id = pe as u64;
        let mut out = PeGraph {
            pe,
            vertex_begin: grid.start(pe_id),
            vertex_end: grid.start(pe_id + 1),
            ..PeGraph::default()
        };
        self.stream_edges(pe, &mut |u, v| out.edges.push((u, v)));
        out
    }
}

impl GnpUndirected {
    /// The chunk ids PE `pe` owns, in emission order: row `pe` then
    /// column `pe`.
    fn chunk_ids(grid: &ChunkMatrix, pe_id: u64) -> impl Iterator<Item = (u64, u64)> + '_ {
        (0..=pe_id)
            .map(move |j| (pe_id, j))
            .chain((pe_id + 1..grid.q).map(move |i| (i, pe_id)))
    }

    /// One body for both delivery shapes — `BATCHED` only selects the
    /// chunk kernels, so the chunk walk and seeding can never drift
    /// apart between the two paths.
    fn stream_edges_impl<const BATCHED: bool, F: FnMut(u64, u64) + ?Sized>(
        &self,
        pe: usize,
        emit: &mut F,
    ) {
        let grid = ChunkMatrix::new(self.n, self.chunks);
        let pe_id = pe as u64;
        if self.n < 2 || self.p == 0.0 {
            return;
        }
        for (i, j) in Self::chunk_ids(&grid, pe_id) {
            match self.leaves {
                GnpLeaves::Skip => {
                    // Geometric skip sampling straight off the chunk
                    // universe: one uniform per edge, no count draw.
                    skip_chunk_impl::<BATCHED, F>(&grid, self.seed, self.p, i, j, emit);
                }
                GnpLeaves::AlgoD => {
                    let universe = if i == j {
                        grid.tri_universe(i, i + 1)
                    } else {
                        grid.rect_universe(i, i + 1, j, j + 1)
                    };
                    let mut count_rng = Mt64::new(derive_seed(self.seed, &[stream::COUNT, i, j]));
                    let count = binomial(&mut count_rng, universe, self.p);
                    sample_chunk_impl::<BATCHED, F>(&grid, self.seed, i, j, count, emit);
                }
            }
        }
    }

    /// Emit PE `pe`'s edges without materializing them (§9 streaming).
    /// Generic over the consumer so concrete callers monomorphize.
    pub(crate) fn stream_edges<F: FnMut(u64, u64) + ?Sized>(&self, pe: usize, emit: &mut F) {
        self.stream_edges_impl::<false, F>(pe, emit);
    }

    /// Block-batched [`Self::stream_edges`]: skips drawn and converted
    /// in blocks, the identical edge stream.
    pub(crate) fn stream_edges_batched<F: FnMut(u64, u64)>(&self, pe: usize, emit: &mut F) {
        self.stream_edges_impl::<true, F>(pe, emit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_parallel, generate_undirected};

    #[test]
    fn gnm_exact_count_simple_graph() {
        let gen = GnmUndirected::new(300, 2000).with_seed(5).with_chunks(8);
        let el = generate_undirected(&gen);
        assert_eq!(el.edges.len(), 2000);
        assert!(!el.has_self_loops());
        assert!(!el.has_out_of_range());
        for &(u, v) in &el.edges {
            assert!(u < v, "canonical orientation");
        }
    }

    #[test]
    fn gnm_redundant_chunks_identical() {
        // The overlap of PE i's and PE j's outputs must contain exactly the
        // same cross edges.
        let gen = GnmUndirected::new(120, 800).with_seed(11).with_chunks(6);
        let parts = generate_parallel(&gen, 0);
        for i in 0..6usize {
            for j in 0..i {
                let set_i: std::collections::HashSet<(u64, u64)> = parts[i]
                    .edges
                    .iter()
                    .copied()
                    .filter(|&(u, v)| {
                        let vj = parts[j].vertex_begin..parts[j].vertex_end;
                        vj.contains(&v) || vj.contains(&u)
                    })
                    .collect();
                let set_j: std::collections::HashSet<(u64, u64)> = parts[j]
                    .edges
                    .iter()
                    .copied()
                    .filter(|&(u, v)| {
                        let vi = parts[i].vertex_begin..parts[i].vertex_end;
                        vi.contains(&v) || vi.contains(&u)
                    })
                    .collect();
                assert_eq!(set_i, set_j, "chunk ({i},{j}) differs between owners");
            }
        }
    }

    #[test]
    fn gnm_thread_count_invariance() {
        let gen = GnmUndirected::new(200, 1500).with_seed(3).with_chunks(16);
        let seq: Vec<_> = (0..16).map(|pe| gen.generate_pe(pe).edges).collect();
        let par = generate_parallel(&gen, 8);
        for (pe, part) in par.iter().enumerate() {
            assert_eq!(part.edges, seq[pe], "PE {pe}");
        }
    }

    #[test]
    fn gnm_full_universe() {
        let n = 24u64;
        let m = n * (n - 1) / 2;
        let el = generate_undirected(&GnmUndirected::new(n, m).with_seed(1).with_chunks(4));
        assert_eq!(
            el.edges.len() as u64,
            m,
            "must enumerate the complete graph"
        );
    }

    #[test]
    fn gnm_uniform_over_pairs() {
        let n = 10u64;
        let m = 9u64;
        let reps = 6000u64;
        let mut counts = std::collections::HashMap::new();
        for seed in 0..reps {
            let el = generate_undirected(&GnmUndirected::new(n, m).with_seed(seed).with_chunks(3));
            assert_eq!(el.edges.len() as u64, m, "seed {seed}");
            for e in el.edges {
                *counts.entry(e).or_insert(0u32) += 1;
            }
        }
        let pairs = (n * (n - 1) / 2) as f64;
        let prob = m as f64 / pairs;
        let expect = reps as f64 * prob;
        let sd = (expect * (1.0 - prob)).sqrt();
        assert_eq!(counts.len() as f64, pairs, "every pair must appear");
        for (e, c) in counts {
            assert!(
                (c as f64 - expect).abs() < 6.0 * sd,
                "pair {e:?}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn gnp_mean_and_simplicity() {
        let n = 250u64;
        let p = 0.02;
        let reps = 30;
        let mut total = 0usize;
        for seed in 0..reps {
            let el = generate_undirected(&GnpUndirected::new(n, p).with_seed(seed).with_chunks(5));
            assert!(!el.has_self_loops());
            total += el.edges.len();
        }
        let mean = total as f64 / reps as f64;
        let expect = (n * (n - 1) / 2) as f64 * p;
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn gnp_redundancy_consistency() {
        let gen = GnpUndirected::new(90, 0.1).with_seed(17).with_chunks(9);
        let parts = generate_parallel(&gen, 0);
        let merged = generate_undirected(&gen);
        // Every PE's edges are a subset of the merged instance.
        let all: std::collections::HashSet<(u64, u64)> = merged.edges.iter().copied().collect();
        for part in parts {
            for (u, v) in part.edges {
                let canon = (u.min(v), u.max(v));
                assert!(all.contains(&canon), "stray edge {canon:?}");
            }
        }
    }

    #[test]
    fn gnp_leaf_samplers_define_distinct_instances() {
        let skip = generate_undirected(&GnpUndirected::new(150, 0.05).with_seed(3).with_chunks(4));
        let algo_d = generate_undirected(
            &GnpUndirected::new(150, 0.05)
                .with_seed(3)
                .with_chunks(4)
                .with_leaves(GnpLeaves::AlgoD),
        );
        assert_ne!(skip.edges, algo_d.edges);
        for el in [&skip, &algo_d] {
            assert!(!el.has_self_loops());
            assert!(!el.has_out_of_range());
        }
    }

    #[test]
    fn gnp_algo_d_mean_and_redundancy() {
        let n = 250u64;
        let p = 0.02;
        let reps = 30;
        let mut total = 0usize;
        for seed in 0..reps {
            let gen = GnpUndirected::new(n, p)
                .with_seed(seed)
                .with_chunks(5)
                .with_leaves(GnpLeaves::AlgoD);
            let el = generate_undirected(&gen);
            assert!(!el.has_self_loops());
            total += el.edges.len();
        }
        let mean = total as f64 / reps as f64;
        let expect = (n * (n - 1) / 2) as f64 * p;
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn gnp_skip_redundant_chunks_identical() {
        // The skip sampler must keep the §4.2 redundancy property: the
        // two owners of a chunk regenerate identical cross edges.
        let gen = GnpUndirected::new(120, 0.08).with_seed(11).with_chunks(6);
        let parts = generate_parallel(&gen, 0);
        for i in 0..6usize {
            for j in 0..i {
                let set_i: std::collections::HashSet<(u64, u64)> = parts[i]
                    .edges
                    .iter()
                    .copied()
                    .filter(|&(u, v)| {
                        let vj = parts[j].vertex_begin..parts[j].vertex_end;
                        vj.contains(&v) || vj.contains(&u)
                    })
                    .collect();
                let set_j: std::collections::HashSet<(u64, u64)> = parts[j]
                    .edges
                    .iter()
                    .copied()
                    .filter(|&(u, v)| {
                        let vi = parts[i].vertex_begin..parts[i].vertex_end;
                        vi.contains(&v) || vi.contains(&u)
                    })
                    .collect();
                assert_eq!(set_i, set_j, "chunk ({i},{j}) differs between owners");
            }
        }
    }

    #[test]
    fn gnp_batched_equals_per_edge_both_samplers() {
        for leaves in [GnpLeaves::Skip, GnpLeaves::AlgoD] {
            let gen = GnpUndirected::new(300, 0.04)
                .with_seed(5)
                .with_chunks(6)
                .with_leaves(leaves);
            for pe in 0..6 {
                let mut a = Vec::new();
                gen.stream_edges(pe, &mut |u: u64, v: u64| a.push((u, v)));
                let mut b = Vec::new();
                gen.stream_edges_batched(pe, &mut |u, v| b.push((u, v)));
                assert_eq!(a, b, "leaves={leaves:?} pe={pe}");
            }
        }
    }

    #[test]
    fn gnm_batched_equals_per_edge() {
        let gen = GnmUndirected::new(300, 2500).with_seed(8).with_chunks(6);
        for pe in 0..6 {
            let mut a = Vec::new();
            gen.stream_edges(pe, &mut |u: u64, v: u64| a.push((u, v)));
            let mut b = Vec::new();
            gen.stream_edges_batched(pe, &mut |u, v| b.push((u, v)));
            assert_eq!(a, b, "pe={pe}");
        }
    }

    #[test]
    fn single_chunk_degenerates_to_sequential() {
        let el = generate_undirected(&GnmUndirected::new(50, 100).with_seed(2).with_chunks(1));
        assert_eq!(el.edges.len(), 100);
    }

    #[test]
    fn chunks_clamped_to_n() {
        let gen = GnmUndirected::new(4, 3).with_seed(1).with_chunks(100);
        assert_eq!(gen.num_chunks(), 4);
        let el = generate_undirected(&gen);
        assert_eq!(el.edges.len(), 3);
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(
            generate_undirected(&GnmUndirected::new(2, 1).with_seed(1)).edges,
            vec![(0, 1)]
        );
        assert_eq!(
            generate_undirected(&GnmUndirected::new(1, 0).with_seed(1)).m(),
            0
        );
    }
}
