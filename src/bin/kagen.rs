//! `kagen` — command-line graph generation, mirroring the reference
//! KaGen application, plus the bounded-memory streaming pipeline and the
//! multi-process cluster launcher.
//!
//! ```text
//! kagen <model> [options]            materialize, merge in RAM, write one file
//! kagen stream <model> [options]     stream shards to disk, RAM stays O(state)
//! kagen launch <model> [options]     spawn worker processes, federate manifest
//! kagen worker <model> [options]     one rank of a launch (spawned by `launch`)
//!
//! models:
//!   gnm_directed    -n <vertices> -m <edges>
//!   gnm_undirected  -n <vertices> -m <edges>
//!   gnp_directed    -n <vertices> -p <prob>
//!   gnp_undirected  -n <vertices> -p <prob>
//!                   --gnp-leaves <skip|algo-d>  leaf sampler: batched
//!                                      geometric skips (default) or the
//!                                      pre-swap binomial + Vitter D path
//!                                      (reproduces historical instances)
//!   rgg2d           -n <vertices> -r <radius>     (default r: threshold)
//!   rgg3d           -n <vertices> -r <radius>
//!   rdg2d           -n <vertices>
//!   rdg3d           -n <vertices>
//!   rhg             -n <vertices> -d <avg-deg> -g <gamma>
//!   srhg            -n <vertices> -d <avg-deg> -g <gamma>
//!   soft-rhg        -n <vertices> -d <avg-deg> -g <gamma> -T <temperature>
//!   ba              -n <vertices> -d <edges-per-vertex>
//!   rmat            -n <vertices=2^k> -m <edges>
//!                   --rmat-kernel <k>  linear | table | plain (default
//!                                      linear: the linear-work composed
//!                                      path-block table, any scale;
//!                                      table = legacy interleaved
//!                                      descent tables, scale < 32 only)
//!                   --rmat-levels <k>  levels per table draw, 1..=12
//!                                      (default: sized to the L2 cache
//!                                      for linear, 8 for table; 0 =
//!                                      plain per-level descent, the
//!                                      pre-table instance)
//!   sbm             -n <vertices> -b <blocks> --p-in <p> --p-out <p>
//!
//! common options:
//!   -s <seed>        instance seed            (default 1)
//!   -c <chunks>      logical PEs              (default 64)
//!   -t <threads>     worker threads           (default: all cores)
//!   -o <path>        output file              (default: stdout)
//!   -f <format>      edge-list | metis | binary | compressed
//!                                             (default edge-list)
//!   --stats          print graph statistics to stderr
//!                    (directed models report in-/out-degrees)
//!
//! stream-mode options:
//!   --shard-dir <dir>     shard output directory          (required)
//!   -f <format>           edge-list | binary | compressed (default compressed)
//!   --merge <mode>        none | external                 (default none)
//!   --merge-budget <m>    external-merge RAM budget in edges
//!                                                         (default 1<<22)
//!   --merge-fan-in <k>    max runs (files) merged at once  (default 64);
//!                         more runs merge in intermediate passes
//!   -o <path>             merged output file (with --merge external;
//!                         default: <shard-dir>/merged.<ext>)
//!
//! Stream mode writes one shard per PE plus manifest.json; peak RSS is
//! the generator state + write buffers, independent of the edge count.
//! `--merge external` additionally produces the canonical merged edge
//! list via sorted runs + k-way merge, using at most the edge budget of
//! RAM.
//!
//! launch-mode options:
//!   --shard-dir <dir>     shard output directory           (required)
//!   --workers <w>         concurrent worker processes      (default: cores)
//!   -f <format>           edge-list | binary | compressed  (default compressed)
//!   -t <threads>          threads per worker               (default 1)
//!   --resume              reuse valid shards of an interrupted/corrupted
//!                         run; regenerate only missing or invalid shards
//!   --retries <budget>    in-launch retry budget per rank: transient
//!                         worker failures are respawned (exponential
//!                         backoff) up to <budget> times before the rank
//!                         counts as failed          (default 0)
//!   --validate <mode>     full | sampled | sampled=K | none
//!                                                   (default full)
//!                         sampled = size/structure walk + K decoded,
//!                         checksum-verified blocks per shard (default
//!                         K=4; K >= the shard's block count decodes
//!                         every block) — the resume fast path for huge
//!                         runs, parallelized across shards; none skips
//!                         the post-run re-read only
//!   --no-validate         alias for --validate none
//!   --progress <secs>     print a live progress line every <secs>
//!                         seconds: PEs/edges done (completed ranks +
//!                         live worker heartbeats), aggregate edges/sec,
//!                         ETA from the rank plan
//!   --stall-timeout <s>   kill a worker whose heartbeat has not
//!                         advanced in <s> seconds and count the attempt
//!                         as failed (retried under --retries). Both
//!                         flags make workers publish heartbeat files
//!                         (part-<a>-<b>.heartbeat.json) at batch
//!                         granularity
//!
//! Launch mode splits the PE range into contiguous rank ranges and
//! re-execs this binary as `kagen worker` child processes, one per rank
//! (at most --workers at a time). Each worker writes its shard slice
//! plus a partial manifest; the coordinator maintains ledger.json
//! (per-shard state + per-rank status), validates shard checksums, and
//! federates the final manifest.json — byte-identical to `kagen stream`
//! of the same instance. A killed worker or corrupted shard is repaired
//! by `--resume`, which regenerates exactly the damaged shards.
//!
//! worker-mode options (normally set by `launch`):
//!   --shard-dir <dir>     shard output directory           (required)
//!   --pe-range <a..b>     contiguous PE range to generate  (required)
//!   --rank <r>            rank id, for log lines only
//!   -f <format>           edge-list | binary | compressed  (default compressed)
//!   -t <threads>          worker threads                   (default 1)
//!   --metrics-sidecar     write this rank's metric counters next to its
//!                         partial manifest (set by `launch --metrics-out`)
//!   --trace-sidecar       write this rank's span sidecar next to its
//!                         partial manifest (set by `launch --trace-out`)
//!   --heartbeat           publish a liveness/progress heartbeat file
//!                         while generating (set by `launch --progress`
//!                         or `launch --stall-timeout`)
//!
//! observability (all modes unless noted):
//!   -v / -q               more / less logging (-v debug, -vv trace,
//!                         -q warnings only, -qq errors only); the
//!                         KAGEN_LOG env var (error|warn|info|debug|trace)
//!                         sets the default level
//!   --metrics-out <path>  write run metrics JSON (stream | launch |
//!                         worker). In launch mode workers report
//!                         per-rank sidecars (kagen-metrics/v2: counter
//!                         scalars + full histogram buckets) and the
//!                         coordinator federates them bucket-wise;
//!                         per-rank edge totals always reconcile with the
//!                         manifest's edge count. A standalone worker
//!                         writes its own sidecar-shaped document
//!   --trace-out <path>    write Chrome trace-event JSON of the run's
//!                         phase spans (open in chrome://tracing or
//!                         ui.perfetto.dev). In launch mode the file is
//!                         the *federated* cross-rank timeline: every
//!                         worker's spans realigned onto the
//!                         coordinator's clock, one pid row per rank,
//!                         flow arrows from each supervisor rank-N span
//!                         to its worker. A standalone worker writes its
//!                         sidecar document (also a valid Chrome trace)
//!
//! Telemetry never touches an RNG stream or an output byte: shards and
//! manifest.json are bit-identical with metrics/tracing on or off.
//! ```

use kagen_obs::{info, trace, Gauge};
use kagen_repro::cluster::metrics::{RankMetrics, RunMetrics};
use kagen_repro::core::prelude::*;
use kagen_repro::core::streaming::StreamingGenerator;
use kagen_repro::graph::io::{write_binary, write_compressed, write_edge_list, write_metis};
use kagen_repro::graph::stats::DegreeStats;
use kagen_repro::graph::{merge_pe_edges, EdgeList};
use kagen_repro::pipeline::{
    BinarySink, CompressedSink, DegreeStatsSink, EdgeSink, ExternalMerge, InstanceMeta,
    ShardFormat, ShardReader, StreamConfig, TeeSink, TextSink,
};
use kagen_repro::util::alloc::CountingAlloc;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Count allocations binary-wide so `--metrics-out` can report a peak
/// RSS proxy per stage. Pure accounting on top of the system allocator;
/// the obs gauges below read it only at stage boundaries.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Peak heap bytes of the generate/write stage (shards or the
/// materialized edge list), above the stage-entry baseline.
static ALLOC_PEAK_GENERATE: Gauge = Gauge::new("alloc.peak_bytes.generate");
/// Peak heap bytes of the external-merge stage.
static ALLOC_PEAK_MERGE: Gauge = Gauge::new("alloc.peak_bytes.merge");
/// Live heap bytes when the run finished.
static ALLOC_LIVE_END: Gauge = Gauge::new("alloc.live_bytes.end");

/// Which front-end path a `kagen` invocation takes.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `kagen <model>` — generate, merge in RAM, write one file.
    Materialize,
    /// `kagen stream <model>` — shard files + manifest, bounded memory.
    Stream,
    /// `kagen launch <model>` — coordinator of a multi-process run.
    Launch,
    /// `kagen worker <model>` — one rank of a launch.
    Worker,
}

impl Mode {
    fn name(&self) -> &'static str {
        match self {
            Mode::Materialize => "kagen <model>",
            Mode::Stream => "kagen stream",
            Mode::Launch => "kagen launch",
            Mode::Worker => "kagen worker",
        }
    }
}

struct Options {
    mode: Mode,
    model: String,
    n: u64,
    m: u64,
    p: f64,
    r: Option<f64>,
    d: f64,
    gamma: f64,
    temperature: f64,
    blocks: usize,
    p_in: f64,
    p_out: f64,
    rmat_levels: Option<u32>,
    rmat_kernel: Option<String>,
    gnp_leaves: String,
    seed: u64,
    chunks: usize,
    threads: usize,
    output: Option<String>,
    format: Option<String>,
    stats: bool,
    shard_dir: Option<String>,
    merge: Option<String>,
    merge_budget: Option<usize>,
    merge_fan_in: Option<usize>,
    workers: Option<usize>,
    resume: bool,
    no_validate: bool,
    validate: Option<String>,
    retries: Option<u64>,
    pe_range: Option<(usize, usize)>,
    rank: Option<usize>,
    /// Net `-v` (positive) / `-q` (negative) count; 0 = Info.
    verbosity: i32,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    metrics_sidecar: bool,
    trace_sidecar: bool,
    heartbeat: bool,
    progress: Option<f64>,
    stall_timeout: Option<f64>,
}

fn usage() -> ! {
    eprintln!("see `kagen --help` (module docs) for usage");
    std::process::exit(2)
}

fn parse() -> Options {
    let mut o = Options {
        mode: Mode::Materialize,
        model: String::new(),
        n: 1 << 12,
        m: 1 << 15,
        p: 0.001,
        r: None,
        d: 8.0,
        gamma: 2.8,
        temperature: 0.5,
        blocks: 2,
        p_in: 0.01,
        p_out: 0.001,
        rmat_levels: None,
        rmat_kernel: None,
        gnp_leaves: "skip".into(),
        seed: 1,
        chunks: 64,
        threads: 0,
        output: None,
        format: None,
        stats: false,
        shard_dir: None,
        merge: None,
        merge_budget: None,
        merge_fan_in: None,
        workers: None,
        resume: false,
        no_validate: false,
        validate: None,
        retries: None,
        pe_range: None,
        rank: None,
        verbosity: 0,
        metrics_out: None,
        trace_out: None,
        metrics_sidecar: false,
        trace_sidecar: false,
        heartbeat: false,
        progress: None,
        stall_timeout: None,
    };
    let mut args = std::env::args().skip(1);
    let Some(mut model) = args.next() else {
        usage()
    };
    if model == "--help" || model == "-h" {
        println!(
            "{}",
            include_str!("kagen.rs")
                .lines()
                .take_while(|l| l.starts_with("//!"))
                .map(|l| l.trim_start_matches("//!").trim_start())
                .collect::<Vec<_>>()
                .join("\n")
        );
        std::process::exit(0);
    }
    match model.as_str() {
        "stream" => o.mode = Mode::Stream,
        "launch" => o.mode = Mode::Launch,
        "worker" => o.mode = Mode::Worker,
        _ => {}
    }
    if o.mode != Mode::Materialize {
        model = args.next().unwrap_or_else(|| usage());
    }
    o.model = model;
    let next = |args: &mut dyn Iterator<Item = String>| -> String {
        args.next().unwrap_or_else(|| usage())
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "-n" => o.n = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "-m" => o.m = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "-p" => o.p = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "-r" => o.r = Some(next(&mut args).parse().unwrap_or_else(|_| usage())),
            "-d" => o.d = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "-g" => o.gamma = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "-T" => o.temperature = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "-b" => o.blocks = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--p-in" => o.p_in = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--p-out" => o.p_out = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--rmat-levels" => {
                o.rmat_levels = Some(next(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            "--rmat-kernel" => o.rmat_kernel = Some(next(&mut args)),
            "--gnp-leaves" => o.gnp_leaves = next(&mut args),
            "-s" => o.seed = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "-c" => o.chunks = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "-t" => o.threads = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "-o" => o.output = Some(next(&mut args)),
            "-f" => o.format = Some(next(&mut args)),
            "--stats" => o.stats = true,
            "--shard-dir" => o.shard_dir = Some(next(&mut args)),
            "--merge" => o.merge = Some(next(&mut args)),
            "--merge-budget" => {
                o.merge_budget = Some(next(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            "--merge-fan-in" => {
                o.merge_fan_in = Some(next(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            "--workers" => o.workers = Some(next(&mut args).parse().unwrap_or_else(|_| usage())),
            "--resume" => o.resume = true,
            "--no-validate" => o.no_validate = true,
            "--validate" => o.validate = Some(next(&mut args)),
            "--retries" => o.retries = Some(next(&mut args).parse().unwrap_or_else(|_| usage())),
            "--pe-range" => {
                let spec = next(&mut args);
                let Some((a, b)) = spec.split_once("..") else {
                    eprintln!("kagen worker: --pe-range wants `a..b`, got '{spec}'");
                    std::process::exit(2);
                };
                let a = a.parse().unwrap_or_else(|_| usage());
                let b = b.parse().unwrap_or_else(|_| usage());
                o.pe_range = Some((a, b));
            }
            "--rank" => o.rank = Some(next(&mut args).parse().unwrap_or_else(|_| usage())),
            "-v" => o.verbosity += 1,
            "-vv" => o.verbosity += 2,
            "-q" => o.verbosity -= 1,
            "-qq" => o.verbosity -= 2,
            "--metrics-out" => o.metrics_out = Some(next(&mut args)),
            "--trace-out" => o.trace_out = Some(next(&mut args)),
            "--metrics-sidecar" => o.metrics_sidecar = true,
            "--trace-sidecar" => o.trace_sidecar = true,
            "--heartbeat" => o.heartbeat = true,
            "--progress" => o.progress = Some(next(&mut args).parse().unwrap_or_else(|_| usage())),
            "--stall-timeout" => {
                o.stall_timeout = Some(next(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            _ => usage(),
        }
    }
    validate(&o);
    o
}

/// Reject invalid flag combinations up front — *before* any generation
/// starts or any worker process is spawned, for every mode. A typo'd
/// launch must fail in microseconds, not after W workers wrote shards.
fn validate(o: &Options) {
    let mode = o.mode;
    let fail = |msg: String| -> ! {
        eprintln!("{}: {msg}", mode.name());
        std::process::exit(2);
    };
    if gnp_leaves(&o.gnp_leaves).is_none() {
        fail(format!(
            "unknown --gnp-leaves '{}' (want skip | algo-d)",
            o.gnp_leaves
        ));
    }
    // R-MAT kernel/levels: typos and out-of-range values die here, before
    // any worker spawns, regardless of mode.
    if let Some(name) = o.rmat_kernel.as_deref() {
        if !matches!(name, "linear" | "table" | "plain") {
            fail(format!(
                "unknown --rmat-kernel '{name}' (want linear | table | plain)"
            ));
        }
    }
    if let Some(levels) = o.rmat_levels {
        // 0 is the legacy spelling for plain descent; 1..=12 bounds the
        // 4^levels table footprint (4^12 slots = 128 MiB).
        if levels > 12 {
            fail(format!("--rmat-levels {levels} out of range (want 0..=12)"));
        }
        match o.rmat_kernel.as_deref() {
            Some("plain") if levels != 0 => {
                fail(format!(
                    "--rmat-levels {levels} conflicts with --rmat-kernel plain (only 0 allowed)"
                ));
            }
            Some("table") | Some("linear") if levels == 0 => {
                fail(format!(
                    "--rmat-levels 0 (plain descent) conflicts with --rmat-kernel {}",
                    o.rmat_kernel.as_deref().unwrap()
                ));
            }
            _ => {}
        }
    }
    if o.model == "rmat" {
        if o.n > 1u64 << 63 {
            fail(format!("rmat needs n <= 2^63, got {}", o.n));
        }
        let (kernel, _) = rmat_config(o);
        if kernel == "table" && rmat_scale(o) >= 32 {
            fail(format!(
                "--rmat-kernel table needs scale < 32 (n < 2^32), got scale {}; \
                 use --rmat-kernel linear",
                rmat_scale(o)
            ));
        }
    }
    // Which flags each mode accepts.
    let reject = |present: bool, flag: &str, wanted: &str| {
        if present {
            fail(format!("{flag} requires {wanted}"));
        }
    };
    if mode != Mode::Worker {
        reject(
            o.metrics_sidecar,
            "--metrics-sidecar",
            "`kagen worker` (launch --metrics-out sets it)",
        );
        reject(
            o.trace_sidecar,
            "--trace-sidecar",
            "`kagen worker` (launch --trace-out sets it)",
        );
        reject(
            o.heartbeat,
            "--heartbeat",
            "`kagen worker` (launch --progress/--stall-timeout set it)",
        );
    }
    if mode != Mode::Launch {
        reject(o.progress.is_some(), "--progress", "`kagen launch`");
        reject(
            o.stall_timeout.is_some(),
            "--stall-timeout",
            "`kagen launch`",
        );
    }
    if let Some(secs) = o.progress {
        if secs.is_nan() || secs <= 0.0 {
            fail(format!("--progress wants a positive interval, got {secs}"));
        }
    }
    if let Some(secs) = o.stall_timeout {
        if secs.is_nan() || secs <= 0.0 {
            fail(format!(
                "--stall-timeout wants a positive window, got {secs}"
            ));
        }
    }
    if !matches!(mode, Mode::Stream | Mode::Launch | Mode::Worker) {
        reject(
            o.metrics_out.is_some(),
            "--metrics-out",
            "`kagen stream|launch|worker`",
        );
    }
    match mode {
        Mode::Materialize => {
            reject(
                o.shard_dir.is_some(),
                "--shard-dir",
                "`kagen stream|launch|worker`",
            );
            reject(o.merge.is_some(), "--merge", "`kagen stream`");
            reject(o.merge_budget.is_some(), "--merge-budget", "`kagen stream`");
            reject(o.merge_fan_in.is_some(), "--merge-fan-in", "`kagen stream`");
            reject(o.workers.is_some(), "--workers", "`kagen launch`");
            reject(o.resume, "--resume", "`kagen launch`");
            reject(o.no_validate, "--no-validate", "`kagen launch`");
            reject(o.validate.is_some(), "--validate", "`kagen launch`");
            reject(o.retries.is_some(), "--retries", "`kagen launch`");
            reject(o.pe_range.is_some(), "--pe-range", "`kagen worker`");
            reject(o.rank.is_some(), "--rank", "`kagen worker`");
        }
        Mode::Stream => {
            reject(o.workers.is_some(), "--workers", "`kagen launch`");
            reject(o.resume, "--resume", "`kagen launch`");
            reject(o.no_validate, "--no-validate", "`kagen launch`");
            reject(o.validate.is_some(), "--validate", "`kagen launch`");
            reject(o.retries.is_some(), "--retries", "`kagen launch`");
            reject(o.pe_range.is_some(), "--pe-range", "`kagen worker`");
            reject(o.rank.is_some(), "--rank", "`kagen worker`");
            if o.shard_dir.is_none() {
                fail("--shard-dir is required".into());
            }
            let merge = o.merge.as_deref().unwrap_or("none");
            if !matches!(merge, "none" | "external") {
                fail(format!("unknown merge mode '{merge}'"));
            }
            if o.output.is_some() && merge != "external" {
                fail("-o requires --merge external (shards go to --shard-dir)".into());
            }
        }
        Mode::Launch | Mode::Worker => {
            reject(o.merge.is_some(), "--merge", "`kagen stream`");
            reject(o.merge_budget.is_some(), "--merge-budget", "`kagen stream`");
            reject(o.merge_fan_in.is_some(), "--merge-fan-in", "`kagen stream`");
            reject(
                o.output.is_some(),
                "-o",
                "`kagen stream --merge external` or `kagen <model>`",
            );
            reject(o.stats, "--stats", "`kagen <model>` or `kagen stream`");
            if o.shard_dir.is_none() {
                fail("--shard-dir is required".into());
            }
            if mode == Mode::Launch {
                reject(
                    o.pe_range.is_some(),
                    "--pe-range",
                    "`kagen worker` (launch plans ranks itself)",
                );
                reject(o.rank.is_some(), "--rank", "`kagen worker`");
                if o.workers == Some(0) {
                    fail("--workers must be >= 1".into());
                }
                if let Some(name) = o.validate.as_deref() {
                    if kagen_repro::cluster::ValidateMode::parse(name).is_none() {
                        fail(format!("unknown validate mode '{name}'"));
                    }
                    if o.no_validate && name != "none" {
                        fail(format!("--no-validate conflicts with --validate {name}"));
                    }
                }
            } else {
                reject(o.workers.is_some(), "--workers", "`kagen launch`");
                reject(o.resume, "--resume", "`kagen launch`");
                reject(o.no_validate, "--no-validate", "`kagen launch`");
                reject(o.validate.is_some(), "--validate", "`kagen launch`");
                reject(o.retries.is_some(), "--retries", "`kagen launch`");
                let Some((a, b)) = o.pe_range else {
                    fail("--pe-range is required".into());
                };
                if a >= b || b > o.chunks {
                    fail(format!(
                        "--pe-range {a}..{b} is not a non-empty sub-range of 0..{} (-c)",
                        o.chunks
                    ));
                }
            }
            // Shard format must parse *here*, not inside W spawned
            // workers.
            if let Some(name) = o.format.as_deref() {
                if ShardFormat::parse(name).is_none() {
                    fail(format!("unknown shard format '{name}'"));
                }
            }
        }
    }
}

/// Parse the `--gnp-leaves` spelling.
fn gnp_leaves(name: &str) -> Option<kagen_repro::core::er::GnpLeaves> {
    use kagen_repro::core::er::GnpLeaves;
    match name {
        "skip" => Some(GnpLeaves::Skip),
        "algo-d" => Some(GnpLeaves::AlgoD),
        _ => None,
    }
}

/// The G(n,p) params string of manifests and resume ledgers. The
/// legacy spelling (`n=.. p=..`, no marker) stays with the *legacy*
/// instance (`algo-d`): run directories written before the skip-kernel
/// swap resume under `--gnp-leaves algo-d` without a header mismatch —
/// and, conversely, they can never be silently "resumed" by the new
/// skip default, whose shards would belong to a different instance.
fn gnp_params(o: &Options) -> String {
    if o.gnp_leaves == "algo-d" {
        format!("n={} p={}", o.n, o.p)
    } else {
        format!("n={} p={} leaves={}", o.n, o.p, o.gnp_leaves)
    }
}

/// R-MAT scale implied by `-n` (next power of two).
fn rmat_scale(o: &Options) -> u32 {
    o.n.next_power_of_two().ilog2().max(1)
}

/// Resolve the R-MAT kernel and level count from the flags.
///
/// Kernel default is `linear` — the fastest bit-stable kernel at every
/// scale; the legacy `--rmat-levels 0` spelling still selects plain
/// descent. Linear levels default to the L2-cache-sized table
/// ([`Rmat::auto_linear_levels`]); the resolved value is pinned into the
/// params string and the re-exec'd worker command lines, so an instance
/// planned on this host reproduces bit-identically anywhere.
fn rmat_config(o: &Options) -> (&'static str, u32) {
    let kernel = match o.rmat_kernel.as_deref() {
        Some("plain") => "plain",
        Some("table") => "table",
        Some("linear") => "linear",
        None if o.rmat_levels == Some(0) => "plain",
        None => "linear",
        Some(_) => unreachable!("validated"),
    };
    let scale = rmat_scale(o);
    let levels = match kernel {
        "plain" => 0,
        "table" => o.rmat_levels.unwrap_or(8).clamp(1, 12).min(scale),
        _ => o
            .rmat_levels
            .unwrap_or_else(|| Rmat::auto_linear_levels(scale, kagen_repro::util::l2_cache_bytes()))
            .min(scale),
    };
    (kernel, levels)
}

/// The R-MAT params string of manifests and resume ledgers. As with
/// [`gnp_params`], the legacy spelling (`scale=.. m=.. levels=..`, no
/// kernel marker) stays with the *legacy* instances — plain (`levels=0`)
/// and the interleaved descent tables — so run directories written before
/// the linear-work kernel resume under `--rmat-kernel table|plain`
/// without a header mismatch, and can never be silently "resumed" by the
/// new linear default, whose shards belong to a different instance.
fn rmat_params(o: &Options) -> String {
    let (kernel, levels) = rmat_config(o);
    let scale = rmat_scale(o);
    if kernel == "linear" {
        format!("scale={scale} m={} kernel=linear levels={levels}", o.m)
    } else {
        format!("scale={scale} m={} levels={levels}", o.m)
    }
}

/// Build the selected generator; every model supports streaming.
fn build_generator(o: &Options) -> (Box<dyn StreamingGenerator>, String) {
    let (gen, params): (Box<dyn StreamingGenerator>, String) = match o.model.as_str() {
        "gnm_directed" => (
            Box::new(
                GnmDirected::new(o.n, o.m)
                    .with_seed(o.seed)
                    .with_chunks(o.chunks),
            ),
            format!("n={} m={}", o.n, o.m),
        ),
        "gnm_undirected" => (
            Box::new(
                GnmUndirected::new(o.n, o.m)
                    .with_seed(o.seed)
                    .with_chunks(o.chunks),
            ),
            format!("n={} m={}", o.n, o.m),
        ),
        "gnp_directed" => (
            Box::new(
                GnpDirected::new(o.n, o.p)
                    .with_seed(o.seed)
                    .with_chunks(o.chunks)
                    .with_leaves(gnp_leaves(&o.gnp_leaves).expect("validated")),
            ),
            gnp_params(o),
        ),
        "gnp_undirected" => (
            Box::new(
                GnpUndirected::new(o.n, o.p)
                    .with_seed(o.seed)
                    .with_chunks(o.chunks)
                    .with_leaves(gnp_leaves(&o.gnp_leaves).expect("validated")),
            ),
            gnp_params(o),
        ),
        "rgg2d" => {
            let r = o.r.unwrap_or_else(|| Rgg2d::threshold_radius(o.n, 1));
            (
                Box::new(Rgg2d::new(o.n, r).with_seed(o.seed).with_chunks(o.chunks)),
                format!("n={} r={r}", o.n),
            )
        }
        "rgg3d" => {
            let r = o.r.unwrap_or_else(|| Rgg3d::threshold_radius(o.n, 1));
            (
                Box::new(Rgg3d::new(o.n, r).with_seed(o.seed).with_chunks(o.chunks)),
                format!("n={} r={r}", o.n),
            )
        }
        "rdg2d" => (
            Box::new(Rdg2d::new(o.n).with_seed(o.seed).with_chunks(o.chunks)),
            format!("n={}", o.n),
        ),
        "rdg3d" => (
            Box::new(Rdg3d::new(o.n).with_seed(o.seed).with_chunks(o.chunks)),
            format!("n={}", o.n),
        ),
        "rhg" => (
            Box::new(
                Rhg::new(o.n, o.d, o.gamma)
                    .with_seed(o.seed)
                    .with_chunks(o.chunks),
            ),
            format!("n={} d={} gamma={}", o.n, o.d, o.gamma),
        ),
        "srhg" => (
            Box::new(
                Srhg::new(o.n, o.d, o.gamma)
                    .with_seed(o.seed)
                    .with_chunks(o.chunks),
            ),
            format!("n={} d={} gamma={}", o.n, o.d, o.gamma),
        ),
        "soft-rhg" => (
            Box::new(
                SoftRhg::new(o.n, o.d, o.gamma, o.temperature)
                    .with_seed(o.seed)
                    .with_chunks(o.chunks),
            ),
            format!("n={} d={} gamma={} T={}", o.n, o.d, o.gamma, o.temperature),
        ),
        "ba" => (
            Box::new(
                BarabasiAlbert::new(o.n, o.d as u64)
                    .with_seed(o.seed)
                    .with_chunks(o.chunks),
            ),
            format!("n={} d={}", o.n, o.d as u64),
        ),
        "rmat" => {
            let scale = rmat_scale(o);
            let (kernel, levels) = rmat_config(o);
            let gen = Rmat::new(scale, o.m)
                .with_seed(o.seed)
                .with_chunks(o.chunks);
            let gen = match kernel {
                "plain" => gen.with_kernel(RmatKernel::Plain),
                "table" => gen.with_kernel(RmatKernel::Table { levels }),
                _ => gen.with_kernel(RmatKernel::Linear { levels }),
            };
            (Box::new(gen), rmat_params(o))
        }
        "sbm" => (
            Box::new(
                StochasticBlockModel::planted(o.n, o.blocks, o.p_in, o.p_out)
                    .with_seed(o.seed)
                    .with_chunks(o.chunks),
            ),
            format!(
                "n={} blocks={} p_in={} p_out={}",
                o.n, o.blocks, o.p_in, o.p_out
            ),
        ),
        _ => usage(),
    };
    (gen, params)
}

fn print_stats(el: &EdgeList, directed: bool, gen_time: std::time::Duration) {
    if directed {
        let s = DegreeStats::directed(el);
        info!(
            "n = {}, m = {}, in-deg {}/{:.2}/{}, out-deg {}/{:.2}/{}, generated in {:.3}s",
            el.n,
            el.edges.len(),
            s.in_deg.min,
            s.in_deg.mean,
            s.in_deg.max,
            s.out_deg.min,
            s.out_deg.mean,
            s.out_deg.max,
            gen_time.as_secs_f64()
        );
    } else {
        let deg = DegreeStats::undirected(el);
        info!(
            "n = {}, m = {}, degrees {}/{:.2}/{}, generated in {:.3}s",
            el.n,
            el.edges.len(),
            deg.min,
            deg.mean,
            deg.max,
            gen_time.as_secs_f64()
        );
    }
}

/// Materializing mode: generate, merge in RAM, write one file.
fn run_materialized(o: &Options) {
    let (gen, _params) = build_generator(o);
    let gen_span = trace::span("materialize.generate");
    let baseline = CountingAlloc::reset_peak();
    let gen = gen.as_ref();
    let el = if gen.directed() {
        let parts = generate_parallel(gen, o.threads);
        let mut edges: Vec<(u64, u64)> = parts.into_iter().flat_map(|p| p.edges).collect();
        edges.sort_unstable();
        EdgeList::new(gen.num_vertices(), edges)
    } else {
        let parts = generate_parallel(gen, o.threads);
        merge_pe_edges(gen.num_vertices(), parts.into_iter().map(|p| p.edges))
    };
    let gen_time = std::time::Duration::from_secs_f64(gen_span.finish());
    ALLOC_PEAK_GENERATE.record_peak(CountingAlloc::peak_above(baseline));

    if o.stats {
        print_stats(&el, gen.directed(), gen_time);
    }

    let format = o.format.as_deref().unwrap_or("edge-list");
    let write = |w: &mut dyn Write, el: &EdgeList| match format {
        "edge-list" => write_edge_list(w, el),
        "metis" => write_metis(w, el),
        "binary" => write_binary(w, el),
        "compressed" => write_compressed(w, el),
        _ => usage(),
    };
    let write_span = trace::span("materialize.write");
    match &o.output {
        Some(path) => {
            let mut f = std::fs::File::create(path).expect("cannot create output file");
            write(&mut f, &el).expect("write failed");
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            write(&mut lock, &el).expect("write failed");
        }
    }
    drop(write_span);
}

/// Streaming mode: shard files + manifest; optional external merge.
/// No full edge vector exists at any point.
fn run_stream(o: &Options) {
    let Some(shard_dir) = &o.shard_dir else {
        eprintln!("kagen stream: --shard-dir is required");
        std::process::exit(2);
    };
    let format = match o.format.as_deref() {
        None => ShardFormat::Compressed,
        Some(name) => ShardFormat::parse(name).unwrap_or_else(|| {
            eprintln!("kagen stream: unknown shard format '{name}'");
            std::process::exit(2);
        }),
    };
    // Merge-mode/-o combinations were already rejected in `validate`.
    let merge = o.merge.as_deref().unwrap_or("none");
    let merge_budget = o.merge_budget.unwrap_or(1 << 22);
    let (gen, params) = build_generator(o);
    let meta = InstanceMeta {
        model: o.model.clone(),
        params,
        seed: o.seed,
    };
    let cfg = StreamConfig::new(shard_dir, format).with_threads(o.threads);

    // kagen-lint: allow(d2) -- CLI progress reporting on stderr; shard bytes and
    // manifest content never include wall-clock values
    let run_started = std::time::Instant::now();
    let baseline = CountingAlloc::reset_peak();
    let write_span = trace::span("stream.write_shards");
    let manifest = kagen_repro::pipeline::write_sharded(gen.as_ref(), &meta, &cfg)
        .expect("shard write failed");
    let write_secs = write_span.finish();
    ALLOC_PEAK_GENERATE.record_peak(CountingAlloc::peak_above(baseline));
    info!(
        "wrote {} shards, {} edges, format {} -> {} in {:.3}s",
        manifest.chunks, manifest.edges, manifest.format, shard_dir, write_secs
    );

    if merge == "external" {
        // Merge; with --stats, tee a degree accumulator off the merge
        // output so the shards are read only once and the reported
        // degrees are the canonical instance's.
        let reader = ShardReader::open(shard_dir).expect("cannot open shard dir");
        let dir = PathBuf::from(shard_dir);
        let out_path = o.output.clone().unwrap_or_else(|| {
            dir.join(format!("merged.{}", format.extension()))
                .to_string_lossy()
                .into_owned()
        });
        let file = std::io::BufWriter::new(
            std::fs::File::create(&out_path).expect("cannot create merged output"),
        );
        let out_sink: Box<dyn EdgeSink> = match format {
            ShardFormat::EdgeList => Box::new(TextSink::new(file)),
            ShardFormat::Binary => Box::new(BinarySink::new(file)),
            ShardFormat::Compressed => {
                Box::new(CompressedSink::new(file, manifest.n).expect("merged header write failed"))
            }
        };
        let baseline = CountingAlloc::reset_peak();
        let merge_span = trace::span("stream.merge");
        let mut merger = ExternalMerge::new(dir.join("runs"), merge_budget).with_threads(o.threads);
        if let Some(fan_in) = o.merge_fan_in {
            merger = merger.with_fan_in(fan_in);
        }
        let mut sink = TeeSink::new(
            out_sink,
            o.stats
                .then(|| DegreeStatsSink::new(manifest.n, manifest.directed)),
        );
        let stats = merger
            .merge(&reader, &mut sink)
            .expect("external merge failed");
        sink.finish().expect("merged output flush failed");
        let merge_secs = merge_span.finish();
        ALLOC_PEAK_MERGE.record_peak(CountingAlloc::peak_above(baseline));
        info!(
            "external merge: {} edges in, {} out, {} runs, peak buffer {} edges, {:.3}s -> {}",
            stats.edges_in, stats.edges_out, stats.runs, stats.max_buffered, merge_secs, out_path
        );
        if let Some(deg) = &sink.b {
            print_degree_summary(
                manifest.n,
                stats.edges_out,
                deg,
                "canonical merged instance",
            );
        }
    } else if o.stats {
        // No merge requested: stream the shards back through a degree
        // accumulator — O(n) counters, still no edge vector (and a
        // checksum validation pass for free).
        let reader = ShardReader::open(shard_dir).expect("cannot open shard dir");
        let mut deg = DegreeStatsSink::new(manifest.n, manifest.directed);
        reader
            .stream(&mut |u, v| deg.accept(u, v))
            .expect("shard read-back failed");
        let label = if manifest.directed {
            "per-PE streams"
        } else {
            "per-PE streams, cross-PE duplicates included"
        };
        print_degree_summary(manifest.n, manifest.edges, &deg, label);
    }

    // Stream mode is a single-process run: report it as one "rank"
    // covering every PE, so the metrics file has the same shape as a
    // launch-mode federation and the same sum invariant (rank edges ==
    // manifest edges).
    if let Some(path) = &o.metrics_out {
        ALLOC_LIVE_END.set(CountingAlloc::live());
        let wall_us = (run_started.elapsed().as_secs_f64() * 1e6) as u64;
        let rank = RankMetrics {
            rank: 0,
            pe_begin: 0,
            pe_end: manifest.chunks,
            edges: manifest.edges,
            wall_us,
            attempts: 1,
            counters: kagen_obs::metrics::scalars(),
            histograms: kagen_obs::metrics::histograms()
                .into_iter()
                .map(|(n, h)| (n.to_string(), h))
                .collect(),
        };
        RunMetrics::federate(&manifest, vec![rank], wall_us)
            .save(Path::new(path))
            .expect("cannot write metrics file");
        kagen_obs::debug!("metrics -> {path}");
    }
}

/// Print a `--stats` line for a streamed degree accumulator.
fn print_degree_summary(n: u64, m: u64, deg: &DegreeStatsSink, label: &str) {
    let (first, second) = deg.stats();
    match second {
        Some(in_deg) => info!(
            "n = {n}, m = {m}, in-deg {}/{:.2}/{}, out-deg {}/{:.2}/{} ({label})",
            in_deg.min, in_deg.mean, in_deg.max, first.min, first.mean, first.max,
        ),
        None => info!(
            "n = {n}, m = {m}, degrees {}/{:.2}/{} ({label})",
            first.min, first.mean, first.max,
        ),
    }
}

/// The worker-facing flags that re-create this generator in a child
/// process: every model parameter plus seed, chunks, format, threads and
/// the shard directory. Extra model flags are harmless — the parser
/// accepts the full union and `build_generator` reads what the model
/// needs.
fn worker_args(o: &Options, shard_dir: &str, format: ShardFormat) -> Vec<String> {
    let mut args: Vec<String> = vec![
        o.model.clone(),
        "-n".into(),
        o.n.to_string(),
        "-m".into(),
        o.m.to_string(),
        "-p".into(),
        o.p.to_string(),
        "-d".into(),
        o.d.to_string(),
        "-g".into(),
        o.gamma.to_string(),
        "-T".into(),
        o.temperature.to_string(),
        "-b".into(),
        o.blocks.to_string(),
        "--p-in".into(),
        o.p_in.to_string(),
        "--p-out".into(),
        o.p_out.to_string(),
        // Kernel and levels are passed *resolved* (auto levels pinned on
        // the coordinator), so workers rebuild the identical instance
        // even if their host reports a different cache size.
        "--rmat-kernel".into(),
        rmat_config(o).0.into(),
        "--rmat-levels".into(),
        rmat_config(o).1.to_string(),
        "--gnp-leaves".into(),
        o.gnp_leaves.clone(),
        "-s".into(),
        o.seed.to_string(),
        "-c".into(),
        o.chunks.to_string(),
        "-t".into(),
        o.threads.max(1).to_string(),
        "-f".into(),
        format.name().into(),
        "--shard-dir".into(),
        shard_dir.into(),
    ];
    if let Some(r) = o.r {
        args.push("-r".into());
        args.push(r.to_string());
    }
    // Telemetry pass-through: workers inherit the coordinator's
    // verbosity; `--metrics-out` asks every rank for a metrics sidecar,
    // `--trace-out` for a span sidecar (both federated by the
    // coordinator afterwards), and `--progress`/`--stall-timeout` for
    // the heartbeat file the coordinator polls.
    if o.metrics_out.is_some() {
        args.push("--metrics-sidecar".into());
    }
    if o.trace_out.is_some() {
        args.push("--trace-sidecar".into());
    }
    if o.progress.is_some() || o.stall_timeout.is_some() {
        args.push("--heartbeat".into());
    }
    for _ in 0..o.verbosity.unsigned_abs() {
        args.push(if o.verbosity > 0 { "-v" } else { "-q" }.into());
    }
    args
}

/// Coordinator mode: plan ranks, spawn `kagen worker` children, keep the
/// ledger, federate the manifest. See `kagen_cluster` for the library
/// behind this.
fn run_launch(o: &Options) {
    let shard_dir = o.shard_dir.as_deref().expect("validated");
    let format = o
        .format
        .as_deref()
        .map(|name| ShardFormat::parse(name).expect("validated"))
        .unwrap_or(ShardFormat::Compressed);
    let workers = o.workers.unwrap_or_else(|| {
        // kagen-lint: allow(d2) -- default worker count partitions PEs across
        // processes only; shards + federated manifest are worker-count-invariant (CI cmp)
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let (gen, params) = build_generator(o);
    let meta = InstanceMeta {
        model: o.model.clone(),
        params,
        seed: o.seed,
    };
    let header = meta.header(gen.as_ref(), format);
    let exe = std::env::current_exe().expect("cannot locate own binary for re-exec");
    let runner = kagen_repro::cluster::ProcessRunner {
        exe,
        worker_args: worker_args(o, shard_dir, format),
        dir: PathBuf::from(shard_dir),
        stall_timeout: o.stall_timeout.map(std::time::Duration::from_secs_f64),
    };
    let validate = if o.no_validate {
        kagen_repro::cluster::ValidateMode::None
    } else {
        o.validate
            .as_deref()
            .map(|name| kagen_repro::cluster::ValidateMode::parse(name).expect("validated"))
            .unwrap_or_default()
    };
    let opts = kagen_repro::cluster::LaunchOptions {
        workers,
        resume: o.resume,
        validate,
        retries: o.retries.unwrap_or(0),
        progress: o.progress.map(std::time::Duration::from_secs_f64),
        ..Default::default()
    };
    let launch_span = trace::span("launch.total");
    match kagen_repro::cluster::launch(Path::new(shard_dir), &header, &opts, &runner) {
        Ok(report) => {
            let wall = launch_span.finish();
            // Keep this line machine-parseable: the integration tests
            // and CI assert on `regenerated=[..] reused=N` (the logger
            // supplies the `kagen launch: ` prefix).
            info!(
                "{} ranks spawned, regenerated={:?} reused={} -> {} edges, \
                 federated manifest in {wall:.3}s",
                report.spawned.len(),
                report.regenerated_pes,
                report.reused_shards,
                report.manifest.edges,
            );
            if let Some(path) = &o.metrics_out {
                ALLOC_LIVE_END.set(CountingAlloc::live());
                let wall_us = (wall * 1e6) as u64;
                RunMetrics::federate(&report.manifest, report.rank_metrics, wall_us)
                    .save(Path::new(path))
                    .expect("cannot write metrics file");
                kagen_obs::debug!("metrics -> {path}");
            }
            // The launch trace is the federated cross-rank timeline —
            // coordinator spans plus every worker sidecar realigned onto
            // this process's clock (`main` skips its generic trace write
            // for launch mode).
            if let Some(path) = &o.trace_out {
                kagen_repro::cluster::trace::write_federated_chrome_trace(
                    Path::new(path),
                    &report.rank_traces,
                )
                .expect("cannot write trace file");
                kagen_obs::debug!(
                    "federated trace -> {path} ({} rank sidecars)",
                    report.rank_traces.len()
                );
            }
        }
        Err(e) => {
            kagen_obs::error!("{e}");
            std::process::exit(1);
        }
    }
}

/// Worker mode: generate one contiguous PE range into shard files plus a
/// partial manifest. Spawned by `kagen launch`; usable by hand for
/// running ranks on separate machines over a shared filesystem.
fn run_worker(o: &Options) {
    let shard_dir = o.shard_dir.as_deref().expect("validated");
    let format = o
        .format
        .as_deref()
        .map(|name| ShardFormat::parse(name).expect("validated"))
        .unwrap_or(ShardFormat::Compressed);
    let (a, b) = o.pe_range.expect("validated");
    let (gen, _params) = build_generator(o);
    let inject = kagen_repro::cluster::FailureInjection::from_env();
    // Liveness: a background thread samples the obs counters and
    // publishes part-<a>-<b>.heartbeat.json on every advance. Dropping
    // the publisher (after generation) flushes one final beat.
    let publisher = o
        .heartbeat
        .then(|| {
            kagen_repro::cluster::HeartbeatPublisher::spawn(
                shard_dir,
                a as u64,
                b as u64,
                kagen_repro::cluster::HEARTBEAT_INTERVAL,
            )
        })
        .transpose()
        .expect("cannot start heartbeat publisher");
    let work_span = trace::span("worker.generate");
    match kagen_repro::cluster::run_worker(
        gen.as_ref(),
        Path::new(shard_dir),
        format,
        a..b,
        o.threads.max(1),
        inject,
    ) {
        Ok(shards) => {
            let secs = work_span.finish();
            drop(publisher);
            if o.metrics_sidecar {
                kagen_repro::cluster::metrics::write_sidecar(
                    Path::new(shard_dir),
                    a as u64,
                    b as u64,
                )
                .expect("cannot write metrics sidecar");
            }
            if o.trace_sidecar {
                kagen_repro::cluster::trace::write_sidecar(
                    Path::new(shard_dir),
                    a as u64,
                    b as u64,
                )
                .expect("cannot write trace sidecar");
            }
            // Standalone telemetry (hand-run ranks on separate
            // machines): the same sidecar-shaped documents, at paths of
            // the operator's choosing.
            if let Some(path) = &o.metrics_out {
                kagen_repro::cluster::metrics::write_sidecar_to(Path::new(path))
                    .expect("cannot write metrics file");
                kagen_obs::debug!("metrics -> {path}");
            }
            if let Some(path) = &o.trace_out {
                std::fs::write(path, kagen_repro::cluster::trace::sidecar_json())
                    .expect("cannot write trace file");
                kagen_obs::debug!("trace -> {path}");
            }
            let edges: u64 = shards.iter().map(|s| s.edges).sum();
            info!(
                "PEs {a}..{b} -> {} shards, {edges} edges in {secs:.3}s",
                shards.len(),
            );
        }
        Err(e) => {
            kagen_obs::error!("{e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let o = parse();
    // Environment first, flags win: KAGEN_LOG sets the default and
    // -v/-q shift from Info.
    kagen_obs::log::init_from_env();
    if o.verbosity != 0 {
        kagen_obs::log::set_level(
            match (kagen_obs::Level::Info as i32 + o.verbosity).clamp(0, 4) {
                0 => kagen_obs::Level::Error,
                1 => kagen_obs::Level::Warn,
                2 => kagen_obs::Level::Info,
                3 => kagen_obs::Level::Debug,
                _ => kagen_obs::Level::Trace,
            },
        );
    }
    let prefix = match o.mode {
        Mode::Materialize => "kagen".to_string(),
        Mode::Stream => "kagen stream".to_string(),
        Mode::Launch => "kagen launch".to_string(),
        // The rank id lives in the prefix so every line of a worker —
        // library warnings included — is attributable in the
        // coordinator's interleaved stderr.
        Mode::Worker => match o.rank {
            Some(r) => format!("kagen worker rank {r}"),
            None => "kagen worker".to_string(),
        },
    };
    kagen_obs::log::set_prefix(&prefix);
    // Telemetry is strictly off by default: a relaxed atomic load is
    // the only cost on the hot paths, and enabling it never changes an
    // RNG stream or an output byte.
    // Heartbeats piggyback on the metric counters, so `--heartbeat`
    // implies metrics collection even without a metrics output.
    if o.metrics_out.is_some() || o.metrics_sidecar || o.heartbeat {
        kagen_obs::metrics::set_enabled(true);
    }
    if o.trace_out.is_some() || o.trace_sidecar {
        kagen_obs::trace::set_enabled(true);
    }
    match o.mode {
        Mode::Materialize => run_materialized(&o),
        Mode::Stream => run_stream(&o),
        Mode::Launch => run_launch(&o),
        Mode::Worker => run_worker(&o),
    }
    // Launch writes the federated timeline and a worker its sidecar
    // document inside their run functions; only the single-process
    // modes use the generic span dump.
    if let Some(path) = &o.trace_out {
        if matches!(o.mode, Mode::Materialize | Mode::Stream) {
            trace::write_chrome_trace(Path::new(path)).expect("cannot write trace file");
            kagen_obs::debug!(
                "trace -> {path} ({} events)",
                kagen_obs::trace::event_count()
            );
        }
    }
}
