//! Metrics registry: sharded counters, gauges, and log2 histograms.
//!
//! Handles are `const`-constructible statics that lazily self-register
//! on first update, so instrumented crates declare metrics next to the
//! code they measure with no init order to manage:
//!
//! ```
//! use kagen_obs::{metrics, Counter};
//!
//! static BATCHES: Counter = Counter::new("doc.batches");
//!
//! metrics::set_enabled(true);
//! BATCHES.add(1);
//! ```
//!
//! Everything is gated on one process-global flag (off by default): a
//! disabled update is a single relaxed load and an early return, and
//! callers only instrument batch/block-granular sites, so the disabled
//! cost is unmeasurable. Values are `u64` throughout — snapshots
//! serialize to integer-only JSON that the workspace's hand-rolled
//! parser (`kagen_pipeline::manifest::json`) can read back.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of counter shards; power of two so the thread index masks.
const SHARDS: usize = 8;

/// Number of histogram buckets: one for zero plus one per power of two.
pub const BUCKETS: usize = 65;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn metric recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether metric recording is currently on.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A registered metric: every handle type pushes itself here once.
enum MetricRef {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

static REGISTRY: Mutex<Vec<MetricRef>> = Mutex::new(Vec::new());

/// Per-thread shard index: threads round-robin onto `SHARDS` slots, so
/// concurrent `add`s from a thread pool mostly hit distinct cachelines.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: usize = NEXT.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
    }
    IDX.with(|i| *i)
}

/// An atomic counter sharded across cachelines.
#[repr(align(64))]
#[derive(Debug)]
struct Shard(AtomicU64);

/// A monotonically increasing sum, sharded to keep hot multi-threaded
/// sites (one `add` per 4096-edge batch across a rayon pool) from
/// bouncing a single cacheline.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    registered: AtomicBool,
    shards: [Shard; SHARDS],
}

impl Counter {
    /// A new counter handle; usable as a `static` initializer.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            registered: AtomicBool::new(false),
            shards: [const { Shard(AtomicU64::new(0)) }; SHARDS],
        }
    }

    /// Add `n`; no-op while metrics are disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.register();
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one; no-op while metrics are disabled.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Current sum across all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn register(&'static self) {
        if !self.registered.load(Ordering::Relaxed) && !self.registered.swap(true, Ordering::AcqRel)
        {
            REGISTRY.lock().unwrap().push(MetricRef::Counter(self));
        }
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time value with a high-water mark (e.g. live cache
/// points, live heap bytes). `set`/`add` track the peak automatically;
/// `record_peak` folds in an externally measured maximum.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    registered: AtomicBool,
    value: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// A new gauge handle; usable as a `static` initializer.
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            registered: AtomicBool::new(false),
            value: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Set the current value, raising the peak if exceeded.
    #[inline]
    pub fn set(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        self.register();
        self.value.store(v, Ordering::Relaxed);
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Increase the current value by `n`, raising the peak if exceeded.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.register();
        let v = self.value.fetch_add(n, Ordering::Relaxed) + n;
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Decrease the current value by `n` (saturating at zero).
    #[inline]
    pub fn sub(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.register();
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Fold an externally measured maximum into the peak without
    /// touching the current value.
    #[inline]
    pub fn record_peak(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        self.register();
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// High-water mark observed so far.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    fn register(&'static self) {
        if !self.registered.load(Ordering::Relaxed) && !self.registered.swap(true, Ordering::AcqRel)
        {
            REGISTRY.lock().unwrap().push(MetricRef::Gauge(self));
        }
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
        self.peak.store(0, Ordering::Relaxed);
    }
}

/// Bucket index for a recorded value: 0 holds zeros, bucket `k + 1`
/// holds `v` in `[2^k, 2^(k+1))`.
pub const fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Lower bound of bucket `i` (the smallest value it can hold).
pub const fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A log2-bucketed distribution (batch sizes, run lengths, per-rank
/// wall micros). 65 buckets cover the full `u64` range; `count` and
/// `sum` ride along so means survive federation.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    registered: AtomicBool,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    /// A new histogram handle; usable as a `static` initializer.
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            registered: AtomicBool::new(false),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    /// Record one observation; no-op while metrics are disabled.
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        self.register();
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Non-empty buckets as `(bucket index, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((i, c))
            })
            .collect()
    }

    fn register(&'static self) {
        if !self.registered.load(Ordering::Relaxed) && !self.registered.swap(true, Ordering::AcqRel)
        {
            REGISTRY.lock().unwrap().push(MetricRef::Histogram(self));
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A snapshot of one metric's state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter sum.
    Counter(u64),
    /// Gauge current value and high-water mark.
    Gauge {
        /// Last value set.
        value: u64,
        /// High-water mark.
        peak: u64,
    },
    /// Histogram totals plus its non-empty log2 buckets.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// `(bucket index, count)` for each non-empty bucket.
        buckets: Vec<(usize, u64)>,
    },
}

/// Snapshot every metric touched so far, sorted by name. Metrics that
/// were never updated (or only while disabled) are absent.
pub fn snapshot() -> Vec<(&'static str, MetricValue)> {
    let reg = REGISTRY.lock().unwrap();
    let mut out: Vec<(&'static str, MetricValue)> = reg
        .iter()
        .map(|m| match m {
            MetricRef::Counter(c) => (c.name, MetricValue::Counter(c.value())),
            MetricRef::Gauge(g) => (
                g.name,
                MetricValue::Gauge {
                    value: g.value(),
                    peak: g.peak(),
                },
            ),
            MetricRef::Histogram(h) => (
                h.name,
                MetricValue::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    buckets: h.nonzero_buckets(),
                },
            ),
        })
        .collect();
    out.sort_by_key(|(name, _)| *name);
    out
}

/// Counter snapshots only, sorted by name.
pub fn counters() -> Vec<(&'static str, u64)> {
    snapshot()
        .into_iter()
        .filter_map(|(n, v)| match v {
            MetricValue::Counter(c) => Some((n, c)),
            _ => None,
        })
        .collect()
}

/// Every touched metric flattened to sorted `(name, u64)` scalars:
/// counters as-is, gauges as their high-water mark (suffixed `.peak`),
/// histograms as `.count` and `.sum`. This is the flat list federated
/// into per-rank metric sidecars and run-wide metrics files — summing
/// a `.peak` entry across ranks bounds the run-wide peak from above.
pub fn scalars() -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for (name, v) in snapshot() {
        match v {
            MetricValue::Counter(c) => out.push((name.to_string(), c)),
            MetricValue::Gauge { peak, .. } => out.push((format!("{name}.peak"), peak)),
            MetricValue::Histogram { count, sum, .. } => {
                out.push((format!("{name}.count"), count));
                out.push((format!("{name}.sum"), sum));
            }
        }
    }
    out.sort();
    out
}

/// Zero every registered metric (registrations persist). For reusing
/// one process across measured regions — benches and tests.
pub fn reset() {
    let reg = REGISTRY.lock().unwrap();
    for m in reg.iter() {
        match m {
            MetricRef::Counter(c) => c.reset(),
            MetricRef::Gauge(g) => g.reset(),
            MetricRef::Histogram(h) => h.reset(),
        }
    }
}

/// A plain-data histogram snapshot: totals plus the sparse non-empty
/// log2 buckets, mergeable bucket-wise so distributions federate across
/// ranks without collapsing to count/sum.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// `(bucket index, count)` pairs, sorted by index, counts > 0.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Fold `other` into `self`: totals add, buckets merge index-wise.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        if other.buckets.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        merged.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, cb));
                        b.next();
                    } else {
                        merged.push((ia, ca + cb));
                        a.next();
                        b.next();
                    }
                }
                (Some(_), None) => {
                    merged.extend(a.by_ref().copied());
                    break;
                }
                (None, Some(_)) => {
                    merged.extend(b.by_ref().copied());
                    break;
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }

    /// Sum of all bucket counts; equals `count` for any snapshot built
    /// from a single histogram or merged from such snapshots.
    pub fn bucket_total(&self) -> u64 {
        self.buckets.iter().map(|&(_, c)| c).sum()
    }
}

/// Histogram snapshots only, sorted by name.
pub fn histograms() -> Vec<(&'static str, HistogramSnapshot)> {
    snapshot()
        .into_iter()
        .filter_map(|(n, v)| match v {
            MetricValue::Histogram {
                count,
                sum,
                buckets,
            } => Some((
                n,
                HistogramSnapshot {
                    count,
                    sum,
                    buckets,
                },
            )),
            _ => None,
        })
        .collect()
}

/// Append `s` to `out` as a JSON string literal (quotes included).
/// Public so sidecar/federation serializers in other crates emit
/// strings byte-compatibly with the metrics JSON here.
pub fn escape_json_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize the current snapshot as integer-only JSON:
///
/// ```json
/// {
///   "counters": {"gen.edges": 4096},
///   "gauges": {"geo.frontier": {"value": 0, "peak": 812}},
///   "histograms": {"sink.batch": {"count": 2, "sum": 6000,
///                                 "buckets": [{"bucket": 12, "count": 2}]}}
/// }
/// ```
///
/// Every value is an unsigned integer, so the output round-trips
/// through `kagen_pipeline::manifest::json::parse`.
pub fn to_json() -> String {
    snapshot_to_json(&snapshot())
}

/// Serialize an explicit snapshot (see [`to_json`]).
pub fn snapshot_to_json(snap: &[(&str, MetricValue)]) -> String {
    let mut counters = String::new();
    let mut gauges = String::new();
    let mut hists = String::new();
    for (name, v) in snap {
        match v {
            MetricValue::Counter(c) => {
                if !counters.is_empty() {
                    counters.push(',');
                }
                escape_json_into(&mut counters, name);
                counters.push_str(&format!(":{c}"));
            }
            MetricValue::Gauge { value, peak } => {
                if !gauges.is_empty() {
                    gauges.push(',');
                }
                escape_json_into(&mut gauges, name);
                gauges.push_str(&format!(":{{\"value\":{value},\"peak\":{peak}}}"));
            }
            MetricValue::Histogram {
                count,
                sum,
                buckets,
            } => {
                if !hists.is_empty() {
                    hists.push(',');
                }
                escape_json_into(&mut hists, name);
                hists.push_str(&format!(":{{\"count\":{count},\"sum\":{sum},\"buckets\":["));
                for (j, (i, c)) in buckets.iter().enumerate() {
                    if j > 0 {
                        hists.push(',');
                    }
                    hists.push_str(&format!("{{\"bucket\":{i},\"count\":{c}}}"));
                }
                hists.push_str("]}");
            }
        }
    }
    format!("{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{hists}}}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    // Metric state is process-global; serialize tests that assert on
    // exact values or toggle the enable flag.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_updates_are_noops() {
        static C: Counter = Counter::new("test.noop.counter");
        static G: Gauge = Gauge::new("test.noop.gauge");
        static H: Histogram = Histogram::new("test.noop.hist");
        let _g = locked();
        set_enabled(false);
        C.add(7);
        G.set(9);
        H.record(3);
        assert_eq!(C.value(), 0);
        assert_eq!(G.value(), 0);
        assert_eq!(G.peak(), 0);
        assert_eq!(H.count(), 0);
        // Never registered, so absent from the snapshot.
        assert!(!snapshot().iter().any(|(n, _)| n.starts_with("test.noop.")));
    }

    #[test]
    fn sharded_counter_merges_across_threads() {
        static C: Counter = Counter::new("test.sharded.counter");
        let _g = locked();
        set_enabled(true);
        C.reset();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        C.add(3);
                    }
                });
            }
        });
        assert_eq!(C.value(), 8 * 1000 * 3);
    }

    #[test]
    fn gauge_tracks_peak() {
        static G: Gauge = Gauge::new("test.gauge.peak");
        let _g = locked();
        set_enabled(true);
        G.reset();
        G.set(10);
        G.add(5);
        G.sub(12);
        assert_eq!(G.value(), 3);
        assert_eq!(G.peak(), 15);
        G.record_peak(100);
        assert_eq!(G.peak(), 100);
        assert_eq!(G.value(), 3);
        G.sub(1000); // saturates, never wraps
        assert_eq!(G.value(), 0);
    }

    #[test]
    fn histogram_bucketing() {
        // v = 0 -> bucket 0; v in [2^k, 2^(k+1)) -> bucket k + 1.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(4096), 13);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert!(bucket_of(u64::MAX) < BUCKETS);
        // Bucket lower bounds invert the mapping.
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_lo(1), 1);
        assert_eq!(bucket_lo(13), 4096);
        for v in [0u64, 1, 2, 3, 5, 100, 4096, u64::MAX] {
            let b = bucket_of(v);
            assert!(bucket_lo(b) <= v);
            if b + 1 < BUCKETS {
                assert!(v < bucket_lo(b + 1));
            }
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        static H: Histogram = Histogram::new("test.hist.record");
        let _g = locked();
        set_enabled(true);
        H.reset();
        for v in [0u64, 1, 1, 4096, 5000] {
            H.record(v);
        }
        assert_eq!(H.count(), 5);
        assert_eq!(H.sum(), 1 + 1 + 4096 + 5000);
        let buckets = H.nonzero_buckets();
        assert_eq!(buckets, vec![(0, 1), (1, 2), (13, 2)]);
    }

    #[test]
    fn snapshot_json_is_integer_only_and_sorted() {
        static C1: Counter = Counter::new("test.json.b");
        static C2: Counter = Counter::new("test.json.a");
        let _g = locked();
        set_enabled(true);
        C1.add(2);
        C2.add(1);
        let snap = snapshot();
        let names: Vec<_> = snap.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        let json = to_json();
        assert!(json.contains("\"test.json.a\":"));
        assert!(json.contains("\"test.json.b\":"));
        assert!(!json.contains('.') || !json.contains("e-"), "{json}");
    }

    #[test]
    fn histogram_snapshot_merges_bucket_wise() {
        let mut a = HistogramSnapshot {
            count: 3,
            sum: 10,
            buckets: vec![(0, 1), (5, 2)],
        };
        let b = HistogramSnapshot {
            count: 4,
            sum: 90,
            buckets: vec![(5, 1), (7, 3)],
        };
        a.merge(&b);
        assert_eq!(a.count, 7);
        assert_eq!(a.sum, 100);
        assert_eq!(a.buckets, vec![(0, 1), (5, 3), (7, 3)]);
        assert_eq!(a.bucket_total(), a.count);
        // Merging an empty snapshot is a no-op on buckets.
        let before = a.clone();
        a.merge(&HistogramSnapshot::default());
        assert_eq!(a, before);
        // Merging into an empty snapshot copies.
        let mut e = HistogramSnapshot::default();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn histograms_accessor_returns_live_snapshots() {
        static H: Histogram = Histogram::new("test.hist.accessor");
        let _g = locked();
        set_enabled(true);
        H.reset();
        H.record(12);
        H.record(100);
        let hs = histograms();
        let (_, snap) = hs
            .iter()
            .find(|(n, _)| *n == "test.hist.accessor")
            .expect("registered histogram must appear");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 112);
        assert_eq!(snap.bucket_total(), 2);
    }

    #[test]
    fn escape_json_handles_specials() {
        let mut s = String::new();
        escape_json_into(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
