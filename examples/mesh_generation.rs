//! Scientific-computing mesh generation with random Delaunay graphs.
//!
//! The paper motivates RDGs as "a good model for meshes as they are
//! frequently used in scientific computing" with periodic boundary
//! conditions (§2.1.4). This example generates a periodic triangle mesh,
//! verifies the structural invariants a solver would rely on, and writes
//! it out in METIS format for a graph partitioner.
//!
//! ```text
//! cargo run --release --example mesh_generation
//! ```

use kagen_repro::core::{generate_undirected, Rdg2d, Rdg3d};
use kagen_repro::graph::bfs::bfs_summary;
use kagen_repro::graph::components::is_connected;
use kagen_repro::graph::io::write_metis;
use kagen_repro::graph::{Csr, DegreeStats};

fn main() {
    let n: u64 = 15_000;
    let gen = Rdg2d::new(n).with_seed(99).with_chunks(16);
    let el = generate_undirected(&gen);

    // Torus triangulation invariants: 2-manifold without boundary means
    // E = 3n exactly (Euler characteristic 0) and min degree ≥ 3.
    let stats = DegreeStats::undirected(&el);
    println!("2D periodic Delaunay mesh: n = {n}, m = {}", el.edges.len());
    println!(
        "degree min/avg/max = {}/{:.3}/{}",
        stats.min, stats.mean, stats.max
    );
    assert_eq!(
        el.edges.len() as u64,
        3 * n,
        "torus triangulation must have exactly 3n edges"
    );
    assert!(stats.min >= 3, "simplicial mesh vertices have degree ≥ 3");
    assert!(is_connected(&el), "mesh must be a single component");

    // Mesh quality proxy: BFS eccentricity from a corner vertex scales
    // like sqrt(n) on a 2D mesh (unlike log n on expanders).
    let csr = Csr::undirected(&el);
    let (reached, ecc) = bfs_summary(&csr, 0);
    println!("BFS from vertex 0: reached {reached}, eccentricity {ecc}");
    assert_eq!(reached as u64, n);
    let sqrt_n = (n as f64).sqrt();
    assert!(
        (ecc as f64) > 0.3 * sqrt_n && (ecc as f64) < 3.0 * sqrt_n,
        "mesh diameter should scale like sqrt(n): ecc {ecc} vs sqrt(n) {sqrt_n:.0}"
    );

    // Write for a partitioner (e.g. METIS/KaHIP).
    let path = std::env::temp_dir().join("kagen_mesh.metis");
    let file = std::fs::File::create(&path).expect("create mesh file");
    write_metis(file, &el).expect("write mesh");
    println!("mesh written to {}", path.display());

    // A small 3D mesh: tetrahedral, mean degree ≈ 15.54 (Poisson–Delaunay).
    let n3: u64 = 3_000;
    let gen3 = Rdg3d::new(n3).with_seed(99).with_chunks(8);
    let el3 = generate_undirected(&gen3);
    let stats3 = DegreeStats::undirected(&el3);
    println!(
        "\n3D periodic Delaunay mesh: n = {n3}, m = {}, mean degree = {:.2} (theory ≈ 15.54)",
        el3.edges.len(),
        stats3.mean
    );
    assert!(
        (stats3.mean - 15.54).abs() < 1.0,
        "3D Poisson–Delaunay degree should be ≈ 15.54"
    );
}
