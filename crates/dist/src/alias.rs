//! Walker/Vose alias tables: O(k) construction, O(1) sampling from any
//! finite discrete distribution. Used by the multi-level R-MAT descent
//! tables (§9 "faster R-MAT"), where one alias draw replaces several
//! recursion levels.

use kagen_util::Rng64;

/// Precomputed alias table over `weights.len()` outcomes.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from non-negative weights (need not be normalized; at least
    /// one must be positive).
    pub fn new(weights: &[f64]) -> Self {
        let k = weights.len();
        assert!(k > 0, "alias table needs at least one outcome");
        assert!(k <= u32::MAX as usize, "too many outcomes");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative with positive sum"
        );
        // Vose's stable two-stack construction.
        let scale = k as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; k];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // Move the excess of l onto s's slot.
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are exactly 1 up to rounding.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no outcomes (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome index.
    #[inline]
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.next_below(self.prob.len() as u64) as usize;
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kagen_util::Mt64;

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[2.5]);
        let mut rng = Mt64::new(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn frequencies_match_weights() {
        let weights = [0.57, 0.19, 0.19, 0.05]; // Graph 500 quadrants
        let t = AliasTable::new(&weights);
        assert_eq!(t.len(), 4);
        let mut rng = Mt64::new(2);
        let reps = 400_000u64;
        let mut counts = [0u64; 4];
        for _ in 0..reps {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, (&c, &w)) in counts.iter().zip(&weights).enumerate() {
            let expect = reps as f64 * w;
            let sd = (reps as f64 * w * (1.0 - w)).sqrt();
            assert!(
                (c as f64 - expect).abs() < 6.0 * sd,
                "outcome {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn zero_weights_never_drawn() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 3.0]);
        let mut rng = Mt64::new(3);
        for _ in 0..10_000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3, "drew zero-weight outcome {s}");
        }
    }

    #[test]
    fn skewed_large_table() {
        // 4^6 outcomes with exponential skew, as the R-MAT tables build.
        let weights: Vec<f64> = (0..4096).map(|i| 0.999f64.powi(i)).collect();
        let t = AliasTable::new(&weights);
        let mut rng = Mt64::new(4);
        let mut first = 0u64;
        let reps = 200_000;
        for _ in 0..reps {
            if t.sample(&mut rng) == 0 {
                first += 1;
            }
        }
        let p0 = weights[0] / weights.iter().sum::<f64>();
        let expect = reps as f64 * p0;
        let sd = (reps as f64 * p0 * (1.0 - p0)).sqrt();
        assert!((first as f64 - expect).abs() < 6.0 * sd);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn all_zero_weights_panic() {
        AliasTable::new(&[0.0, 0.0]);
    }
}
