//! Deterministic per-cell point generation.
//!
//! Point coordinates inside a cell come from a PRNG seeded by the cell's
//! Morton rank: any PE regenerating a halo cell obtains bit-identical
//! points (§5.1 "the generation of these cells is done through
//! recomputations"). Vertex ids are made globally consistent by prefix
//! sums over leaf counts — but since ids must be derivable without
//! communication, we expose the *cell-local* index and let generators
//! combine `(cell, local index)` into an id scheme of their choosing.

use crate::grid::CellGrid;
use crate::point::Point;
use kagen_util::seed::stream;
use kagen_util::{derive_seed, Mt64, Rng64};

/// Generate the `count` points of cell `morton` (given its coords) into
/// `out`. Deterministic in `(seed, morton, count)`.
pub fn cell_points<const D: usize>(
    grid: &CellGrid<D>,
    seed: u64,
    morton: u64,
    count: u64,
    out: &mut Vec<Point<D>>,
) {
    let coords = grid.coords_of(morton);
    let (lo, _) = grid.cell_bounds(coords);
    let side = grid.cell_side();
    let mut rng = Mt64::new(derive_seed(seed, &[stream::POINT, morton]));
    out.reserve(count as usize);
    for _ in 0..count {
        let mut c = [0.0f64; D];
        for (i, ci) in c.iter_mut().enumerate() {
            *ci = lo[i] + side * rng.next_f64();
        }
        out.push(Point(c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_inside_cell() {
        let grid: CellGrid<2> = CellGrid::new(3);
        let mut pts = Vec::new();
        let morton = grid.morton_of([5, 2]);
        cell_points(&grid, 7, morton, 100, &mut pts);
        let (lo, hi) = grid.cell_bounds([5, 2]);
        for p in &pts {
            for i in 0..2 {
                assert!(p.0[i] >= lo[i] && p.0[i] < hi[i]);
            }
        }
    }

    #[test]
    fn deterministic_recomputation() {
        let grid: CellGrid<3> = CellGrid::new(2);
        let morton = grid.morton_of([1, 2, 3]);
        let mut a = Vec::new();
        let mut b = Vec::new();
        cell_points(&grid, 9, morton, 50, &mut a);
        cell_points(&grid, 9, morton, 50, &mut b);
        assert_eq!(a, b, "halo recomputation must be bit-identical");
    }

    #[test]
    fn different_cells_different_points() {
        let grid: CellGrid<2> = CellGrid::new(2);
        let mut a = Vec::new();
        let mut b = Vec::new();
        cell_points(&grid, 9, grid.morton_of([0, 0]), 10, &mut a);
        cell_points(&grid, 9, grid.morton_of([1, 0]), 10, &mut b);
        // Positions relative to their cells must differ (independent
        // streams), not just be translated copies.
        let rel_a: Vec<f64> = a.iter().map(|p| p.0[0] % 0.25).collect();
        let rel_b: Vec<f64> = b.iter().map(|p| p.0[0] % 0.25).collect();
        assert_ne!(rel_a, rel_b);
    }

    #[test]
    fn uniformity_within_cell() {
        let grid: CellGrid<2> = CellGrid::new(0); // single cell = unit square
        let mut pts = Vec::new();
        cell_points(&grid, 3, 0, 40_000, &mut pts);
        let mean_x: f64 = pts.iter().map(|p| p.0[0]).sum::<f64>() / pts.len() as f64;
        let mean_y: f64 = pts.iter().map(|p| p.0[1]).sum::<f64>() / pts.len() as f64;
        assert!((mean_x - 0.5).abs() < 0.01);
        assert!((mean_y - 0.5).abs() < 0.01);
    }
}
