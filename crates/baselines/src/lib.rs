//! # kagen-baselines
//!
//! Rust reimplementations of the competitors the paper evaluates against.
//! Each preserves the *algorithmic shape* that drives its cost profile
//! (see DESIGN.md, substitutions):
//!
//! * [`boost_er`] — Boost-style sequential Erdős–Rényi generator: skip
//!   sampling that *builds an adjacency-list graph structure*, hence the
//!   n-dependent running time visible in Fig. 6;
//! * [`holtgrewe_rgg`] — the communicating distributed RGG generator of
//!   Holtgrewe et al.: random points, redistribution to cell owners and a
//!   border-halo exchange over channels (O(n/P) communication volume —
//!   the cost KaGen eliminates, Fig. 9);
//! * [`nkgen_rhg`] — NkGen-style query-centric RHG: per-query live
//!   trigonometry, binary searches in sorted annuli, unstructured memory
//!   access (the slowest series of Fig. 14);
//! * [`hypergen_rhg`] — HyperGen-style streaming RHG: request sweep with a
//!   per-event priority queue, *without* the cell batching of sRHG.

pub mod boost_er;
pub mod holtgrewe_rgg;
pub mod hypergen_rhg;
pub mod nkgen_rhg;

pub use boost_er::{boost_gnm_directed, boost_gnm_undirected};
pub use holtgrewe_rgg::HoltgreweRgg;
pub use hypergen_rhg::hypergen_edges;
pub use nkgen_rhg::nkgen_edges;
