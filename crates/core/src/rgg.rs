//! Random geometric graphs in 2D and 3D (§5).
//!
//! `n` points uniform in `[0,1)^d`; vertices are adjacent iff their
//! Euclidean distance is at most `r`. The grid of cells with side
//! `max(r, n^{-1/d})` restricts candidate pairs to the 3^d neighborhood.
//!
//! Distribution: cells are ordered by Morton rank and grouped into
//! `2^(d·b)` chunks (aligned Morton ranges — i.e. sub-squares/cubes of
//! cells, assigned Z-order as in §5.1). A PE generates its own cells plus
//! the one-cell-deep *halo* around its chunk by recomputation; no
//! communication, and the recomputed points are bit-identical to their
//! owners' copies because the per-cell PRNG is seeded by the cell id.
//!
//! Vertex ids are global Morton-prefix sums over cell counts, derivable by
//! any PE in O(levels) per cell via the count tree.

use crate::{Generator, PeGraph};
use kagen_geometry::cell_points::cell_points;
use kagen_geometry::grid::levels_for_min_side;
use kagen_geometry::{CellGrid, CellRangeCursor, CountTree, FrontierCache, FrontierStats, Point};

/// Shared implementation for both dimensions.
#[derive(Clone, Debug)]
pub struct Rgg<const D: usize> {
    n: u64,
    radius: f64,
    seed: u64,
    chunk_levels: u32,
}

/// 2D random geometric graph.
pub type Rgg2d = Rgg<2>;
/// 3D random geometric graph.
pub type Rgg3d = Rgg<3>;

impl<const D: usize> Rgg<D> {
    /// `n` points, connection radius `radius`.
    pub fn new(n: u64, radius: f64) -> Self {
        assert!(D == 2 || D == 3);
        assert!(n >= 1);
        assert!(radius > 0.0 && radius < 1.0, "radius must be in (0,1)");
        Rgg {
            n,
            radius,
            seed: 1,
            chunk_levels: 2, // 2^(2·2)=16 chunks in 2D, 64 in 3D
        }
    }

    /// The usual connectivity-threshold radius
    /// `0.55 · (ln n / n)^{1/d} / P^{1/d}` scaled for `pes` (§8.4).
    pub fn threshold_radius(n: u64, pes: u64) -> f64 {
        let nf = (n as f64).max(2.0);
        0.55 * (nf.ln() / nf).powf(1.0 / D as f64) / (pes as f64).powf(1.0 / D as f64)
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Request ~`chunks` logical PEs; rounded to the next power of `2^d`
    /// and capped so every chunk contains at least one cell.
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks >= 1);
        let mut b = 0u32;
        while (1usize << (D as u32 * (b + 1))) <= chunks {
            b += 1;
        }
        self.chunk_levels = b;
        self
    }

    /// The cell grid: side `max(r, n^{-1/d})`, snapped to powers of two,
    /// at least as deep as the chunk refinement.
    fn grid(&self) -> CellGrid<D> {
        let natural = (self.n as f64).powf(-1.0 / D as f64);
        let min_side = self.radius.max(natural);
        let max_levels: u32 = if D == 2 { 24 } else { 16 };
        let levels = levels_for_min_side(min_side, max_levels);
        CellGrid::new(levels.max(self.effective_chunk_levels(levels)))
    }

    /// Chunk refinement cannot exceed grid refinement (a chunk must be a
    /// whole number of cells).
    fn effective_chunk_levels(&self, grid_levels: u32) -> u32 {
        self.chunk_levels.min(grid_levels)
    }

    fn count_tree(&self) -> (CellGrid<D>, CountTree<D>, u32) {
        let grid = self.grid();
        let tree = CountTree::<D>::new(self.seed, self.n, grid.levels());
        let b = self.effective_chunk_levels(grid.levels());
        (grid, tree, b)
    }

    /// The instance's cell grid and per-cell count tree. Exposed so
    /// accelerator backends (see `kagen-gpgpu`) generate against the exact
    /// same decomposition — the §5.3 GPU pipeline computes "seeds and
    /// vertex numbers for the cells [...] on the CPU" and must agree with
    /// the CPU generator bit-for-bit.
    pub fn instance_grid(&self) -> (CellGrid<D>, CountTree<D>) {
        let (grid, tree, _) = self.count_tree();
        (grid, tree)
    }

    /// The instance seed (for per-cell point regeneration).
    pub fn instance_seed(&self) -> u64 {
        self.seed
    }

    /// The PE's aligned Morton cell range `[lo, hi)`.
    fn cell_range(&self, grid: &CellGrid<D>, b: u32, pe: usize) -> (u64, u64) {
        let cells_per_chunk_bits = D as u32 * (grid.levels() - b);
        let lo = (pe as u64) << cells_per_chunk_bits;
        let hi = (pe as u64 + 1) << cells_per_chunk_bits;
        (lo, hi)
    }

    /// The cell-cursor streaming core: walk the PE's cells in Morton
    /// order, regenerate each cell's points on demand from
    /// `(seed, cell)`, and enumerate candidate pairs over the 3^d
    /// neighborhood. The frontier cache retains a neighbor cell only
    /// until the last center cell that can reference it has passed, so
    /// memory is bounded by the active cell neighborhood — never by the
    /// PE's edge count.
    ///
    /// The emitted stream is edge-for-edge identical to
    /// [`Generator::generate_pe`]'s `edges` (which is built on this very
    /// function): within-cell pairs first, then the 3^d neighbors in
    /// enumeration order; local–local cell pairs are processed once (at
    /// the smaller Morton rank), local–halo pairs always (the neighbor
    /// PE emits its own copy; merge deduplicates).
    pub(crate) fn stream_cells(&self, pe: usize, emit: &mut impl FnMut(u64, u64)) -> FrontierStats {
        let (grid, tree, b) = self.count_tree();
        let (lo, hi) = self.cell_range(&grid, b, pe);
        let cursor = CellRangeCursor::new(&grid, &tree, lo, hi);
        let r2 = self.radius * self.radius;
        let mut cache: FrontierCache<u64, (u64, Vec<Point<D>>)> = FrontierCache::new();
        let gen_cell = |cell: u64| {
            let count = tree.leaf_count(cell);
            let first = tree.prefix_before(cell);
            let mut pts = Vec::new();
            cell_points(&grid, self.seed, cell, count, &mut pts);
            (first, pts)
        };
        cursor.for_cells(&mut |cell, count, first| {
            cache.advance(cell);
            if count == 0 {
                return;
            }
            // The center's points leave the cache: once a cell has been
            // the center, no later center references it (pairs with
            // larger Morton neighbors were processed here and now).
            let (_, pts) = cache.take(cell, || {
                let mut pts = Vec::new();
                cell_points(&grid, self.seed, cell, count, &mut pts);
                (first, pts)
            });
            cache.note_external(pts.len() as u64);
            // Within-cell pairs.
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    if pts[i].dist2(&pts[j]) <= r2 {
                        emit(first + i as u64, first + j as u64);
                    }
                }
            }
            grid.for_neighbors(grid.coords_of(cell), false, &mut |ncoords, _| {
                let ncell = grid.morton_of(ncoords);
                if ncell == cell || (cursor.contains(ncell) && ncell < cell) {
                    return;
                }
                let retire = cursor.last_referencing_center(ncell);
                let (nfirst, npts) = cache.get(ncell, retire, || gen_cell(ncell));
                for (i, p) in pts.iter().enumerate() {
                    for (j, q) in npts.iter().enumerate() {
                        if p.dist2(q) <= r2 {
                            emit(first + i as u64, *nfirst + j as u64);
                        }
                    }
                }
            });
        });
        cache.stats()
    }

    /// Stream PE `pe`'s edges and report the frontier accounting — the
    /// hook the memory-regression tests use to prove the working set
    /// stays bounded by the cell neighborhood.
    pub fn stream_pe_instrumented(
        &self,
        pe: usize,
        emit: &mut impl FnMut(u64, u64),
    ) -> FrontierStats {
        self.stream_cells(pe, emit)
    }
}

impl<const D: usize> Generator for Rgg<D> {
    fn num_vertices(&self) -> u64 {
        self.n
    }

    fn num_chunks(&self) -> usize {
        let grid = self.grid();
        1usize << (D as u32 * self.effective_chunk_levels(grid.levels()))
    }

    fn directed(&self) -> bool {
        false
    }

    fn generate_pe(&self, pe: usize) -> PeGraph {
        let (grid, tree, b) = self.count_tree();
        let (lo, hi) = self.cell_range(&grid, b, pe);
        let cursor = CellRangeCursor::new(&grid, &tree, lo, hi);

        let mut out = PeGraph {
            pe,
            ..PeGraph::default()
        };
        out.vertex_begin = cursor.first_id();
        out.vertex_end = cursor.end_id();

        // Coordinates of local vertices (ids from the running Morton
        // prefix the cursor carries).
        cursor.for_cells(&mut |cell, count, first| {
            let mut pts = Vec::new();
            cell_points(&grid, self.seed, cell, count, &mut pts);
            for (k, p) in pts.iter().enumerate() {
                let id = first + k as u64;
                match D {
                    2 => out.coords2.push((id, [p.0[0], p.0[1]])),
                    3 => out.coords3.push((id, [p.0[0], p.0[1], p.0[2]])),
                    _ => unreachable!(),
                }
            }
        });

        // Edges through the identical cell-cursor walk the streaming
        // path uses — materializing changes the container, never the
        // stream.
        let mut edges = Vec::new();
        self.stream_cells(pe, &mut |u, v| edges.push((u, v)));
        out.edges = edges;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_parallel, generate_undirected};

    /// Brute-force reference: all-pairs distance check over the actual
    /// point set (reconstructed from the generator's own coordinates).
    fn brute_force(parts: &[PeGraph], n: u64, r: f64) -> Vec<(u64, u64)> {
        let mut pts: Vec<(u64, Vec<f64>)> = Vec::new();
        for p in parts {
            for &(id, c) in &p.coords2 {
                pts.push((id, c.to_vec()));
            }
            for &(id, c) in &p.coords3 {
                pts.push((id, c.to_vec()));
            }
        }
        pts.sort_by_key(|x| x.0);
        pts.dedup_by_key(|x| x.0);
        assert_eq!(pts.len() as u64, n, "every vertex must have coordinates");
        let mut edges = Vec::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let d2: f64 = pts[i]
                    .1
                    .iter()
                    .zip(&pts[j].1)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if d2 <= r * r {
                    edges.push((pts[i].0, pts[j].0));
                }
            }
        }
        edges.sort_unstable();
        edges
    }

    #[test]
    fn matches_brute_force_2d() {
        let gen = Rgg2d::new(400, 0.08).with_seed(3).with_chunks(16);
        let parts = generate_parallel(&gen, 0);
        let merged = generate_undirected(&gen);
        let reference = brute_force(&parts, 400, 0.08);
        assert_eq!(merged.edges, reference);
    }

    #[test]
    fn matches_brute_force_3d() {
        let gen = Rgg3d::new(300, 0.15).with_seed(5).with_chunks(8);
        let parts = generate_parallel(&gen, 0);
        let merged = generate_undirected(&gen);
        let reference = brute_force(&parts, 300, 0.15);
        assert_eq!(merged.edges, reference);
    }

    #[test]
    fn chunk_invariance() {
        // The instance (vertex ids AND edges) is identical for any chunking.
        let a = generate_undirected(&Rgg2d::new(500, 0.05).with_seed(7).with_chunks(1));
        let b = generate_undirected(&Rgg2d::new(500, 0.05).with_seed(7).with_chunks(16));
        let c = generate_undirected(&Rgg2d::new(500, 0.05).with_seed(7).with_chunks(64));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn vertex_ids_partition_range() {
        let gen = Rgg2d::new(1000, 0.03).with_seed(1).with_chunks(16);
        let parts = generate_parallel(&gen, 0);
        let mut ranges: Vec<(u64, u64)> = parts
            .iter()
            .map(|p| (p.vertex_begin, p.vertex_end))
            .collect();
        ranges.sort_unstable();
        assert_eq!(ranges[0].0, 0);
        assert_eq!(ranges.last().unwrap().1, 1000);
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0, "gaps/overlap in id ranges");
        }
    }

    #[test]
    fn expected_edge_count_2d() {
        // E[m] ≈ n²·π·r²/2 (interior approximation; generous tolerance for
        // the boundary deficit).
        let n = 4000u64;
        let r = 0.02;
        let el = generate_undirected(&Rgg2d::new(n, r).with_seed(11));
        let expect = (n as f64) * (n as f64) * std::f64::consts::PI * r * r / 2.0;
        let got = el.edges.len() as f64;
        assert!(
            got > 0.75 * expect && got < 1.1 * expect,
            "edges {got} vs expected {expect}"
        );
    }

    #[test]
    fn halo_recomputation_bit_identical() {
        // A vertex emitted with coordinates by its owner must induce the
        // same cross edges on the neighboring PE.
        let gen = Rgg2d::new(600, 0.09).with_seed(13).with_chunks(16);
        let parts = generate_parallel(&gen, 0);
        // Each cross edge (u local to A, v local to B) must appear in both
        // A's and B's output.
        use std::collections::HashSet;
        let owner = |id: u64| {
            parts
                .iter()
                .position(|p| (p.vertex_begin..p.vertex_end).contains(&id))
                .unwrap()
        };
        let sets: Vec<HashSet<(u64, u64)>> = parts
            .iter()
            .map(|p| p.edges.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect())
            .collect();
        for (pe, set) in sets.iter().enumerate() {
            for &(u, v) in set {
                let (ou, ov) = (owner(u), owner(v));
                if ou != ov {
                    let other = if ou == pe { ov } else { ou };
                    assert!(
                        sets[other].contains(&(u, v)),
                        "cross edge ({u},{v}) missing from PE {other}"
                    );
                }
            }
        }
    }

    #[test]
    fn isolated_regime() {
        // Tiny radius: few or no edges, but everything still consistent.
        let el = generate_undirected(&Rgg2d::new(100, 0.001).with_seed(2));
        assert!(el.edges.len() < 5);
        assert!(!el.has_out_of_range());
    }

    #[test]
    fn large_radius_regime() {
        // Radius close to the cube diagonal: nearly complete graph.
        let n = 60u64;
        let el = generate_undirected(&Rgg2d::new(n, 0.9).with_seed(4));
        let complete = n * (n - 1) / 2;
        assert!(
            el.edges.len() as u64 > complete * 8 / 10,
            "{} of {complete}",
            el.edges.len()
        );
    }
}
