//! Incremental Bowyer–Watson Delaunay tetrahedralization in 3D.
//!
//! Same scheme as [`crate::tri2`] one dimension up: super-tetrahedron,
//! visibility walk over facets, in-sphere cavity flood, boundary-facet fan.

use crate::predicates::{insphere3, orient3, Sign};
use std::collections::BTreeMap;

#[derive(Clone, Copy, Debug)]
struct Tet {
    v: [u32; 4], // positively oriented: orient3(v0,v1,v2,v3) == Positive
}

/// Faces of a positively oriented tet, each oriented so the omitted vertex
/// lies on the positive side (the tet interior side).
#[inline]
fn faces(v: [u32; 4]) -> [([u32; 3], u32); 4] {
    [
        ([v[0], v[1], v[2]], v[3]),
        ([v[0], v[3], v[1]], v[2]),
        ([v[0], v[2], v[3]], v[1]),
        ([v[1], v[3], v[2]], v[0]),
    ]
}

#[inline]
fn face_key(f: [u32; 3]) -> [u32; 3] {
    let mut k = f;
    k.sort_unstable();
    k
}

const INVALID: u32 = u32::MAX;

/// A 3D Delaunay tetrahedralization.
#[derive(Debug)]
pub struct Delaunay3 {
    pts: Vec<[f64; 3]>,
    n_input: usize,
    tets: Vec<Tet>,
    alive: Vec<bool>,
    /// Sorted face triple → the (up to two) incident tets.
    face_tets: BTreeMap<[u32; 3], [u32; 2]>,
    last: u32,
}

impl Delaunay3 {
    /// Tetrahedralize `points`. Duplicate points must not be present.
    pub fn new(points: &[[f64; 3]]) -> Self {
        let n = points.len();
        let mut pts = points.to_vec();
        let (mut lo, mut hi) = ([f64::MAX; 3], [f64::MIN; 3]);
        for p in points {
            for i in 0..3 {
                lo[i] = lo[i].min(p[i]);
                hi[i] = hi[i].max(p[i]);
            }
        }
        if n == 0 {
            lo = [0.0; 3];
            hi = [1.0; 3];
        }
        let c = [
            (lo[0] + hi[0]) / 2.0,
            (lo[1] + hi[1]) / 2.0,
            (lo[2] + hi[2]) / 2.0,
        ];
        let span = (hi[0] - lo[0])
            .max(hi[1] - lo[1])
            .max(hi[2] - lo[2])
            .max(1.0);
        let s = 64.0 * span;
        pts.push([c[0] - s, c[1] - s, c[2] - s]);
        pts.push([c[0] + 3.0 * s, c[1] - s, c[2] - s]);
        pts.push([c[0] - s, c[1] + 3.0 * s, c[2] - s]);
        pts.push([c[0] - s, c[1] - s, c[2] + 3.0 * s]);
        let (s0, s1, s2, s3) = (n as u32, n as u32 + 1, n as u32 + 2, n as u32 + 3);

        let mut dt = Delaunay3 {
            pts,
            n_input: n,
            tets: Vec::with_capacity(8 * n + 8),
            alive: Vec::with_capacity(8 * n + 8),
            face_tets: BTreeMap::new(),
            last: 0,
        };
        // Orient the super-tet positively.
        let mut sv = [s0, s1, s2, s3];
        if orient3(
            dt.pts[sv[0] as usize],
            dt.pts[sv[1] as usize],
            dt.pts[sv[2] as usize],
            dt.pts[sv[3] as usize],
        ) == Sign::Negative
        {
            sv.swap(0, 1);
        }
        dt.push_tet(sv);
        for i in 0..n as u32 {
            dt.insert(i);
        }
        dt
    }

    fn push_tet(&mut self, v: [u32; 4]) -> u32 {
        debug_assert_ne!(
            orient3(
                self.pts[v[0] as usize],
                self.pts[v[1] as usize],
                self.pts[v[2] as usize],
                self.pts[v[3] as usize],
            ),
            Sign::Negative,
            "inverted tetrahedron"
        );
        let id = self.tets.len() as u32;
        self.tets.push(Tet { v });
        self.alive.push(true);
        for (f, _) in faces(v) {
            let slot = self
                .face_tets
                .entry(face_key(f))
                .or_insert([INVALID, INVALID]);
            if slot[0] == INVALID {
                slot[0] = id;
            } else {
                debug_assert_eq!(slot[1], INVALID, "face shared by 3 tets");
                slot[1] = id;
            }
        }
        id
    }

    fn kill_tet(&mut self, t: u32) {
        self.alive[t as usize] = false;
        let v = self.tets[t as usize].v;
        for (f, _) in faces(v) {
            let key = face_key(f);
            if let Some(slot) = self.face_tets.get_mut(&key) {
                if slot[0] == t {
                    slot[0] = slot[1];
                    slot[1] = INVALID;
                } else if slot[1] == t {
                    slot[1] = INVALID;
                }
                if slot[0] == INVALID {
                    self.face_tets.remove(&key);
                }
            }
        }
    }

    fn neighbor(&self, t: u32, f: [u32; 3]) -> Option<u32> {
        let slot = self.face_tets.get(&face_key(f))?;
        if slot[0] == t {
            (slot[1] != INVALID).then_some(slot[1])
        } else if slot[1] == t {
            (slot[0] != INVALID).then_some(slot[0])
        } else {
            None
        }
    }

    fn locate(&self, p: [f64; 3]) -> u32 {
        let mut t = self.last;
        if !self.alive[t as usize] {
            t = self.alive.iter().position(|&a| a).expect("empty mesh") as u32;
        }
        let max_steps = 4 * self.tets.len() + 64;
        let mut steps = 0;
        'walk: loop {
            steps += 1;
            if steps > max_steps {
                break;
            }
            let v = self.tets[t as usize].v;
            for (f, _) in faces(v) {
                if orient3(
                    self.pts[f[0] as usize],
                    self.pts[f[1] as usize],
                    self.pts[f[2] as usize],
                    p,
                ) == Sign::Negative
                {
                    match self.neighbor(t, f) {
                        Some(next) => {
                            t = next;
                            continue 'walk;
                        }
                        None => break 'walk,
                    }
                }
            }
            return t;
        }
        // Fallback: exhaustive scan.
        for (i, tet) in self.tets.iter().enumerate() {
            if !self.alive[i] {
                continue;
            }
            let inside = faces(tet.v).iter().all(|(f, _)| {
                orient3(
                    self.pts[f[0] as usize],
                    self.pts[f[1] as usize],
                    self.pts[f[2] as usize],
                    p,
                ) != Sign::Negative
            });
            if inside {
                return i as u32;
            }
        }
        panic!("point {p:?} not inside the super-tetrahedron");
    }

    fn in_sphere(&self, t: u32, p: [f64; 3]) -> Sign {
        let v = self.tets[t as usize].v;
        insphere3(
            self.pts[v[0] as usize],
            self.pts[v[1] as usize],
            self.pts[v[2] as usize],
            self.pts[v[3] as usize],
            p,
        )
    }

    fn insert(&mut self, pi: u32) {
        let p = self.pts[pi as usize];
        let start = self.locate(p);

        let mut cavity = vec![start];
        let mut in_cavity = std::collections::BTreeSet::from([start]);
        let mut stack = vec![start];
        while let Some(t) = stack.pop() {
            let v = self.tets[t as usize].v;
            for (f, _) in faces(v) {
                if let Some(nb) = self.neighbor(t, f) {
                    if !in_cavity.contains(&nb) && self.in_sphere(nb, p) == Sign::Positive {
                        in_cavity.insert(nb);
                        cavity.push(nb);
                        stack.push(nb);
                    }
                }
            }
        }

        let mut boundary: Vec<[u32; 3]> = Vec::with_capacity(2 * cavity.len() + 4);
        for &t in &cavity {
            let v = self.tets[t as usize].v;
            for (f, _) in faces(v) {
                match self.neighbor(t, f) {
                    Some(nb) if in_cavity.contains(&nb) => {}
                    _ => boundary.push(f),
                }
            }
        }

        for &t in &cavity {
            self.kill_tet(t);
        }
        let mut last = 0;
        for f in boundary {
            last = self.push_tet([f[0], f[1], f[2], pi]);
        }
        self.last = last;
    }

    /// Number of input points.
    pub fn num_points(&self) -> usize {
        self.n_input
    }

    /// Coordinates of an input point.
    pub fn point(&self, i: usize) -> [f64; 3] {
        self.pts[i]
    }

    /// Is `i` a synthetic super-tetrahedron vertex?
    #[inline]
    pub fn is_super(&self, i: u32) -> bool {
        i as usize >= self.n_input
    }

    /// Finite tetrahedra (no super vertices).
    pub fn tetrahedra(&self) -> Vec<[u32; 4]> {
        self.tets
            .iter()
            .zip(&self.alive)
            .filter(|(_, &a)| a)
            .map(|(t, _)| t.v)
            .filter(|v| v.iter().all(|&i| !self.is_super(i)))
            .collect()
    }

    /// All alive tetrahedra including super-vertex ones.
    pub fn all_tetrahedra(&self) -> Vec<[u32; 4]> {
        self.tets
            .iter()
            .zip(&self.alive)
            .filter(|(_, &a)| a)
            .map(|(t, _)| t.v)
            .collect()
    }

    /// Undirected finite edges, deduplicated and sorted.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut edges = Vec::new();
        for t in self.tetrahedra() {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    let (a, b) = (t[i].min(t[j]), t[i].max(t[j]));
                    edges.push((a, b));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kagen_util::{Mt64, Rng64};

    fn random_points(n: usize, seed: u64) -> Vec<[f64; 3]> {
        let mut rng = Mt64::new(seed);
        (0..n)
            .map(|_| [rng.next_f64(), rng.next_f64(), rng.next_f64()])
            .collect()
    }

    fn assert_delaunay(pts: &[[f64; 3]], tets: &[[u32; 4]]) {
        for t in tets {
            let (a, b, c, d) = (
                pts[t[0] as usize],
                pts[t[1] as usize],
                pts[t[2] as usize],
                pts[t[3] as usize],
            );
            for (i, p) in pts.iter().enumerate() {
                if t.contains(&(i as u32)) {
                    continue;
                }
                assert_ne!(
                    insphere3(a, b, c, d, *p),
                    Sign::Positive,
                    "point {i} inside circumsphere of {t:?}"
                );
            }
        }
    }

    #[test]
    fn single_tet() {
        let pts = vec![
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ];
        let dt = Delaunay3::new(&pts);
        assert_eq!(dt.tetrahedra().len(), 1);
        assert_eq!(dt.edges().len(), 6);
    }

    #[test]
    fn delaunay_property_random() {
        for seed in [1u64, 2] {
            let pts = random_points(60, seed);
            let dt = Delaunay3::new(&pts);
            let tets = dt.tetrahedra();
            assert!(!tets.is_empty());
            assert_delaunay(&pts, &tets);
        }
    }

    #[test]
    fn all_points_used() {
        let pts = random_points(80, 3);
        let dt = Delaunay3::new(&pts);
        let mut used = [false; 80];
        for t in dt.tetrahedra() {
            for &v in &t {
                used[v as usize] = true;
            }
        }
        assert!(used.iter().all(|&u| u), "some point lost from the mesh");
    }

    #[test]
    fn volume_covers_hull_of_cube() {
        // 8 cube corners (fully degenerate: all cospherical). The mesh must
        // still tile the cube: total volume 1.
        let mut pts = Vec::new();
        for x in [0.0, 1.0] {
            for y in [0.0, 1.0] {
                for z in [0.0, 1.0] {
                    pts.push([x, y, z]);
                }
            }
        }
        let dt = Delaunay3::new(&pts);
        let vol: f64 = dt
            .tetrahedra()
            .iter()
            .map(|t| {
                let a = pts[t[0] as usize];
                let f = |p: [f64; 3]| [p[0] - a[0], p[1] - a[1], p[2] - a[2]];
                let (u, v, w) = (
                    f(pts[t[1] as usize]),
                    f(pts[t[2] as usize]),
                    f(pts[t[3] as usize]),
                );
                (u[0] * (v[1] * w[2] - v[2] * w[1]) - u[1] * (v[0] * w[2] - v[2] * w[0])
                    + u[2] * (v[0] * w[1] - v[1] * w[0]))
                    .abs()
                    / 6.0
            })
            .sum();
        assert!((vol - 1.0).abs() < 1e-9, "cube volume {vol}");
    }

    #[test]
    fn expected_edge_density() {
        // Poisson Delaunay in 3D has ≈ 15.54 edges per vertex (×1/2);
        // with boundary effects the per-vertex edge count for a small box
        // sits roughly in [6, 9].
        let pts = random_points(400, 7);
        let dt = Delaunay3::new(&pts);
        let per_vertex = dt.edges().len() as f64 / 400.0;
        assert!(
            (5.0..10.0).contains(&per_vertex),
            "edges per vertex {per_vertex}"
        );
    }
}
