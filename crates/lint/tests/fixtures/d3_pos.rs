// Fixture: D3 must fire — an RNG seeded with a hard-coded literal in a
// generator crate.
pub fn stream() -> u64 {
    let mut rng = Mt64::new(123456789);
    rng.next_u64()
}
