//! Boost-style sequential Erdős–Rényi generation.
//!
//! The Boost Graph Library's `erdos_renyi_iterator` yields edges by
//! geometric skip sampling (an Algorithm-D-like scheme), and the idiomatic
//! usage the paper benchmarks against materializes them into an
//! `adjacency_list` — per-vertex containers whose allocation/insertion
//! costs grow with `n` independent of `m`. That structure-building is
//! exactly why Boost's time-per-edge rises with `n` in Fig. 6 while
//! KaGen's stays flat: KaGen emits a plain edge list.
//!
//! This baseline deliberately stays on the *per-edge* skip path
//! ([`bernoulli_sample`], one `ln` per edge) — it is the comparison
//! point the block-batched skip kernel is measured against, so it must
//! keep paying the historical per-edge cost.

use kagen_graph::EdgeList;
use kagen_sampling::bernoulli_sample;
use kagen_util::Mt64;

/// Adjacency-list graph mimicking `boost::adjacency_list<vecS, vecS>`.
struct AdjacencyList {
    adj: Vec<Vec<u32>>,
}

impl AdjacencyList {
    fn new(n: u64) -> Self {
        // Boost allocates the vertex container up front.
        AdjacencyList {
            adj: vec![Vec::new(); n as usize],
        }
    }

    #[inline]
    fn add_edge(&mut self, u: u64, v: u64) {
        self.adj[u as usize].push(v as u32);
    }

    fn into_edge_list(self, n: u64) -> EdgeList {
        let mut edges = Vec::new();
        for (u, targets) in self.adj.into_iter().enumerate() {
            for v in targets {
                edges.push((u as u64, v as u64));
            }
        }
        EdgeList::new(n, edges)
    }
}

/// Directed G(n,m) the Boost way: Bernoulli-skip over the n² universe with
/// p = m/(n(n−1)), materialized into an adjacency list.
///
/// (Boost's generator is parameterized by probability; callers pass
/// m/universe, so the edge count is m only in expectation — faithful to
/// the benchmarked behavior.)
pub fn boost_gnm_directed(n: u64, m: u64, seed: u64) -> EdgeList {
    let universe = n * (n - 1);
    let mut graph = AdjacencyList::new(n);
    if universe > 0 && m > 0 {
        let p = m as f64 / universe as f64;
        let mut rng = Mt64::new(seed);
        bernoulli_sample(&mut rng, universe, p, &mut |idx| {
            let u = idx / (n - 1);
            let c = idx % (n - 1);
            let v = if c < u { c } else { c + 1 };
            graph.add_edge(u, v);
        });
    }
    graph.into_edge_list(n)
}

/// Undirected G(n,m) the Boost way: skip over the lower triangle.
pub fn boost_gnm_undirected(n: u64, m: u64, seed: u64) -> EdgeList {
    let universe = n * (n - 1) / 2;
    let mut graph = AdjacencyList::new(n);
    if universe > 0 && m > 0 {
        let p = m as f64 / universe as f64;
        let mut rng = Mt64::new(seed);
        bernoulli_sample(&mut rng, universe, p, &mut |t| {
            let (u, v) = kagen_core::er::triangle_index_to_pair(t as u128);
            // Boost inserts both directions for undirected graphs.
            graph.add_edge(u, v);
            graph.add_edge(v, u);
        });
    }
    let mut el = graph.into_edge_list(n);
    el.canonicalize();
    el
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_count_near_m() {
        let el = boost_gnm_directed(500, 10_000, 1);
        let m = el.edges.len() as f64;
        assert!((m - 10_000.0).abs() < 500.0, "m = {m}");
        assert!(!el.has_self_loops());
    }

    #[test]
    fn undirected_canonical() {
        let el = boost_gnm_undirected(300, 2_000, 2);
        for &(u, v) in &el.edges {
            assert!(u < v);
        }
        let m = el.edges.len() as f64;
        assert!((m - 2_000.0).abs() < 300.0, "m = {m}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            boost_gnm_directed(100, 500, 7).edges,
            boost_gnm_directed(100, 500, 7).edges
        );
    }

    #[test]
    fn degenerate() {
        assert_eq!(boost_gnm_directed(1, 0, 1).m(), 0);
        assert_eq!(boost_gnm_undirected(2, 0, 1).m(), 0);
    }
}
