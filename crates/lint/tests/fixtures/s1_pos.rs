// Fixture: S1 must fire — an unsafe block with no SAFETY comment.
pub fn read_first(v: &[u64]) -> u64 {
    unsafe { *v.as_ptr() }
}
