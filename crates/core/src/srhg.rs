//! The streaming, request-centric RHG generator sRHG (§7.2).
//!
//! sRHG inverts the neighborhood search of [`crate::rhg::Rhg`]: instead of
//! querying, every point *announces* a request interval
//! `[θ − Δθ(r, ℓ_j), θ + Δθ(r, ℓ_j)]` in each annulus `j` at or above its
//! own, and a sweep over each annulus matches nodes against the requests
//! active at their angle. Only points in lower annuli can be neighbors of
//! a node through a request, so requests propagate upward only.
//!
//! Annuli fall into two groups (§7.2):
//! * **global annuli** — the inner annuli whose widest own-annulus request
//!   exceeds a chunk width `2π/P` (including the `r ≤ R/2` clique); their
//!   points are generated redundantly on every PE (pseudorandomness makes
//!   the copies identical) and their requests are clipped to the local
//!   sector, so the work of high-degree vertices is spread over all PEs;
//! * **streaming annuli** — swept locally. A PE generates the streaming
//!   points of its sector extended by one chunk width on each side, which
//!   covers every request that can reach its nodes (the paper's *final
//!   phase* over the adjacent chunk, done symmetrically).
//!
//! The sweep batches insertion/expiry of requests per angular *cell*
//! (§7.2.1 batch processing). Point generation is shared with `Rhg`
//! through [`crate::rhg::common::RhgInstance`], so for equal seeds the two
//! generators emit the *identical* graph — asserted in tests.

use crate::rhg::common::RhgInstance;
use crate::{Generator, PeGraph};
use kagen_geometry::hyperbolic::PrePoint;

/// Random hyperbolic graph, streaming generator.
#[derive(Clone, Debug)]
pub struct Srhg {
    n: u64,
    avg_deg: f64,
    gamma: f64,
    seed: u64,
    chunks: usize,
}

/// One active request during the sweep.
#[derive(Clone, Copy, Debug)]
struct Request {
    begin: f64,
    end: f64,
    ann: usize,
    p: PrePoint,
}

/// Per-PE generation statistics (see [`Srhg::generate_pe_stats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct SrhgPeStats {
    /// Points generated in total (replicated globals + extended sector).
    /// This is *throughput*, not memory: a true streaming run emits them
    /// and lets them go.
    pub generated_points: u64,
    /// Peak *live* state of the sweep: replicated global points plus the
    /// largest simultaneous active-request window summed over annuli —
    /// the quantity that bounds sRHG's memory footprint (§7.2; Lemmas
    /// 15/17 bound exactly these two terms).
    pub peak_state: u64,
}

impl Srhg {
    /// `n` vertices, target average degree, power-law exponent γ > 2.
    pub fn new(n: u64, avg_deg: f64, gamma: f64) -> Self {
        Srhg {
            n,
            avg_deg,
            gamma,
            seed: 1,
            chunks: 8,
        }
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of logical PEs (angular sectors).
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks >= 1);
        self.chunks = chunks;
        self
    }

    /// Build the shared instance skeleton.
    pub fn instance(&self) -> RhgInstance {
        RhgInstance::new(self.n, self.avg_deg, self.gamma, self.seed)
    }

    /// First streaming annulus: all annuli below it are "global".
    fn first_streaming(inst: &RhgInstance, chunks: usize) -> usize {
        let width = std::f64::consts::TAU / chunks as f64;
        (0..inst.num_annuli())
            .find(|&i| {
                let b = inst.space.bounds[i].max(1e-12);
                2.0 * inst.space.delta_theta(b, b) <= width
            })
            .unwrap_or(inst.num_annuli())
    }
}

/// Split a possibly-wrapping interval into ≤ 2 subintervals of `[0, 2π)`
/// and keep those intersecting `[lo, hi)`.
fn clip_interval(a: f64, b: f64, lo: f64, hi: f64, out: &mut Vec<(f64, f64)>) {
    let tau = std::f64::consts::TAU;
    let push = |x: f64, y: f64, out: &mut Vec<(f64, f64)>| {
        if y >= lo && x < hi {
            out.push((x, y));
        }
    };
    if b - a >= tau {
        push(0.0, tau, out);
    } else if a < 0.0 {
        push(a + tau, tau, out);
        push(0.0, b, out);
    } else if b > tau {
        push(a, tau, out);
        push(0.0, b - tau, out);
    } else {
        push(a, b, out);
    }
}

impl Generator for Srhg {
    fn num_vertices(&self) -> u64 {
        self.n
    }

    fn num_chunks(&self) -> usize {
        self.chunks
    }

    fn directed(&self) -> bool {
        false
    }

    fn generate_pe(&self, pe: usize) -> PeGraph {
        self.generate_pe_stats(pe).0
    }
}

impl Srhg {
    /// Like [`Generator::generate_pe`], additionally returning
    /// [`SrhgPeStats`]. This implementation *emulates* the streaming sweep
    /// in memory (it materializes the tokens it would stream), so its own
    /// allocation is not the interesting number — `peak_state` reports
    /// what a true streaming run must hold, which is what the `abl-mem`
    /// experiment compares against the query-centric
    /// [`crate::rhg::Rhg::generate_pe_stats`] footprint.
    #[allow(clippy::needless_range_loop)] // annulus index feeds several arrays
    pub fn generate_pe_stats(&self, pe: usize) -> (PeGraph, SrhgPeStats) {
        let inst = self.instance();
        let tau = std::f64::consts::TAU;
        let width = tau / self.chunks as f64;
        let (lo, hi) = (width * pe as f64, width * (pe as f64 + 1.0));
        let cosh_r = inst.space.cosh_r;
        let first_stream = Self::first_streaming(&inst, self.chunks);

        let mut out = PeGraph {
            pe,
            ..PeGraph::default()
        };
        let mut edges: Vec<(u64, u64)> = Vec::new();

        // ---- Global phase -------------------------------------------------
        // All global-annulus points, regenerated on every PE.
        let mut globals: Vec<PrePoint> = Vec::new();
        for i in 0..first_stream {
            for c in 0..inst.ann_cells[i] {
                globals.extend(inst.cell_points(i, c));
            }
        }
        // Global–global pairs, distributed by angular ownership of the
        // smaller-id endpoint.
        for u in &globals {
            if u.theta < lo || u.theta >= hi {
                continue;
            }
            for w in &globals {
                if u.id < w.id && u.is_adjacent(w, cosh_r) {
                    edges.push((u.id, w.id));
                }
            }
        }

        // ---- Collect requests per streaming annulus ----------------------
        let annuli = inst.num_annuli();
        let mut requests: Vec<Vec<Request>> = vec![Vec::new(); annuli];
        let mut clipped = Vec::new();

        // Requests of global points, clipped to the local sector (this is
        // what spreads the work of hubs over all PEs).
        for u in &globals {
            let u_ann = {
                // Annulus from the radius (bounds are sorted).
                let mut a = 0;
                while a + 1 < annuli && inst.space.bounds[a + 1] < u.r {
                    a += 1;
                }
                a
            };
            for (j, reqs) in requests.iter_mut().enumerate().skip(first_stream) {
                if j < u_ann {
                    continue;
                }
                let dt = inst.space.delta_theta(u.r, inst.space.bounds[j].max(1e-12));
                clipped.clear();
                clip_interval(u.theta - dt, u.theta + dt, lo, hi, &mut clipped);
                for &(a, b) in &clipped {
                    reqs.push(Request {
                        begin: a,
                        end: b,
                        ann: u_ann,
                        p: *u,
                    });
                }
            }
        }

        // Streaming points of the extended sector (one chunk on each side:
        // the symmetric version of the paper's final phase).
        let mut generated_points = globals.len() as u64;
        let mut nodes: Vec<Vec<PrePoint>> = vec![Vec::new(); annuli];
        for i in first_stream..annuli {
            if inst.ann_counts[i] == 0 {
                continue;
            }
            let mut cells = Vec::new();
            inst.cells_overlapping(i, lo - width, hi + width, &mut |c| cells.push(c));
            for c in cells {
                let cell_pts = inst.cell_points(i, c);
                generated_points += cell_pts.len() as u64;
                for p in cell_pts {
                    // Nodes: owned sector only.
                    if p.theta >= lo && p.theta < hi {
                        nodes[i].push(p);
                    }
                    // Requests into every annulus at or above i.
                    for (j, reqs) in requests.iter_mut().enumerate().skip(i) {
                        let dt = inst.space.delta_theta(p.r, inst.space.bounds[j].max(1e-12));
                        clipped.clear();
                        clip_interval(p.theta - dt, p.theta + dt, lo, hi, &mut clipped);
                        for &(a, b) in &clipped {
                            reqs.push(Request {
                                begin: a,
                                end: b,
                                ann: i,
                                p,
                            });
                        }
                    }
                }
            }
        }

        // ---- Sweep each streaming annulus ---------------------------------
        let mut peak_active_total = 0u64;
        for j in first_stream..annuli {
            let reqs = &mut requests[j];
            let ns = &mut nodes[j];
            if ns.is_empty() || reqs.is_empty() {
                continue;
            }
            reqs.sort_by(|a, b| a.begin.total_cmp(&b.begin));
            ns.sort_by(|a, b| a.theta.total_cmp(&b.theta));
            let cell_w = inst.cell_width(j);
            let mut active: Vec<Request> = Vec::new();
            let mut max_active_j = 0u64;
            let mut next = 0usize;
            let mut current_cell = u64::MAX;
            for v in ns.iter() {
                // Batch compaction at cell boundaries (§7.2.1): expired
                // requests are dropped once per cell, not per node.
                let cell = (v.theta / cell_w) as u64;
                if cell != current_cell {
                    current_cell = cell;
                    let cell_lo = cell as f64 * cell_w;
                    active.retain(|r| r.end >= cell_lo);
                }
                while next < reqs.len() && reqs[next].begin <= v.theta {
                    active.push(reqs[next]);
                    next += 1;
                }
                max_active_j = max_active_j.max(active.len() as u64);
                for r in &active {
                    if r.end < v.theta {
                        continue; // expired within the cell
                    }
                    let u = &r.p;
                    if u.id == v.id {
                        continue;
                    }
                    // Emission rule: once globally per encounter direction.
                    let emit = if r.ann < j { true } else { u.id < v.id };
                    if emit && u.is_adjacent(v, cosh_r) {
                        edges.push((u.id.min(v.id), u.id.max(v.id)));
                    }
                }
            }
            // The interleaved sweep holds every annulus' window at once.
            peak_active_total += max_active_j;
        }

        // Local vertices: sector-owned points of every annulus.
        let mut locals: Vec<PrePoint> = Vec::new();
        for i in 0..first_stream {
            locals.extend(
                globals
                    .iter()
                    .filter(|p| p.theta >= lo && p.theta < hi)
                    .filter(|p| p.r >= inst.space.bounds[i] && p.r < inst.space.bounds[i + 1])
                    .copied(),
            );
        }
        for ns in &nodes {
            locals.extend(ns.iter().copied());
        }
        locals.sort_by_key(|p| p.id);
        locals.dedup_by_key(|p| p.id);
        for v in &locals {
            out.coords2.push((v.id, [v.r, v.theta]));
        }
        out.vertex_begin = locals.first().map_or(0, |p| p.id);
        out.vertex_end = locals.last().map_or(0, |p| p.id + 1);

        edges.sort_unstable();
        edges.dedup();
        out.edges = edges;
        let stats = SrhgPeStats {
            generated_points,
            peak_state: globals.len() as u64 + peak_active_total,
        };
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_undirected;
    use crate::rhg::Rhg;

    #[test]
    fn matches_query_centric_generator() {
        // Same instance skeleton + same adjacency rule ⇒ identical graphs.
        for &(n, deg, gamma, chunks) in &[
            (500u64, 8.0, 2.8, 4usize),
            (900, 6.0, 3.0, 8),
            (700, 12.0, 2.3, 5),
        ] {
            let srhg =
                generate_undirected(&Srhg::new(n, deg, gamma).with_seed(11).with_chunks(chunks));
            let rhg =
                generate_undirected(&Rhg::new(n, deg, gamma).with_seed(11).with_chunks(chunks));
            assert_eq!(
                srhg.edges, rhg.edges,
                "sRHG vs RHG mismatch at n={n}, γ={gamma}"
            );
        }
    }

    #[test]
    fn chunk_invariance() {
        let a = generate_undirected(&Srhg::new(800, 8.0, 2.9).with_seed(3).with_chunks(1));
        let b = generate_undirected(&Srhg::new(800, 8.0, 2.9).with_seed(3).with_chunks(8));
        let c = generate_undirected(&Srhg::new(800, 8.0, 2.9).with_seed(3).with_chunks(32));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn no_duplicate_edges_within_pe() {
        let gen = Srhg::new(600, 10.0, 2.5).with_seed(7).with_chunks(4);
        for pe in 0..4 {
            let part = gen.generate_pe(pe);
            let mut e = part.edges.clone();
            e.dedup();
            assert_eq!(e.len(), part.edges.len(), "PE {pe} emitted duplicates");
        }
    }

    #[test]
    fn clip_interval_cases() {
        let tau = std::f64::consts::TAU;
        let mut out = Vec::new();
        // Plain interval inside range.
        clip_interval(1.0, 2.0, 0.0, tau, &mut out);
        assert_eq!(out, vec![(1.0, 2.0)]);
        // Wrapping below zero.
        out.clear();
        clip_interval(-0.5, 0.5, 0.0, tau, &mut out);
        assert_eq!(out.len(), 2);
        // Wider than the circle.
        out.clear();
        clip_interval(-1.0, tau, 0.0, tau, &mut out);
        assert_eq!(out, vec![(0.0, tau)]);
        // Clipped away.
        out.clear();
        clip_interval(1.0, 2.0, 3.0, 4.0, &mut out);
        assert!(out.is_empty());
    }
}
