//! Geometric predicates with floating-point filters and double-double
//! fallback (Shewchuk-style two-stage evaluation).
//!
//! Stage A evaluates the determinant in plain `f64` and accepts the sign if
//! its magnitude exceeds a forward error bound on the computation. Stage B
//! re-evaluates in double-double arithmetic (exact differences, ~2⁻¹⁰⁴
//! relative product error) and applies a far smaller bound; results inside
//! that band are declared [`Sign::Zero`] — deterministically, so every PE
//! that replays a test reaches the same conclusion, which is all the
//! Bowyer–Watson construction needs for cross-PE consistency.

use crate::dd::{two_diff, Dd};

/// Sign of a predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sign {
    /// Determinant negative.
    Negative,
    /// Too close to call even in double-double: treated as degenerate.
    Zero,
    /// Determinant positive.
    Positive,
}

impl Sign {
    /// Map to -1 / 0 / 1.
    pub fn as_i32(self) -> i32 {
        match self {
            Sign::Negative => -1,
            Sign::Zero => 0,
            Sign::Positive => 1,
        }
    }
}

/// Stage-A error bound coefficients (slightly conservative versions of
/// Shewchuk's constants).
const ORIENT2_BOUND: f64 = 4e-16;
const INCIRCLE2_BOUND: f64 = 2e-15;
const ORIENT3_BOUND: f64 = 1e-15;
const INSPHERE3_BOUND: f64 = 4e-15;
/// Stage-B (double-double) relative tie band.
const DD_BOUND: f64 = 1e-28;

#[inline]
fn classify(det: f64, magnitude: f64, bound: f64) -> Option<Sign> {
    if det > bound * magnitude {
        Some(Sign::Positive)
    } else if det < -bound * magnitude {
        Some(Sign::Negative)
    } else {
        None
    }
}

/// Orientation of c relative to the directed line a→b:
/// positive = counter-clockwise triple.
pub fn orient2(a: [f64; 2], b: [f64; 2], c: [f64; 2]) -> Sign {
    let detleft = (a[0] - c[0]) * (b[1] - c[1]);
    let detright = (a[1] - c[1]) * (b[0] - c[0]);
    let det = detleft - detright;
    let magnitude = detleft.abs() + detright.abs();
    if let Some(s) = classify(det, magnitude, ORIENT2_BOUND) {
        return s;
    }
    // Stage B.
    let acx = two_diff(a[0], c[0]);
    let acy = two_diff(a[1], c[1]);
    let bcx = two_diff(b[0], c[0]);
    let bcy = two_diff(b[1], c[1]);
    let det = acx.mul(bcy).sub(acy.mul(bcx));
    classify(det.value(), magnitude.max(f64::MIN_POSITIVE), DD_BOUND).unwrap_or(Sign::Zero)
}

/// Is d inside the circumcircle of the counter-clockwise triangle (a,b,c)?
/// Positive = strictly inside.
pub fn incircle2(a: [f64; 2], b: [f64; 2], c: [f64; 2], d: [f64; 2]) -> Sign {
    let adx = a[0] - d[0];
    let ady = a[1] - d[1];
    let bdx = b[0] - d[0];
    let bdy = b[1] - d[1];
    let cdx = c[0] - d[0];
    let cdy = c[1] - d[1];
    let ad2 = adx * adx + ady * ady;
    let bd2 = bdx * bdx + bdy * bdy;
    let cd2 = cdx * cdx + cdy * cdy;
    let det = ad2 * (bdx * cdy - bdy * cdx) - bd2 * (adx * cdy - ady * cdx)
        + cd2 * (adx * bdy - ady * bdx);
    let magnitude = ad2 * (bdx * cdy).abs().max((bdy * cdx).abs())
        + bd2 * (adx * cdy).abs().max((ady * cdx).abs())
        + cd2 * (adx * bdy).abs().max((ady * bdx).abs());
    if let Some(s) = classify(det, magnitude, INCIRCLE2_BOUND) {
        return s;
    }
    // Stage B.
    let adx = two_diff(a[0], d[0]);
    let ady = two_diff(a[1], d[1]);
    let bdx = two_diff(b[0], d[0]);
    let bdy = two_diff(b[1], d[1]);
    let cdx = two_diff(c[0], d[0]);
    let cdy = two_diff(c[1], d[1]);
    let ad2 = adx.mul(adx).add(ady.mul(ady));
    let bd2 = bdx.mul(bdx).add(bdy.mul(bdy));
    let cd2 = cdx.mul(cdx).add(cdy.mul(cdy));
    let m_bc = bdx.mul(cdy).sub(bdy.mul(cdx));
    let m_ac = adx.mul(cdy).sub(ady.mul(cdx));
    let m_ab = adx.mul(bdy).sub(ady.mul(bdx));
    let det = ad2.mul(m_bc).sub(bd2.mul(m_ac)).add(cd2.mul(m_ab));
    classify(det.value(), magnitude.max(f64::MIN_POSITIVE), DD_BOUND).unwrap_or(Sign::Zero)
}

/// Orientation of d relative to the plane through (a,b,c): positive if d
/// is on the side making (a,b,c,d) positively oriented.
pub fn orient3(a: [f64; 3], b: [f64; 3], c: [f64; 3], d: [f64; 3]) -> Sign {
    let adx = a[0] - d[0];
    let ady = a[1] - d[1];
    let adz = a[2] - d[2];
    let bdx = b[0] - d[0];
    let bdy = b[1] - d[1];
    let bdz = b[2] - d[2];
    let cdx = c[0] - d[0];
    let cdy = c[1] - d[1];
    let cdz = c[2] - d[2];
    let m1 = bdy * cdz - bdz * cdy;
    let m2 = bdz * cdx - bdx * cdz;
    let m3 = bdx * cdy - bdy * cdx;
    let det = adx * m1 + ady * m2 + adz * m3;
    let magnitude = adx.abs() * ((bdy * cdz).abs() + (bdz * cdy).abs())
        + ady.abs() * ((bdz * cdx).abs() + (bdx * cdz).abs())
        + adz.abs() * ((bdx * cdy).abs() + (bdy * cdx).abs());
    if let Some(s) = classify(det, magnitude, ORIENT3_BOUND) {
        return s;
    }
    // Stage B.
    let adx = two_diff(a[0], d[0]);
    let ady = two_diff(a[1], d[1]);
    let adz = two_diff(a[2], d[2]);
    let bdx = two_diff(b[0], d[0]);
    let bdy = two_diff(b[1], d[1]);
    let bdz = two_diff(b[2], d[2]);
    let cdx = two_diff(c[0], d[0]);
    let cdy = two_diff(c[1], d[1]);
    let cdz = two_diff(c[2], d[2]);
    let m1 = bdy.mul(cdz).sub(bdz.mul(cdy));
    let m2 = bdz.mul(cdx).sub(bdx.mul(cdz));
    let m3 = bdx.mul(cdy).sub(bdy.mul(cdx));
    let det = adx.mul(m1).add(ady.mul(m2)).add(adz.mul(m3));
    classify(det.value(), magnitude.max(f64::MIN_POSITIVE), DD_BOUND).unwrap_or(Sign::Zero)
}

/// Is e inside the circumsphere of the positively oriented tetrahedron
/// (a,b,c,d)? Positive = strictly inside.
pub fn insphere3(a: [f64; 3], b: [f64; 3], c: [f64; 3], d: [f64; 3], e: [f64; 3]) -> Sign {
    // f64 stage.
    let s = |p: [f64; 3]| [p[0] - e[0], p[1] - e[1], p[2] - e[2]];
    let (ae, be, ce, de) = (s(a), s(b), s(c), s(d));
    let norm = |p: [f64; 3]| p[0] * p[0] + p[1] * p[1] + p[2] * p[2];
    let det3 = |p: [f64; 3], q: [f64; 3], r: [f64; 3]| {
        p[0] * (q[1] * r[2] - q[2] * r[1]) - p[1] * (q[0] * r[2] - q[2] * r[0])
            + p[2] * (q[0] * r[1] - q[1] * r[0])
    };
    let (na, nb, nc, nd) = (norm(ae), norm(be), norm(ce), norm(de));
    // Cofactor expansion of the 4×4 in-sphere determinant along the norm
    // column; the leading sign makes "inside" positive for positively
    // oriented tetrahedra.
    let det = -(na * det3(be, ce, de)) + nb * det3(ae, ce, de) - nc * det3(ae, be, de)
        + nd * det3(ae, be, ce);
    let absdet3 = |p: [f64; 3], q: [f64; 3], r: [f64; 3]| {
        p[0].abs() * ((q[1] * r[2]).abs() + (q[2] * r[1]).abs())
            + p[1].abs() * ((q[0] * r[2]).abs() + (q[2] * r[0]).abs())
            + p[2].abs() * ((q[0] * r[1]).abs() + (q[1] * r[0]).abs())
    };
    let magnitude = na * absdet3(be, ce, de)
        + nb * absdet3(ae, ce, de)
        + nc * absdet3(ae, be, de)
        + nd * absdet3(ae, be, ce);
    if let Some(sign) = classify(det, magnitude, INSPHERE3_BOUND) {
        return sign;
    }
    // Stage B in double-double.
    let sd = |p: [f64; 3]| {
        [
            two_diff(p[0], e[0]),
            two_diff(p[1], e[1]),
            two_diff(p[2], e[2]),
        ]
    };
    let (ae, be, ce, de) = (sd(a), sd(b), sd(c), sd(d));
    let norm = |p: [Dd; 3]| p[0].mul(p[0]).add(p[1].mul(p[1])).add(p[2].mul(p[2]));
    let det3 = |p: [Dd; 3], q: [Dd; 3], r: [Dd; 3]| {
        p[0].mul(q[1].mul(r[2]).sub(q[2].mul(r[1])))
            .sub(p[1].mul(q[0].mul(r[2]).sub(q[2].mul(r[0]))))
            .add(p[2].mul(q[0].mul(r[1]).sub(q[1].mul(r[0]))))
    };
    let det = norm(be)
        .mul(det3(ae, ce, de))
        .sub(norm(ae).mul(det3(be, ce, de)))
        .sub(norm(ce).mul(det3(ae, be, de)))
        .add(norm(de).mul(det3(ae, be, ce)));
    classify(det.value(), magnitude.max(f64::MIN_POSITIVE), DD_BOUND).unwrap_or(Sign::Zero)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orient2_basic() {
        assert_eq!(orient2([0.0, 0.0], [1.0, 0.0], [0.0, 1.0]), Sign::Positive);
        assert_eq!(orient2([0.0, 0.0], [0.0, 1.0], [1.0, 0.0]), Sign::Negative);
        assert_eq!(orient2([0.0, 0.0], [1.0, 1.0], [2.0, 2.0]), Sign::Zero);
    }

    #[test]
    fn orient2_near_degenerate() {
        // Point barely off a long diagonal: sign must be resolved by the
        // dd stage, consistently with the analytic answer.
        let a = [0.0, 0.0];
        let b = [1.0, 1.0];
        let above = [0.5, 0.5 + 1e-17]; // below f64 resolution of the det
        let s = orient2(a, b, above);
        // 1e-17 offset: det = -1e-17... the offset itself is representable,
        // determinant ~ -1e-17 (clockwise since c right of line? compute:
        // (a-c)x(b-c): ((-0.5,-0.5-e)) x ((0.5, 0.5-e)) = -0.25+e²... )
        // What matters: a consistent non-crashing answer and symmetry.
        assert_eq!(orient2(b, a, above).as_i32(), -s.as_i32());
    }

    #[test]
    fn incircle_basic() {
        let a = [0.0, 0.0];
        let b = [1.0, 0.0];
        let c = [0.0, 1.0];
        assert_eq!(incircle2(a, b, c, [0.4, 0.4]), Sign::Positive);
        assert_eq!(incircle2(a, b, c, [2.0, 2.0]), Sign::Negative);
        // Cocircular: (1,1) lies on the circle through the three.
        assert_eq!(incircle2(a, b, c, [1.0, 1.0]), Sign::Zero);
    }

    #[test]
    fn incircle_antisymmetry() {
        // Swapping two triangle vertices flips the sign.
        let a = [0.12, 0.7];
        let b = [0.9, 0.13];
        let c = [0.51, 0.94];
        let d = [0.5, 0.5];
        assert_eq!(
            incircle2(a, b, c, d).as_i32(),
            -incircle2(b, a, c, d).as_i32()
        );
    }

    #[test]
    fn orient3_basic() {
        let a = [0.0, 0.0, 0.0];
        let b = [1.0, 0.0, 0.0];
        let c = [0.0, 1.0, 0.0];
        assert_eq!(orient3(a, b, c, [0.0, 0.0, -1.0]), Sign::Positive);
        assert_eq!(orient3(a, b, c, [0.0, 0.0, 1.0]), Sign::Negative);
        assert_eq!(orient3(a, b, c, [0.3, 0.3, 0.0]), Sign::Zero);
    }

    #[test]
    fn insphere_basic() {
        let a = [0.0, 0.0, 0.0];
        let b = [1.0, 0.0, 0.0];
        let c = [0.0, 1.0, 0.0];
        let d = [0.0, 0.0, 1.0];
        // (a,b,c,d) orientation: orient3(a,b,c,d) must be positive for the
        // insphere convention; d=(0,0,1) gives Negative, so swap.
        assert_eq!(orient3(a, c, b, d), Sign::Positive);
        assert_eq!(insphere3(a, c, b, d, [0.2, 0.2, 0.2]), Sign::Positive);
        assert_eq!(insphere3(a, c, b, d, [3.0, 3.0, 3.0]), Sign::Negative);
    }

    #[test]
    fn predicates_deterministic() {
        // Replays give identical answers (tie band included).
        let pts = [
            [0.1000000000000001, 0.2],
            [0.3, 0.4000000000000003],
            [0.5, 0.6],
            [0.7000000000000001, 0.8],
        ];
        for _ in 0..10 {
            assert_eq!(
                incircle2(pts[0], pts[1], pts[2], pts[3]),
                incircle2(pts[0], pts[1], pts[2], pts[3])
            );
        }
    }

    #[test]
    fn random_points_rarely_degenerate() {
        use kagen_util::{Mt64, Rng64};
        let mut rng = Mt64::new(7);
        let mut zeros = 0;
        for _ in 0..2000 {
            let mut p = [[0.0f64; 2]; 4];
            for q in &mut p {
                q[0] = rng.next_f64();
                q[1] = rng.next_f64();
            }
            if incircle2(p[0], p[1], p[2], p[3]) == Sign::Zero {
                zeros += 1;
            }
        }
        assert_eq!(zeros, 0, "random doubles should never tie");
    }
}
