//! `throughput` — the edges/second harness behind `BENCH_throughput.json`.
//!
//! Measures every hot generator twice on a single core:
//!
//! * **per-edge** — `stream_pe`, one virtual `emit` per edge; for R-MAT
//!   and BA this re-derives the hashed seed per edge, i.e. the seed
//!   repository's original hot path;
//! * **batched** — `stream_pe_batched`, slice delivery with per-block
//!   seed hashing and hoisted descent dispatch.
//!
//! ```text
//! throughput [--quick] [--reps N] [--out PATH] [--max-workers W]
//!            [--metrics] [--trace-out PATH]
//!            [--compare BASELINE] [--compare-tolerance FRAC]
//!
//!   --quick          tiny sizes (CI smoke: seconds, not minutes)
//!   --reps N         repetitions per measurement, best-of (default 3)
//!   --out PATH       JSON output (default BENCH_throughput.json)
//!   --max-workers W  cap of the multi-worker scaling sweep
//!                    (default: available cores)
//!   --metrics        enable the obs metric registry during the runs and
//!                    embed its scalar snapshot as the "metrics" object
//!   --trace-out PATH write a Chrome trace of every timed region (each
//!                    best-of repetition is one span)
//!   --compare BASELINE        perf-regression gate: after the run,
//!                    discover every headline `*_vs_*` ratio in the
//!                    fresh JSON and gate each against BASELINE
//!                    (normally the checked-in BENCH_throughput.json),
//!                    exiting non-zero if any fresh ratio fell below
//!                    baseline x (1 - tolerance); new kernels' ratios
//!                    are auto-gated, not hand-listed
//!   --compare-tolerance FRAC  the tolerance band (default 0.5 — a
//!                    quick CI run on shared hardware compares against
//!                    a full-mode baseline, so the gate is a collapse
//!                    detector, not a percent-level tracker)
//! ```
//!
//! Besides the single-core per-edge/batched comparison, the harness runs
//! a **multi-worker scaling sweep** (the paper's §8 scaling experiments,
//! emulated in-process): the PE range is split into `W` contiguous rank
//! ranges — the identical plan the `kagen_cluster` multi-process
//! launcher uses — and executed on `W` threads via
//! [`kagen_runtime::run_rank_ranges`]. *Strong* points keep the instance
//! fixed as `W` grows; *weak* points scale the edge count linearly with
//! `W` (the paper's weak-scaling setup, Figs. 7–18).
//!
//! The JSON is machine-readable so future PRs have a trajectory to beat;
//! the paper's headline metric (§8.6.1) is exactly this rate.

use kagen_core::er::GnpLeaves;
use kagen_core::prelude::*;
use kagen_core::streaming::BATCH_EDGES;
use kagen_obs::{error, info, trace, warn};
use kagen_pipeline::{BinarySink, EdgeSink};
use kagen_util::alloc::CountingAlloc;
use std::fmt::Write as _;
use std::hint::black_box;

/// Counting allocator: every model's *peak allocation during streaming*
/// is recorded next to its edges/s — the portable per-model stand-in
/// for peak RSS.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct Measurement {
    name: &'static str,
    model: &'static str,
    params: String,
    edges: u64,
    per_edge_secs: f64,
    batched_secs: f64,
    /// The two delivery paths produced the identical edge stream
    /// (edge count + xor-fold checksum compared every run); a `false`
    /// still emits JSON, and CI fails on it.
    paths_checksum_match: bool,
    /// Writer-boundary timings: the instance streamed into a boxed
    /// `BinarySink` (the `kagen stream` shard path, minus the file) via
    /// per-edge `accept` vs `push_batch`.
    sink_per_edge_secs: f64,
    sink_batched_secs: f64,
    /// Peak bytes allocated during one batched streaming pass (counting
    /// allocator high-water above the pre-pass baseline): the working
    /// set of the generator — for the spatial family, the frontier of
    /// the cell cursor, NOT the edge count.
    peak_alloc_bytes: u64,
}

impl Measurement {
    fn per_edge_eps(&self) -> f64 {
        self.edges as f64 / self.per_edge_secs
    }

    fn batched_eps(&self) -> f64 {
        self.edges as f64 / self.batched_secs
    }

    fn speedup(&self) -> f64 {
        self.per_edge_secs / self.batched_secs
    }
}

/// Best-of-`reps` wall time of one full instance streamed per edge;
/// returns the xor-fold checksum of the stream along with it. Every
/// timed region here and below is an obs span: one wall-clock source
/// for the JSON numbers and for `--trace-out`.
fn time_per_edge<G: StreamingGenerator + ?Sized>(
    name: &str,
    gen: &G,
    reps: u32,
) -> (u64, f64, u64) {
    let mut edges = 0u64;
    let mut best = f64::INFINITY;
    let mut checksum = 0u64;
    for _ in 0..reps {
        let mut acc = 0u64;
        let mut count = 0u64;
        let span = trace::span(format!("{name}.per_edge"));
        for pe in 0..gen.num_chunks() {
            gen.stream_pe(pe, &mut |u, v| {
                // Order-sensitive fold: a reordered or swapped-pair
                // stream must not collide, or the batched-vs-per-edge
                // equality below proves less than it claims.
                acc = acc.rotate_left(1) ^ u.wrapping_add(v.rotate_left(17));
                count += 1;
            });
        }
        best = best.min(span.finish().max(1e-9));
        checksum = black_box(acc);
        edges = count;
    }
    (edges, best, checksum)
}

/// The sink the writer-boundary measurements stream into: the binary
/// shard encoder over a buffered null writer — the memcpy-into-buffer
/// traffic of a real file write, without disk noise or a platform-
/// specific device path.
fn null_binary_sink() -> Box<dyn EdgeSink> {
    Box::new(BinarySink::new(std::io::BufWriter::new(std::io::sink())))
}

/// Best-of-`reps` wall time streamed into a boxed binary sink, one
/// virtual `accept` plus one 16-byte encode per edge.
fn time_sink_per_edge<G: StreamingGenerator + ?Sized>(name: &str, gen: &G, reps: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut sink = null_binary_sink();
        let span = trace::span(format!("{name}.sink_per_edge"));
        for pe in 0..gen.num_chunks() {
            gen.stream_pe(pe, &mut |u, v| sink.accept(u, v));
        }
        best = best.min(span.finish().max(1e-9));
        black_box(sink.finish().unwrap());
    }
    best
}

/// Best-of-`reps` wall time streamed into the same boxed sink through
/// `push_batch`: one virtual call and one buffered write per batch.
fn time_sink_batched<G: StreamingGenerator + ?Sized>(name: &str, gen: &G, reps: u32) -> f64 {
    let mut best = f64::INFINITY;
    let mut buf = Vec::with_capacity(BATCH_EDGES);
    for _ in 0..reps {
        let mut sink = null_binary_sink();
        let span = trace::span(format!("{name}.sink_batched"));
        for pe in 0..gen.num_chunks() {
            gen.stream_pe_batched(pe, &mut buf, &mut |batch| sink.push_batch(batch));
        }
        best = best.min(span.finish().max(1e-9));
        black_box(sink.finish().unwrap());
    }
    best
}

/// Best-of-`reps` wall time of one full instance streamed in batches;
/// returns the xor-fold checksum of the stream along with it.
fn time_batched<G: StreamingGenerator + ?Sized>(name: &str, gen: &G, reps: u32) -> (u64, f64, u64) {
    let mut edges = 0u64;
    let mut best = f64::INFINITY;
    let mut checksum = 0u64;
    let mut buf = Vec::with_capacity(BATCH_EDGES);
    for _ in 0..reps {
        let mut acc = 0u64;
        let mut count = 0u64;
        let span = trace::span(format!("{name}.batched"));
        for pe in 0..gen.num_chunks() {
            gen.stream_pe_batched(pe, &mut buf, &mut |batch| {
                for &(u, v) in batch {
                    acc = acc.rotate_left(1) ^ u.wrapping_add(v.rotate_left(17));
                }
                count += batch.len() as u64;
            });
        }
        best = best.min(span.finish().max(1e-9));
        checksum = black_box(acc);
        edges = count;
    }
    (edges, best, checksum)
}

/// Peak allocation of one batched streaming pass over the whole
/// instance, measured with the counting allocator (batch buffer
/// pre-reserved outside the window; the consumer keeps only a checksum).
fn measure_peak_alloc<G: StreamingGenerator + ?Sized>(gen: &G) -> u64 {
    let mut buf = Vec::with_capacity(BATCH_EDGES);
    let mut acc = 0u64;
    let peak = CountingAlloc::peak_during(|| {
        for pe in 0..gen.num_chunks() {
            gen.stream_pe_batched(pe, &mut buf, &mut |batch| {
                for &(u, v) in batch {
                    acc ^= u.wrapping_add(v.rotate_left(17));
                }
            });
        }
    });
    black_box(acc);
    peak
}

fn measure<G: StreamingGenerator + ?Sized>(
    name: &'static str,
    model: &'static str,
    params: String,
    gen: &G,
    reps: u32,
) -> Measurement {
    let (edges_a, per_edge_secs, acc_a) = time_per_edge(name, gen, reps);
    let (edges_b, batched_secs, acc_b) = time_batched(name, gen, reps);
    // The batched delivery must be the identical stream, not merely the
    // same count — the rotate-xor fold is order- and content-sensitive.
    // A divergence is *recorded*, not panicked on: the JSON must still
    // be written so the CI assertion on `paths_checksum_match` is a
    // live check rather than one that can never observe a false.
    let paths_checksum_match = edges_a == edges_b && acc_a == acc_b;
    if !paths_checksum_match {
        error!(
            "{name}: BATCHED PATH DIVERGES from per-edge \
             ({edges_a} vs {edges_b} edges, checksums {acc_a:#x} vs {acc_b:#x})"
        );
    }
    let sink_per_edge_secs = time_sink_per_edge(name, gen, reps);
    let sink_batched_secs = time_sink_batched(name, gen, reps);
    let peak_alloc_bytes = measure_peak_alloc(gen);
    info!(
        "{name:<16} {edges:>10} edges   per-edge {pe:>7.1} Meps   batched {ba:>7.1} Meps ({sp:.2}x)   sink {spe:>7.1} -> {sba:>7.1} Meps ({ssp:.2}x)   peak {peak:>8} B",
        edges = edges_a,
        pe = edges_a as f64 / per_edge_secs / 1e6,
        ba = edges_a as f64 / batched_secs / 1e6,
        sp = per_edge_secs / batched_secs,
        spe = edges_a as f64 / sink_per_edge_secs / 1e6,
        sba = edges_a as f64 / sink_batched_secs / 1e6,
        ssp = sink_per_edge_secs / sink_batched_secs,
        peak = peak_alloc_bytes,
    );
    Measurement {
        name,
        model,
        params,
        edges: edges_a,
        per_edge_secs,
        batched_secs,
        paths_checksum_match,
        sink_per_edge_secs,
        sink_batched_secs,
        peak_alloc_bytes,
    }
}

/// One point of the multi-worker scaling sweep.
struct ScalingPoint {
    name: &'static str,
    /// `strong` (fixed instance) or `weak` (edges ∝ workers).
    mode: &'static str,
    workers: usize,
    edges: u64,
    secs: f64,
    /// Aggregate edges/sec over the whole pool.
    eps: f64,
}

/// Best-of-`reps` wall time of the instance executed as `workers` rank
/// ranges on `workers` threads — the in-process twin of
/// `kagen launch --workers W`, sharing its plan via
/// [`kagen_runtime::run_rank_ranges`].
fn time_rank_ranges<G: StreamingGenerator + Sync + ?Sized>(
    label: &str,
    gen: &G,
    workers: usize,
    reps: u32,
) -> (u64, f64) {
    // Plan and pool are built once, outside the timed region — pool
    // setup must not bias the sweep against higher worker counts. (The
    // vendored rayon shim still spawns scoped threads per operation;
    // with the real registry crate this hoist removes the spawns too.)
    let plan = kagen_runtime::split_ranges(gen.num_chunks(), workers);
    let pool = kagen_runtime::thread_pool(plan.len().max(1));
    let run_range = |pes: std::ops::Range<usize>| {
        let mut acc = 0u64;
        let mut count = 0u64;
        let mut buf = Vec::with_capacity(BATCH_EDGES);
        for pe in pes {
            gen.stream_pe_batched(pe, &mut buf, &mut |batch| {
                for &(u, v) in batch {
                    acc ^= u.wrapping_add(v.rotate_left(17));
                }
                count += batch.len() as u64;
            });
        }
        black_box(acc);
        count
    };
    let mut edges = 0u64;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let span = trace::span(format!("scaling.{label}.w{workers}"));
        let counts: Vec<u64> = pool.install(|| {
            use rayon::prelude::*;
            plan.clone().into_par_iter().map(&run_range).collect()
        });
        best = best.min(span.finish().max(1e-9));
        edges = counts.iter().sum();
    }
    (edges, best)
}

/// Extract the numeric value of `"key": <number>` from a JSON document
/// by string scanning. The workspace's hand-rolled JSON parser is
/// deliberately u64-only; the baseline's speedup ratios are floats, and
/// this handful-of-keys gate does not justify growing the parser.
fn extract_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Discover every headline ratio key in a throughput JSON document:
/// a quoted key containing `_vs_` whose value parses as a number. The
/// gate walks the *fresh* document's keys, so a new kernel's ratio is
/// auto-gated the moment it is written to the JSON — no hand-kept key
/// list to forget to extend.
fn discover_ratio_keys(text: &str) -> Vec<String> {
    let mut keys: Vec<String> = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find('"') {
        rest = &rest[start + 1..];
        let Some(end) = rest.find('"') else { break };
        let key = &rest[..end];
        rest = &rest[end + 1..];
        if key.contains("_vs_")
            && extract_f64(text, key).is_some()
            && !keys.iter().any(|k| k == key)
        {
            keys.push(key.to_string());
        }
    }
    keys
}

/// The perf-regression gate: each `(key, fresh ratio)` must stay at or
/// above the baseline document's value times `(1 - tolerance)`. Returns
/// the failing keys' messages (empty = gate passed). A key missing from
/// the baseline is skipped with a warning — an old-schema baseline must
/// not fail every future run.
fn compare_ratios(baseline: &str, fresh: &[(&str, f64)], tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for (key, fresh_ratio) in fresh {
        let Some(base) = extract_f64(baseline, key) else {
            warn!("compare: baseline has no '{key}', skipping");
            continue;
        };
        let floor = base * (1.0 - tolerance);
        if *fresh_ratio < floor {
            // Old value, new value, and their quotient — enough to judge
            // the regression's size straight from the CI log.
            failures.push(format!(
                "{key}: old {base:.3} -> new {fresh_ratio:.3} \
                 (new/old {:.3}, floor {floor:.3} at tolerance {tolerance})",
                fresh_ratio / base
            ));
        } else {
            info!("compare {key}: {fresh_ratio:.3} vs baseline {base:.3} (floor {floor:.3}) OK");
        }
    }
    failures
}

/// Worker counts of the sweep: powers of two up to `max`, plus `max`.
fn worker_counts(max: usize) -> Vec<usize> {
    let mut counts = Vec::new();
    let mut w = 1;
    while w <= max {
        counts.push(w);
        w *= 2;
    }
    if counts.last() != Some(&max) {
        counts.push(max);
    }
    counts
}

/// The §8-style scaling sweep: strong (fixed `m`) and weak (`m` per
/// worker) points for an R-MAT instance across worker counts.
fn scaling_sweep(
    scale: u32,
    m: u64,
    chunks: usize,
    max_workers: usize,
    reps: u32,
) -> Vec<ScalingPoint> {
    let mut points = Vec::new();
    for workers in worker_counts(max_workers) {
        // Strong scaling: the instance is fixed, workers grow.
        let gen = Rmat::new(scale, m)
            .with_seed(1)
            .with_chunks(chunks)
            .with_table_levels(8);
        let (edges, secs) = time_rank_ranges("strong", &gen, workers, reps);
        points.push(ScalingPoint {
            name: "rmat_table8",
            mode: "strong",
            workers,
            edges,
            secs,
            eps: edges as f64 / secs,
        });
        // Weak scaling: per-worker edge count is fixed, the instance
        // grows with the pool (the paper's setup).
        let gen = Rmat::new(scale, m * workers as u64)
            .with_seed(1)
            .with_chunks(chunks)
            .with_table_levels(8);
        let (edges, secs) = time_rank_ranges("weak", &gen, workers, reps);
        points.push(ScalingPoint {
            name: "rmat_table8",
            mode: "weak",
            workers,
            edges,
            secs,
            eps: edges as f64 / secs,
        });
        let last = points.len() - 2;
        info!(
            "scaling w={workers:<3} strong {:>7.1} Meps   weak {:>7.1} Meps",
            points[last].eps / 1e6,
            points[last + 1].eps / 1e6,
        );
    }
    points
}

fn main() {
    kagen_obs::log::init_from_env();
    kagen_obs::log::set_prefix("throughput");
    let mut quick = false;
    let mut reps = 3u32;
    let mut out = String::from("BENCH_throughput.json");
    let mut max_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut metrics = false;
    let mut trace_out: Option<String> = None;
    let mut compare: Option<String> = None;
    let mut compare_tolerance = 0.5f64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--reps" => {
                // Zero reps would leave every best-of time at infinity
                // and emit `inf`/`NaN` — not valid JSON.
                reps = match args.next().map(|v| v.parse()) {
                    Some(Ok(r)) if r >= 1 => r,
                    _ => {
                        error!("--reps needs an integer >= 1");
                        std::process::exit(2);
                    }
                }
            }
            "--out" => out = args.next().expect("--out needs a path"),
            "--max-workers" => {
                max_workers = match args.next().map(|v| v.parse()) {
                    Some(Ok(w)) if w >= 1 => w,
                    _ => {
                        error!("--max-workers needs an integer >= 1");
                        std::process::exit(2);
                    }
                }
            }
            "--metrics" => metrics = true,
            "--trace-out" => trace_out = Some(args.next().expect("--trace-out needs a path")),
            "--compare" => compare = Some(args.next().expect("--compare needs a baseline path")),
            "--compare-tolerance" => {
                compare_tolerance = match args.next().map(|v| v.parse()) {
                    Some(Ok(t)) if (0.0..1.0).contains(&t) => t,
                    _ => {
                        error!("--compare-tolerance needs a fraction in [0, 1)");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                error!("unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }
    if metrics {
        kagen_obs::metrics::set_enabled(true);
    }
    if trace_out.is_some() {
        kagen_obs::trace::set_enabled(true);
    }

    // Full mode: the ISSUE's reference point — scale 20, 2^22 edges.
    let (scale, m, n, ba_n) = if quick {
        (14u32, 1u64 << 16, 1u64 << 14, 1u64 << 13)
    } else {
        (20u32, 1u64 << 22, 1u64 << 20, 1u64 << 19)
    };
    let chunks = 64usize;
    let universe_d = (n as f64) * (n as f64 - 1.0);
    let p_directed = (m as f64 / universe_d).min(1.0);
    let p_undirected = (m as f64 / (universe_d / 2.0)).min(1.0);

    info!(
        "{} mode, reps={reps}, chunks={chunks}, batch={BATCH_EDGES}",
        if quick { "quick" } else { "full" }
    );

    let mut results = Vec::new();
    results.push(measure(
        "rmat_plain",
        "rmat",
        format!("scale={scale} m={m} plain"),
        &Rmat::new(scale, m).with_seed(1).with_chunks(chunks),
        reps,
    ));
    results.push(measure(
        "rmat_table8",
        "rmat",
        format!("scale={scale} m={m} table_levels=8"),
        &Rmat::new(scale, m)
            .with_seed(1)
            .with_chunks(chunks)
            .with_table_levels(8),
        reps,
    ));
    // The linear-work composed-table kernel (the CLI default since the
    // linear-work rework): one fused alias draw per 8-level path block,
    // deinterleaved halves, pow2 word sampling. Levels are pinned at 8
    // rather than auto-sized so the recorded params reproduce the same
    // instance on any box regardless of its L2.
    results.push(measure(
        "rmat_linear",
        "rmat",
        format!("scale={scale} m={m} kernel=linear levels=8"),
        &Rmat::new(scale, m)
            .with_seed(1)
            .with_chunks(chunks)
            .with_kernel(RmatKernel::Linear { levels: 8 }),
        reps,
    ));
    // Beyond the scale-32 wall: the legacy interleaved table cannot run
    // here (2·scale Morton bits overflow u64), so this pair records what
    // the composed kernel buys where only plain descent used to work.
    let (s32_scale, s32_m) = (32u32, if quick { 1u64 << 15 } else { 1u64 << 21 });
    results.push(measure(
        "rmat_plain_s32",
        "rmat",
        format!("scale={s32_scale} m={s32_m} plain"),
        &Rmat::new(s32_scale, s32_m).with_seed(1).with_chunks(chunks),
        reps,
    ));
    results.push(measure(
        "rmat_linear_s32",
        "rmat",
        format!("scale={s32_scale} m={s32_m} kernel=linear levels=8"),
        &Rmat::new(s32_scale, s32_m)
            .with_seed(1)
            .with_chunks(chunks)
            .with_kernel(RmatKernel::Linear { levels: 8 }),
        reps,
    ));
    results.push(measure(
        "gnm_directed",
        "gnm_directed",
        format!("n={n} m={m}"),
        &GnmDirected::new(n, m).with_seed(1).with_chunks(chunks),
        reps,
    ));
    results.push(measure(
        "gnm_undirected",
        "gnm_undirected",
        format!("n={n} m={m}"),
        &GnmUndirected::new(n, m).with_seed(1).with_chunks(chunks),
        reps,
    ));
    results.push(measure(
        "gnp_directed",
        "gnp_directed",
        format!("n={n} p={p_directed:.3e}"),
        &GnpDirected::new(n, p_directed)
            .with_seed(1)
            .with_chunks(chunks),
        reps,
    ));
    results.push(measure(
        "gnp_undirected",
        "gnp_undirected",
        format!("n={n} p={p_undirected:.3e}"),
        &GnpUndirected::new(n, p_undirected)
            .with_seed(1)
            .with_chunks(chunks),
        reps,
    ));
    // The per-edge Algorithm-D G(n,p) baseline (binomial counts +
    // Vitter Method D per leaf — the pre-skip-kernel path, kept in-tree
    // behind `GnpLeaves::AlgoD`): the comparison point the batched skip
    // kernel is measured against.
    results.push(measure(
        "gnp_directed_algoD",
        "gnp_directed",
        format!("n={n} p={p_directed:.3e} leaves=algo-d"),
        &GnpDirected::new(n, p_directed)
            .with_seed(1)
            .with_chunks(chunks)
            .with_leaves(GnpLeaves::AlgoD),
        reps,
    ));
    results.push(measure(
        "gnp_undirected_algoD",
        "gnp_undirected",
        format!("n={n} p={p_undirected:.3e} leaves=algo-d"),
        &GnpUndirected::new(n, p_undirected)
            .with_seed(1)
            .with_chunks(chunks)
            .with_leaves(GnpLeaves::AlgoD),
        reps,
    ));
    results.push(measure(
        "ba_d8",
        "ba",
        format!("n={ba_n} d=8"),
        &BarabasiAlbert::new(ba_n, 8)
            .with_seed(1)
            .with_chunks(chunks),
        reps,
    ));

    // The spatial/hyperbolic family (native cell-cursor streaming since
    // the unified-core rework): slower per edge than the index-based
    // generators, so smaller instances — the interesting column is
    // peak_alloc_bytes, which must track the cell frontier, not the
    // edge count.
    let (rgg_n, rgg3_n, rdg_n, rhg_n, soft_n) = if quick {
        (1u64 << 12, 1u64 << 11, 1u64 << 10, 1u64 << 12, 1u64 << 10)
    } else {
        (1u64 << 16, 1u64 << 14, 1u64 << 13, 1u64 << 15, 1u64 << 12)
    };
    let spatial_chunks = 16usize;
    results.push(measure(
        "rgg2d",
        "rgg2d",
        format!("n={rgg_n} r=threshold"),
        &Rgg2d::new(rgg_n, Rgg2d::threshold_radius(rgg_n, 1))
            .with_seed(1)
            .with_chunks(spatial_chunks),
        reps,
    ));
    results.push(measure(
        "rgg3d",
        "rgg3d",
        format!("n={rgg3_n} r=threshold"),
        &Rgg3d::new(rgg3_n, Rgg3d::threshold_radius(rgg3_n, 1))
            .with_seed(1)
            .with_chunks(spatial_chunks),
        reps,
    ));
    results.push(measure(
        "rdg2d",
        "rdg2d",
        format!("n={rdg_n}"),
        &Rdg2d::new(rdg_n).with_seed(1).with_chunks(spatial_chunks),
        reps,
    ));
    results.push(measure(
        "rhg",
        "rhg",
        format!("n={rhg_n} d=8 gamma=2.8"),
        &Rhg::new(rhg_n, 8.0, 2.8)
            .with_seed(1)
            .with_chunks(spatial_chunks),
        reps,
    ));
    results.push(measure(
        "srhg",
        "srhg",
        format!("n={rhg_n} d=8 gamma=2.8"),
        &Srhg::new(rhg_n, 8.0, 2.8)
            .with_seed(1)
            .with_chunks(spatial_chunks),
        reps,
    ));
    results.push(measure(
        "soft_rhg",
        "soft-rhg",
        format!("n={soft_n} d=8 gamma=2.8 T=0.5"),
        &SoftRhg::new(soft_n, 8.0, 2.8, 0.5)
            .with_seed(1)
            .with_chunks(spatial_chunks),
        reps,
    ));

    // The R-MAT acceptance ratios. Legacy: batched interleaved-table
    // descent against the per-edge-seeded plain descent (the seed
    // repository's hot path). New: the linear-work composed kernel
    // against the legacy table's batched path — the tentpole target
    // (>= 2x at scale 20) — and against plain at scale 32, where the
    // table kernel cannot run at all.
    let by_name = |needle: &str| results.iter().find(|r| r.name == needle).unwrap();
    let plain = by_name("rmat_plain");
    let table = by_name("rmat_table8");
    let linear = by_name("rmat_linear");
    let rmat_ratio = plain.per_edge_secs / table.batched_secs;
    let rmat_linear_vs_table = table.batched_secs / linear.batched_secs;
    let rmat_linear_vs_plain = plain.per_edge_secs / linear.batched_secs;
    info!("rmat batched(table) vs per-edge(plain): {rmat_ratio:.2}x (target >= 3x at scale 20)");
    info!(
        "rmat batched(linear) vs batched(table8): {rmat_linear_vs_table:.2}x \
         (target >= 2x at scale 20), vs per-edge(plain): {rmat_linear_vs_plain:.2}x"
    );
    let rmat_s32_ratio =
        by_name("rmat_plain_s32").batched_secs / by_name("rmat_linear_s32").batched_secs;
    info!("rmat scale-32 batched(linear) vs batched(plain): {rmat_s32_ratio:.2}x");

    // The ER acceptance ratios: the batched geometric-skip G(n,p) path
    // (the CLI default) against the per-edge Algorithm-D baseline.
    // Throughput is normalized per *edge* (the instances are distinct
    // same-distribution samples, so edge counts differ slightly).
    let er_ratio = |skip: &str, algod: &str| {
        let s = by_name(skip);
        let d = by_name(algod);
        (s.edges as f64 / s.batched_secs) / (d.edges as f64 / d.per_edge_secs)
    };
    let er_directed_ratio = er_ratio("gnp_directed", "gnp_directed_algoD");
    let er_undirected_ratio = er_ratio("gnp_undirected", "gnp_undirected_algoD");
    info!(
        "er skip-batched vs per-edge algo-D: directed {er_directed_ratio:.2}x, \
         undirected {er_undirected_ratio:.2}x (target >= 2x at scale 20)"
    );

    // Multi-worker scaling sweep (paper §8): edges/sec vs worker count
    // over the rank-range plan shared with `kagen launch`. The plan
    // cannot hand out more ranks than chunks, so worker counts beyond
    // the chunk count would silently run `chunks` threads while being
    // recorded as more — cap the sweep instead of recording fiction.
    if max_workers > chunks {
        warn!("scaling sweep: capping --max-workers {max_workers} at {chunks} chunks");
        max_workers = chunks;
    }
    info!("scaling sweep: 1..{max_workers} workers, rank-range plan over {chunks} chunks");
    let scaling = scaling_sweep(scale, m, chunks, max_workers, reps);

    // A 1-core box clamps the sweep to a single point; downstream
    // consumers reading the curve must see that it is degenerate rather
    // than mistake it for a flat scaling result.
    let detected_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let degenerate_sweep = max_workers <= 1;
    if degenerate_sweep {
        warn!(
            "scaling sweep is DEGENERATE (one point): {detected_cores} core(s) detected — \
             re-run on a multi-core box for a real curve"
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"kagen-throughput/v5\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"repetitions\": {reps},");
    let _ = writeln!(json, "  \"chunks\": {chunks},");
    let _ = writeln!(json, "  \"batch_edges\": {BATCH_EDGES},");
    let _ = writeln!(json, "  \"detected_cores\": {detected_cores},");
    let _ = writeln!(json, "  \"max_workers\": {max_workers},");
    let _ = writeln!(json, "  \"degenerate_sweep\": {degenerate_sweep},");
    // v5: the obs scalar snapshot of the whole run — counters, gauge
    // peaks, histogram count/sum. Empty unless --metrics, so the
    // default timings carry zero registry overhead inside the loops.
    let _ = writeln!(json, "  \"metrics_enabled\": {metrics},");
    json.push_str("  \"metrics\": {");
    for (i, (name, v)) in kagen_obs::metrics::scalars().iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{name}\": {v}");
    }
    json.push_str("},\n");
    let _ = writeln!(
        json,
        "  \"rmat_table_batched_vs_plain_per_edge\": {rmat_ratio:.3},"
    );
    let _ = writeln!(
        json,
        "  \"rmat_linear_batched_vs_table8_batched\": {rmat_linear_vs_table:.3},"
    );
    let _ = writeln!(
        json,
        "  \"rmat_linear_batched_vs_plain_per_edge\": {rmat_linear_vs_plain:.3},"
    );
    let _ = writeln!(
        json,
        "  \"rmat_linear_s32_batched_vs_plain_batched\": {rmat_s32_ratio:.3},"
    );
    let _ = writeln!(
        json,
        "  \"er_skip_batched_vs_algoD_per_edge_directed\": {er_directed_ratio:.3},"
    );
    let _ = writeln!(
        json,
        "  \"er_skip_batched_vs_algoD_per_edge_undirected\": {er_undirected_ratio:.3},"
    );
    json.push_str("  \"scaling\": [\n");
    for (i, p) in scaling.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"mode\": \"{}\", \"workers\": {}, \"edges\": {}, \
             \"seconds\": {:.6}, \"eps\": {:.0}}}",
            p.name, p.mode, p.workers, p.edges, p.secs, p.eps
        );
        json.push_str(if i + 1 < scaling.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(json, "      \"model\": \"{}\",", r.model);
        let _ = writeln!(json, "      \"params\": \"{}\",", r.params);
        let _ = writeln!(json, "      \"edges\": {},", r.edges);
        let _ = writeln!(json, "      \"per_edge_seconds\": {:.6},", r.per_edge_secs);
        let _ = writeln!(json, "      \"per_edge_eps\": {:.0},", r.per_edge_eps());
        let _ = writeln!(json, "      \"batched_seconds\": {:.6},", r.batched_secs);
        let _ = writeln!(json, "      \"batched_eps\": {:.0},", r.batched_eps());
        let _ = writeln!(json, "      \"speedup\": {:.3},", r.speedup());
        let _ = writeln!(
            json,
            "      \"paths_checksum_match\": {},",
            r.paths_checksum_match
        );
        let _ = writeln!(
            json,
            "      \"sink_per_edge_eps\": {:.0},",
            r.edges as f64 / r.sink_per_edge_secs
        );
        let _ = writeln!(
            json,
            "      \"sink_batched_eps\": {:.0},",
            r.edges as f64 / r.sink_batched_secs
        );
        let _ = writeln!(
            json,
            "      \"sink_speedup\": {:.3},",
            r.sink_per_edge_secs / r.sink_batched_secs
        );
        let _ = writeln!(json, "      \"peak_alloc_bytes\": {}", r.peak_alloc_bytes);
        json.push_str(if i + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out, &json).expect("cannot write JSON output");
    if let Some(path) = &trace_out {
        trace::write_chrome_trace(std::path::Path::new(path)).expect("cannot write trace output");
        info!("trace -> {path} ({} spans)", trace::event_count());
    }
    info!("wrote {out}");

    // The perf-regression gate, last: the fresh JSON is on disk either
    // way, so a failing run still leaves the numbers to diagnose.
    if let Some(baseline_path) = &compare {
        let baseline = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        // Discover the headline ratios from the fresh document rather
        // than a hand-kept list: any `*_vs_*` key written above is
        // gated automatically. Baseline-only ratios (a key this run no
        // longer produces) are surfaced too — a renamed key must not
        // silently un-gate itself.
        let keys = discover_ratio_keys(&json);
        let fresh: Vec<(&str, f64)> = keys
            .iter()
            .filter_map(|k| extract_f64(&json, k).map(|v| (k.as_str(), v)))
            .collect();
        for k in discover_ratio_keys(&baseline) {
            if !keys.contains(&k) {
                warn!("compare: baseline ratio '{k}' is not produced by this run");
            }
        }
        let failures = compare_ratios(&baseline, &fresh, compare_tolerance);
        for f in &failures {
            error!("PERF REGRESSION {f}");
        }
        if !failures.is_empty() {
            std::process::exit(1);
        }
        info!("compare: all ratios within tolerance of {baseline_path}");
    }
}

#[cfg(test)]
mod tests {
    use super::{compare_ratios, discover_ratio_keys, extract_f64};

    const BASELINE: &str = r#"{
  "schema": "kagen-throughput/v5",
  "rmat_table_batched_vs_plain_per_edge": 4.779,
  "rmat_linear_batched_vs_table8_batched": 2.4,
  "er_skip_batched_vs_algoD_per_edge_directed": 2.080,
  "eps_note": "negative and exponent forms parse too",
  "name_vs_nothing_numeric": "a_vs_b string value, not a ratio",
  "neg": -1.5,
  "exp": 1.2e3
}"#;

    #[test]
    fn extracts_floats_by_key() {
        assert_eq!(
            extract_f64(BASELINE, "rmat_table_batched_vs_plain_per_edge"),
            Some(4.779)
        );
        assert_eq!(extract_f64(BASELINE, "neg"), Some(-1.5));
        assert_eq!(extract_f64(BASELINE, "exp"), Some(1200.0));
        assert_eq!(extract_f64(BASELINE, "no_such_key"), None);
        assert_eq!(extract_f64(BASELINE, "schema"), None);
    }

    #[test]
    fn gate_fails_below_floor_and_skips_missing_keys() {
        // 4.779 * (1 - 0.5) = 2.3895: 2.5 passes, 2.0 fails.
        assert!(compare_ratios(
            BASELINE,
            &[("rmat_table_batched_vs_plain_per_edge", 2.5)],
            0.5
        )
        .is_empty());
        let failures = compare_ratios(
            BASELINE,
            &[("rmat_table_batched_vs_plain_per_edge", 2.0)],
            0.5,
        );
        assert_eq!(failures.len(), 1);
        // The message must carry the old value, the new value, and their
        // ratio (2.0 / 4.779 = 0.4185…).
        assert!(failures[0].contains("old 4.779"), "{failures:?}");
        assert!(failures[0].contains("new 2.000"), "{failures:?}");
        assert!(failures[0].contains("new/old 0.418"), "{failures:?}");
        // A key absent from the baseline is skipped, not failed.
        assert!(compare_ratios(
            BASELINE,
            &[("er_skip_batched_vs_algoD_per_edge_undirected", 0.1)],
            0.5
        )
        .is_empty());
    }

    #[test]
    fn discovers_ratio_keys_generically() {
        // Every `*_vs_*` key with a numeric value, in document order,
        // deduplicated; string-valued keys and plain keys are not
        // ratios.
        assert_eq!(
            discover_ratio_keys(BASELINE),
            vec![
                "rmat_table_batched_vs_plain_per_edge",
                "rmat_linear_batched_vs_table8_batched",
                "er_skip_batched_vs_algoD_per_edge_directed",
            ]
        );
        let doubled = format!("{BASELINE}{BASELINE}");
        assert_eq!(discover_ratio_keys(&doubled).len(), 3);
        assert!(discover_ratio_keys("{\"plain\": 1.0}").is_empty());
    }
}
