//! Hypergeometric sampling: inverse urn simulation (HYP) for small draw
//! counts, the HRUA ratio-of-uniforms rejection sampler for large ones.
//!
//! This is the workhorse of the paper's G(n,m) splitting recursions
//! (§4.1, §4.2) and the distributed sampler of Sanders et al.: a fixed
//! sample count is split over two sub-universes by one hypergeometric
//! draw per recursion node. Totals can exceed 2^64 (edge universes of
//! n > 2^32 vertices), so `total` and `good` are `u128`; draws and
//! results are `u64`.

use crate::loggamma::loggamma;
use kagen_util::Rng64;

/// HYP: simulate the urn directly; O(draws) work, exact.
fn hyp<R: Rng64 + ?Sized>(rng: &mut R, total: f64, good: f64, bad: f64, draws: u64) -> u64 {
    // Walks the `draws` draws, tracking how many of the minority color
    // remain; the update is the standard inverse-transform step of
    // Kachitvichyanukul & Schnabel's HYP algorithm.
    let d1 = total - draws as f64;
    let d2 = good.min(bad);
    let mut y = d2;
    let mut k = draws as f64;
    while y > 0.0 {
        let u = rng.next_f64();
        y -= (u + y / (d1 + k)).floor();
        k -= 1.0;
        if k == 0.0 {
            break;
        }
    }
    let z = (d2 - y.max(0.0)) as u64;
    if good > bad {
        draws - z
    } else {
        z
    }
}

/// HRUA: ratio-of-uniforms rejection; O(1) expected draws (Stadlober).
fn hrua<R: Rng64 + ?Sized>(rng: &mut R, popsize: f64, good: f64, bad: f64, sample: u64) -> u64 {
    const D1: f64 = 1.7155277699214135; // 2·√(2/e)
    const D2: f64 = 0.8989161620588988; // 3 − 2·√(3/e)

    let mingoodbad = good.min(bad);
    let maxgoodbad = good.max(bad);
    let sample_f = sample as f64;
    let m = sample_f.min(popsize - sample_f);
    let d4 = mingoodbad / popsize;
    let d5 = 1.0 - d4;
    let d6 = m * d4 + 0.5;
    let d7 = ((popsize - m) * sample_f * d4 * d5 / (popsize - 1.0) + 0.5).sqrt();
    let d8 = D1 * d7 + D2;
    let d9 = ((m + 1.0) * (mingoodbad + 1.0) / (popsize + 2.0)).floor();
    let d10 = loggamma(d9 + 1.0)
        + loggamma(mingoodbad - d9 + 1.0)
        + loggamma(m - d9 + 1.0)
        + loggamma(maxgoodbad - m + d9 + 1.0);
    let d11 = (m + 1.0)
        .min(mingoodbad + 1.0)
        .min((d6 + 16.0 * d7).floor());

    let z = loop {
        let x = rng.next_f64_open();
        let y = rng.next_f64();
        let w = d6 + d8 * (y - 0.5) / x;
        if w < 0.0 || w >= d11 {
            continue;
        }
        let z = w.floor();
        let t = d10
            - (loggamma(z + 1.0)
                + loggamma(mingoodbad - z + 1.0)
                + loggamma(m - z + 1.0)
                + loggamma(maxgoodbad - m + z + 1.0));
        // Squeeze accept.
        if x * (4.0 - x) - 3.0 <= t {
            break z;
        }
        // Squeeze reject.
        if x * (x - t) >= 1.0 {
            continue;
        }
        // Full acceptance test.
        if 2.0 * x.ln() <= t {
            break z;
        }
    };

    let z = if good > bad { m - z } else { z };
    let z = if m < sample_f { good - z } else { z };
    z as u64
}

/// Draw `X ~ Hypergeometric(total, good, draws)`: the number of "good"
/// elements in a uniform `draws`-subset of a `total`-element universe
/// containing `good` good ones.
///
/// The result always lies in the exact support
/// `[max(0, draws − bad), min(draws, good)]`, which the splitting
/// recursions rely on for count conservation.
pub fn hypergeometric<R: Rng64 + ?Sized>(rng: &mut R, total: u128, good: u128, draws: u64) -> u64 {
    assert!(good <= total, "good {good} exceeds total {total}");
    assert!(
        (draws as u128) <= total,
        "draws {draws} exceed total {total}"
    );
    let bad = total - good;
    // Exact support bounds.
    let lo = (draws as u128).saturating_sub(bad).min(u64::MAX as u128) as u64;
    let hi = (draws as u128).min(good).min(u64::MAX as u128) as u64;
    if lo == hi {
        return lo; // degenerate: includes draws == 0, good == 0, good == total
    }
    let total_f = total as f64;
    let good_f = good as f64;
    let bad_f = bad as f64;
    let m = (draws as f64).min(total_f - draws as f64);
    let x = if m < 10.0 {
        hyp(rng, total_f, good_f, bad_f, draws)
    } else {
        hrua(rng, total_f, good_f, bad_f, draws)
    };
    x.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kagen_util::Mt64;

    #[test]
    fn support_exact() {
        let mut rng = Mt64::new(1);
        for &(total, good, draws) in &[
            (10u128, 3u128, 5u64),
            (100, 100, 40),
            (100, 0, 40),
            (50, 25, 50),
            (1 << 80, 1 << 79, 1 << 20),
            (7, 6, 7),
        ] {
            let bad = total - good;
            for _ in 0..200 {
                let x = hypergeometric(&mut rng, total, good, draws) as u128;
                assert!(
                    x <= (draws as u128).min(good),
                    "{total} {good} {draws}: {x}"
                );
                assert!(
                    x >= (draws as u128).saturating_sub(bad),
                    "{total} {good} {draws}: {x}"
                );
            }
        }
    }

    #[test]
    fn mean_small_regime() {
        // draws < 10 → HYP path. E[X] = draws·good/total.
        let (total, good, draws) = (1000u128, 400u128, 8u64);
        let reps = 40_000;
        let mut rng = Mt64::new(2);
        let sum: u64 = (0..reps)
            .map(|_| hypergeometric(&mut rng, total, good, draws))
            .sum();
        let mean = sum as f64 / reps as f64;
        let expect = draws as f64 * good as f64 / total as f64; // 3.2
        let var = expect * (1.0 - 0.4) * (total - draws as u128) as f64 / (total - 1) as f64;
        let se = (var / reps as f64).sqrt();
        assert!((mean - expect).abs() < 5.0 * se, "mean {mean} vs {expect}");
    }

    #[test]
    fn mean_large_regime() {
        // HRUA path. 2^40 universe, half good, 2^16 draws.
        let (total, good, draws) = (1u128 << 40, 1u128 << 39, 1u64 << 16);
        let reps = 300;
        let mut rng = Mt64::new(3);
        let sum: u64 = (0..reps)
            .map(|_| hypergeometric(&mut rng, total, good, draws))
            .sum();
        let mean = sum as f64 / reps as f64;
        let expect = draws as f64 * 0.5;
        let se = (expect * 0.5 / reps as f64).sqrt();
        assert!((mean - expect).abs() < 6.0 * se, "mean {mean} vs {expect}");
    }

    #[test]
    fn exact_distribution_tiny() {
        // Hypergeometric(10, 4, 3): compare to exact pmf by chi-square.
        // pmf(k) = C(4,k)·C(6,3−k)/C(10,3), k = 0..3.
        let pmf = [20.0 / 120.0, 60.0 / 120.0, 36.0 / 120.0, 4.0 / 120.0];
        let reps = 60_000u64;
        let mut rng = Mt64::new(4);
        let mut obs = [0u64; 4];
        for _ in 0..reps {
            obs[hypergeometric(&mut rng, 10, 4, 3) as usize] += 1;
        }
        let mut chi2 = 0.0;
        for k in 0..4 {
            let e = pmf[k] * reps as f64;
            chi2 += (obs[k] as f64 - e) * (obs[k] as f64 - e) / e;
        }
        // χ²_{0.999, 3 dof} ≈ 16.3 — generous margin.
        assert!(chi2 < 20.0, "chi2 {chi2}, obs {obs:?}");
    }

    #[test]
    fn splitting_conserves_counts() {
        // The G(n,m) recursion pattern: X1 + X2 + X3 == count always.
        let mut rng = Mt64::new(5);
        for _ in 0..2000 {
            let (u1, u2, u3) = (5000u128, 12_000u128, 3000u128);
            let count = 7777u64;
            let x1 = hypergeometric(&mut rng, u1 + u2 + u3, u1, count);
            let x2 = hypergeometric(&mut rng, u2 + u3, u2, count - x1);
            let x3 = count - x1 - x2;
            assert!(x1 as u128 <= u1 && x2 as u128 <= u2 && (x3 as u128) <= u3);
            assert_eq!(x1 + x2 + x3, count);
        }
    }
}
