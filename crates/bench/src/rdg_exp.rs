//! RDG experiments: Fig. 12 (weak scaling 2D/3D), Fig. 13 (strong scaling
//! 2D/3D).

use crate::support::*;
use kagen_core::{Rdg2d, Rdg3d};

/// Fig. 12: weak scaling of the Delaunay generators.
pub fn fig12_weak_scaling(fast: bool) -> String {
    let per_pe: Vec<u64> = if fast {
        vec![1 << 9]
    } else {
        vec![1 << 11, 1 << 13]
    };
    let pes: Vec<usize> = if fast { vec![1, 4] } else { vec![1, 4, 16, 64] };
    let mut rows = Vec::new();
    for &npp in &per_pe {
        for &p in &pes {
            let n = npp * p as u64;
            let g2 = run_generator(&Rdg2d::new(n).with_seed(11).with_chunks(p));
            let g3 = run_generator(&Rdg3d::new(n).with_seed(11).with_chunks(p));
            rows.push(vec![
                format!("2^{}", npp.ilog2()),
                p.to_string(),
                ms(g2.time),
                format!("{:.2}", g2.imbalance),
                ms(g3.time),
                format!("{:.2}", g3.imbalance),
            ]);
        }
    }
    report(
        "fig12",
        "weak scaling RDG 2D/3D",
        "Nearly constant time after the initial halo-overhead step at \
         small P; the halo rarely grows beyond the directly adjacent \
         cells, so no further rise beyond ~2^8 PEs (paper §8.5).",
        format_table(
            "Fig. 12 (emulated parallel time)",
            &[
                "n/P",
                "P",
                "2D time ms",
                "2D imbalance",
                "3D time ms",
                "3D imbalance",
            ],
            &rows,
        ),
    )
}

/// Fig. 13: strong scaling of the Delaunay generators.
pub fn fig13_strong_scaling(fast: bool) -> String {
    let ns: Vec<u64> = if fast {
        vec![1 << 12]
    } else {
        vec![1 << 14, 1 << 16]
    };
    let pes: Vec<usize> = if fast { vec![1, 4] } else { vec![1, 4, 16, 64] };
    let mut rows = Vec::new();
    for &n in &ns {
        let mut base2 = 0.0;
        let mut base3 = 0.0;
        for &p in &pes {
            let g2 = run_generator(&Rdg2d::new(n).with_seed(13).with_chunks(p));
            let g3 = run_generator(&Rdg3d::new(n).with_seed(13).with_chunks(p));
            if p == pes[0] {
                base2 = g2.time.as_secs_f64();
                base3 = g3.time.as_secs_f64();
            }
            rows.push(vec![
                format!("2^{}", n.ilog2()),
                p.to_string(),
                ms(g2.time),
                format!("{:.1}", base2 / g2.time.as_secs_f64().max(1e-9)),
                ms(g3.time),
                format!("{:.1}", base3 / g3.time.as_secs_f64().max(1e-9)),
            ]);
        }
    }
    report(
        "fig13",
        "strong scaling RDG 2D/3D",
        "Near-linear speedup while chunks hold enough cells; the halo \
         share grows as chunks shrink, flattening the curve.",
        format_table(
            "Fig. 13 (speedup vs smallest P)",
            &[
                "n",
                "P",
                "2D time ms",
                "2D speedup",
                "3D time ms",
                "3D speedup",
            ],
            &rows,
        ),
    )
}
