//! GPGPU Barabási–Albert generation.
//!
//! The Sanders–Schulz recomputation scheme makes BA edge slots independent:
//! slot `i`'s target is resolved by replaying a hash-seeded chain of
//! virtual-array reads, a pure function of `(instance seed, slot)`. That is
//! exactly the shape the accelerator model wants — the host plans one
//! device block per fixed-size slot range and every block resolves its
//! chains with no inter-block communication, so the concatenated output is
//! **bit-identical** to [`kagen_core::BarabasiAlbert::fill_edges`].
//!
//! Unlike R-MAT's branchless descent, chain resolution *does* diverge:
//! each step halves the position in expectation, so chain lengths vary
//! across a warp (O(1) expected, O(log) w.h.p.). The simulation surfaces
//! that as divergent warp steps — the realistic cost of running BA on a
//! SIMD device, visible in [`crate::device::DeviceStats`].

use crate::device::Device;
use kagen_core::BarabasiAlbert;
use kagen_util::seed::stream;
use kagen_util::splitmix::mix2;
use kagen_util::{derive_seed, Rng64, SplitMix64};

/// Slots per device block: matches the R-MAT seed-block granularity so
/// grid sizes stay comparable across generators.
const SLOT_BLOCK: u64 = 4096;

/// Barabási–Albert on the simulated device, bit-identical to the CPU
/// [`BarabasiAlbert`].
#[derive(Clone, Debug)]
pub struct GpuBarabasiAlbert {
    n: u64,
    d: u64,
    seed: u64,
}

impl GpuBarabasiAlbert {
    /// `n` vertices each attaching `d` edges.
    pub fn new(n: u64, d: u64) -> Self {
        GpuBarabasiAlbert { n, d, seed: 1 }
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generate all edge slots on `dev`, in slot order — the byte-identical
    /// device twin of `fill_edges(0..n·d)`.
    pub fn generate(&self, dev: &Device) -> Vec<(u64, u64)> {
        let slots = self.n * self.d;
        let jobs: Vec<(u64, u64)> = (0..slots.div_ceil(SLOT_BLOCK))
            .map(|b| {
                let lo = b * SLOT_BLOCK;
                (lo, (lo + SLOT_BLOCK).min(slots))
            })
            .collect();
        let inner = BarabasiAlbert::new(self.n, self.d).with_seed(self.seed);
        let inner = &inner;
        // The slot-resolution base seed, replayed below for divergence
        // accounting (same derivation as the CPU resolver).
        let base = derive_seed(self.seed, &[stream::BA]);
        let per_block: Vec<Vec<(u64, u64)>> = dev.launch(jobs, move |ctx, (lo, hi)| {
            let mut out = Vec::with_capacity((hi - lo) as usize);
            inner.fill_edges(lo..hi, &mut out);
            // Divergence accounting: a lane whose chain resolves on the
            // first replay (the drawn position is even) retires early;
            // longer chains keep their warp stepping. Replay each slot's
            // first draw to classify the lanes.
            ctx.simd_for(out.len(), |i| {
                let pos = 2 * (lo + i as u64) + 1;
                let mut rng = SplitMix64::new(mix2(base, pos));
                rng.next_below(pos) & 1 == 0
            });
            ctx.gmem_write(out.len() * 16);
            out
        });
        per_block.concat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;

    #[test]
    fn device_bit_identical_to_cpu() {
        let (n, d) = (3000u64, 3u64);
        let cpu_gen = BarabasiAlbert::new(n, d).with_seed(77);
        let mut cpu = Vec::new();
        cpu_gen.fill_edges(0..n * d, &mut cpu);
        let dev = Device::new(DeviceConfig::default());
        let gpu = GpuBarabasiAlbert::new(n, d).with_seed(77).generate(&dev);
        assert_eq!(gpu, cpu);
        let s = dev.stats();
        assert_eq!(s.blocks_executed, (n * d).div_ceil(SLOT_BLOCK));
        assert!(s.divergent_warps > 0, "BA chains must show divergence");
    }

    #[test]
    fn partial_slot_range_blocks() {
        // A slot count that is not a multiple of the block size still
        // covers every slot exactly once.
        let (n, d) = (1234u64, 5u64);
        let dev = Device::new(DeviceConfig::default());
        let gpu = GpuBarabasiAlbert::new(n, d).with_seed(9).generate(&dev);
        assert_eq!(gpu.len() as u64, n * d);
        for (slot, &(u, _)) in gpu.iter().enumerate() {
            assert_eq!(u, slot as u64 / d);
        }
    }
}
