//! End-to-end coverage of the `kagen-pipeline` subsystem: shard
//! write→read round trips for every format, external merge equivalence
//! with the in-RAM merge paths, determinism under threading, and the
//! acceptance property that shards reassemble to exactly the instance
//! `generate_directed` / `generate_undirected` defines.

use kagen_repro::core::prelude::*;
use kagen_repro::core::streaming::StreamingGenerator;
use kagen_repro::pipeline::{
    external_merge_to_vec, stream_into, write_sharded, CountingSink, DegreeStatsSink, InstanceMeta,
    Manifest, ShardFormat, ShardReader, StreamConfig, TeeSink,
};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kagen_it_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn meta(model: &str, seed: u64) -> InstanceMeta {
    InstanceMeta {
        model: model.into(),
        params: String::new(),
        seed,
    }
}

/// Shard round trip for one format: on-disk bytes decode to exactly the
/// per-PE stream order, for a directed and an undirected model.
fn roundtrip_format(format: ShardFormat) {
    let tag = format!("rt_{}", format.extension());

    let directed = Rmat::new(9, 4000).with_seed(3).with_chunks(8);
    let dir = tmp_dir(&tag);
    let manifest = write_sharded(
        &directed,
        &meta("rmat", 3),
        &StreamConfig::new(&dir, format),
    )
    .unwrap();
    assert_eq!(manifest.format, format.name());
    let reader = ShardReader::open(&dir).unwrap();
    let back = reader.read_all().unwrap();
    let mut expect = Vec::new();
    directed.stream_all(&mut |u, v| expect.push((u, v)));
    assert_eq!(back.edges, expect, "{tag}: directed stream order");
    std::fs::remove_dir_all(&dir).ok();

    let undirected = GnmUndirected::new(400, 3000).with_seed(5).with_chunks(7);
    let dir = tmp_dir(&format!("{tag}_u"));
    write_sharded(
        &undirected,
        &meta("gnm_undirected", 5),
        &StreamConfig::new(&dir, format),
    )
    .unwrap();
    let reader = ShardReader::open(&dir).unwrap();
    let back = reader.read_all().unwrap();
    let mut expect = Vec::new();
    undirected.stream_all(&mut |u, v| expect.push((u, v)));
    assert_eq!(back.edges, expect, "{tag}: undirected stream order");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_roundtrip_edge_list_format() {
    roundtrip_format(ShardFormat::EdgeList);
}

#[test]
fn shard_roundtrip_binary_format() {
    roundtrip_format(ShardFormat::Binary);
}

#[test]
fn shard_roundtrip_compressed_format() {
    roundtrip_format(ShardFormat::Compressed);
}

#[test]
fn shards_reassemble_to_generate_directed() {
    // The acceptance criterion: reading a streamed R-MAT run back yields
    // exactly the edges `generate_directed` produces for the same seed.
    let gen = Rmat::new(12, 50_000).with_seed(1).with_chunks(64);
    let dir = tmp_dir("accept");
    write_sharded(
        &gen,
        &meta("rmat", 1),
        &StreamConfig::new(&dir, ShardFormat::Compressed),
    )
    .unwrap();
    let mut streamed = ShardReader::open(&dir).unwrap().read_all().unwrap();
    streamed.edges.sort_unstable();
    let reference = generate_directed(&gen);
    assert_eq!(streamed.edges, reference.edges);
    assert_eq!(streamed.n, reference.n);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn external_merge_equals_generate_undirected() {
    // Index-based, spatial and hyperbolic models; small budgets force
    // multi-run merges.
    let dir = tmp_dir("xmerge_gnm");
    let gen = GnmUndirected::new(500, 6000).with_seed(11).with_chunks(9);
    write_sharded(
        &gen,
        &meta("gnm_undirected", 11),
        &StreamConfig::new(&dir, ShardFormat::Compressed),
    )
    .unwrap();
    let reader = ShardReader::open(&dir).unwrap();
    let (edges, stats) = external_merge_to_vec(&reader, &dir.join("runs"), 500).unwrap();
    assert_eq!(edges, generate_undirected(&gen).edges);
    assert!(stats.max_buffered <= 500);
    assert!(stats.runs >= 2, "budget 500 must spill multiple runs");
    std::fs::remove_dir_all(&dir).ok();

    let dir = tmp_dir("xmerge_rgg");
    let rgg = Rgg2d::new(600, 0.05).with_seed(4).with_chunks(16);
    write_sharded(
        &rgg,
        &meta("rgg2d", 4),
        &StreamConfig::new(&dir, ShardFormat::Binary),
    )
    .unwrap();
    let reader = ShardReader::open(&dir).unwrap();
    let (edges, _) = external_merge_to_vec(&reader, &dir.join("runs"), 1000).unwrap();
    assert_eq!(edges, generate_undirected(&rgg).edges);
    std::fs::remove_dir_all(&dir).ok();

    let dir = tmp_dir("xmerge_rhg");
    let rhg = Rhg::new(400, 6.0, 2.8).with_seed(8).with_chunks(5);
    write_sharded(
        &rhg,
        &meta("rhg", 8),
        &StreamConfig::new(&dir, ShardFormat::Compressed),
    )
    .unwrap();
    let reader = ShardReader::open(&dir).unwrap();
    let (edges, _) = external_merge_to_vec(&reader, &dir.join("runs"), 2000).unwrap();
    assert_eq!(edges, generate_undirected(&rhg).edges);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn external_merge_equals_generate_directed() {
    // Directed instances keep multi-edges (R-MAT can repeat an edge).
    let gen = Rmat::new(7, 6000).with_seed(2).with_chunks(6);
    let dir = tmp_dir("xmerge_dir");
    write_sharded(
        &gen,
        &meta("rmat", 2),
        &StreamConfig::new(&dir, ShardFormat::Compressed),
    )
    .unwrap();
    let reader = ShardReader::open(&dir).unwrap();
    let (edges, stats) = external_merge_to_vec(&reader, &dir.join("runs"), 512).unwrap();
    let reference = generate_directed(&gen);
    assert_eq!(edges, reference.edges);
    assert_eq!(stats.edges_out, 6000, "directed merge must keep duplicates");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shards_byte_identical_across_thread_counts() {
    // Determinism under threading, across formats and models.
    let models: Vec<(&str, Box<dyn StreamingGenerator>)> = vec![
        (
            "ba",
            Box::new(BarabasiAlbert::new(600, 3).with_seed(6).with_chunks(12)),
        ),
        (
            "gnp_undirected",
            Box::new(GnpUndirected::new(300, 0.05).with_seed(9).with_chunks(8)),
        ),
    ];
    for (name, gen) in &models {
        for format in [
            ShardFormat::EdgeList,
            ShardFormat::Binary,
            ShardFormat::Compressed,
        ] {
            let d1 = tmp_dir(&format!("det1_{name}_{}", format.extension()));
            let dn = tmp_dir(&format!("detn_{name}_{}", format.extension()));
            let m1 = write_sharded(
                gen.as_ref(),
                &meta(name, 0),
                &StreamConfig::new(&d1, format).with_threads(1),
            )
            .unwrap();
            let mn = write_sharded(
                gen.as_ref(),
                &meta(name, 0),
                &StreamConfig::new(&dn, format).with_threads(8),
            )
            .unwrap();
            assert_eq!(m1, mn, "{name}: manifests must match");
            for s in &m1.shards {
                let a = std::fs::read(d1.join(&s.file)).unwrap();
                let b = std::fs::read(dn.join(&s.file)).unwrap();
                assert_eq!(a, b, "{name} {:?} shard {}", format, s.pe);
            }
            std::fs::remove_dir_all(&d1).ok();
            std::fs::remove_dir_all(&dn).ok();
        }
    }
}

#[test]
fn manifest_records_instance_metadata() {
    let gen = GnmDirected::new(256, 2000).with_seed(77).with_chunks(4);
    let dir = tmp_dir("meta");
    let written = write_sharded(
        &gen,
        &InstanceMeta {
            model: "gnm_directed".into(),
            params: "n=256 m=2000".into(),
            seed: 77,
        },
        &StreamConfig::new(&dir, ShardFormat::Compressed),
    )
    .unwrap();
    let loaded = Manifest::load(&dir).unwrap();
    assert_eq!(loaded, written);
    assert_eq!(loaded.model, "gnm_directed");
    assert_eq!(loaded.params, "n=256 m=2000");
    assert_eq!(loaded.seed, 77);
    assert_eq!(loaded.n, 256);
    assert!(loaded.directed);
    assert_eq!(loaded.chunks, 4);
    assert_eq!(loaded.edges, 2000);
    assert_eq!(loaded.shards.len(), 4);
    let sum: u64 = loaded.shards.iter().map(|s| s.edges).sum();
    assert_eq!(sum, 2000);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sink_composition_matches_materialized_stats() {
    // Tee a counting sink with a degree accumulator; the streaming stats
    // must equal those computed from the materialized instance.
    let gen = GnpDirected::new(500, 0.01).with_seed(13).with_chunks(6);
    let mut tee = TeeSink::new(
        CountingSink::new(),
        DegreeStatsSink::new(gen.num_vertices(), true),
    );
    let count = stream_into(&gen, &mut tee).unwrap();
    let el = generate_directed(&gen);
    assert_eq!(count, el.edges.len() as u64);
    let (out_deg, in_deg) = tee.b.stats();
    let expect = kagen_repro::graph::stats::DegreeStats::directed(&el);
    assert_eq!(out_deg, expect.out_deg);
    assert_eq!(in_deg.unwrap(), expect.in_deg);
}

#[test]
fn streaming_mode_never_materializes() {
    // A structural guarantee stand-in for the RSS acceptance test (which
    // the CLI demonstrates): drive a 10^6-edge instance through the sink
    // driver while keeping only O(1) state.
    let gen = Rmat::new(16, 1 << 20).with_seed(1).with_chunks(32);
    let mut sink = CountingSink::new();
    let n = stream_into(&gen, &mut sink).unwrap();
    assert_eq!(n, 1 << 20);
}
