//! Geometric skip lengths for Bernoulli sampling (Batagelj–Brandes):
//! instead of testing every element of a universe with probability `p`,
//! jump directly over the gaps between selected elements.

use kagen_util::Rng64;

/// Number of consecutive failures before the next success of a Bernoulli
/// process with success probability `p` — i.e. the gap length to skip.
///
/// `P(skip = k) = (1−p)^k · p` via inversion: `⌊ln U / ln(1−p)⌋` with
/// `U ~ (0,1)`. For `p ≥ 1` the skip is 0; for `p ≤ 0` it is `u64::MAX`
/// (no further successes within any finite universe).
#[inline]
pub fn geometric_skip<R: Rng64 + ?Sized>(rng: &mut R, p: f64) -> u64 {
    if p >= 1.0 {
        return 0;
    }
    if p <= 0.0 {
        return u64::MAX;
    }
    let u = rng.next_f64_open();
    // ln(1−p) via ln_1p: exact even when p is below f64 granularity.
    let denom = (-p).ln_1p();
    if denom == 0.0 {
        return u64::MAX;
    }
    let skip = (u.ln() / denom).floor();
    if skip >= u64::MAX as f64 {
        u64::MAX
    } else {
        skip as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kagen_util::Mt64;

    #[test]
    fn degenerate_probabilities() {
        let mut rng = Mt64::new(1);
        assert_eq!(geometric_skip(&mut rng, 1.0), 0);
        assert_eq!(geometric_skip(&mut rng, 1.5), 0);
        assert_eq!(geometric_skip(&mut rng, 0.0), u64::MAX);
        assert_eq!(geometric_skip(&mut rng, -0.1), u64::MAX);
    }

    #[test]
    fn zero_skip_probability_is_p() {
        // P(skip = 0) = p.
        let mut rng = Mt64::new(2);
        let p = 0.3;
        let reps = 100_000;
        let zeros = (0..reps)
            .filter(|_| geometric_skip(&mut rng, p) == 0)
            .count();
        let frac = zeros as f64 / reps as f64;
        let se = (p * (1.0 - p) / reps as f64).sqrt();
        assert!((frac - p).abs() < 5.0 * se, "frac {frac}");
    }

    #[test]
    fn mean_matches_geometric() {
        // E[skip] = (1−p)/p.
        let mut rng = Mt64::new(3);
        let p = 0.05;
        let reps = 100_000u64;
        let sum: u64 = (0..reps).map(|_| geometric_skip(&mut rng, p)).sum();
        let mean = sum as f64 / reps as f64;
        let expect = (1.0 - p) / p; // 19
        let sd = ((1.0 - p) / (p * p)).sqrt();
        let se = sd / (reps as f64).sqrt();
        assert!((mean - expect).abs() < 5.0 * se, "mean {mean} vs {expect}");
    }

    #[test]
    fn tiny_p_does_not_overflow() {
        let mut rng = Mt64::new(4);
        let skip = geometric_skip(&mut rng, 1e-300);
        assert!(skip > 1u64 << 40); // astronomically large, but defined
    }
}
