//! Empirical checks of the paper's analytical claims (Lemmas/Corollaries
//! of §7) plus the sRHG memory-footprint comparison its design argues for.
//!
//! These are not figures in the paper's evaluation, but they are the load-
//! bearing analysis behind the RHG generators: if they failed to hold in
//! this reimplementation, the reproduction of Figs. 14–16 would be
//! coincidental.

use crate::support::*;
use kagen_core::rhg::common::RhgInstance;
use kagen_core::{Rhg, Srhg};
use kagen_geometry::hyperbolic::PrePoint;

/// Corollary 11: with annulus height ⌊ln 2 / α⌋ the candidate selection
/// overestimates the true query mass by at most √e ≈ 1.64 per annulus.
/// We measure candidates-tested / edges-found per query pass, which the
/// corollary (plus the Θ(1) fraction of in-range candidates of Lemma 13)
/// bounds by a small constant.
#[allow(clippy::needless_range_loop)] // annulus indices drive three arrays
pub fn overestimation(fast: bool) -> String {
    let n: u64 = if fast { 1 << 12 } else { 1 << 14 };
    let mut rows = Vec::new();
    for &gamma in &[2.2f64, 2.6, 3.0] {
        let inst = RhgInstance::new(n, 8.0, gamma, 41);
        let cosh_r = inst.space.cosh_r;
        // All points, bucketed by cell, as the generator stores them.
        let mut cells: Vec<Vec<Vec<PrePoint>>> = Vec::new();
        for a in 0..inst.num_annuli() {
            let mut per: Vec<Vec<PrePoint>> = Vec::new();
            for c in 0..inst.ann_cells[a] {
                per.push(inst.cell_points(a, c));
            }
            cells.push(per);
        }
        let mut candidates = 0u64;
        let mut edges = 0u64;
        // Outward queries from every point (the sequential algorithm of
        // Lemma 13: only annuli at or above the query's own).
        for a in 0..inst.num_annuli() {
            for cl in &cells[a] {
                for v in cl {
                    for j in a..inst.num_annuli() {
                        if inst.ann_counts[j] == 0 {
                            continue;
                        }
                        let b = inst.space.bounds[j].max(1e-12);
                        let dt = inst.space.delta_theta(v.r, b);
                        let mut cand_cells = Vec::new();
                        inst.cells_overlapping(j, v.theta - dt, v.theta + dt, &mut |c| {
                            cand_cells.push(c)
                        });
                        for c in cand_cells {
                            for u in &cells[j][c as usize] {
                                if u.id == v.id {
                                    continue;
                                }
                                candidates += 1;
                                edges += v.is_adjacent(u, cosh_r) as u64;
                            }
                        }
                    }
                }
            }
        }
        rows.push(vec![
            format!("{gamma}"),
            candidates.to_string(),
            edges.to_string(),
            format!("{:.2}", candidates as f64 / edges.max(1) as f64),
        ]);
    }
    report(
        "lemma-oe",
        "candidate-selection overestimation (Cor. 11)",
        "Per annulus the angular window overestimates the query circle's \
         mass by ≤ √e ≈ 1.64 for any α > 1/2; across annuli plus cell \
         granularity the tested/adjacent ratio stays a small constant \
         (single digits), which is what makes the query phase O(m).",
        format_table(
            "Candidates tested vs edges found (outward queries)",
            &["γ", "candidates", "edges", "ratio"],
            &rows,
        ),
    )
}

/// Lemma 15: the points living in the *global annuli* (those whose widest
/// request exceeds a chunk width 2π/P) number O(n^{1−α}·(P·d̄)^α) in
/// expectation — sublinear in n, polynomial in P.
pub fn global_annuli(fast: bool) -> String {
    let n: u64 = if fast { 1 << 14 } else { 1 << 16 };
    let d = 8.0;
    let mut rows = Vec::new();
    for &gamma in &[2.4f64, 3.0] {
        let alpha = (gamma - 1.0) / 2.0;
        let inst = RhgInstance::new(n, d, gamma, 17);
        for p in [2usize, 8, 32, 128] {
            let width = std::f64::consts::TAU / p as f64;
            // Global annuli: the widest own-annulus request of a point at
            // the annulus' lower bound exceeds a chunk width (§7.2).
            let mut global_points = 0u64;
            for i in 0..inst.num_annuli() {
                let b = inst.space.bounds[i].max(1e-12);
                if 2.0 * inst.space.delta_theta(b, b) > width {
                    global_points += inst.ann_counts[i];
                }
            }
            let formula = (n as f64).powf(1.0 - alpha) * (p as f64 * d).powf(alpha);
            rows.push(vec![
                format!("{gamma}"),
                p.to_string(),
                global_points.to_string(),
                format!("{formula:.0}"),
                format!("{:.2}", global_points as f64 / formula),
            ]);
        }
    }
    report(
        "lemma-global",
        "global-annuli point count (Lemma 15)",
        "E[n_G(P)] = O(n^{1−α}(P·d̄)^α): the replicated inner region grows \
         only polynomially with P and sublinearly with n; the measured/\
         formula ratio must stay bounded (annulus quantization makes it \
         step-shaped, not smooth).",
        format_table(
            "Points in global annuli",
            &["γ", "P", "measured", "n^{1−α}(Pd̄)^α", "ratio"],
            &rows,
        ),
    )
}

/// The sRHG memory argument (§7.2/§8.6): per PE, the streaming generator
/// generates (and must hold) far fewer points than the query-centric RHG,
/// whose inward searches recompute cells across the whole disk. The paper
/// reports ~16× larger instances fitting in memory.
pub fn memory_footprint(fast: bool) -> String {
    let n: u64 = if fast { 1 << 13 } else { 1 << 15 };
    let mut rows = Vec::new();
    for p in [4usize, 16, 64] {
        let rhg = Rhg::new(n, 8.0, 2.8).with_seed(23).with_chunks(p);
        let srhg = Srhg::new(n, 8.0, 2.8).with_seed(23).with_chunks(p);
        // RHG must *hold* every point it generates (locals + every cell a
        // query reaches) for the duration of its queries.
        let rhg_max = (0..p)
            .map(|pe| rhg.generate_pe_stats(pe).1)
            .max()
            .unwrap_or(0);
        // sRHG generates a similar number of points but only *holds* the
        // sweep state: replicated globals + the active-request windows.
        let (mut srhg_gen, mut srhg_live) = (0u64, 0u64);
        for pe in 0..p {
            let s = srhg.generate_pe_stats(pe).1;
            srhg_gen = srhg_gen.max(s.generated_points);
            srhg_live = srhg_live.max(s.peak_state);
        }
        rows.push(vec![
            p.to_string(),
            format!("{:.0}", n as f64 / p as f64),
            rhg_max.to_string(),
            srhg_gen.to_string(),
            srhg_live.to_string(),
            format!("{:.1}x", rhg_max as f64 / srhg_live.max(1) as f64),
        ]);
    }
    report(
        "abl-mem",
        "per-PE held state: RHG vs sRHG (§7.2 memory argument)",
        "The query-centric generator holds every point it generates (its \
         sector plus every recomputed cell) until its queries finish. The \
         streaming generator touches a comparable number of points but \
         holds only the replicated global annuli plus the sweep's active- \
         request windows — that gap is why the paper reports fitting ~16× \
         larger instances per node with sRHG.",
        format_table(
            "Per-PE maxima (n vertices, d̄=8, γ=2.8)",
            &[
                "P",
                "n/P",
                "RHG held",
                "sRHG generated",
                "sRHG held",
                "held ratio",
            ],
            &rows,
        ),
    )
}

/// The simulated-GPGPU pipelines (§4.3.1, §5.3): same instances as the CPU
/// generators, with the accelerator cost counters.
pub fn gpu_pipelines(fast: bool) -> String {
    use kagen_core::{generate_directed, generate_undirected, GnmDirected, Rgg2d};
    use kagen_gpgpu::{Device, GpuGnmDirected, GpuRgg2d};

    let mut rows = Vec::new();

    let (n, m) = if fast {
        (1u64 << 14, 1u64 << 18)
    } else {
        (1u64 << 16, 1u64 << 21)
    };
    let dev = Device::default();
    let (gpu_edges, t_gpu) =
        time_once(|| GpuGnmDirected::new(n, m).with_seed(51).generate(&dev).len() as u64);
    let (cpu_edges, t_cpu) = time_once(|| {
        generate_directed(&GnmDirected::new(n, m).with_seed(51))
            .edges
            .len() as u64
    });
    assert_eq!(gpu_edges, cpu_edges);
    let s = dev.stats();
    rows.push(vec![
        format!("G(n,m) n=2^{}", n.trailing_zeros()),
        gpu_edges.to_string(),
        ms(t_cpu),
        ms(t_gpu),
        s.blocks_executed.to_string(),
        s.warp_steps.to_string(),
        format!(
            "{:.1}%",
            100.0 * s.divergent_warps as f64 / s.warp_steps.max(1) as f64
        ),
    ]);

    let rgg_n: u64 = if fast { 1 << 12 } else { 1 << 14 };
    let r = Rgg2d::threshold_radius(rgg_n, 1);
    let dev = Device::default();
    let (gpu_edges, t_gpu) =
        time_once(|| GpuRgg2d::new(rgg_n, r).with_seed(51).generate(&dev).len() as u64);
    let (cpu_edges, t_cpu) = time_once(|| {
        generate_undirected(&Rgg2d::new(rgg_n, r).with_seed(51))
            .edges
            .len() as u64
    });
    assert_eq!(gpu_edges, cpu_edges);
    let s = dev.stats();
    rows.push(vec![
        format!("RGG2D n=2^{}", rgg_n.trailing_zeros()),
        gpu_edges.to_string(),
        ms(t_cpu),
        ms(t_gpu),
        s.blocks_executed.to_string(),
        s.warp_steps.to_string(),
        format!(
            "{:.1}%",
            100.0 * s.divergent_warps as f64 / s.warp_steps.max(1) as f64
        ),
    ]);

    report(
        "abl-gpu",
        "simulated GPGPU pipelines (§4.3.1, §5.3)",
        "Output is bit-identical to the CPU generators (asserted here and \
         in tests). The counters show the accelerator shape: ER is one \
         sampling kernel with no divergence; RGG runs the three-step \
         count/scan/fill pipeline whose distance tests diverge within \
         warps. Simulation timings carry no GPU speedup — the point is \
         the decomposition, not the silicon.",
        format_table(
            "CPU vs simulated-device generation (identical output)",
            &[
                "instance",
                "edges",
                "CPU ms",
                "sim ms",
                "blocks",
                "warp steps",
                "divergent",
            ],
            &rows,
        ),
    )
}
