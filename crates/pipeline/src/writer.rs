//! The sharded parallel writer: run every PE of a [`StreamingGenerator`]
//! on the `kagen-runtime` thread pool and stream each PE's edges straight
//! into its own shard file — one shard per PE, a `manifest.json` tying
//! them together, and peak memory per worker equal to the generator's
//! state (no edge vector exists anywhere on this path).

use crate::manifest::{Manifest, RunHeader, ShardInfo};
use crate::sink::{checksum_step, BinarySink, CompressedSink, EdgeSink, TextSink};
use kagen_core::streaming::StreamingGenerator;
use kagen_obs::{Counter, Histogram};
use std::fs::File;
use std::io::{self, BufWriter};
use std::path::{Path, PathBuf};

/// Batches pushed into shard sinks (one per emitted slice).
static SINK_BATCHES: Counter = Counter::new("sink.batches");
/// Edges pushed into shard sinks.
static SINK_EDGES: Counter = Counter::new("sink.edges");
/// Bytes of finished shard files (from file metadata after the sink
/// closes — telemetry never touches the output stream itself).
static SINK_BYTES: Counter = Counter::new("sink.bytes_written");
/// Shards written to completion.
static SINK_SHARDS: Counter = Counter::new("sink.shards");
/// Wall time of each completed shard write, in microseconds — the
/// per-stage latency distribution that survives cross-rank federation
/// bucket-wise (`kagen-metrics/v2`).
static SINK_SHARD_WALL_US: Histogram = Histogram::new("sink.shard_wall_us");

/// On-disk shard encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardFormat {
    /// `u v` text lines.
    EdgeList,
    /// Raw little-endian `u64` pairs.
    Binary,
    /// Varint+delta compressed (`KGSHRD02`).
    Compressed,
}

impl ShardFormat {
    /// Parse a CLI/manifest format name.
    pub fn parse(name: &str) -> Option<ShardFormat> {
        match name {
            "edge-list" => Some(ShardFormat::EdgeList),
            "binary" => Some(ShardFormat::Binary),
            "compressed" => Some(ShardFormat::Compressed),
            _ => None,
        }
    }

    /// Canonical name (manifest `format` field).
    pub fn name(&self) -> &'static str {
        match self {
            ShardFormat::EdgeList => "edge-list",
            ShardFormat::Binary => "binary",
            ShardFormat::Compressed => "compressed",
        }
    }

    /// Shard file extension.
    pub fn extension(&self) -> &'static str {
        match self {
            ShardFormat::EdgeList => "txt",
            ShardFormat::Binary => "bin",
            ShardFormat::Compressed => "kgc",
        }
    }
}

/// File name of PE `pe`'s shard.
pub fn shard_file_name(pe: usize, format: ShardFormat) -> String {
    format!("shard-{pe:05}.{}", format.extension())
}

/// Configuration of a sharded streaming run.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Output directory (created if missing).
    pub dir: PathBuf,
    /// Shard encoding.
    pub format: ShardFormat,
    /// Worker threads (0 = all cores).
    pub threads: usize,
}

impl StreamConfig {
    /// Config writing `format` shards into `dir` with default threads.
    pub fn new(dir: impl Into<PathBuf>, format: ShardFormat) -> Self {
        StreamConfig {
            dir: dir.into(),
            format,
            threads: 0,
        }
    }

    /// Set the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Descriptive metadata the manifest records about the instance.
#[derive(Clone, Debug)]
pub struct InstanceMeta {
    /// Model name.
    pub model: String,
    /// Human-readable parameter string.
    pub params: String,
    /// Instance seed.
    pub seed: u64,
}

impl InstanceMeta {
    /// The run-identity header for `gen` written as `format` shards —
    /// the fields every flavor of manifest (and the cluster ledger)
    /// agree on.
    pub fn header<G: StreamingGenerator + ?Sized>(
        &self,
        gen: &G,
        format: ShardFormat,
    ) -> RunHeader {
        RunHeader {
            model: self.model.clone(),
            params: self.params.clone(),
            seed: self.seed,
            n: gen.num_vertices(),
            directed: gen.directed(),
            chunks: gen.num_chunks() as u64,
            format: format.name().to_string(),
        }
    }
}

fn format_sink(path: &Path, format: ShardFormat, n: u64) -> io::Result<Box<dyn EdgeSink>> {
    let file = BufWriter::new(File::create(path)?);
    Ok(match format {
        ShardFormat::EdgeList => Box::new(TextSink::new(file)),
        ShardFormat::Binary => Box::new(BinarySink::new(file)),
        ShardFormat::Compressed => Box::new(CompressedSink::new(file, n)?),
    })
}

/// Stream one PE into a shard file; returns its manifest entry.
///
/// Runs on the batched path: the generator fills a worker-local batch
/// buffer ([`kagen_core::streaming::BATCH_EDGES`] edges) and the sink
/// consumes whole slices — checksum folding and format encoding happen
/// in tight loops, with one virtual call per batch instead of per edge.
pub fn write_shard<G: StreamingGenerator + ?Sized>(
    gen: &G,
    pe: usize,
    dir: &Path,
    format: ShardFormat,
) -> io::Result<ShardInfo> {
    let shard_span = kagen_obs::span("pipeline.write_shard");
    let file = shard_file_name(pe, format);
    let path = dir.join(&file);
    let mut sink = format_sink(&path, format, gen.num_vertices())?;
    let mut checksum = 0u64;
    let mut buf = Vec::with_capacity(kagen_core::streaming::BATCH_EDGES);
    gen.stream_pe_batched(pe, &mut buf, &mut |edges| {
        SINK_BATCHES.incr();
        SINK_EDGES.add(edges.len() as u64);
        for &(u, v) in edges {
            checksum = checksum_step(checksum, u, v);
        }
        sink.push_batch(edges);
    });
    let edges = sink.finish()?;
    SINK_SHARDS.incr();
    SINK_SHARD_WALL_US.record((shard_span.finish() * 1e6) as u64);
    if kagen_obs::metrics::enabled() {
        if let Ok(meta) = std::fs::metadata(&path) {
            SINK_BYTES.add(meta.len());
        }
    }
    Ok(ShardInfo {
        pe: pe as u64,
        file,
        edges,
        checksum,
    })
}

/// Generate the whole instance as one shard file per PE, in parallel,
/// and write the manifest. Per-worker memory is the generator state plus
/// one write buffer; it does not grow with the edge count.
///
/// Shard bytes are a pure function of `(generator, pe, format)` — the
/// thread count changes neither content nor file boundaries.
pub fn write_sharded<G: StreamingGenerator + ?Sized>(
    gen: &G,
    meta: &InstanceMeta,
    cfg: &StreamConfig,
) -> io::Result<Manifest> {
    std::fs::create_dir_all(&cfg.dir)?;
    let results: Vec<io::Result<ShardInfo>> =
        kagen_runtime::run_chunks(gen.num_chunks(), cfg.threads, |pe| {
            write_shard(gen, pe, &cfg.dir, cfg.format)
        });
    let mut shards = Vec::with_capacity(results.len());
    for r in results {
        shards.push(r?);
    }
    // Same constructor the multi-process coordinator uses — the two
    // paths cannot drift apart structurally.
    let manifest = meta
        .header(gen, cfg.format)
        .federate(shards)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    manifest.save(&cfg.dir)?;
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kagen_core::prelude::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kagen_writer_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn writes_one_shard_per_pe_plus_manifest() {
        let gen = GnmDirected::new(200, 1500).with_seed(3).with_chunks(4);
        let dir = tmp_dir("shards");
        let meta = InstanceMeta {
            model: "gnm_directed".into(),
            params: "n=200 m=1500".into(),
            seed: 3,
        };
        let cfg = StreamConfig::new(&dir, ShardFormat::Compressed);
        let manifest = write_sharded(&gen, &meta, &cfg).unwrap();
        assert_eq!(manifest.chunks, 4);
        assert_eq!(manifest.edges, 1500);
        assert_eq!(manifest.shards.len(), 4);
        for s in &manifest.shards {
            assert!(dir.join(&s.file).exists(), "missing {}", s.file);
        }
        assert!(dir.join("manifest.json").exists());
        let loaded = Manifest::load(&dir).unwrap();
        assert_eq!(loaded, manifest);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn thread_count_never_changes_shard_bytes() {
        let gen = GnmUndirected::new(300, 2500).with_seed(7).with_chunks(6);
        let meta = InstanceMeta {
            model: "gnm_undirected".into(),
            params: String::new(),
            seed: 7,
        };
        let d1 = tmp_dir("t1");
        let dn = tmp_dir("tn");
        for format in [
            ShardFormat::EdgeList,
            ShardFormat::Binary,
            ShardFormat::Compressed,
        ] {
            let m1 = write_sharded(&gen, &meta, &StreamConfig::new(&d1, format).with_threads(1))
                .unwrap();
            let mn = write_sharded(&gen, &meta, &StreamConfig::new(&dn, format).with_threads(8))
                .unwrap();
            assert_eq!(m1, mn);
            for s in &m1.shards {
                let a = std::fs::read(d1.join(&s.file)).unwrap();
                let b = std::fs::read(dn.join(&s.file)).unwrap();
                assert_eq!(a, b, "{:?} shard {} differs by thread count", format, s.pe);
            }
        }
        std::fs::remove_dir_all(&d1).ok();
        std::fs::remove_dir_all(&dn).ok();
    }

    #[test]
    fn format_names_roundtrip() {
        for f in [
            ShardFormat::EdgeList,
            ShardFormat::Binary,
            ShardFormat::Compressed,
        ] {
            assert_eq!(ShardFormat::parse(f.name()), Some(f));
        }
        assert_eq!(ShardFormat::parse("nonsense"), None);
    }
}
