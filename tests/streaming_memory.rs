//! Peak-allocation regression tests for the cell-cursor streaming core:
//! the per-PE working set of the spatial/hyperbolic generators must stay
//! **sublinear in the per-PE edge count** — the whole point of replacing
//! the materializing fallback. Two instruments:
//!
//! * a counting global allocator (every byte allocated during a
//!   `stream_pe` pass, high-water above the pre-pass baseline), and
//! * the frontier cache's own `peak_points` accounting
//!   (`stream_pe_instrumented`).
//!
//! Everything runs inside a single `#[test]` so no sibling test's
//! allocations pollute the high-water mark.

use kagen_repro::core::prelude::*;
use kagen_util::alloc::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Peak bytes allocated while `f` runs, above the entry baseline.
fn alloc_peak_during(f: impl FnOnce()) -> u64 {
    CountingAlloc::peak_during(f)
}

#[test]
fn streaming_working_set_is_sublinear_in_per_pe_edges() {
    // ---- RGG, counting allocator ------------------------------------
    // Fixed radius ⇒ fixed grid; growing n grows the per-PE edge count
    // ~quadratically (denser cells) while the frontier holds only the
    // active cell neighborhood (~linear in n). The allocator sees
    // everything: frontier cache, per-cell vectors, count-tree
    // transients.
    let run_rgg = |n: u64| -> (u64, u64) {
        let gen = Rgg2d::new(n, 0.05).with_seed(3).with_chunks(4);
        let mut edges = 0u64;
        let peak = alloc_peak_during(|| {
            gen.stream_pe(0, &mut |_, _| edges += 1);
        });
        (edges, peak)
    };
    let (edges_small, peak_small) = run_rgg(8_000);
    let (edges_large, peak_large) = run_rgg(32_000);
    let edge_ratio = edges_large as f64 / edges_small as f64;
    let peak_ratio = peak_large as f64 / peak_small.max(1) as f64;
    assert!(edge_ratio > 10.0, "edge growth too small: {edge_ratio}");
    assert!(
        peak_ratio * 2.0 < edge_ratio,
        "RGG streaming peak allocation must grow much slower than edges: \
         peak {peak_small} -> {peak_large} bytes (x{peak_ratio:.1}), \
         edges {edges_small} -> {edges_large} (x{edge_ratio:.1})"
    );
    // Absolute bound: far below the materialized edge list (16 B/edge).
    assert!(
        peak_large * 8 < edges_large * 16,
        "peak {peak_large} B is not small against {} B of materialized edges",
        edges_large * 16
    );

    // ---- RGG, frontier accounting -----------------------------------
    // The cache's own high-water mark tells the same story in points.
    let frontier_rgg = |n: u64| -> (u64, u64) {
        let gen = Rgg2d::new(n, 0.05).with_seed(3).with_chunks(4);
        let mut edges = 0u64;
        let stats = gen.stream_pe_instrumented(0, &mut |_, _| edges += 1);
        (edges, stats.peak_points)
    };
    let (e1, p1) = frontier_rgg(2_000);
    let (e2, p2) = frontier_rgg(32_000);
    assert!(e2 > 100 * e1, "edges must explode: {e1} -> {e2}");
    assert!(
        p2 < 40 * p1.max(1),
        "RGG frontier points must stay ~linear in n: {p1} -> {p2} \
         while edges went {e1} -> {e2}"
    );

    // ---- RHG, frontier accounting -----------------------------------
    // Growing n grows the per-PE edge count linearly; the query-window
    // frontier grows distinctly slower (the Δθ windows shrink with R).
    let frontier_rhg = |n: u64| -> (u64, u64) {
        let gen = Rhg::new(n, 8.0, 2.8).with_seed(3).with_chunks(8);
        let mut edges = 0u64;
        let stats = gen.stream_pe_instrumented(0, &mut |_, _| edges += 1);
        (edges, stats.peak_points)
    };
    let (h1, q1) = frontier_rhg(4_000);
    let (h2, q2) = frontier_rhg(64_000);
    let edge_ratio = h2 as f64 / h1 as f64;
    let peak_ratio = q2 as f64 / q1.max(1) as f64;
    assert!(edge_ratio > 8.0, "edge growth too small: {edge_ratio}");
    assert!(
        peak_ratio * 2.0 < edge_ratio,
        "RHG streaming frontier must grow much slower than edges: \
         peak {q1} -> {q2} points (x{peak_ratio:.1}), \
         edges {h1} -> {h2} (x{edge_ratio:.1})"
    );

    // ---- RHG, counting allocator: flat against degree growth --------
    // Same n, heavier instance (per-PE edges grow with the average
    // degree): the full working set must stay far below the
    // materialized edge list.
    let run_rhg_alloc = |deg: f64| -> (u64, u64) {
        let gen = Rhg::new(30_000, deg, 2.8).with_seed(3).with_chunks(8);
        let mut edges = 0u64;
        let peak = alloc_peak_during(|| {
            gen.stream_pe(0, &mut |_, _| edges += 1);
        });
        (edges, peak)
    };
    let (d1_edges, _) = run_rhg_alloc(6.0);
    let (d2_edges, d2_peak) = run_rhg_alloc(24.0);
    assert!(d2_edges > 2 * d1_edges);
    assert!(
        d2_peak * 2 < d2_edges * 16,
        "RHG streaming peak {d2_peak} B is not small against {} B of \
         materialized edges",
        d2_edges * 16
    );
}
