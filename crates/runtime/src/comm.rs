//! Channel-based all-to-all communicator with volume accounting.
//!
//! This exists **only** to implement the *communicating* baseline
//! (Holtgrewe et al.'s distributed RGG generator, §3.2), whose point-sort
//! and border-exchange phases are the very cost the paper's generators
//! eliminate. The per-PE exchanged byte count is tracked so the Fig. 9
//! comparison can report communication volume alongside time.
//!
//! Messages carry a round number: successive collective calls are matched
//! by round, so a fast peer entering round `k+1` cannot corrupt a slow
//! peer still completing round `k` (the MPI tag-matching discipline).

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Factory for the endpoints of a P-party communicator.
#[derive(Debug)]
pub struct Communicator;

type Packet<T> = (usize, u64, Vec<T>);

/// One party's handle: senders to everyone plus its own receiver.
pub struct Endpoint<T> {
    rank: usize,
    round: u64,
    senders: Vec<Sender<Packet<T>>>,
    receiver: Receiver<Packet<T>>,
    /// Early arrivals from peers already in a later round.
    pending: Vec<Packet<T>>,
    bytes_sent: Arc<AtomicU64>,
}

// Manual impl: channel handles have no useful `Debug`; identify the
// endpoint by its coordinates instead.
impl<T> std::fmt::Debug for Endpoint<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("rank", &self.rank)
            .field("round", &self.round)
            .field("parties", &self.senders.len())
            .finish_non_exhaustive()
    }
}

impl Communicator {
    /// Create `p` endpoints sharing one volume counter.
    pub fn endpoints<T>(p: usize) -> (Vec<Endpoint<T>>, Arc<AtomicU64>) {
        let bytes = Arc::new(AtomicU64::new(0));
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        let endpoints = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| Endpoint {
                rank,
                round: 0,
                senders: senders.clone(),
                receiver,
                pending: Vec::new(),
                bytes_sent: Arc::clone(&bytes),
            })
            .collect();
        (endpoints, bytes)
    }
}

impl<T: Send> Endpoint<T> {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.senders.len()
    }

    /// Personalized all-to-all: `outgoing[i]` goes to rank `i`; returns the
    /// messages received, indexed by source rank. Every rank must call this
    /// collectively and the same number of times (like `MPI_Alltoallv`).
    pub fn all_to_all(&mut self, outgoing: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let p = self.parties();
        assert_eq!(outgoing.len(), p, "need one message per rank");
        let round = self.round;
        self.round += 1;
        for (dest, msg) in outgoing.into_iter().enumerate() {
            if dest != self.rank {
                self.bytes_sent.fetch_add(
                    (msg.len() * std::mem::size_of::<T>()) as u64,
                    Ordering::Relaxed,
                );
            }
            self.senders[dest]
                .send((self.rank, round, msg))
                .expect("peer endpoint dropped");
        }
        let mut incoming: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
        let mut received = 0;
        // Drain any early arrivals stashed by a previous round's receive
        // loop before blocking on the channel.
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].1 == round {
                let (src, _, msg) = self.pending.swap_remove(i);
                assert!(incoming[src].is_none(), "duplicate message from {src}");
                incoming[src] = Some(msg);
                received += 1;
            } else {
                i += 1;
            }
        }
        while received < p {
            let (src, r, msg) = self.receiver.recv().expect("channel closed");
            if r != round {
                debug_assert!(r > round, "message from a past round");
                self.pending.push((src, r, msg));
                continue;
            }
            assert!(incoming[src].is_none(), "duplicate message from {src}");
            incoming[src] = Some(msg);
            received += 1;
        }
        incoming.into_iter().map(|m| m.unwrap()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_routes_correctly() {
        let p = 4;
        let (endpoints, bytes) = Communicator::endpoints::<u64>(p);
        let results: Vec<Vec<Vec<u64>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = endpoints
                .into_iter()
                .map(|mut ep| {
                    scope.spawn(move || {
                        let outgoing: Vec<Vec<u64>> =
                            (0..p).map(|d| vec![(ep.rank() * 10 + d) as u64]).collect();
                        ep.all_to_all(outgoing)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Rank r receives from source s the value s*10 + r.
        for (r, incoming) in results.iter().enumerate() {
            for (s, msg) in incoming.iter().enumerate() {
                assert_eq!(msg, &vec![(s * 10 + r) as u64]);
            }
        }
        // 4 ranks × 3 remote messages × 8 bytes.
        assert_eq!(bytes.load(Ordering::Relaxed), 4 * 3 * 8);
    }

    #[test]
    fn self_messages_free() {
        let (endpoints, bytes) = Communicator::endpoints::<u8>(1);
        let mut ep = endpoints.into_iter().next().unwrap();
        let incoming = ep.all_to_all(vec![vec![1, 2, 3]]);
        assert_eq!(incoming, vec![vec![1, 2, 3]]);
        assert_eq!(bytes.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn empty_messages() {
        let p = 3;
        let (endpoints, _) = Communicator::endpoints::<u64>(p);
        let results: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = endpoints
                .into_iter()
                .map(|mut ep| scope.spawn(move || ep.all_to_all(vec![vec![], vec![], vec![]])))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for incoming in results {
            assert_eq!(incoming.len(), p);
            assert!(incoming.iter().all(|m| m.is_empty()));
        }
    }

    #[test]
    fn successive_rounds_do_not_mix() {
        // A fast peer racing ahead into round 2 must not corrupt a slow
        // peer's round-1 receive (the deadlock this module once had).
        let p = 4;
        let rounds = 50;
        let (endpoints, _) = Communicator::endpoints::<u64>(p);
        let ok = std::thread::scope(|scope| {
            let handles: Vec<_> = endpoints
                .into_iter()
                .map(|mut ep| {
                    scope.spawn(move || {
                        for round in 0..rounds {
                            let outgoing: Vec<Vec<u64>> = (0..p)
                                .map(|d| vec![round * 1000 + (ep.rank() * 10 + d) as u64])
                                .collect();
                            let incoming = ep.all_to_all(outgoing);
                            for (s, msg) in incoming.iter().enumerate() {
                                assert_eq!(
                                    msg,
                                    &vec![round * 1000 + (s * 10 + ep.rank()) as u64],
                                    "round {round} corrupted"
                                );
                            }
                        }
                        true
                    })
                })
                .collect();
            handles.into_iter().all(|h| h.join().unwrap())
        });
        assert!(ok);
    }
}
