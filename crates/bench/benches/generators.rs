//! Criterion benches: one group per generator family, sized for quick
//! regression tracking (the paper-scale experiments live in the
//! `experiments` binary).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kagen_core::prelude::*;

fn bench_er(c: &mut Criterion) {
    let mut g = c.benchmark_group("er");
    g.sample_size(20);
    g.bench_function("gnm_directed/2^16", |b| {
        let gen = GnmDirected::new(1 << 12, 1 << 16)
            .with_seed(1)
            .with_chunks(4);
        b.iter(|| black_box(generate_parallel(&gen, 4).len()))
    });
    g.bench_function("gnm_undirected/2^16", |b| {
        let gen = GnmUndirected::new(1 << 12, 1 << 16)
            .with_seed(1)
            .with_chunks(4);
        b.iter(|| black_box(generate_parallel(&gen, 4).len()))
    });
    g.bench_function("gnp_directed/2^16", |b| {
        let gen = GnpDirected::new(1 << 12, 1.0 / 256.0)
            .with_seed(1)
            .with_chunks(4);
        b.iter(|| black_box(generate_parallel(&gen, 4).len()))
    });
    g.finish();
}

fn bench_spatial(c: &mut Criterion) {
    let mut g = c.benchmark_group("spatial");
    g.sample_size(10);
    g.bench_function("rgg2d/2^14", |b| {
        let n = 1 << 14;
        let gen = Rgg2d::new(n, Rgg2d::threshold_radius(n, 4))
            .with_seed(1)
            .with_chunks(4);
        b.iter(|| black_box(generate_parallel(&gen, 4).len()))
    });
    g.bench_function("rgg3d/2^13", |b| {
        let n = 1 << 13;
        let gen = Rgg3d::new(n, Rgg3d::threshold_radius(n, 8))
            .with_seed(1)
            .with_chunks(8);
        b.iter(|| black_box(generate_parallel(&gen, 4).len()))
    });
    g.bench_function("rdg2d/2^12", |b| {
        let gen = Rdg2d::new(1 << 12).with_seed(1).with_chunks(4);
        b.iter(|| black_box(generate_parallel(&gen, 4).len()))
    });
    g.bench_function("rdg3d/2^10", |b| {
        let gen = Rdg3d::new(1 << 10).with_seed(1).with_chunks(8);
        b.iter(|| black_box(generate_parallel(&gen, 4).len()))
    });
    g.finish();
}

fn bench_hyperbolic(c: &mut Criterion) {
    let mut g = c.benchmark_group("hyperbolic");
    g.sample_size(10);
    g.bench_function("rhg/2^12", |b| {
        let gen = Rhg::new(1 << 12, 16.0, 3.0).with_seed(1).with_chunks(4);
        b.iter(|| black_box(generate_parallel(&gen, 4).len()))
    });
    g.bench_function("srhg/2^12", |b| {
        let gen = Srhg::new(1 << 12, 16.0, 3.0).with_seed(1).with_chunks(4);
        b.iter(|| black_box(generate_parallel(&gen, 4).len()))
    });
    g.bench_function("soft_rhg/2^12_T0.5", |b| {
        let gen = SoftRhg::new(1 << 12, 16.0, 3.0, 0.5)
            .with_seed(1)
            .with_chunks(4);
        b.iter(|| black_box(generate_parallel(&gen, 4).len()))
    });
    g.finish();
}

fn bench_gpgpu(c: &mut Criterion) {
    use kagen_gpgpu::{exclusive_scan, Device, GpuGnmDirected, GpuRgg2d};
    let mut g = c.benchmark_group("gpgpu-sim");
    g.sample_size(10);
    g.bench_function("device_scan/2^16", |b| {
        let dev = Device::default();
        let xs: Vec<u64> = (0..1u64 << 16).map(|i| i % 17).collect();
        b.iter(|| black_box(exclusive_scan(&dev, &xs).1))
    });
    g.bench_function("gpu_gnm/2^16_edges", |b| {
        let dev = Device::default();
        let gen = GpuGnmDirected::new(1 << 12, 1 << 16).with_seed(1);
        b.iter(|| black_box(gen.generate(&dev).len()))
    });
    g.bench_function("gpu_rgg2d/2^12", |b| {
        let dev = Device::default();
        let n = 1u64 << 12;
        let gen = GpuRgg2d::new(n, 0.02).with_seed(1);
        b.iter(|| black_box(gen.generate(&dev).len()))
    });
    g.finish();
}

fn bench_misc(c: &mut Criterion) {
    let mut g = c.benchmark_group("misc");
    g.sample_size(20);
    g.bench_function("ba/2^14_edges", |b| {
        let gen = BarabasiAlbert::new(1 << 12, 4).with_seed(1).with_chunks(4);
        b.iter(|| black_box(generate_parallel(&gen, 4).len()))
    });
    g.bench_function("rmat/2^16_edges", |b| {
        let gen = Rmat::new(12, 1 << 16).with_seed(1).with_chunks(4);
        b.iter(|| black_box(generate_parallel(&gen, 4).len()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_er,
    bench_spatial,
    bench_hyperbolic,
    bench_misc,
    bench_gpgpu
);
criterion_main!(benches);
