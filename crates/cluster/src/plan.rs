//! Rank planning: which PEs does each worker process own?
//!
//! The plan is nothing more than [`kagen_runtime::split_ranges`] — the
//! same contiguous, balanced partition the in-process pool uses — lifted
//! to a list of [`RankTask`]s the supervisor can spawn, retry and record
//! in the ledger. On resume, the plan is instead computed from the set of
//! *missing* PEs: contiguous gaps coalesce into one task each, so a
//! single corrupt shard becomes a single one-PE worker, not a full rank
//! re-run.

use std::ops::Range;

/// One unit of worker work: a contiguous PE range to generate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankTask {
    /// Position in the current spawn plan (also the ledger `rank` id).
    pub rank: usize,
    /// First PE of the range.
    pub pe_begin: usize,
    /// One past the last PE.
    pub pe_end: usize,
}

impl RankTask {
    /// The task's PE range.
    pub fn pes(&self) -> Range<usize> {
        self.pe_begin..self.pe_end
    }
}

/// The fresh-run plan: split `0..chunks` into at most `workers`
/// contiguous, balanced rank ranges.
pub fn plan_ranks(chunks: usize, workers: usize) -> Vec<RankTask> {
    kagen_runtime::split_ranges(chunks, workers)
        .into_iter()
        .enumerate()
        .map(|(rank, r)| RankTask {
            rank,
            pe_begin: r.start,
            pe_end: r.end,
        })
        .collect()
}

/// The resume plan: coalesce an ascending list of missing PEs into one
/// task per contiguous range, then split any range larger than
/// `ceil(missing / workers)` so that up to `workers` tasks exist — a
/// single corrupt shard still becomes a single one-PE worker, while a
/// mostly-failed run (one big contiguous gap) keeps the full worker
/// parallelism instead of resuming on one process.
pub fn plan_repairs(missing_pes: &[usize], workers: usize) -> Vec<RankTask> {
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    for &pe in missing_pes {
        match ranges.last_mut() {
            Some((_, end)) if *end == pe => *end = pe + 1,
            _ => ranges.push((pe, pe + 1)),
        }
    }
    let target = missing_pes.len().div_ceil(workers.max(1)).max(1);
    let mut tasks: Vec<RankTask> = Vec::new();
    for (begin, end) in ranges {
        let mut lo = begin;
        while lo < end {
            let hi = (lo + target).min(end);
            tasks.push(RankTask {
                rank: tasks.len(),
                pe_begin: lo,
                pe_end: hi,
            });
            lo = hi;
        }
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_plan_partitions_all_pes() {
        let plan = plan_ranks(64, 3);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan[0].pe_begin, 0);
        assert_eq!(plan.last().unwrap().pe_end, 64);
        for pair in plan.windows(2) {
            assert_eq!(pair[0].pe_end, pair[1].pe_begin);
        }
    }

    #[test]
    fn more_workers_than_pes_yields_one_pe_tasks() {
        let plan = plan_ranks(3, 8);
        assert_eq!(plan.len(), 3);
        assert!(plan.iter().all(|t| t.pe_end - t.pe_begin == 1));
    }

    #[test]
    fn repairs_coalesce_contiguous_gaps() {
        assert_eq!(plan_repairs(&[], 4), vec![]);
        let tasks = plan_repairs(&[2, 3, 4, 7, 9, 10], 1);
        assert_eq!(
            tasks,
            vec![
                RankTask {
                    rank: 0,
                    pe_begin: 2,
                    pe_end: 5
                },
                RankTask {
                    rank: 1,
                    pe_begin: 7,
                    pe_end: 8
                },
                RankTask {
                    rank: 2,
                    pe_begin: 9,
                    pe_end: 11
                },
            ]
        );
    }

    #[test]
    fn repairs_split_large_gaps_across_workers() {
        // A mostly-failed run: one big contiguous gap must be split so
        // every worker gets a share, not resumed by a single task.
        let missing: Vec<usize> = (0..64).collect();
        let tasks = plan_repairs(&missing, 8);
        assert_eq!(tasks.len(), 8);
        assert!(tasks.iter().all(|t| t.pe_end - t.pe_begin == 8));
        assert_eq!(tasks[0].pes(), 0..8);
        assert_eq!(tasks[7].pes(), 56..64);
        // Scattered one-PE damage still yields one-PE tasks.
        let tasks = plan_repairs(&[3, 17, 40], 8);
        assert_eq!(tasks.len(), 3);
        assert!(tasks.iter().all(|t| t.pe_end - t.pe_begin == 1));
    }
}
