//! Shared measurement helpers for the experiment harness.

use kagen_core::Generator;
use kagen_runtime::scaling::PeTiming;
use std::time::{Duration, Instant};

pub use kagen_runtime::scaling::format_table;

/// One emulated run of a generator: per-PE busy times (executed on all
/// available cores), emulated parallel time = max over PEs, and the total
/// number of emitted edges.
#[derive(Debug)]
pub struct RunStats {
    /// Emulated parallel time (slowest PE).
    pub time: Duration,
    /// Sum of per-PE busy times.
    pub work: Duration,
    /// Load imbalance max/mean.
    pub imbalance: f64,
    /// Edges emitted across PEs (with cross-PE redundancy for undirected
    /// generators).
    pub edges: u64,
}

/// Execute all PEs of `gen`, timing each.
///
/// PEs are executed on a *single* worker so the per-PE busy times are free
/// of memory-bandwidth and SMT interference; the emulated parallel time
/// `max_i t_i` is then exactly what ≥P dedicated cores would achieve (the
/// generators are communication-free, so there is nothing else to model).
pub fn run_generator<G: Generator>(gen: &G) -> RunStats {
    let results = kagen_runtime::run_chunks_timed(gen.num_chunks(), 1, |pe| {
        gen.generate_pe(pe).edges.len() as u64
    });
    let timing = PeTiming::new(results.iter().map(|(_, d)| *d).collect());
    RunStats {
        time: timing.max_time(),
        work: timing.total_work(),
        imbalance: timing.imbalance(),
        edges: results.iter().map(|(e, _)| *e).sum(),
    }
}

/// Time a closure once (for sequential baselines).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Milliseconds with 2 decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Million edges per second.
pub fn meps(edges: u64, d: Duration) -> String {
    let s = d.as_secs_f64();
    if s == 0.0 {
        "inf".into()
    } else {
        format!("{:.1}", edges as f64 / s / 1e6)
    }
}

/// A paper-vs-measured block: the free-text expectation from the paper and
/// the measured table.
pub fn report(id: &str, title: &str, expectation: &str, table: String) -> String {
    format!("## {id} — {title}\n\n*Paper expectation:* {expectation}\n\n{table}")
}
