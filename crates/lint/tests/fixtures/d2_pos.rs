// Fixture: D2 must fire — wall-clock, env, and core-count reads in a
// crate that is not on the observability allowlist.
use std::time::Instant;

pub fn chunk_count() -> usize {
    let t0 = Instant::now();
    let override_n = std::env::var("KAGEN_CHUNKS").ok();
    let n = match override_n {
        Some(v) => v.parse().unwrap_or(1),
        None => std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
    };
    let _ = t0.elapsed();
    n
}
