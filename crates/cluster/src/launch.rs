//! The coordinator: plan ranks, supervise workers, maintain the ledger,
//! federate the final manifest.
//!
//! The coordinator never generates an edge itself. It spawns workers
//! (separate OS processes via [`ProcessRunner`], or plain function calls
//! via [`InProcessRunner`]), records each rank's outcome in the ledger
//! after it finishes, and — once every PE's shard is done — validates
//! the per-shard checksums and writes the federated `manifest.json`. A
//! failed or killed worker leaves its PEs `pending`; a later
//! [`resume`](LaunchOptions::resume) launch re-plans exactly the missing
//! or invalid PEs and reuses everything else.

use crate::heartbeat;
use crate::ledger::{Ledger, RankStatus};
use crate::metrics::RankMetrics;
use crate::plan::{plan_ranks, plan_repairs, RankTask};
use crate::trace::{RankTrace, WorkerTrace};
use crate::worker::{run_worker, FailureInjection};
use kagen_core::streaming::StreamingGenerator;
use kagen_obs::{trace, Counter, Histogram, HistogramSnapshot};
use kagen_pipeline::{
    validate_shard, validate_shard_sampled, Manifest, PartialManifest, RunHeader, ShardFormat,
};
use std::collections::HashSet;
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Rank retries consumed by in-launch retry budgets.
static CLUSTER_RETRIES: Counter = Counter::new("cluster.retries");
/// Ranks that exhausted their budget and failed.
static CLUSTER_RANK_FAILURES: Counter = Counter::new("cluster.rank_failures");
/// Shards that passed a validation pass (resume reuse or post-run).
static CLUSTER_SHARDS_VALIDATED: Counter = Counter::new("cluster.shards_validated");
/// Shards that failed validation and were queued for regeneration.
static CLUSTER_SHARDS_INVALIDATED: Counter = Counter::new("cluster.shards_invalidated");
/// Wall time of each rank's successful attempt, in microseconds.
static CLUSTER_RANK_WALL_US: Histogram = Histogram::new("cluster.rank_wall_us");
/// Workers killed because their heartbeat stopped advancing.
static CLUSTER_STALLS: Counter = Counter::new("cluster.stalls");

/// How the coordinator executes one rank task. The two implementations
/// — a re-exec'd OS process and an in-process function call — run the
/// identical worker code path ([`run_worker`]); the trait exists so
/// supervision, ledger and resume logic can be tested (and used on one
/// machine) without process-spawn overhead, and so tests can inject
/// failures deterministically.
pub trait WorkerRunner: Sync {
    /// Execute `task`, returning the shard infos it produced.
    /// An `Err` marks the rank failed; its PEs stay pending.
    fn run(&self, task: &RankTask) -> io::Result<Vec<kagen_pipeline::ShardInfo>>;

    /// Worker-side telemetry for `task`'s just-finished run — e.g.
    /// parsed from the sidecars the worker process wrote. Called once
    /// after a successful [`WorkerRunner::run`]. The default reports
    /// none: in-process runs share the coordinator's process-global
    /// metrics and trace buffer, and attributing those to a single
    /// rank would double-count them.
    fn take_telemetry(&self, _task: &RankTask) -> RankTelemetry {
        RankTelemetry::default()
    }
}

/// What a runner hands the coordinator after a successful rank: the
/// worker's metric scalars, its full histogram snapshots, and (when the
/// worker traced) its span sidecar for federation.
#[derive(Clone, Debug, Default)]
pub struct RankTelemetry {
    /// Flat `(name, value)` counter scalars from the metrics sidecar.
    pub counters: Vec<(String, u64)>,
    /// Full histogram snapshots from the metrics sidecar.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// The worker's trace sidecar, if it wrote one.
    pub trace: Option<WorkerTrace>,
}

/// Spawn `exe worker <args> --pe-range a..b --rank r` as a child
/// process, wait for it, and collect its partial manifest.
#[derive(Debug)]
pub struct ProcessRunner {
    /// Binary to execute (normally `std::env::current_exe()` — the
    /// launcher re-execs itself).
    pub exe: PathBuf,
    /// Everything the worker needs except the PE range and rank: the
    /// model name, its parameters, seed, chunks, format, shard dir.
    pub worker_args: Vec<String>,
    /// Shard directory (to read partial manifests back).
    pub dir: PathBuf,
    /// Kill a worker whose heartbeat file has not *changed* within this
    /// window and report the attempt as failed (feeding the retry
    /// budget). `None` waits indefinitely, the pre-heartbeat behavior.
    /// Requires the workers to heartbeat (`--heartbeat`) — staleness is
    /// judged purely by file content changing under the coordinator's
    /// local clock, so no clock agreement with the worker is needed.
    pub stall_timeout: Option<Duration>,
}

/// How often the stall watchdog polls the child and its heartbeat.
const STALL_POLL: Duration = Duration::from_millis(50);

impl ProcessRunner {
    fn wait_with_stall_watchdog(
        &self,
        mut child: std::process::Child,
        task: &RankTask,
        timeout: Duration,
    ) -> io::Result<std::process::ExitStatus> {
        let (a, b) = (task.pe_begin as u64, task.pe_end as u64);
        let hb_path = self.dir.join(heartbeat::heartbeat_file_name(a, b));
        let mut last_content: Option<Vec<u8>> = None;
        let mut last_advance = Instant::now();
        loop {
            if let Some(status) = child.try_wait()? {
                return Ok(status);
            }
            if let Ok(bytes) = std::fs::read(&hb_path) {
                if last_content.as_deref() != Some(&bytes[..]) {
                    last_content = Some(bytes);
                    last_advance = Instant::now();
                }
            }
            if last_advance.elapsed() >= timeout {
                child.kill().ok();
                child.wait().ok();
                CLUSTER_STALLS.incr();
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "worker rank {} (PEs {}..{}) stalled: no heartbeat advance in {:.1}s",
                        task.rank,
                        task.pe_begin,
                        task.pe_end,
                        timeout.as_secs_f64()
                    ),
                ));
            }
            std::thread::sleep(STALL_POLL.min(timeout));
        }
    }
}

impl WorkerRunner for ProcessRunner {
    fn run(&self, task: &RankTask) -> io::Result<Vec<kagen_pipeline::ShardInfo>> {
        let mut cmd = std::process::Command::new(&self.exe);
        cmd.arg("worker")
            .args(&self.worker_args)
            .arg("--pe-range")
            .arg(format!("{}..{}", task.pe_begin, task.pe_end))
            .arg("--rank")
            .arg(task.rank.to_string());
        let result = match self.stall_timeout {
            Some(timeout) => self.wait_with_stall_watchdog(cmd.spawn()?, task, timeout),
            None => cmd.status(),
        };
        // A finished rank's heartbeat has served its purpose either
        // way: success ends the liveness question, and a failed/stalled
        // attempt must not leave bytes a retry would then have to
        // overwrite before the watchdog trusts the file again.
        std::fs::remove_file(self.dir.join(heartbeat::heartbeat_file_name(
            task.pe_begin as u64,
            task.pe_end as u64,
        )))
        .ok();
        let status = result?;
        if !status.success() {
            return Err(io::Error::other(format!(
                "worker rank {} (PEs {}..{}) exited with {status}",
                task.rank, task.pe_begin, task.pe_end
            )));
        }
        let part = PartialManifest::load(&self.dir, task.pe_begin as u64, task.pe_end as u64)?;
        // The ledger takes over as the record; drop the part file.
        std::fs::remove_file(self.dir.join(PartialManifest::file_name(
            task.pe_begin as u64,
            task.pe_end as u64,
        )))
        .ok();
        Ok(part.shards)
    }

    fn take_telemetry(&self, task: &RankTask) -> RankTelemetry {
        let (a, b) = (task.pe_begin as u64, task.pe_end as u64);
        // Absent sidecars (worker ran without telemetry) are not an
        // error; the rank entry simply carries no worker telemetry.
        let side = crate::metrics::load_sidecar(&self.dir, a, b)
            .ok()
            .flatten()
            .unwrap_or_default();
        std::fs::remove_file(self.dir.join(crate::metrics::sidecar_file_name(a, b))).ok();
        let worker_trace = crate::trace::load_sidecar(&self.dir, a, b).ok().flatten();
        std::fs::remove_file(self.dir.join(crate::trace::trace_sidecar_file_name(a, b))).ok();
        RankTelemetry {
            counters: side.counters,
            histograms: side.histograms,
            trace: worker_trace,
        }
    }
}

/// Run the worker code path in this process — same bytes on disk, no
/// fork/exec. Carries an optional failure injection per PE for
/// supervision and resume tests.
pub struct InProcessRunner<'a> {
    /// The generator every worker derives its slice from.
    pub gen: &'a dyn StreamingGenerator,
    /// Shard directory.
    pub dir: PathBuf,
    /// Shard format.
    pub format: ShardFormat,
    /// Worker threads per task (0 = all cores, 1 = serial).
    pub threads: usize,
    /// PEs whose generation should abort the owning task (tests).
    pub fail_pes: HashSet<usize>,
}

// Manual impl: trait objects carry no `Debug`; print everything else.
impl std::fmt::Debug for InProcessRunner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcessRunner")
            .field("dir", &self.dir)
            .field("format", &self.format)
            .field("threads", &self.threads)
            .field("fail_pes", &self.fail_pes)
            .finish_non_exhaustive()
    }
}

impl<'a> InProcessRunner<'a> {
    /// Runner for `gen` writing `format` shards into `dir`, serial per
    /// task, no injected failures.
    pub fn new(
        gen: &'a dyn StreamingGenerator,
        dir: impl Into<PathBuf>,
        format: ShardFormat,
    ) -> Self {
        InProcessRunner {
            gen,
            dir: dir.into(),
            format,
            threads: 1,
            fail_pes: HashSet::new(),
        }
    }
}

impl WorkerRunner for InProcessRunner<'_> {
    fn run(&self, task: &RankTask) -> io::Result<Vec<kagen_pipeline::ShardInfo>> {
        let inject = FailureInjection {
            fail_before_pe: task.pes().find(|pe| self.fail_pes.contains(pe)),
            ..Default::default()
        };
        let shards = run_worker(
            self.gen,
            &self.dir,
            self.format,
            task.pes(),
            self.threads,
            inject,
        )?;
        std::fs::remove_file(self.dir.join(PartialManifest::file_name(
            task.pe_begin as u64,
            task.pe_end as u64,
        )))
        .ok();
        Ok(shards)
    }
}

/// Default restart blocks fully decoded per shard by sampled validation
/// (`--validate sampled` without an explicit `=K`).
pub const SAMPLED_BLOCKS: usize = 4;

/// Ceiling of the exponential retry backoff: late attempts of a
/// persistent fault must not park a supervisor slot for hours.
pub const MAX_RETRY_BACKOFF: Duration = Duration::from_secs(30);

/// How shards are verified against their recorded state — both when a
/// resume decides which existing shards to reuse, and after a launch
/// before the manifest is federated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ValidateMode {
    /// Re-read every byte and compare the full edge-stream checksum —
    /// the end-to-end integrity guarantee, and the default.
    #[default]
    Full,
    /// Fast path for huge runs: size/structure checks plus `K` fully
    /// decoded, checksum-verified restart blocks per shard (see
    /// [`kagen_pipeline::validate_shard_sampled`]). Cuts resume latency
    /// from O(edges) to O(blocks + K·block); corruption inside an
    /// *unsampled* block can escape it — `K` is the operator's knob on
    /// that trade (`sampled=K` on the CLI; a `K` at or above the shard's
    /// block count decodes every block, i.e. full per-block coverage at
    /// a fraction of the full re-read's cost).
    Sampled(usize),
    /// Skip the post-run validation entirely (generation-time checksums
    /// are trusted). Resume-time reuse decisions still run the full
    /// re-read — reusing a shard nobody ever re-checked would silently
    /// break the byte-identity guarantee.
    None,
}

impl ValidateMode {
    /// Parse the CLI spelling: `full`, `none`, `sampled`, or
    /// `sampled=K` (K ≥ 1 decoded blocks per shard).
    pub fn parse(name: &str) -> Option<ValidateMode> {
        match name {
            "full" => Some(ValidateMode::Full),
            "sampled" => Some(ValidateMode::Sampled(SAMPLED_BLOCKS)),
            "none" => Some(ValidateMode::None),
            _ => {
                let k = name.strip_prefix("sampled=")?.parse().ok()?;
                (k >= 1).then_some(ValidateMode::Sampled(k))
            }
        }
    }
}

/// Validate `shards` (each against its recorded [`ShardInfo`]) in
/// parallel — one contiguous group per worker thread, like the merge's
/// reader workers — and return `(pe, cause)` for every failure,
/// ascending by PE. Sampled validation is per-shard independent work
/// (header walks + a few decoded blocks), so it parallelizes
/// embarrassingly; the full re-read benefits identically.
fn validate_shards_parallel(
    dir: &Path,
    format: ShardFormat,
    shards: &[kagen_pipeline::ShardInfo],
    validate: ValidateMode,
    workers: usize,
) -> Vec<(usize, io::Error)> {
    let check = |info: &kagen_pipeline::ShardInfo| -> io::Result<()> {
        match validate {
            ValidateMode::Sampled(k) => validate_shard_sampled(dir, format, info, k),
            ValidateMode::Full | ValidateMode::None => validate_shard(dir, format, info),
        }
    };
    let failures_in = |shards: &[kagen_pipeline::ShardInfo]| {
        shards
            .iter()
            .filter_map(|i| check(i).err().map(|e| (i.pe as usize, e)))
            .collect::<Vec<_>>()
    };
    let workers = workers.clamp(1, shards.len().max(1));
    let mut failed: Vec<(usize, io::Error)> = if workers <= 1 {
        failures_in(shards)
    } else {
        let groups = kagen_runtime::split_ranges(shards.len(), workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .map(|range| {
                    let shards = &shards[range];
                    scope.spawn(move || failures_in(shards))
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        })
    };
    failed.sort_by_key(|(pe, _)| *pe);
    CLUSTER_SHARDS_VALIDATED.add((shards.len() - failed.len()) as u64);
    CLUSTER_SHARDS_INVALIDATED.add(failed.len() as u64);
    failed
}

/// Coordinator knobs.
#[derive(Clone, Copy, Debug)]
pub struct LaunchOptions {
    /// Maximum concurrently running workers (and the fresh-run rank
    /// count).
    pub workers: usize,
    /// Resume an interrupted/failed/corrupted run instead of starting
    /// fresh: reuse every shard that still validates, regenerate the
    /// rest.
    pub resume: bool,
    /// Shard validation policy (resume-time reuse checks and the
    /// post-run re-read).
    pub validate: ValidateMode,
    /// In-launch retry budget per rank: a failed rank is re-queued (with
    /// exponential backoff) up to this many extra attempts before it
    /// counts as failed and leaves its PEs for `--resume`. 0 (the
    /// default) preserves the retry-on-resume-only behavior.
    pub retries: u64,
    /// Base delay of the exponential retry backoff: attempt `k` (1-based
    /// among retries) sleeps `retry_backoff · 2^(k−1)` before
    /// re-spawning.
    pub retry_backoff: Duration,
    /// Print a live progress line (`info!` level) every interval:
    /// PEs/edges done so far (ledger-completed ranks plus live
    /// heartbeats found in the shard directory), aggregate edges/sec,
    /// and an ETA extrapolated from the rank plan. `None` disables the
    /// monitor thread entirely.
    pub progress: Option<Duration>,
}

impl Default for LaunchOptions {
    fn default() -> Self {
        LaunchOptions {
            workers: 1,
            resume: false,
            validate: ValidateMode::Full,
            retries: 0,
            retry_backoff: Duration::from_millis(500),
            progress: None,
        }
    }
}

/// What a launch did, beyond the manifest it produced.
#[derive(Clone, Debug)]
pub struct LaunchReport {
    /// The federated manifest (also written to `manifest.json`).
    pub manifest: Manifest,
    /// Tasks actually spawned by this launch, in plan order.
    pub spawned: Vec<RankTask>,
    /// PEs regenerated by this launch.
    pub regenerated_pes: Vec<usize>,
    /// Shards reused from the previous run (resume only).
    pub reused_shards: u64,
    /// PEs whose existing shards failed resume-time validation and were
    /// regenerated (subset of `regenerated_pes`).
    pub invalidated_pes: Vec<usize>,
    /// Per-rank telemetry (wall time, attempts, edges, worker sidecar
    /// counters and histograms) for every rank that finished, in rank
    /// order — the input [`crate::metrics::RunMetrics::federate`] turns
    /// into `metrics.json`.
    pub rank_metrics: Vec<RankMetrics>,
    /// Worker trace sidecars collected from ranks that traced, in rank
    /// order — the input [`crate::trace::federate_chrome_trace`] turns
    /// into the run-wide timeline.
    pub rank_traces: Vec<RankTrace>,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Prepare the ledger and task list for this launch (fresh or resume).
fn prepare(
    dir: &Path,
    header: &RunHeader,
    opts: &LaunchOptions,
    format: ShardFormat,
) -> io::Result<(Ledger, Vec<RankTask>, Vec<usize>)> {
    if !opts.resume {
        if Ledger::exists(dir) {
            return Err(invalid(format!(
                "{} already contains a run ledger; resume it or remove the directory",
                dir.display()
            )));
        }
        let tasks = plan_ranks(header.chunks as usize, opts.workers);
        let ledger = Ledger::new(header.clone(), opts.workers, &tasks);
        return Ok((ledger, tasks, Vec::new()));
    }

    let mut ledger = Ledger::load(dir)?;
    if ledger.header != *header {
        return Err(invalid(format!(
            "resume parameter mismatch: ledger was written by `{} {}` seed {} chunks {} \
             format {}, this launch is `{} {}` seed {} chunks {} format {}",
            ledger.header.model,
            ledger.header.params,
            ledger.header.seed,
            ledger.header.chunks,
            ledger.header.format,
            header.model,
            header.params,
            header.seed,
            header.chunks,
            header.format,
        )));
    }
    // Re-verify every shard the ledger believes is done: a deleted,
    // truncated or corrupted file flips its PE back to pending. With
    // `ValidateMode::Sampled` this is the resume fast path — a
    // structural walk plus sampled block checksums instead of a full
    // re-read per shard. Shards are independent, so the check runs on
    // one thread per worker.
    let mut invalidated = Vec::new();
    for (pe, cause) in validate_shards_parallel(
        dir,
        format,
        &ledger.done_shards(),
        opts.validate,
        opts.workers,
    ) {
        kagen_obs::warn!("shard {pe} failed resume validation, regenerating: {cause}");
        ledger.invalidate_shard(pe);
        invalidated.push(pe);
    }
    let tasks = plan_repairs(&ledger.missing_pes(), opts.workers);
    ledger.workers = opts.workers;
    ledger.set_plan(&tasks);
    Ok((ledger, tasks, invalidated))
}

/// Run a full coordinated launch: plan → supervise workers (at most
/// `opts.workers` concurrently) → ledger after every completion →
/// validate → federate `manifest.json`.
///
/// On worker failure the launch finishes the remaining tasks, persists
/// the ledger, and returns an error naming the failed ranks — the run
/// directory is then resumable.
pub fn launch(
    dir: &Path,
    header: &RunHeader,
    opts: &LaunchOptions,
    runner: &dyn WorkerRunner,
) -> io::Result<LaunchReport> {
    let format = ShardFormat::parse(&header.format)
        .ok_or_else(|| invalid(format!("unknown shard format '{}'", header.format)))?;
    std::fs::create_dir_all(dir)?;
    let prepare_span = trace::span("launch.prepare");
    let (mut ledger, tasks, invalidated_pes) = prepare(dir, header, opts, format)?;
    let _ = prepare_span.finish();
    let reused_shards = header.chunks - ledger.missing_pes().len() as u64;
    let regenerated_pes: Vec<usize> = ledger.missing_pes();
    ledger.save(dir)?;

    // Supervise: a shared queue drained by `workers` supervisor
    // threads; the coordinator thread serializes ledger updates, saving
    // after every rank so a killed coordinator stays resumable. A
    // failed rank re-enters the queue up to `opts.retries` times (the
    // supervisor that picks the retry up sleeps the exponential backoff
    // first), so a transient fault never costs a manual `--resume`.
    // `outstanding` counts tasks not yet finally done/failed; it — not
    // queue emptiness — decides when supervisors may exit, because a
    // failure being processed by the coordinator may yet respawn.
    struct Supervision {
        queue: VecDeque<(RankTask, u64)>,
        outstanding: usize,
    }
    let sup = Mutex::new(Supervision {
        queue: tasks.iter().cloned().map(|t| (t, 0u64)).collect(),
        outstanding: tasks.len(),
    });
    let wake = Condvar::new();
    /// What a supervisor reports per attempt: the task, its attempt
    /// index, the attempt's wall microseconds, the worker's sidecar
    /// telemetry (successful attempts only), and the outcome.
    struct RankOutcome {
        task: RankTask,
        attempt: u64,
        wall_us: u64,
        telemetry: RankTelemetry,
        result: io::Result<Vec<kagen_pipeline::ShardInfo>>,
    }
    let (tx, rx) = mpsc::channel::<RankOutcome>();
    let supervisors = opts.workers.min(tasks.len()).max(1);
    let mut rank_metrics: Vec<RankMetrics> = Vec::new();
    let mut rank_traces: Vec<RankTrace> = Vec::new();
    // Progress accounting shared with the monitor thread: PEs/edges of
    // ranks this launch has *completed* (live partial progress comes
    // from the heartbeat files the monitor scans itself).
    let planned_pes: u64 = tasks.iter().map(|t| (t.pe_end - t.pe_begin) as u64).sum();
    let done_pes = AtomicU64::new(0);
    let done_edges = AtomicU64::new(0);
    let monitor_stop = AtomicBool::new(false);
    let supervise_span = trace::span("launch.supervise");
    std::thread::scope(|scope| {
        if let Some(interval) = opts.progress.filter(|_| planned_pes > 0) {
            let (done_pes, done_edges, monitor_stop) = (&done_pes, &done_edges, &monitor_stop);
            scope.spawn(move || {
                let started = Instant::now();
                while !monitor_stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if monitor_stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let live = heartbeat::read_all(dir);
                    let pes = done_pes.load(Ordering::Relaxed)
                        + live.iter().map(|h| h.pes_done).sum::<u64>();
                    let edges = done_edges.load(Ordering::Relaxed)
                        + live.iter().map(|h| h.edges).sum::<u64>();
                    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
                    let rate = edges as f64 / elapsed;
                    // ETA from the rank plan: PEs are the work units the
                    // plan hands out, so remaining time extrapolates
                    // from the observed per-PE pace.
                    let eta = if pes > 0 && pes < planned_pes {
                        format!(
                            ", ETA {:.0}s",
                            elapsed * (planned_pes - pes) as f64 / pes as f64
                        )
                    } else {
                        String::new()
                    };
                    kagen_obs::info!(
                        "progress: {pes}/{planned_pes} PEs, {edges} edges, \
                         {:.2} Medges/s{eta} ({} live ranks)",
                        rate / 1e6,
                        live.len()
                    );
                }
            });
        }
        for _ in 0..supervisors {
            let tx = tx.clone();
            let (sup, wake) = (&sup, &wake);
            scope.spawn(move || loop {
                let popped = {
                    let mut guard = sup.lock().unwrap();
                    loop {
                        if let Some(entry) = guard.queue.pop_front() {
                            break Some(entry);
                        }
                        if guard.outstanding == 0 {
                            break None;
                        }
                        guard = wake.wait(guard).unwrap();
                    }
                    // The guard drops here: `runner.run` must never hold
                    // the queue lock, or every worker serializes.
                };
                let Some((task, attempt)) = popped else {
                    return;
                };
                if attempt > 0 {
                    // Exponential backoff with a hard cap: an uncapped
                    // doubling would park this supervisor slot for hours
                    // on late attempts of a persistent fault.
                    let backoff = opts
                        .retry_backoff
                        .saturating_mul(1u32 << (attempt - 1).min(16) as u32)
                        .min(MAX_RETRY_BACKOFF);
                    std::thread::sleep(backoff);
                }
                // A panicking runner must not strand the run: with the
                // outstanding-count shutdown, an unwinding supervisor
                // would leave its task counted forever and deadlock the
                // remaining supervisors on the condvar. Convert the
                // panic into a rank failure — the same footprint a
                // crashed worker *process* has.
                let rank_span = trace::span(format!("rank-{}", task.rank));
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| runner.run(&task)))
                        .unwrap_or_else(|panic| {
                            let msg = panic
                                .downcast_ref::<String>()
                                .map(String::as_str)
                                .or_else(|| panic.downcast_ref::<&str>().copied())
                                .unwrap_or("worker panicked");
                            Err(io::Error::other(format!("worker panicked: {msg}")))
                        });
                let wall_us = (rank_span.finish() * 1e6) as u64;
                let telemetry = if result.is_ok() {
                    runner.take_telemetry(&task)
                } else {
                    RankTelemetry::default()
                };
                let outcome = RankOutcome {
                    task,
                    attempt,
                    wall_us,
                    telemetry,
                    result,
                };
                if tx.send(outcome).is_err() {
                    return;
                }
            });
        }
        drop(tx);
        for outcome in rx {
            let RankOutcome {
                task,
                attempt,
                wall_us,
                telemetry,
                result,
            } = outcome;
            let rank = task.rank;
            let mut finished = true;
            match result {
                Ok(shards) => {
                    CLUSTER_RANK_WALL_US.record(wall_us);
                    let edges: u64 = shards.iter().map(|s| s.edges).sum();
                    done_pes.fetch_add((task.pe_end - task.pe_begin) as u64, Ordering::Relaxed);
                    done_edges.fetch_add(edges, Ordering::Relaxed);
                    rank_metrics.push(RankMetrics {
                        rank: rank as u64,
                        pe_begin: task.pe_begin as u64,
                        pe_end: task.pe_end as u64,
                        edges,
                        wall_us,
                        attempts: attempt + 1,
                        counters: telemetry.counters,
                        histograms: telemetry.histograms,
                    });
                    if let Some(wt) = telemetry.trace {
                        rank_traces.push(RankTrace {
                            rank: rank as u64,
                            pe_begin: task.pe_begin as u64,
                            pe_end: task.pe_end as u64,
                            trace: wt,
                        });
                    }
                    ledger.record_rank_done(rank, shards);
                }
                Err(e) if attempt < opts.retries => {
                    kagen_obs::warn!(
                        "rank {rank} failed (attempt {} of {}), retrying: {e}",
                        attempt + 1,
                        opts.retries + 1
                    );
                    CLUSTER_RETRIES.incr();
                    ledger.record_rank_retry(rank);
                    finished = false;
                }
                Err(e) => {
                    kagen_obs::warn!("rank {rank} failed: {e}");
                    CLUSTER_RANK_FAILURES.incr();
                    ledger.record_rank_failed(rank);
                }
            }
            {
                let mut guard = sup.lock().unwrap();
                if finished {
                    guard.outstanding -= 1;
                    if guard.outstanding == 0 {
                        wake.notify_all();
                    }
                } else {
                    guard.queue.push_back((task, attempt + 1));
                    wake.notify_one();
                }
            }
            // Persist progress immediately; surface IO errors after the
            // scope (a failed save must not strand worker threads).
            if let Err(e) = ledger.save(dir) {
                kagen_obs::error!("ledger save failed: {e}");
            }
        }
        monitor_stop.store(true, Ordering::Relaxed);
    });
    let _ = supervise_span.finish();

    let failed: Vec<usize> = ledger
        .ranks
        .iter()
        .filter(|r| r.status == RankStatus::Failed)
        .map(|r| r.rank)
        .collect();
    if !failed.is_empty() {
        return Err(io::Error::other(format!(
            "{} of {} ranks failed ({:?}); the run is resumable",
            failed.len(),
            ledger.ranks.len(),
            failed
        )));
    }

    let shards = ledger.done_shards();
    let validate_span = trace::span("launch.validate");
    if opts.validate != ValidateMode::None {
        // Only the shards written by *this* launch need the post-run
        // check; reused shards were already validated in `prepare`,
        // and their bytes cannot have changed since.
        let fresh: std::collections::HashSet<usize> = regenerated_pes.iter().copied().collect();
        let to_check: Vec<kagen_pipeline::ShardInfo> = shards
            .iter()
            .filter(|i| fresh.contains(&(i.pe as usize)))
            .cloned()
            .collect();
        let bad = validate_shards_parallel(dir, format, &to_check, opts.validate, opts.workers);
        if let Some((pe, cause)) = bad.first() {
            let pes: Vec<usize> = bad.iter().map(|(pe, _)| *pe).collect();
            return Err(invalid(format!(
                "post-run validation failed for shard{} {pes:?} — resume to regenerate \
                 (shard {pe}: {cause})",
                if pes.len() > 1 { "s" } else { "" },
            )));
        }
    }
    let _ = validate_span.finish();
    let federate_span = trace::span("launch.federate");
    let manifest = header.clone().federate(shards).map_err(invalid)?;
    manifest.save(dir)?;
    let _ = federate_span.finish();

    rank_metrics.sort_by_key(|r| r.rank);
    rank_traces.sort_by_key(|r| r.rank);
    Ok(LaunchReport {
        manifest,
        spawned: tasks,
        regenerated_pes,
        reused_shards,
        invalidated_pes,
        rank_metrics,
        rank_traces,
    })
}
