//! R-MAT (recursive matrix) generator (§3.5.2) — the Graph 500 baseline the
//! paper compares against in §8.6.1.
//!
//! Each of the `m` edges is sampled independently by recursively descending
//! the adjacency matrix: at each of the log₂(n) levels one of the four
//! quadrants is chosen with probabilities (a, b, c, d). Because edges are
//! independent, distribution over PEs is trivial: PE `p` owns a contiguous
//! edge-index range and seeds a cheap PRNG per edge. The Θ(m log n) variate
//! cost is exactly the slowdown relative to the ER generators that Fig. 17
//! and 18 demonstrate.

use crate::{Generator, PeGraph};
use kagen_dist::AliasTable;
use kagen_util::seed::stream;
use kagen_util::{derive_seed, Rng64, SplitMix64};
use std::sync::Arc;

/// Precomputed multi-level descent table: one alias draw selects
/// `levels` recursion steps at once (the §9 "faster R-MAT" extension,
/// following the path-probability precomputation idea of
/// Hübschle-Schneider & Sanders).
#[derive(Clone, Debug)]
struct DescentTable {
    levels: u32,
    alias: AliasTable,
    /// Per outcome: the `levels` u-bits and v-bits of the path.
    bits: Vec<(u32, u32)>,
}

impl DescentTable {
    fn new(levels: u32, a: f64, b: f64, c: f64) -> Self {
        assert!((1..=12).contains(&levels));
        let d = 1.0 - a - b - c;
        let quadrant = [a, b, c, d]; // (u_bit, v_bit) = (0,0) (0,1) (1,0) (1,1)
        let k = 1usize << (2 * levels);
        let mut weights = Vec::with_capacity(k);
        let mut bits = Vec::with_capacity(k);
        for path in 0..k {
            let mut w = 1.0f64;
            let mut ub = 0u32;
            let mut vb = 0u32;
            for level in (0..levels).rev() {
                let q = (path >> (2 * level)) & 3;
                w *= quadrant[q];
                ub = (ub << 1) | (q as u32 >> 1);
                vb = (vb << 1) | (q as u32 & 1);
            }
            weights.push(w);
            bits.push((ub, vb));
        }
        DescentTable {
            levels,
            alias: AliasTable::new(&weights),
            bits,
        }
    }

    #[inline]
    fn sample<R: Rng64>(&self, rng: &mut R) -> (u32, u32) {
        self.bits[self.alias.sample(rng)]
    }
}

/// R-MAT generator with Graph 500 default parameters.
#[derive(Clone, Debug)]
pub struct Rmat {
    scale: u32,
    m: u64,
    a: f64,
    b: f64,
    c: f64,
    seed: u64,
    chunks: usize,
    /// Multi-level descent tables (main + remainder), if enabled.
    tables: Option<Arc<(DescentTable, Option<DescentTable>)>>,
}

impl Rmat {
    /// `n = 2^scale` vertices, `m` edges, Graph 500 probabilities
    /// (a, b, c, d) = (0.57, 0.19, 0.19, 0.05).
    pub fn new(scale: u32, m: u64) -> Self {
        Self::with_probabilities(scale, m, 0.57, 0.19, 0.19)
    }

    /// Custom quadrant probabilities; `d = 1 − a − b − c`.
    pub fn with_probabilities(scale: u32, m: u64, a: f64, b: f64, c: f64) -> Self {
        assert!((1..63).contains(&scale));
        assert!(a > 0.0 && b >= 0.0 && c >= 0.0 && a + b + c < 1.0 + 1e-12);
        Rmat {
            scale,
            m,
            a,
            b,
            c,
            seed: 1,
            chunks: 64,
            tables: None,
        }
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of logical PEs.
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks >= 1);
        self.chunks = chunks;
        self
    }

    /// Enable multi-level descent tables: one alias draw replaces `levels`
    /// recursion steps (§9 future work; typically `levels = 8`, a 64 Ki
    /// entry table). Note: the accelerated generator samples the same
    /// *distribution* but consumes randomness differently, so it defines a
    /// different (equally valid) instance per seed.
    pub fn with_table_levels(mut self, levels: u32) -> Self {
        let levels = levels.clamp(1, 12).min(self.scale);
        let main = DescentTable::new(levels, self.a, self.b, self.c);
        let rem = self.scale % levels;
        let remainder = (rem > 0).then(|| DescentTable::new(rem, self.a, self.b, self.c));
        self.tables = Some(Arc::new((main, remainder)));
        self
    }

    /// Total number of edges of the instance.
    pub fn num_edges(&self) -> u64 {
        self.m
    }

    /// Sample edge number `e` of the instance (pure function).
    #[inline]
    pub fn edge(&self, e: u64) -> (u64, u64) {
        let mut rng = SplitMix64::new(derive_seed(self.seed, &[stream::RMAT, e]));
        match &self.tables {
            None => {
                let mut u = 0u64;
                let mut v = 0u64;
                for _ in 0..self.scale {
                    u <<= 1;
                    v <<= 1;
                    let x = rng.next_f64();
                    if x < self.a {
                        // top-left: no bits set
                    } else if x < self.a + self.b {
                        v |= 1;
                    } else if x < self.a + self.b + self.c {
                        u |= 1;
                    } else {
                        u |= 1;
                        v |= 1;
                    }
                }
                (u, v)
            }
            Some(tables) => {
                let (main, remainder) = tables.as_ref();
                let mut u = 0u64;
                let mut v = 0u64;
                let mut remaining = self.scale;
                while remaining >= main.levels {
                    let (ub, vb) = main.sample(&mut rng);
                    u = (u << main.levels) | ub as u64;
                    v = (v << main.levels) | vb as u64;
                    remaining -= main.levels;
                }
                if remaining > 0 {
                    let t = remainder.as_ref().expect("remainder table");
                    debug_assert_eq!(t.levels, remaining);
                    let (ub, vb) = t.sample(&mut rng);
                    u = (u << t.levels) | ub as u64;
                    v = (v << t.levels) | vb as u64;
                }
                (u, v)
            }
        }
    }
}

impl Generator for Rmat {
    fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    fn num_chunks(&self) -> usize {
        self.chunks
    }

    fn directed(&self) -> bool {
        true
    }

    fn generate_pe(&self, pe: usize) -> PeGraph {
        let lo = self.m * pe as u64 / self.chunks as u64;
        let hi = self.m * (pe as u64 + 1) / self.chunks as u64;
        let mut out = PeGraph {
            pe,
            vertex_begin: 0,
            vertex_end: self.num_vertices(),
            ..PeGraph::default()
        };
        out.edges.reserve((hi - lo) as usize);
        for e in lo..hi {
            out.edges.push(self.edge(e));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_directed;

    #[test]
    fn edge_count_and_range() {
        let gen = Rmat::new(10, 5000).with_seed(4).with_chunks(8);
        let el = generate_directed(&gen);
        assert_eq!(el.edges.len(), 5000);
        assert!(!el.has_out_of_range());
    }

    #[test]
    fn chunk_invariance() {
        let a = generate_directed(&Rmat::new(8, 2000).with_seed(9).with_chunks(1));
        let b = generate_directed(&Rmat::new(8, 2000).with_seed(9).with_chunks(7));
        assert_eq!(a, b);
    }

    #[test]
    fn skew_matches_parameters() {
        // With a = 0.57, vertex 0's quadrant is hit most: expect the top
        // half of rows to receive much more than half the edges.
        let gen = Rmat::new(12, 40_000).with_seed(2);
        let el = generate_directed(&gen);
        let half = 1u64 << 11;
        let top = el.edges.iter().filter(|&&(u, _)| u < half).count();
        let frac = top as f64 / el.edges.len() as f64;
        // P[top half] = a + b = 0.76 per level-0 split.
        assert!((frac - 0.76).abs() < 0.02, "top fraction {frac}");
    }

    #[test]
    fn degree_skew_power_law_ish() {
        let gen = Rmat::new(10, 30_000).with_seed(7);
        let el = generate_directed(&gen);
        let deg = el.out_degrees();
        let max = *deg.iter().max().unwrap();
        let mean = 30_000.0 / 1024.0;
        assert!(
            max as f64 > 6.0 * mean,
            "R-MAT must be skewed: max {max}, mean {mean}"
        );
    }

    #[test]
    fn edge_is_pure_function() {
        let gen = Rmat::new(9, 10).with_seed(5);
        for e in 0..10 {
            assert_eq!(gen.edge(e), gen.edge(e));
        }
    }

    #[test]
    fn table_variant_same_distribution() {
        // Table-accelerated sampling draws from the identical edge
        // distribution: compare first-level quadrant masses.
        let m = 60_000u64;
        let plain = generate_directed(&Rmat::new(10, m).with_seed(6));
        let fast = generate_directed(&Rmat::new(10, m).with_seed(6).with_table_levels(5));
        assert_eq!(fast.edges.len() as u64, m);
        let half = 1u64 << 9;
        let mass = |el: &kagen_graph::EdgeList| {
            let mut q = [0u64; 4];
            for &(u, v) in &el.edges {
                q[(((u >= half) as usize) << 1) | ((v >= half) as usize)] += 1;
            }
            q
        };
        let (qa, qb) = (mass(&plain), mass(&fast));
        for k in 0..4 {
            let (x, y) = (qa[k] as f64 / m as f64, qb[k] as f64 / m as f64);
            assert!((x - y).abs() < 0.01, "quadrant {k}: {x} vs {y}");
        }
    }

    #[test]
    fn table_variant_chunk_invariant() {
        let a = generate_directed(
            &Rmat::new(8, 2000)
                .with_seed(9)
                .with_table_levels(8)
                .with_chunks(1),
        );
        let b = generate_directed(
            &Rmat::new(8, 2000)
                .with_seed(9)
                .with_table_levels(8)
                .with_chunks(7),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn table_levels_not_dividing_scale() {
        // scale = 10, levels = 4 → remainder table of 2 levels.
        let gen = Rmat::new(10, 100).with_seed(3).with_table_levels(4);
        let el = generate_directed(&gen);
        assert!(!el.has_out_of_range());
        assert_eq!(el.edges.len(), 100);
    }
}
