//! The [`EdgeSink`] trait and the composable sinks that terminate a
//! streaming generation run.
//!
//! A sink receives edges one at a time via [`EdgeSink::accept`] — or a
//! whole slice at once via [`EdgeSink::push_batch`], the hot path of the
//! batched generation pipeline — and is closed with [`EdgeSink::finish`].
//! IO sinks buffer writes internally and defer errors: `accept` and
//! `push_batch` stay infallible (they sit on the hot path), the first IO
//! error is latched and surfaced by `finish`. Every sink counts the edges
//! it accepts; `finish` returns that count.

use kagen_graph::io::CompressedEdgeWriter;
use kagen_graph::stats::DegreeStats;
use std::io::{self, Write};

/// A streaming consumer of edges.
pub trait EdgeSink {
    /// Consume one edge.
    fn accept(&mut self, u: u64, v: u64);

    /// Consume a whole batch of edges — semantically identical to calling
    /// [`EdgeSink::accept`] per element, but a single virtual call per
    /// slice. Sinks override this to process slices without per-edge
    /// dispatch (tight count/checksum loops, one buffered write per
    /// batch).
    fn push_batch(&mut self, edges: &[(u64, u64)]) {
        for &(u, v) in edges {
            self.accept(u, v);
        }
    }

    /// Close the sink: flush buffers, surface any deferred IO error, and
    /// return the number of edges accepted.
    fn finish(&mut self) -> io::Result<u64>;
}

/// `None` is the disabled sink: it accepts everything, counts nothing.
/// Lets optional pipeline branches (e.g. `--stats`) compose without a
/// separate code path.
impl<S: EdgeSink> EdgeSink for Option<S> {
    #[inline]
    fn accept(&mut self, u: u64, v: u64) {
        if let Some(s) = self {
            s.accept(u, v);
        }
    }

    #[inline]
    fn push_batch(&mut self, edges: &[(u64, u64)]) {
        if let Some(s) = self {
            s.push_batch(edges);
        }
    }

    fn finish(&mut self) -> io::Result<u64> {
        match self {
            Some(s) => s.finish(),
            None => Ok(0),
        }
    }
}

impl<S: EdgeSink + ?Sized> EdgeSink for Box<S> {
    #[inline]
    fn accept(&mut self, u: u64, v: u64) {
        (**self).accept(u, v)
    }

    #[inline]
    fn push_batch(&mut self, edges: &[(u64, u64)]) {
        (**self).push_batch(edges)
    }

    fn finish(&mut self) -> io::Result<u64> {
        (**self).finish()
    }
}

/// Step function of the order-dependent shard checksum — the same mix
/// the compressed format's per-block checksums use
/// ([`kagen_graph::io::edge_checksum_step`]).
#[inline]
pub fn checksum_step(acc: u64, u: u64, v: u64) -> u64 {
    kagen_graph::io::edge_checksum_step(acc, u, v)
}

/// Counts edges; the cheapest possible sink.
#[derive(Default, Debug)]
pub struct CountingSink {
    count: u64,
}

impl CountingSink {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Edges accepted so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl EdgeSink for CountingSink {
    #[inline]
    fn accept(&mut self, _u: u64, _v: u64) {
        self.count += 1;
    }

    #[inline]
    fn push_batch(&mut self, edges: &[(u64, u64)]) {
        self.count += edges.len() as u64;
    }

    fn finish(&mut self) -> io::Result<u64> {
        Ok(self.count)
    }
}

/// Maintains the order-dependent checksum of the stream — the value the
/// shard manifests record.
#[derive(Default, Debug)]
pub struct ChecksumSink {
    count: u64,
    checksum: u64,
}

impl ChecksumSink {
    /// New checksum accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checksum of the edges accepted so far.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Edges accepted so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl EdgeSink for ChecksumSink {
    #[inline]
    fn accept(&mut self, u: u64, v: u64) {
        self.checksum = checksum_step(self.checksum, u, v);
        self.count += 1;
    }

    fn push_batch(&mut self, edges: &[(u64, u64)]) {
        let mut acc = self.checksum;
        for &(u, v) in edges {
            acc = checksum_step(acc, u, v);
        }
        self.checksum = acc;
        self.count += edges.len() as u64;
    }

    fn finish(&mut self) -> io::Result<u64> {
        Ok(self.count)
    }
}

/// Accumulates in-/out-degree counts without storing edges. Memory is
/// O(n) — the per-vertex counters — never O(m).
#[derive(Debug)]
pub struct DegreeStatsSink {
    directed: bool,
    out_deg: Vec<u64>,
    in_deg: Vec<u64>,
    count: u64,
}

impl DegreeStatsSink {
    /// Accumulator over `n` vertices. For undirected streams both
    /// endpoints count toward one degree sequence.
    pub fn new(n: u64, directed: bool) -> Self {
        DegreeStatsSink {
            directed,
            out_deg: vec![0; n as usize],
            in_deg: if directed {
                vec![0; n as usize]
            } else {
                Vec::new()
            },
            count: 0,
        }
    }

    /// Degree summary: `(out or undirected, in)`; the in-component is
    /// `None` for undirected streams.
    pub fn stats(&self) -> (DegreeStats, Option<DegreeStats>) {
        let first = DegreeStats::from_degrees(&self.out_deg);
        let second = self
            .directed
            .then(|| DegreeStats::from_degrees(&self.in_deg));
        (first, second)
    }
}

impl EdgeSink for DegreeStatsSink {
    #[inline]
    fn accept(&mut self, u: u64, v: u64) {
        self.count += 1;
        self.out_deg[u as usize] += 1;
        if self.directed {
            self.in_deg[v as usize] += 1;
        } else {
            self.out_deg[v as usize] += 1;
        }
    }

    fn push_batch(&mut self, edges: &[(u64, u64)]) {
        // Directedness is per-sink, not per-edge: branch once per batch.
        self.count += edges.len() as u64;
        if self.directed {
            for &(u, v) in edges {
                self.out_deg[u as usize] += 1;
                self.in_deg[v as usize] += 1;
            }
        } else {
            for &(u, v) in edges {
                self.out_deg[u as usize] += 1;
                self.out_deg[v as usize] += 1;
            }
        }
    }

    fn finish(&mut self) -> io::Result<u64> {
        Ok(self.count)
    }
}

/// Writes `u v` text lines (the KaGen tool's output format).
#[derive(Debug)]
pub struct TextSink<W: Write> {
    w: W,
    count: u64,
    err: Option<io::Error>,
    /// Reusable format buffer for batched writes.
    scratch: String,
}

impl<W: Write> TextSink<W> {
    /// Sink writing to `w` (wrap files in a `BufWriter`).
    pub fn new(w: W) -> Self {
        TextSink {
            w,
            count: 0,
            err: None,
            scratch: String::new(),
        }
    }
}

impl<W: Write> EdgeSink for TextSink<W> {
    #[inline]
    fn accept(&mut self, u: u64, v: u64) {
        self.count += 1;
        if self.err.is_none() {
            if let Err(e) = writeln!(self.w, "{u} {v}") {
                self.err = Some(e);
            }
        }
    }

    fn push_batch(&mut self, edges: &[(u64, u64)]) {
        use std::fmt::Write as _;
        self.count += edges.len() as u64;
        if self.err.is_some() {
            return;
        }
        // Chunked so one huge slice cannot balloon the scratch buffer.
        for chunk in edges.chunks(4096) {
            self.scratch.clear();
            for &(u, v) in chunk {
                let _ = writeln!(self.scratch, "{u} {v}");
            }
            if let Err(e) = self.w.write_all(self.scratch.as_bytes()) {
                self.err = Some(e);
                return;
            }
        }
    }

    fn finish(&mut self) -> io::Result<u64> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.w.flush()?;
        Ok(self.count)
    }
}

/// Writes raw little-endian `u64` pairs (16 bytes per edge).
#[derive(Debug)]
pub struct BinarySink<W: Write> {
    w: W,
    count: u64,
    err: Option<io::Error>,
    /// Reusable encode buffer for batched writes.
    scratch: Vec<u8>,
}

impl<W: Write> BinarySink<W> {
    /// Sink writing to `w` (wrap files in a `BufWriter`).
    pub fn new(w: W) -> Self {
        BinarySink {
            w,
            count: 0,
            err: None,
            scratch: Vec::new(),
        }
    }
}

impl<W: Write> EdgeSink for BinarySink<W> {
    #[inline]
    fn accept(&mut self, u: u64, v: u64) {
        self.count += 1;
        if self.err.is_none() {
            let mut rec = [0u8; 16];
            rec[..8].copy_from_slice(&u.to_le_bytes());
            rec[8..].copy_from_slice(&v.to_le_bytes());
            if let Err(e) = self.w.write_all(&rec) {
                self.err = Some(e);
            }
        }
    }

    fn push_batch(&mut self, edges: &[(u64, u64)]) {
        self.count += edges.len() as u64;
        if self.err.is_some() {
            return;
        }
        // Chunked so one huge slice cannot balloon the scratch buffer.
        for chunk in edges.chunks(4096) {
            self.scratch.clear();
            for &(u, v) in chunk {
                self.scratch.extend_from_slice(&u.to_le_bytes());
                self.scratch.extend_from_slice(&v.to_le_bytes());
            }
            if let Err(e) = self.w.write_all(&self.scratch) {
                self.err = Some(e);
                return;
            }
        }
    }

    fn finish(&mut self) -> io::Result<u64> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.w.flush()?;
        Ok(self.count)
    }
}

/// Writes the compressed varint+delta shard format
/// (`kagen_graph::io::CompressedEdgeWriter`).
#[derive(Debug)]
pub struct CompressedSink<W: Write> {
    enc: Option<CompressedEdgeWriter<W>>,
    count: u64,
    err: Option<io::Error>,
}

impl<W: Write> CompressedSink<W> {
    /// Sink writing a compressed stream over `n` vertices to `w`.
    pub fn new(w: W, n: u64) -> io::Result<Self> {
        Ok(CompressedSink {
            enc: Some(CompressedEdgeWriter::new(w, n)?),
            count: 0,
            err: None,
        })
    }
}

impl<W: Write> EdgeSink for CompressedSink<W> {
    #[inline]
    fn accept(&mut self, u: u64, v: u64) {
        self.count += 1;
        if self.err.is_none() {
            if let Some(enc) = self.enc.as_mut() {
                if let Err(e) = enc.push(u, v) {
                    self.err = Some(e);
                }
            }
        }
    }

    fn push_batch(&mut self, edges: &[(u64, u64)]) {
        // Whole-slice varint encode into the encoder's reusable scratch
        // buffer; one buffered write per batch.
        self.count += edges.len() as u64;
        if self.err.is_none() {
            if let Some(enc) = self.enc.as_mut() {
                if let Err(e) = enc.push_slice(edges) {
                    self.err = Some(e);
                }
            }
        }
    }

    fn finish(&mut self) -> io::Result<u64> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        if let Some(enc) = self.enc.take() {
            enc.finish()?;
        }
        Ok(self.count)
    }
}

/// Duplicates the stream into two sinks (e.g. a file plus running stats).
#[derive(Debug)]
pub struct TeeSink<A: EdgeSink, B: EdgeSink> {
    /// First branch.
    pub a: A,
    /// Second branch.
    pub b: B,
}

impl<A: EdgeSink, B: EdgeSink> TeeSink<A, B> {
    /// Tee into `a` and `b`.
    pub fn new(a: A, b: B) -> Self {
        TeeSink { a, b }
    }
}

impl<A: EdgeSink, B: EdgeSink> EdgeSink for TeeSink<A, B> {
    #[inline]
    fn accept(&mut self, u: u64, v: u64) {
        self.a.accept(u, v);
        self.b.accept(u, v);
    }

    #[inline]
    fn push_batch(&mut self, edges: &[(u64, u64)]) {
        self.a.push_batch(edges);
        self.b.push_batch(edges);
    }

    fn finish(&mut self) -> io::Result<u64> {
        // Finish both branches even if the first fails, so neither sink
        // is left unflushed; report the first error.
        let ra = self.a.finish();
        let rb = self.b.finish();
        let count = ra?;
        rb?;
        Ok(count)
    }
}

/// Adapts a closure into a sink (the bridge from sink-land back to the
/// `FnMut(u64, u64)` emit-style APIs of `kagen_core::streaming`).
pub struct FnSink<F: FnMut(u64, u64)> {
    f: F,
    count: u64,
}

// Manual impl: the wrapped closure has no `Debug`; the edge count is
// the only stable field.
impl<F: FnMut(u64, u64)> std::fmt::Debug for FnSink<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnSink")
            .field("count", &self.count)
            .finish_non_exhaustive()
    }
}

impl<F: FnMut(u64, u64)> FnSink<F> {
    /// Sink invoking `f` per edge.
    pub fn new(f: F) -> Self {
        FnSink { f, count: 0 }
    }
}

impl<F: FnMut(u64, u64)> EdgeSink for FnSink<F> {
    #[inline]
    fn accept(&mut self, u: u64, v: u64) {
        self.count += 1;
        (self.f)(u, v);
    }

    fn finish(&mut self) -> io::Result<u64> {
        Ok(self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_checksum() {
        let mut c = CountingSink::new();
        let mut s = ChecksumSink::new();
        for (u, v) in [(0u64, 1u64), (1, 2), (2, 0)] {
            c.accept(u, v);
            s.accept(u, v);
        }
        assert_eq!(c.finish().unwrap(), 3);
        assert_eq!(s.count(), 3);
        assert_ne!(s.checksum(), 0);
        // Order-dependent: swapped stream has a different checksum.
        let mut s2 = ChecksumSink::new();
        for (u, v) in [(1u64, 2u64), (0, 1), (2, 0)] {
            s2.accept(u, v);
        }
        assert_ne!(s.checksum(), s2.checksum());
    }

    #[test]
    fn degree_stats_directed_and_undirected() {
        let mut d = DegreeStatsSink::new(3, true);
        d.accept(0, 1);
        d.accept(0, 2);
        let (out_deg, in_deg) = d.stats();
        assert_eq!(out_deg.max, 2);
        assert_eq!(in_deg.unwrap().max, 1);

        let mut u = DegreeStatsSink::new(3, false);
        u.accept(0, 1);
        u.accept(0, 2);
        let (deg, none) = u.stats();
        assert_eq!(deg.max, 2);
        assert_eq!(deg.min, 1);
        assert!(none.is_none());
    }

    #[test]
    fn text_binary_compressed_agree() {
        let edges = [(5u64, 7u64), (5, 8), (6, 0)];
        let mut text = TextSink::new(Vec::new());
        let mut bin = BinarySink::new(Vec::new());
        let mut comp = CompressedSink::new(Vec::new(), 10).unwrap();
        for &(u, v) in &edges {
            text.accept(u, v);
            bin.accept(u, v);
            comp.accept(u, v);
        }
        assert_eq!(text.finish().unwrap(), 3);
        assert_eq!(bin.finish().unwrap(), 3);
        assert_eq!(comp.finish().unwrap(), 3);
        assert_eq!(String::from_utf8(text.w).unwrap(), "5 7\n5 8\n6 0\n");
        assert_eq!(bin.w.len(), 3 * 16);
    }

    #[test]
    fn push_batch_equals_per_edge_for_every_sink() {
        let edges: Vec<(u64, u64)> = (0..100u64).map(|i| (i / 3, (i * 7) % 41)).collect();

        // Feed the same stream once edge-by-edge, once in ragged batches
        // (including an empty one); every sink must produce identical
        // output, counts and checksums.
        macro_rules! both {
            ($mk:expr, $extract:expr) => {{
                let mut per_edge = $mk;
                for &(u, v) in &edges {
                    per_edge.accept(u, v);
                }
                let mut batched = $mk;
                batched.push_batch(&edges[..33]);
                batched.push_batch(&[]);
                batched.push_batch(&edges[33..34]);
                batched.push_batch(&edges[34..]);
                assert_eq!(per_edge.finish().unwrap(), batched.finish().unwrap());
                let a = $extract(per_edge);
                let b = $extract(batched);
                assert_eq!(a, b);
            }};
        }

        both!(CountingSink::new(), |s: CountingSink| s.count());
        both!(ChecksumSink::new(), |s: ChecksumSink| s.checksum());
        both!(TextSink::new(Vec::new()), |s: TextSink<Vec<u8>>| s.w);
        both!(BinarySink::new(Vec::new()), |s: BinarySink<Vec<u8>>| s.w);
        // CompressedSink: grab the encoded bytes before `finish` drops
        // the writer.
        {
            let mut per_edge = CompressedSink::new(Vec::new(), 100).unwrap();
            for &(u, v) in &edges {
                per_edge.accept(u, v);
            }
            let mut batched = CompressedSink::new(Vec::new(), 100).unwrap();
            batched.push_batch(&edges[..33]);
            batched.push_batch(&[]);
            batched.push_batch(&edges[33..]);
            let a = per_edge.enc.take().unwrap().finish().unwrap().0;
            let b = batched.enc.take().unwrap().finish().unwrap().0;
            assert_eq!(a, b);
            assert_eq!(per_edge.finish().unwrap(), batched.finish().unwrap());
        }
        both!(
            DegreeStatsSink::new(100, true),
            |s: DegreeStatsSink| format!("{:?}", s.stats())
        );
        both!(
            TeeSink::new(CountingSink::new(), ChecksumSink::new()),
            |s: TeeSink<CountingSink, ChecksumSink>| (s.a.count(), s.b.checksum())
        );
    }

    #[test]
    fn tee_feeds_both() {
        let mut tee = TeeSink::new(CountingSink::new(), ChecksumSink::new());
        tee.accept(1, 2);
        tee.accept(3, 4);
        assert_eq!(tee.finish().unwrap(), 2);
        assert_eq!(tee.b.count(), 2);
    }

    #[test]
    fn fn_sink_bridges_closures() {
        let mut seen = Vec::new();
        {
            let mut sink = FnSink::new(|u, v| seen.push((u, v)));
            sink.accept(9, 1);
            assert_eq!(sink.finish().unwrap(), 1);
        }
        assert_eq!(seen, vec![(9, 1)]);
    }
}
