//! RGG experiments: Fig. 9 (vs the communicating Holtgrewe generator),
//! Fig. 10 (weak scaling 2D/3D), Fig. 11 (strong scaling 2D/3D).

use crate::support::*;
use kagen_baselines::HoltgreweRgg;
use kagen_core::{Rgg2d, Rgg3d};

/// Fig. 9: 2D RGG, KaGen (communication-free, redundant halos) vs
/// Holtgrewe et al. (communicating).
pub fn fig9_vs_holtgrewe(fast: bool) -> String {
    let per_pe: Vec<u64> = if fast {
        vec![1 << 11]
    } else {
        vec![1 << 13, 1 << 15]
    };
    let pes: Vec<usize> = if fast { vec![1, 4] } else { vec![1, 4, 16, 64] };
    let mut rows = Vec::new();
    for &npp in &per_pe {
        for &p in &pes {
            let n = npp * p as u64;
            let r = Rgg2d::threshold_radius(n, p as u64);
            let kagen = run_generator(&Rgg2d::new(n, r).with_seed(5).with_chunks(p));
            let holt = HoltgreweRgg::new(n, r, p, 5).run();
            rows.push(vec![
                format!("2^{}", npp.ilog2()),
                p.to_string(),
                ms(kagen.time),
                ms(holt.wall),
                format!("{}", holt.bytes_exchanged / 1024),
                format!("{:.2}", kagen.imbalance),
            ]);
        }
    }
    report(
        "fig9",
        "2D RGG: KaGen vs Holtgrewe (communicating)",
        "For small P the communicating generator can be up to ~2x faster \
         (KaGen pays halo recomputation, it pays nothing); as P grows its \
         exchange volume (Θ(n/P) per PE, here reported in KiB) makes \
         KaGen faster — the crossover of Fig. 9 (paper: at ~2^12 PEs on \
         SuperMUC; earlier here because channels are slower than MPI on \
         one node).",
        format_table(
            "Fig. 9 (times in ms)",
            &[
                "n/P",
                "P",
                "KaGen ms",
                "Holtgrewe ms",
                "exchanged KiB",
                "KaGen imbalance",
            ],
            &rows,
        ),
    )
}

/// Fig. 10: weak scaling of the 2D and 3D RGG generators.
pub fn fig10_weak_scaling(fast: bool) -> String {
    let per_pe: Vec<u64> = if fast {
        vec![1 << 11]
    } else {
        vec![1 << 13, 1 << 15]
    };
    let pes: Vec<usize> = if fast {
        vec![1, 4, 16]
    } else {
        vec![1, 4, 16, 64]
    };
    let mut rows = Vec::new();
    for &npp in &per_pe {
        for &p in &pes {
            let n = npp * p as u64;
            let r2 = Rgg2d::threshold_radius(n, p as u64);
            let g2 = run_generator(&Rgg2d::new(n, r2).with_seed(7).with_chunks(p));
            let r3 = Rgg3d::threshold_radius(n, p as u64);
            let g3 = run_generator(&Rgg3d::new(n, r3).with_seed(7).with_chunks(p));
            rows.push(vec![
                format!("2^{}", npp.ilog2()),
                p.to_string(),
                ms(g2.time),
                (g2.edges / 2).to_string(),
                ms(g3.time),
                (g3.edges / 2).to_string(),
            ]);
        }
    }
    report(
        "fig10",
        "weak scaling RGG 2D/3D",
        "Time rises by roughly the halo-recomputation factor (bounded by a \
         constant: ~2x for the threshold radius) from P=1 to small P, then \
         stays flat — near-optimal weak scaling.",
        format_table(
            "Fig. 10 (emulated parallel time; edge counts incl. redundancy /2)",
            &[
                "n/P",
                "P",
                "2D time ms",
                "2D edges",
                "3D time ms",
                "3D edges",
            ],
            &rows,
        ),
    )
}

/// Fig. 11: strong scaling of the 2D and 3D RGG generators.
pub fn fig11_strong_scaling(fast: bool) -> String {
    let ns: Vec<u64> = if fast {
        vec![1 << 14]
    } else {
        vec![1 << 16, 1 << 18]
    };
    let pes: Vec<usize> = if fast {
        vec![1, 4, 16]
    } else {
        vec![1, 4, 16, 64]
    };
    let mut rows = Vec::new();
    for &n in &ns {
        let r2 = Rgg2d::threshold_radius(n, 1);
        let r3 = Rgg3d::threshold_radius(n, 1);
        let mut base2 = 0.0;
        let mut base3 = 0.0;
        for &p in &pes {
            let g2 = run_generator(&Rgg2d::new(n, r2).with_seed(9).with_chunks(p));
            let g3 = run_generator(&Rgg3d::new(n, r3).with_seed(9).with_chunks(p));
            if p == pes[0] {
                base2 = g2.time.as_secs_f64();
                base3 = g3.time.as_secs_f64();
            }
            rows.push(vec![
                format!("2^{}", n.ilog2()),
                p.to_string(),
                ms(g2.time),
                format!("{:.1}", base2 / g2.time.as_secs_f64().max(1e-9)),
                ms(g3.time),
                format!("{:.1}", base3 / g3.time.as_secs_f64().max(1e-9)),
            ]);
        }
    }
    report(
        "fig11",
        "strong scaling RGG 2D/3D",
        "Speedup near-linear in P once the per-PE portion dominates the \
         halo; flattens when chunks shrink towards single cells.",
        format_table(
            "Fig. 11 (speedup vs smallest P)",
            &[
                "n",
                "P",
                "2D time ms",
                "2D speedup",
                "3D time ms",
                "3D speedup",
            ],
            &rows,
        ),
    )
}
