//! Synthetic social network analysis with random hyperbolic graphs.
//!
//! RHGs are the paper's stand-in for complex networks: power-law degree
//! distribution (exponent γ = 2α+1), non-vanishing clustering, small
//! diameter. This example generates a network, validates the power-law
//! exponent with a maximum-likelihood fit, inspects the hubs, and
//! estimates clustering — the measurements a network scientist would run
//! on a real social graph.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use kagen_repro::core::{generate_undirected, Rhg};
use kagen_repro::graph::stats::{degree_histogram, global_clustering, DegreeStats};
use kagen_repro::stats::power_law_alpha;

fn main() {
    let n: u64 = 30_000;
    let gamma = 2.5;
    let avg_deg = 12.0;
    let gen = Rhg::new(n, avg_deg, gamma).with_seed(2026).with_chunks(8);
    let el = generate_undirected(&gen);

    let degrees = el.degrees_undirected();
    let stats = DegreeStats::from_degrees(&degrees);
    println!("synthetic social network: n = {n}, target γ = {gamma}, target d̄ = {avg_deg}");
    println!(
        "m = {}, degree min/avg/max = {}/{:.2}/{}",
        el.edges.len(),
        stats.min,
        stats.mean,
        stats.max
    );

    // Degree distribution tail: MLE exponent should approximate γ.
    match power_law_alpha(&degrees, 10) {
        Some(alpha) => {
            println!("power-law exponent (MLE, tail d ≥ 10): {alpha:.2} (target {gamma})");
            assert!(
                (alpha - gamma).abs() < 0.6,
                "estimated exponent far from the model target"
            );
        }
        None => println!("tail too small for an exponent estimate"),
    }

    // Hubs: the few highest-degree vertices dominate.
    let mut by_degree: Vec<(u64, u64)> = degrees
        .iter()
        .enumerate()
        .map(|(v, &d)| (d, v as u64))
        .collect();
    by_degree.sort_unstable_by(|a, b| b.cmp(a));
    println!("\ntop hubs (degree, vertex):");
    for (d, v) in by_degree.iter().take(5) {
        println!("  {d:>6}  vertex {v}");
    }
    let hub_share: u64 = by_degree.iter().take(10).map(|(d, _)| d).sum();
    println!(
        "top-10 hubs carry {:.1}% of all edge endpoints",
        100.0 * hub_share as f64 / (2 * el.edges.len()) as f64
    );

    // Clustering: geometric models cluster, unlike ER at equal density.
    let clustering = global_clustering(&el);
    println!("\nglobal clustering coefficient: {clustering:.3}");
    let er_expect = avg_deg / n as f64;
    println!("(an Erdős–Rényi graph at the same density would have ≈ {er_expect:.5})");
    assert!(
        clustering > 20.0 * er_expect,
        "hyperbolic geometry must induce strong clustering"
    );

    // Histogram tail for eyeballing the power law on a log-log scale.
    let hist = degree_histogram(&degrees);
    println!("\nlog-log degree histogram (degree, count):");
    let mut d = 1usize;
    while d < hist.len() {
        let upper = (d * 2).min(hist.len());
        let count: u64 = hist[d..upper].iter().sum();
        if count > 0 {
            println!("  [{d:>5}, {upper:>5})  {count}");
        }
        d *= 2;
    }
}
