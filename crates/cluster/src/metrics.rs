//! Per-rank telemetry federation: worker sidecars in, one run-wide
//! `metrics.json` out — the metrics mirror of `RunHeader::federate`.
//!
//! Each worker process snapshots its obs counters into a sidecar next
//! to its partial manifest (`part-<a>-<b>.metrics.json`); the
//! coordinator collects one [`RankMetrics`] per finished rank (sidecar
//! counters, shard edge totals, its own wall-clock and attempt
//! bookkeeping) and [`RunMetrics`] federates them into a single
//! document. The same invariant the manifest federation enforces holds
//! here: on a fresh run the per-rank `edges` sum to the manifest's edge
//! count exactly; on a resume the difference is accounted to
//! `reused_edges` (shards validated and kept from a previous run, which
//! no rank of *this* launch generated).
//!
//! Every value is an unsigned integer (wall time is microseconds), so
//! the documents round-trip through the workspace's hand-rolled parser
//! (`kagen_pipeline::manifest::json`) — floats never enter the format.
//!
//! Schema v2 adds full histogram federation: sidecars and the run-wide
//! document carry each histogram's log2 bucket vector, and the
//! coordinator merges them bucket-wise across ranks
//! ([`RunMetrics::merged_histograms`]) so per-stage latency
//! distributions survive federation instead of collapsing to
//! count/sum. The v1 invariant is preserved: every histogram still
//! appears in the flat counter lists as `.count`/`.sum` scalars, and
//! the merged vectors reconcile with those totals exactly.

use kagen_obs::HistogramSnapshot;
use kagen_pipeline::manifest::{json, push_str_value};
use kagen_pipeline::Manifest;
use std::io;
use std::path::{Path, PathBuf};

/// Schema tag of the federated metrics document.
pub const METRICS_SCHEMA: &str = "kagen-metrics/v2";

/// Previous schema tag, still accepted by [`RunMetrics::from_json`]
/// (v1 documents carry no histogram vectors).
pub const METRICS_SCHEMA_V1: &str = "kagen-metrics/v1";

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Sidecar file name for the rank covering PEs `[pe_begin, pe_end)` —
/// the partial manifest's name with a `.metrics.json` suffix.
pub fn sidecar_file_name(pe_begin: u64, pe_end: u64) -> String {
    format!("part-{pe_begin:05}-{pe_end:05}.metrics.json")
}

fn counters_json(counters: &[(String, u64)]) -> String {
    let mut out = String::from("{");
    for (i, (name, v)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_value(&mut out, name);
        out.push_str(&format!(":{v}"));
    }
    out.push('}');
    out
}

fn histograms_json(hists: &[(String, HistogramSnapshot)]) -> String {
    let mut out = String::from("{");
    for (i, (name, h)) in hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_value(&mut out, name);
        out.push_str(&format!(
            ":{{\"count\":{},\"sum\":{},\"buckets\":[",
            h.count, h.sum
        ));
        for (j, (b, c)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"bucket\":{b},\"count\":{c}}}"));
        }
        out.push_str("]}");
    }
    out.push('}');
    out
}

fn parse_histograms(v: &json::Value) -> Result<Vec<(String, HistogramSnapshot)>, String> {
    let json::Value::Obj(fields) = v else {
        return Err("histograms is not an object".into());
    };
    let mut out = Vec::with_capacity(fields.len());
    for (name, h) in fields {
        let obj = h.as_obj(name)?;
        let mut buckets = Vec::new();
        for e in obj.get("buckets")?.as_arr("buckets")? {
            let e = e.as_obj("bucket entry")?;
            buckets.push((
                e.get("bucket")?.as_u64("bucket")? as usize,
                e.get("count")?.as_u64("count")?,
            ));
        }
        out.push((
            name.clone(),
            HistogramSnapshot {
                count: obj.get("count")?.as_u64("count")?,
                sum: obj.get("sum")?.as_u64("sum")?,
                buckets,
            },
        ));
    }
    Ok(out)
}

/// What one worker's metrics sidecar carries: the flat counter scalars
/// (the v1 payload, histogram `.count`/`.sum` included) plus the full
/// histogram bucket vectors added in v2.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SidecarTelemetry {
    /// Flat `(name, value)` scalars, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Full histogram snapshots, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Serialize this process's current obs metrics as a sidecar document:
/// the flat scalars under `"counters"` plus full histogram bucket
/// vectors under `"histograms"`.
pub fn sidecar_json() -> String {
    let counters = kagen_obs::metrics::scalars();
    let hists: Vec<(String, HistogramSnapshot)> = kagen_obs::metrics::histograms()
        .into_iter()
        .map(|(n, h)| (n.to_string(), h))
        .collect();
    format!(
        "{{\"counters\":{},\"histograms\":{}}}",
        counters_json(&counters),
        histograms_json(&hists)
    )
}

/// Write this process's current obs metrics (see [`sidecar_json`]) to
/// an explicit path — the `kagen worker --metrics-out` document.
pub fn write_sidecar_to(path: &Path) -> io::Result<()> {
    std::fs::write(path, sidecar_json())
}

/// Write this process's current obs metrics as the sidecar for PEs
/// `[pe_begin, pe_end)`. Called by the worker after its partial
/// manifest is complete; a plain extra file, never read by the shard
/// pipeline — output bytes are untouched.
pub fn write_sidecar(dir: &Path, pe_begin: u64, pe_end: u64) -> io::Result<PathBuf> {
    let path = dir.join(sidecar_file_name(pe_begin, pe_end));
    write_sidecar_to(&path)?;
    Ok(path)
}

/// Load (and leave in place) the sidecar for PEs `[pe_begin, pe_end)`.
/// `Ok(None)` if no sidecar exists — the worker ran without telemetry.
/// A v1 sidecar (no `"histograms"` key) loads with empty histograms.
pub fn load_sidecar(
    dir: &Path,
    pe_begin: u64,
    pe_end: u64,
) -> io::Result<Option<SidecarTelemetry>> {
    let path = dir.join(sidecar_file_name(pe_begin, pe_end));
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let parse = || -> Result<SidecarTelemetry, String> {
        let doc = json::parse(&text)?;
        let obj = doc.as_obj("metrics sidecar")?;
        let mut counters = Vec::new();
        match obj.get("counters")? {
            json::Value::Obj(fields) => {
                for (name, v) in fields {
                    counters.push((name.clone(), v.as_u64(name)?));
                }
            }
            _ => return Err("metrics sidecar: counters is not an object".into()),
        }
        let histograms = match obj.get("histograms") {
            Ok(v) => parse_histograms(v)?,
            Err(_) => Vec::new(),
        };
        Ok(SidecarTelemetry {
            counters,
            histograms,
        })
    };
    parse().map(Some).map_err(invalid)
}

/// One finished rank's telemetry, as the coordinator saw it.
#[derive(Clone, Debug)]
pub struct RankMetrics {
    /// Rank id (plan order).
    pub rank: u64,
    /// First PE of the rank's contiguous range.
    pub pe_begin: u64,
    /// One past the rank's last PE.
    pub pe_end: u64,
    /// Edges this rank wrote (sum of its shard infos).
    pub edges: u64,
    /// Wall time of the rank's successful attempt, in microseconds,
    /// measured by the coordinator around the worker run.
    pub wall_us: u64,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u64,
    /// Worker-side counter snapshot from the sidecar (empty when the
    /// worker ran without telemetry or in the coordinator's process).
    pub counters: Vec<(String, u64)>,
    /// Worker-side full histogram snapshots from the sidecar (empty
    /// under the same conditions as `counters`).
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// The federated, run-wide metrics document behind `--metrics-out`.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    /// Generator model name (from the manifest).
    pub model: String,
    /// Instance seed.
    pub seed: u64,
    /// PE count.
    pub chunks: u64,
    /// Total edges in the federated manifest.
    pub edges: u64,
    /// Shards reused from a previous run (resume only).
    pub reused_shards: u64,
    /// Edges inside those reused shards — `edges` minus the sum of the
    /// per-rank totals, so the two accountings always reconcile.
    pub reused_edges: u64,
    /// Coordinator wall time for the whole launch, in microseconds.
    pub wall_us: u64,
    /// One entry per rank that finished in this launch, in rank order.
    pub ranks: Vec<RankMetrics>,
}

impl RunMetrics {
    /// Federate per-rank telemetry against the final manifest.
    ///
    /// `reused_edges` is derived, not measured: whatever the ranks of
    /// this launch did not generate must have come from reused shards.
    pub fn federate(manifest: &Manifest, mut ranks: Vec<RankMetrics>, wall_us: u64) -> RunMetrics {
        ranks.sort_by_key(|r| r.rank);
        let rank_edges: u64 = ranks.iter().map(|r| r.edges).sum();
        RunMetrics {
            model: manifest.model.clone(),
            seed: manifest.seed,
            chunks: manifest.chunks,
            edges: manifest.edges,
            reused_shards: manifest.chunks
                - ranks.iter().map(|r| r.pe_end - r.pe_begin).sum::<u64>(),
            reused_edges: manifest.edges - rank_edges,
            wall_us,
            ranks,
        }
    }

    /// Serialize as integer-only JSON (see the module docs).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":");
        push_str_value(&mut out, METRICS_SCHEMA);
        out.push_str(",\"model\":");
        push_str_value(&mut out, &self.model);
        out.push_str(&format!(
            ",\"seed\":{},\"chunks\":{},\"edges\":{},\"reused_shards\":{},\"reused_edges\":{},\"wall_us\":{},\"ranks\":[",
            self.seed, self.chunks, self.edges, self.reused_shards, self.reused_edges, self.wall_us
        ));
        for (i, r) in self.ranks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rank\":{},\"pe_begin\":{},\"pe_end\":{},\"edges\":{},\"wall_us\":{},\"attempts\":{},\"counters\":{},\"histograms\":{}}}",
                r.rank, r.pe_begin, r.pe_end, r.edges, r.wall_us, r.attempts,
                counters_json(&r.counters),
                histograms_json(&r.histograms)
            ));
        }
        out.push_str("],\"totals\":");
        out.push_str(&counters_json(&self.totals()));
        out.push_str(",\"histograms\":");
        out.push_str(&histograms_json(&self.merged_histograms()));
        out.push('}');
        out
    }

    /// Sum of the per-rank worker counters, merged by name (the
    /// run-wide view of `gen.edges`, `rng.words`, ...).
    pub fn totals(&self) -> Vec<(String, u64)> {
        let mut totals: Vec<(String, u64)> = Vec::new();
        for r in &self.ranks {
            for (name, v) in &r.counters {
                match totals.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                    Ok(i) => totals[i].1 += v,
                    Err(i) => totals.insert(i, (name.clone(), *v)),
                }
            }
        }
        totals
    }

    /// Per-rank histograms merged bucket-wise by name — the run-wide
    /// distribution view. Reconciles with the flat [`RunMetrics::totals`]
    /// exactly: each merged histogram's `count`/`sum` equal the
    /// `<name>.count`/`<name>.sum` scalar totals, and its bucket counts
    /// sum to `count` (asserted in tests and CI).
    pub fn merged_histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        let mut merged: Vec<(String, HistogramSnapshot)> = Vec::new();
        for r in &self.ranks {
            for (name, h) in &r.histograms {
                match merged.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                    Ok(i) => merged[i].1.merge(h),
                    Err(i) => merged.insert(i, (name.clone(), h.clone())),
                }
            }
        }
        merged
    }

    /// Write the document to `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Parse a document produced by [`RunMetrics::to_json`] (the
    /// `totals` field is recomputed from the ranks, not read back).
    pub fn from_json(text: &str) -> io::Result<RunMetrics> {
        let parse = || -> Result<RunMetrics, String> {
            let doc = json::parse(text)?;
            let obj = doc.as_obj("metrics")?;
            let schema = obj.get("schema")?.as_str("schema")?;
            if schema != METRICS_SCHEMA && schema != METRICS_SCHEMA_V1 {
                return Err(format!("unsupported metrics schema '{schema}'"));
            }
            let mut ranks = Vec::new();
            for v in obj.get("ranks")?.as_arr("ranks")? {
                let r = v.as_obj("rank entry")?;
                let mut counters = Vec::new();
                if let json::Value::Obj(fields) = r.get("counters")? {
                    for (name, v) in fields {
                        counters.push((name.clone(), v.as_u64(name)?));
                    }
                }
                // v1 rank entries carry no histogram vectors.
                let histograms = match r.get("histograms") {
                    Ok(v) => parse_histograms(v)?,
                    Err(_) => Vec::new(),
                };
                ranks.push(RankMetrics {
                    rank: r.get("rank")?.as_u64("rank")?,
                    pe_begin: r.get("pe_begin")?.as_u64("pe_begin")?,
                    pe_end: r.get("pe_end")?.as_u64("pe_end")?,
                    edges: r.get("edges")?.as_u64("edges")?,
                    wall_us: r.get("wall_us")?.as_u64("wall_us")?,
                    attempts: r.get("attempts")?.as_u64("attempts")?,
                    counters,
                    histograms,
                });
            }
            Ok(RunMetrics {
                model: obj.get("model")?.as_str("model")?.to_string(),
                seed: obj.get("seed")?.as_u64("seed")?,
                chunks: obj.get("chunks")?.as_u64("chunks")?,
                edges: obj.get("edges")?.as_u64("edges")?,
                reused_shards: obj.get("reused_shards")?.as_u64("reused_shards")?,
                reused_edges: obj.get("reused_edges")?.as_u64("reused_edges")?,
                wall_us: obj.get("wall_us")?.as_u64("wall_us")?,
                ranks,
            })
        };
        parse().map_err(invalid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank(rank: u64, pe_begin: u64, pe_end: u64, edges: u64) -> RankMetrics {
        // One histogram with 2 observations per rank; the matching
        // `.count`/`.sum` scalars ride in `counters` exactly as
        // `kagen_obs::metrics::scalars()` would flatten them, so the
        // v1 reconciliation invariant is testable end to end.
        let hist = HistogramSnapshot {
            count: 2,
            sum: edges + 10,
            buckets: vec![(3, 1), (4 + rank as usize, 1)],
        };
        RankMetrics {
            rank,
            pe_begin,
            pe_end,
            edges,
            wall_us: 1000 + rank,
            attempts: 1,
            counters: vec![
                ("gen.edges".into(), edges),
                ("sink.batches".into(), 2),
                ("sink.shard_wall_us.count".into(), hist.count),
                ("sink.shard_wall_us.sum".into(), hist.sum),
            ],
            histograms: vec![("sink.shard_wall_us".into(), hist)],
        }
    }

    fn manifest(chunks: u64, edges: u64) -> Manifest {
        Manifest {
            model: "gnm_directed".into(),
            params: "n=10 m=100".into(),
            seed: 42,
            n: 10,
            directed: true,
            chunks,
            edges,
            format: "compressed".into(),
            shards: Vec::new(),
        }
    }

    #[test]
    fn fresh_run_rank_edges_sum_to_manifest() {
        let m = manifest(4, 100);
        let rm = RunMetrics::federate(&m, vec![rank(1, 2, 4, 60), rank(0, 0, 2, 40)], 5000);
        assert_eq!(rm.reused_shards, 0);
        assert_eq!(rm.reused_edges, 0);
        assert_eq!(rm.ranks.iter().map(|r| r.edges).sum::<u64>(), rm.edges);
        // Sorted by rank regardless of arrival order.
        assert_eq!(rm.ranks[0].rank, 0);
        let totals = rm.totals();
        assert_eq!(
            totals,
            vec![
                ("gen.edges".into(), 100),
                ("sink.batches".into(), 4),
                ("sink.shard_wall_us.count".into(), 4),
                ("sink.shard_wall_us.sum".into(), 120),
            ]
        );
    }

    #[test]
    fn resume_accounts_reused_edges() {
        let m = manifest(4, 100);
        // Only PEs 2..4 were regenerated; 0..2 (40 edges) were reused.
        let rm = RunMetrics::federate(&m, vec![rank(0, 2, 4, 60)], 5000);
        assert_eq!(rm.reused_shards, 2);
        assert_eq!(rm.reused_edges, 40);
        assert_eq!(
            rm.ranks.iter().map(|r| r.edges).sum::<u64>() + rm.reused_edges,
            rm.edges
        );
    }

    #[test]
    fn json_roundtrip() {
        let m = manifest(4, 100);
        let rm = RunMetrics::federate(&m, vec![rank(0, 0, 2, 40), rank(1, 2, 4, 60)], 5000);
        let text = rm.to_json();
        let back = RunMetrics::from_json(&text).unwrap();
        assert_eq!(back.model, rm.model);
        assert_eq!(back.edges, rm.edges);
        assert_eq!(back.wall_us, 5000);
        assert_eq!(back.ranks.len(), 2);
        assert_eq!(back.ranks[1].counters, rm.ranks[1].counters);
        assert_eq!(back.ranks[1].histograms, rm.ranks[1].histograms);
        assert_eq!(back.totals(), rm.totals());
        assert_eq!(back.merged_histograms(), rm.merged_histograms());
        // Integer-only values by construction: the hand-rolled u64-only
        // parser accepted every number in the round trip above.
    }

    #[test]
    fn merged_histograms_reconcile_with_v1_scalar_totals() {
        let m = manifest(4, 100);
        let rm = RunMetrics::federate(&m, vec![rank(0, 0, 2, 40), rank(1, 2, 4, 60)], 5000);
        let merged = rm.merged_histograms();
        assert_eq!(merged.len(), 1);
        let (name, h) = &merged[0];
        assert_eq!(name, "sink.shard_wall_us");
        // Ranks land in different top buckets (4 vs 5); bucket 3 merges.
        assert_eq!(h.buckets, vec![(3, 2), (4, 1), (5, 1)]);
        assert_eq!(h.bucket_total(), h.count);
        // The v2 vectors reconcile exactly with the v1 scalar totals.
        let totals = rm.totals();
        let scalar = |k: &str| totals.iter().find(|(n, _)| n == k).unwrap().1;
        assert_eq!(h.count, scalar("sink.shard_wall_us.count"));
        assert_eq!(h.sum, scalar("sink.shard_wall_us.sum"));
    }

    #[test]
    fn v1_documents_still_parse() {
        let v1 = "{\"schema\":\"kagen-metrics/v1\",\"model\":\"gnm_directed\",\"seed\":42,\
                  \"chunks\":2,\"edges\":10,\"reused_shards\":0,\"reused_edges\":0,\
                  \"wall_us\":99,\"ranks\":[{\"rank\":0,\"pe_begin\":0,\"pe_end\":2,\
                  \"edges\":10,\"wall_us\":98,\"attempts\":1,\
                  \"counters\":{\"gen.edges\":10}}],\"totals\":{\"gen.edges\":10}}";
        let rm = RunMetrics::from_json(v1).unwrap();
        assert_eq!(rm.edges, 10);
        assert_eq!(rm.ranks[0].counters, vec![("gen.edges".into(), 10)]);
        assert!(rm.ranks[0].histograms.is_empty());
        assert!(rm.merged_histograms().is_empty());
        // Unknown schemas are still rejected.
        let bad = v1.replace("kagen-metrics/v1", "kagen-metrics/v9");
        assert!(RunMetrics::from_json(&bad).is_err());
    }

    #[test]
    fn sidecar_roundtrip() {
        let dir = std::env::temp_dir().join("kagen_metrics_sidecar");
        std::fs::create_dir_all(&dir).unwrap();
        // No sidecar -> None, not an error.
        assert!(load_sidecar(&dir, 90, 95).unwrap().is_none());
        // A v1 sidecar (counters only) still loads.
        let path = dir.join(sidecar_file_name(0, 3));
        std::fs::write(&path, "{\"counters\":{\"gen.edges\":12,\"rng.words\":256}}").unwrap();
        let side = load_sidecar(&dir, 0, 3).unwrap().unwrap();
        assert_eq!(
            side.counters,
            vec![("gen.edges".into(), 12), ("rng.words".into(), 256)]
        );
        assert!(side.histograms.is_empty());
        // A v2 sidecar carries bucket vectors.
        std::fs::write(
            &path,
            "{\"counters\":{\"gen.edges\":12},\"histograms\":{\"sink.shard_wall_us\":\
             {\"count\":2,\"sum\":300,\"buckets\":[{\"bucket\":8,\"count\":2}]}}}",
        )
        .unwrap();
        let side = load_sidecar(&dir, 0, 3).unwrap().unwrap();
        assert_eq!(side.histograms.len(), 1);
        assert_eq!(side.histograms[0].1.count, 2);
        assert_eq!(side.histograms[0].1.buckets, vec![(8, 2)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn live_sidecar_write_carries_histograms() {
        static H: kagen_obs::Histogram = kagen_obs::Histogram::new("test.cluster.sidecar_hist");
        let dir = std::env::temp_dir().join("kagen_metrics_sidecar_live");
        std::fs::create_dir_all(&dir).unwrap();
        kagen_obs::metrics::set_enabled(true);
        H.record(100);
        write_sidecar(&dir, 10, 12).unwrap();
        let side = load_sidecar(&dir, 10, 12).unwrap().unwrap();
        let (_, h) = side
            .histograms
            .iter()
            .find(|(n, _)| n == "test.cluster.sidecar_hist")
            .expect("recorded histogram must appear in the sidecar");
        assert!(h.count >= 1);
        assert_eq!(h.bucket_total(), h.count);
        // The flattened v1 scalars ride alongside.
        assert!(side
            .counters
            .iter()
            .any(|(n, _)| n == "test.cluster.sidecar_hist.count"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
