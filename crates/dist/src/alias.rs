//! Walker/Vose alias tables: O(k) construction, O(1) sampling from any
//! finite discrete distribution. Used by the multi-level R-MAT descent
//! tables (§9 "faster R-MAT"), where one alias draw replaces several
//! recursion levels.

use kagen_util::Rng64;

/// One alias slot: the cut-off threshold in fixed point (probability
/// × 2³²) and the alias outcome. Fused and packed to 8 bytes so a draw
/// touches exactly one word — on large tables (the 4^8-entry R-MAT
/// descent tables) the split prob/alias layout cost two cache misses per
/// draw and twice the footprint. The 2⁻³² threshold quantization shifts
/// each outcome's probability by at most 2⁻³² absolute — far below
/// anything a statistical test (or the f64 weights themselves) resolve.
#[derive(Clone, Copy, Debug)]
struct Slot {
    threshold: u32,
    alias: u32,
}

/// Precomputed alias table over `weights.len()` outcomes.
#[derive(Clone, Debug)]
pub struct AliasTable {
    slots: Vec<Slot>,
}

impl AliasTable {
    /// Build from non-negative weights (need not be normalized; at least
    /// one must be positive).
    pub fn new(weights: &[f64]) -> Self {
        let k = weights.len();
        assert!(k > 0, "alias table needs at least one outcome");
        assert!(k <= u32::MAX as usize, "too many outcomes");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative with positive sum"
        );
        // Vose's stable two-stack construction.
        let scale = k as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; k];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // Move the excess of l onto s's slot.
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are exactly 1 up to rounding; alias them to
        // themselves so a saturated threshold can never redirect.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        // Fixed-point thresholds: probability × 2³² (the cast saturates
        // p = 1.0 to u32::MAX; those slots self-alias, see above).
        let slots = prob
            .iter()
            .zip(&alias)
            .map(|(&p, &a)| Slot {
                threshold: (p * 4_294_967_296.0) as u32,
                alias: a,
            })
            .collect();
        AliasTable { slots }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the table has no outcomes (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Draw one outcome index from a **single** 64-bit word.
    ///
    /// The word is split by a widening multiply: the high half of
    /// `x · k` is the slot index (bias ≤ k/2⁶⁴ — with k ≤ 2³² outcomes,
    /// below one part in 2³²), the top 32 bits of the low half are a
    /// fixed-point coin compared against the slot's integer threshold.
    /// One RNG word, one 8-byte load, one integer compare per draw —
    /// this is every table level of the R-MAT descent hot path.
    #[inline]
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> usize {
        self.sample_word(rng.next_u64())
    }

    /// Draw one outcome index from an already-generated 64-bit word — the
    /// pure half of [`AliasTable::sample`]. Batched callers (the R-MAT
    /// composed-table fill) precompute a lane of RNG words and then issue
    /// the table loads back to back, so the loads of independent lanes
    /// overlap instead of serializing behind each lane's RNG state.
    #[inline]
    pub fn sample_word(&self, x: u64) -> usize {
        self.sample_word_generic(x)
    }

    /// [`AliasTable::sample_word`] specialized to power-of-two tables:
    /// the slot index is the word's top `log₂ k` bits (one shift+mask
    /// instead of a widening 128-bit multiply) and the coin is the low
    /// 32 bits. Index and coin bits are disjoint for k ≤ 2³² outcomes.
    /// Note the different word→outcome map: streams drawn through this
    /// entry point are *not* interchangeable with [`AliasTable::sample`]
    /// draws — callers pick one map per kernel and keep it.
    #[inline(always)]
    pub fn sample_word_pow2(&self, x: u64) -> usize {
        debug_assert!(self.slots.len().is_power_of_two());
        // The mask both proves in-bounds indexing to the compiler and
        // keeps the method total even on non-power-of-two tables.
        // `wrapping_shr` keeps the single-outcome table total (shift 64
        // wraps to 0; the mask then pins the index to 0 anyway).
        let i = (x.wrapping_shr(64 - self.slots.len().trailing_zeros()) as usize)
            & (self.slots.len() - 1);
        let slot = &self.slots[i];
        let keep = ((x as u32) < slot.threshold) as u32;
        let mask = keep.wrapping_neg();
        (((i as u32) & mask) | (slot.alias & !mask)) as usize
    }

    #[inline]
    fn sample_word_generic(&self, x: u64) -> usize {
        let m = (x as u128) * (self.slots.len() as u128);
        // The high half is < len by construction; the `min` proves it to
        // the compiler (no bounds-check branch in the hot loop).
        let i = ((m >> 64) as usize).min(self.slots.len() - 1);
        let slot = &self.slots[i];
        // Branchless select: the coin-vs-threshold outcome is a 30–50%
        // coin flip — as a branch it would mispredict roughly once per
        // draw, which costs more than the whole rest of the sampler.
        let keep = ((((m as u64) >> 32) as u32) < slot.threshold) as u32;
        let mask = keep.wrapping_neg();
        (((i as u32) & mask) | (slot.alias & !mask)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kagen_util::Mt64;

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[2.5]);
        let mut rng = Mt64::new(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn frequencies_match_weights() {
        let weights = [0.57, 0.19, 0.19, 0.05]; // Graph 500 quadrants
        let t = AliasTable::new(&weights);
        assert_eq!(t.len(), 4);
        let mut rng = Mt64::new(2);
        let reps = 400_000u64;
        let mut counts = [0u64; 4];
        for _ in 0..reps {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, (&c, &w)) in counts.iter().zip(&weights).enumerate() {
            let expect = reps as f64 * w;
            let sd = (reps as f64 * w * (1.0 - w)).sqrt();
            assert!(
                (c as f64 - expect).abs() < 6.0 * sd,
                "outcome {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn zero_weights_never_drawn() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 3.0]);
        let mut rng = Mt64::new(3);
        for _ in 0..10_000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3, "drew zero-weight outcome {s}");
        }
    }

    #[test]
    fn skewed_large_table() {
        // 4^6 outcomes with exponential skew, as the R-MAT tables build.
        let weights: Vec<f64> = (0..4096).map(|i| 0.999f64.powi(i)).collect();
        let t = AliasTable::new(&weights);
        let mut rng = Mt64::new(4);
        let mut first = 0u64;
        let reps = 200_000;
        for _ in 0..reps {
            if t.sample(&mut rng) == 0 {
                first += 1;
            }
        }
        let p0 = weights[0] / weights.iter().sum::<f64>();
        let expect = reps as f64 * p0;
        let sd = (reps as f64 * p0 * (1.0 - p0)).sqrt();
        assert!((first as f64 - expect).abs() < 6.0 * sd);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn all_zero_weights_panic() {
        AliasTable::new(&[0.0, 0.0]);
    }

    /// An `Rng64` that counts how many words are drawn.
    struct CountingRng {
        inner: Mt64,
        words: u64,
    }

    impl kagen_util::Rng64 for CountingRng {
        fn next_u64(&mut self) -> u64 {
            self.words += 1;
            self.inner.next_u64()
        }
    }

    #[test]
    fn sample_consumes_exactly_one_word() {
        let t = AliasTable::new(&[0.3, 0.3, 0.2, 0.1, 0.1]);
        let mut rng = CountingRng {
            inner: Mt64::new(9),
            words: 0,
        };
        for draws in 1..=10_000u64 {
            t.sample(&mut rng);
            assert_eq!(rng.words, draws, "more than one word per draw");
        }
    }

    #[test]
    fn single_draw_frequencies_non_power_of_two() {
        // The index half of the split word is produced by a widening
        // multiply, not a power-of-two shift — verify the distribution on
        // a non-power-of-two outcome count where floor-mapping bias would
        // concentrate if it existed.
        let weights = [0.05, 0.25, 0.1, 0.4, 0.15, 0.05];
        let t = AliasTable::new(&weights);
        let mut rng = Mt64::new(11);
        let reps = 600_000u64;
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..reps {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, (&c, &w)) in counts.iter().zip(&weights).enumerate() {
            let expect = reps as f64 * w;
            let sd = (reps as f64 * w * (1.0 - w)).sqrt();
            assert!(
                (c as f64 - expect).abs() < 6.0 * sd,
                "outcome {i}: {c} vs {expect}"
            );
        }
    }
}
