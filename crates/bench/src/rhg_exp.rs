//! RHG experiments: Fig. 14 (generator shootout), Fig. 15 (weak scaling),
//! Fig. 16 (strong scaling).

use crate::support::*;
use kagen_baselines::{hypergen_edges, nkgen_edges};
use kagen_core::{Rhg, Srhg};

/// Fig. 14: running time vs n for NkGen / RHG / HyperGen / sRHG across
/// power-law exponents and average degrees.
pub fn fig14_shootout(fast: bool) -> String {
    let n_exps: Vec<u32> = if fast { vec![10, 12] } else { vec![12, 14, 16] };
    let configs: Vec<(f64, f64)> = if fast {
        vec![(16.0, 3.0)]
    } else {
        vec![(16.0, 2.2), (16.0, 3.0), (64.0, 3.0)]
    };
    let mut rows = Vec::new();
    for &(deg, gamma) in &configs {
        for &ne in &n_exps {
            let n = 1u64 << ne;
            let rhg_gen = Rhg::new(n, deg, gamma).with_seed(15).with_chunks(4);
            let srhg_gen = Srhg::new(n, deg, gamma).with_seed(15).with_chunks(4);
            let inst = rhg_gen.instance();
            let (nk, t_nk) = time_once(|| nkgen_edges(&inst, 4));
            let rhg = run_generator(&rhg_gen);
            let (hg, t_hg) = time_once(|| hypergen_edges(&inst));
            let srhg = run_generator(&srhg_gen);
            assert_eq!(nk.len(), hg.len(), "baselines disagree on the instance");
            rows.push(vec![
                format!("{deg}/{gamma}"),
                format!("2^{ne}"),
                nk.len().to_string(),
                ms(t_nk),
                ms(rhg.time),
                ms(t_hg),
                ms(srhg.time),
            ]);
        }
    }
    report(
        "fig14",
        "RHG shootout: NkGen vs RHG vs HyperGen vs sRHG",
        "NkGen (live trigonometry, unstructured access) is slowest per \
         edge; RHG follows; the streaming generators (HyperGen, sRHG) are \
         consistently fastest, with sRHG's batched sweep ahead of \
         HyperGen's per-event priority queue. Small γ (heavier tails) \
         slows all generators.",
        format_table(
            "Fig. 14 (times in ms; d̄/γ configurations)",
            &["d̄/γ", "n", "edges", "NkGen", "RHG", "HyperGen", "sRHG"],
            &rows,
        ),
    )
}

/// Fig. 15: weak scaling of RHG (non-streaming) and sRHG.
pub fn fig15_weak_scaling(fast: bool) -> String {
    let per_pe: Vec<u64> = if fast {
        vec![1 << 10]
    } else {
        vec![1 << 12, 1 << 14]
    };
    let pes: Vec<usize> = if fast { vec![1, 4] } else { vec![1, 4, 16, 64] };
    let mut rows = Vec::new();
    for &npp in &per_pe {
        for &p in &pes {
            let n = npp * p as u64;
            let rhg = run_generator(&Rhg::new(n, 16.0, 3.0).with_seed(17).with_chunks(p));
            let srhg = run_generator(&Srhg::new(n, 16.0, 3.0).with_seed(17).with_chunks(p));
            rows.push(vec![
                format!("2^{}", npp.ilog2()),
                p.to_string(),
                ms(rhg.time),
                format!("{:.2}", rhg.imbalance),
                ms(srhg.time),
                format!("{:.2}", srhg.imbalance),
            ]);
        }
    }
    report(
        "fig15",
        "weak scaling RHG (d̄=16, γ=3)",
        "The non-streaming generator's time rises with P (recomputation \
         for inward queries, hard-to-distribute high-degree vertices); \
         sRHG scales much more evenly thanks to request-centric \
         distribution of hub work (paper: ~16x faster overall).",
        format_table(
            "Fig. 15 (emulated parallel time)",
            &[
                "n/P",
                "P",
                "RHG ms",
                "RHG imbalance",
                "sRHG ms",
                "sRHG imbalance",
            ],
            &rows,
        ),
    )
}

/// Fig. 16: strong scaling of RHG and sRHG.
pub fn fig16_strong_scaling(fast: bool) -> String {
    let ns: Vec<u64> = if fast {
        vec![1 << 12]
    } else {
        vec![1 << 14, 1 << 16]
    };
    let pes: Vec<usize> = if fast { vec![1, 4] } else { vec![1, 4, 16, 64] };
    let mut rows = Vec::new();
    for &n in &ns {
        let mut base_r = 0.0;
        let mut base_s = 0.0;
        for &p in &pes {
            let rhg = run_generator(&Rhg::new(n, 16.0, 3.0).with_seed(19).with_chunks(p));
            let srhg = run_generator(&Srhg::new(n, 16.0, 3.0).with_seed(19).with_chunks(p));
            if p == pes[0] {
                base_r = rhg.time.as_secs_f64();
                base_s = srhg.time.as_secs_f64();
            }
            rows.push(vec![
                format!("2^{}", n.ilog2()),
                p.to_string(),
                ms(rhg.time),
                format!("{:.1}", base_r / rhg.time.as_secs_f64().max(1e-9)),
                ms(srhg.time),
                format!("{:.1}", base_s / srhg.time.as_secs_f64().max(1e-9)),
            ]);
        }
    }
    report(
        "fig16",
        "strong scaling RHG (d̄=16, γ=3)",
        "sRHG sustains speedup to higher P; the non-streaming generator \
         saturates earlier because the global/inner annuli work is \
         replicated rather than distributed.",
        format_table(
            "Fig. 16 (speedup vs smallest P)",
            &["n", "P", "RHG ms", "RHG speedup", "sRHG ms", "sRHG speedup"],
            &rows,
        ),
    )
}
