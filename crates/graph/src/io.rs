//! Writers and readers for the on-disk graph formats, including the
//! compressed varint+delta shard codec used by `kagen-pipeline`.

use crate::EdgeList;
use std::io::{self, BufRead, BufWriter, Read, Write};

/// Magic prefix of the compressed edge-stream format (version 2:
/// restart blocks with per-block checksums — random access and sampled
/// validation without decoding the whole stream).
pub const COMPRESSED_MAGIC: [u8; 8] = *b"KGSHRD02";

/// Edges per restart block of the compressed format. Delta encoding
/// restarts at every block boundary, so any block can be decoded (and
/// validated) standalone given its byte offset.
pub const COMPRESSED_BLOCK_EDGES: u64 = 4096;

/// Step function of the order-dependent edge checksum used both for the
/// per-block checksums of the compressed format and (via
/// `kagen_pipeline::checksum_step`) for the manifest's shard checksums:
/// an FNV-style mix of the running value with both endpoints.
#[inline]
pub fn edge_checksum_step(acc: u64, u: u64, v: u64) -> u64 {
    let mut h = acc ^ u.rotate_left(17) ^ v.wrapping_mul(0x9E3779B97F4A7C15);
    h = h.wrapping_mul(0x100000001b3);
    h ^ (h >> 29)
}

/// Encoded length of a varint in bytes.
pub fn varint_len(mut x: u128) -> u64 {
    let mut len = 1;
    while x >= 0x80 {
        x >>= 7;
        len += 1;
    }
    len
}

/// Encode `x` as a LEB128 varint (7 bits per byte, MSB = continuation).
pub fn write_varint<W: Write>(w: &mut W, mut x: u128) -> io::Result<()> {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Decode one LEB128 varint; `Ok(None)` on clean EOF before the first
/// byte, an error on truncation mid-number.
pub fn read_varint<R: Read>(r: &mut R) -> io::Result<Option<u128>> {
    let mut x = 0u128;
    let mut shift = 0u32;
    let mut buf = [0u8; 1];
    loop {
        match r.read(&mut buf)? {
            0 => {
                return if shift == 0 {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "truncated varint",
                    ))
                };
            }
            _ => {
                let payload = (buf[0] & 0x7f) as u128;
                // Reject both too-long varints and a final byte whose
                // high payload bits would be shifted out of u128.
                if shift >= 128 || (shift > 121 && payload >> (128 - shift) != 0) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "varint overflows u128",
                    ));
                }
                x |= payload << shift;
                if buf[0] & 0x80 == 0 {
                    return Ok(Some(x));
                }
                shift += 7;
            }
        }
    }
}

/// Zigzag-map a signed delta to an unsigned varint payload.
#[inline]
fn zigzag(d: i128) -> u128 {
    ((d << 1) ^ (d >> 127)) as u128
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(z: u128) -> i128 {
    ((z >> 1) as i128) ^ -((z & 1) as i128)
}

/// Streaming encoder of the compressed edge format: a `KGSHRD02` magic,
/// the vertex count, then **restart blocks** of at most
/// [`COMPRESSED_BLOCK_EDGES`] edges. Each block is
/// `varint(edge_count) · varint(payload_len) · u64-LE checksum ·
/// payload`, where the payload holds one zigzag-varint **delta pair**
/// per edge (`u − prev_u`, `v − prev_v`) with `prev` restarting at
/// `(0, 0)` — so any block decodes standalone given its offset, and the
/// per-block checksum ([`edge_checksum_step`] folded over the block's
/// edges) lets validators sample blocks instead of re-reading the whole
/// shard. Sorted or spatially clustered streams compress to a few bytes
/// per edge; arbitrary streams still round-trip.
pub struct CompressedEdgeWriter<W: Write> {
    w: W,
    prev_u: u64,
    prev_v: u64,
    count: u64,
    block_count: u64,
    block_checksum: u64,
    /// Pending block payload; at most one block (~152 KiB) is ever
    /// buffered.
    scratch: Vec<u8>,
    header: Vec<u8>,
}

// Manual impl: `W` need not be `Debug`, and the scratch buffers are
// noise — report the stream position instead.
impl<W: Write> std::fmt::Debug for CompressedEdgeWriter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressedEdgeWriter")
            .field("count", &self.count)
            .field("block_count", &self.block_count)
            .finish_non_exhaustive()
    }
}

impl<W: Write> CompressedEdgeWriter<W> {
    /// Start a stream over `n` vertices (writes the header immediately).
    pub fn new(mut w: W, n: u64) -> io::Result<Self> {
        w.write_all(&COMPRESSED_MAGIC)?;
        w.write_all(&n.to_le_bytes())?;
        Ok(CompressedEdgeWriter {
            w,
            prev_u: 0,
            prev_v: 0,
            count: 0,
            block_count: 0,
            block_checksum: 0,
            scratch: Vec::new(),
            header: Vec::new(),
        })
    }

    #[inline]
    fn encode_edge(&mut self, u: u64, v: u64) {
        // Writing into a Vec cannot fail; unwrap keeps the loop tight.
        write_varint(&mut self.scratch, zigzag(u as i128 - self.prev_u as i128)).unwrap();
        write_varint(&mut self.scratch, zigzag(v as i128 - self.prev_v as i128)).unwrap();
        self.prev_u = u;
        self.prev_v = v;
        self.block_checksum = edge_checksum_step(self.block_checksum, u, v);
        self.block_count += 1;
        self.count += 1;
    }

    fn flush_block(&mut self) -> io::Result<()> {
        if self.block_count == 0 {
            return Ok(());
        }
        self.header.clear();
        write_varint(&mut self.header, self.block_count as u128).unwrap();
        write_varint(&mut self.header, self.scratch.len() as u128).unwrap();
        self.w.write_all(&self.header)?;
        self.w.write_all(&self.block_checksum.to_le_bytes())?;
        self.w.write_all(&self.scratch)?;
        self.scratch.clear();
        self.block_count = 0;
        self.block_checksum = 0;
        self.prev_u = 0;
        self.prev_v = 0;
        Ok(())
    }

    /// Append one edge.
    #[inline]
    pub fn push(&mut self, u: u64, v: u64) -> io::Result<()> {
        self.encode_edge(u, v);
        if self.block_count == COMPRESSED_BLOCK_EDGES {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Append a whole slice of edges — byte-identical to pushing them
    /// one at a time (both feed the same block state machine); the
    /// pending-block buffer bounds memory regardless of slice length.
    pub fn push_slice(&mut self, edges: &[(u64, u64)]) -> io::Result<()> {
        for &(u, v) in edges {
            self.encode_edge(u, v);
            if self.block_count == COMPRESSED_BLOCK_EDGES {
                self.flush_block()?;
            }
        }
        Ok(())
    }

    /// Number of edges written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Flush (including the final ragged block) and return the
    /// underlying writer and the edge count.
    pub fn finish(mut self) -> io::Result<(W, u64)> {
        self.flush_block()?;
        self.w.flush()?;
        Ok((self.w, self.count))
    }
}

/// Streaming decoder of the compressed edge format; memory footprint is
/// O(1) regardless of stream length.
pub struct CompressedEdgeReader<R: BufRead> {
    r: R,
    n: u64,
    prev_u: u64,
    prev_v: u64,
    /// Edges left in the current block (0 = at a block boundary).
    remaining: u64,
    /// The current block's stored checksum, verified at the block
    /// boundary — reads are self-validating even without a manifest.
    expected_checksum: u64,
    running_checksum: u64,
}

// Manual impl: `R` need not be `Debug`.
impl<R: BufRead> std::fmt::Debug for CompressedEdgeReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressedEdgeReader")
            .field("n", &self.n)
            .field("remaining", &self.remaining)
            .finish_non_exhaustive()
    }
}

impl<R: BufRead> CompressedEdgeReader<R> {
    /// Open a stream, validating the magic header.
    pub fn new(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if magic != COMPRESSED_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a KGSHRD02 compressed edge stream",
            ));
        }
        let mut n_bytes = [0u8; 8];
        r.read_exact(&mut n_bytes)?;
        Ok(CompressedEdgeReader {
            r,
            n: u64::from_le_bytes(n_bytes),
            prev_u: 0,
            prev_v: 0,
            remaining: 0,
            expected_checksum: 0,
            running_checksum: 0,
        })
    }

    /// Vertex count recorded in the header.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Decode the next edge; `Ok(None)` at end of stream.
    pub fn next_edge(&mut self) -> io::Result<Option<(u64, u64)>> {
        if self.remaining == 0 {
            // Block boundary: read the next block header (or clean EOF).
            let Some(count) = read_varint(&mut self.r)? else {
                return Ok(None);
            };
            let Some(_len) = read_varint(&mut self.r)? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "block header truncated after edge count",
                ));
            };
            let mut checksum = [0u8; 8];
            self.r.read_exact(&mut checksum)?;
            let count = u64::try_from(count).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "block edge count overflows u64")
            })?;
            if count == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "empty compressed block",
                ));
            }
            self.remaining = count;
            self.prev_u = 0;
            self.prev_v = 0;
            self.expected_checksum = u64::from_le_bytes(checksum);
            self.running_checksum = 0;
        }
        let Some(zu) = read_varint(&mut self.r)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "block truncated mid-payload",
            ));
        };
        let Some(zv) = read_varint(&mut self.r)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "edge record truncated after u-delta",
            ));
        };
        let u = self.prev_u as i128 + unzigzag(zu);
        let v = self.prev_v as i128 + unzigzag(zv);
        let (Ok(u), Ok(v)) = (u64::try_from(u), u64::try_from(v)) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "edge delta decodes outside the u64 vertex-id range",
            ));
        };
        self.prev_u = u;
        self.prev_v = v;
        self.running_checksum = edge_checksum_step(self.running_checksum, u, v);
        self.remaining -= 1;
        if self.remaining == 0 && self.running_checksum != self.expected_checksum {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "block checksum mismatch (corrupt block)",
            ));
        }
        Ok(Some((u, v)))
    }
}

/// Decode one standalone restart-block payload (`count` edges, deltas
/// starting from `(0, 0)`), returning the folded
/// [`edge_checksum_step`] checksum. Errors on truncation, trailing
/// bytes, or deltas outside the u64 id range — the single decoder
/// shared by [`CompressedEdgeReader`] consumers that random-access
/// blocks (e.g. sampled shard validation).
pub fn decode_block(payload: &[u8], count: u64) -> io::Result<u64> {
    let mut cursor = payload;
    let (mut prev_u, mut prev_v) = (0i128, 0i128);
    let mut checksum = 0u64;
    for _ in 0..count {
        let (Some(zu), Some(zv)) = (read_varint(&mut cursor)?, read_varint(&mut cursor)?) else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "block truncated mid-payload",
            ));
        };
        let u = prev_u + unzigzag(zu);
        let v = prev_v + unzigzag(zv);
        let (Ok(uu), Ok(vv)) = (u64::try_from(u), u64::try_from(v)) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "edge delta decodes outside the u64 vertex-id range",
            ));
        };
        checksum = edge_checksum_step(checksum, uu, vv);
        (prev_u, prev_v) = (u, v);
    }
    if !cursor.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "block has trailing bytes",
        ));
    }
    Ok(checksum)
}

/// Write a whole edge list in the compressed varint+delta format.
pub fn write_compressed<W: Write>(w: W, el: &EdgeList) -> io::Result<()> {
    let mut enc = CompressedEdgeWriter::new(BufWriter::new(w), el.n)?;
    for &(u, v) in &el.edges {
        enc.push(u, v)?;
    }
    enc.finish()?;
    Ok(())
}

/// Read a whole compressed edge stream back (inverse of
/// [`write_compressed`]).
pub fn read_compressed<R: BufRead>(r: R) -> io::Result<EdgeList> {
    let mut dec = CompressedEdgeReader::new(r)?;
    let mut edges = Vec::new();
    while let Some(e) = dec.next_edge()? {
        edges.push(e);
    }
    Ok(EdgeList::new(dec.n(), edges))
}

/// Write one `u v` pair per line (the format the KaGen tool emits).
pub fn write_edge_list<W: Write>(w: W, el: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    for &(u, v) in &el.edges {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Write METIS format: header `n m`, then one line of 1-based neighbors per
/// vertex. Expects a canonical undirected edge list.
pub fn write_metis<W: Write>(w: W, el: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    let csr = crate::Csr::undirected(el);
    writeln!(w, "{} {}", el.n, el.edges.len())?;
    for v in 0..el.n {
        let neigh = csr.neighbors(v);
        let mut first = true;
        for &u in neigh {
            if first {
                write!(w, "{}", u + 1)?;
                first = false;
            } else {
                write!(w, " {}", u + 1)?;
            }
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Write raw little-endian `u64` pairs (binary edge list).
pub fn write_binary<W: Write>(w: W, el: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    for &(u, v) in &el.edges {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Read raw little-endian `u64` pairs back (inverse of [`write_binary`]).
pub fn read_binary(bytes: &[u8], n: u64) -> EdgeList {
    assert_eq!(bytes.len() % 16, 0, "truncated binary edge list");
    let mut edges = Vec::with_capacity(bytes.len() / 16);
    for chunk in bytes.chunks_exact(16) {
        let u = u64::from_le_bytes(chunk[0..8].try_into().unwrap());
        let v = u64::from_le_bytes(chunk[8..16].try_into().unwrap());
        edges.push((u, v));
    }
    EdgeList::new(n, edges)
}

/// Parse a text edge list (`u v` per line; `#`/`%` comment lines skipped).
/// `n` is inferred as max id + 1 unless given.
pub fn read_edge_list(text: &str, n: Option<u64>) -> Result<EdgeList, String> {
    let mut edges = Vec::new();
    let mut max_id = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u64, String> {
            tok.ok_or_else(|| format!("line {}: missing field", lineno + 1))?
                .parse::<u64>()
                .map_err(|e| format!("line {}: {e}", lineno + 1))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = n.unwrap_or(if edges.is_empty() { 0 } else { max_id + 1 });
    Ok(EdgeList::new(n, edges))
}

/// Write Graphviz DOT (undirected), for visualizing small instances.
pub fn write_dot<W: Write>(w: W, el: &EdgeList, name: &str) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "graph {name} {{")?;
    for &(u, v) in &el.edges {
        writeln!(w, "  {u} -- {v};")?;
    }
    writeln!(w, "}}")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn edge_list_format() {
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &sample()).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "0 1\n1 2\n2 3\n");
    }

    #[test]
    fn metis_format() {
        let mut buf = Vec::new();
        write_metis(&mut buf, &sample()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "4 3");
        assert_eq!(lines[1], "2");
        assert_eq!(lines[2], "1 3");
        assert_eq!(lines[3], "2 4");
        assert_eq!(lines[4], "3");
    }

    #[test]
    fn binary_roundtrip() {
        let el = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &el).unwrap();
        assert_eq!(buf.len(), 3 * 16);
        let back = read_binary(&buf, 4);
        assert_eq!(back, el);
    }

    #[test]
    fn text_roundtrip() {
        let el = sample();
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &el).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let back = read_edge_list(&text, None).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn read_skips_comments_and_infers_n() {
        let el = read_edge_list("# header\n0 1\n% meta\n5 2\n", None).unwrap();
        assert_eq!(el.n, 6);
        assert_eq!(el.edges, vec![(0, 1), (5, 2)]);
    }

    #[test]
    fn read_reports_errors() {
        assert!(read_edge_list("0\n", None).is_err());
        assert!(read_edge_list("a b\n", None).is_err());
        assert_eq!(read_edge_list("", None).unwrap().n, 0);
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        let mut buf = Vec::new();
        let values = [0u128, 1, 127, 128, 300, u64::MAX as u128, u128::MAX];
        for &x in &values {
            write_varint(&mut buf, x).unwrap();
        }
        let mut r = &buf[..];
        for &x in &values {
            assert_eq!(read_varint(&mut r).unwrap(), Some(x));
        }
        assert_eq!(read_varint(&mut r).unwrap(), None);
    }

    #[test]
    fn varint_truncation_is_an_error() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1u128 << 40).unwrap();
        let mut r = &buf[..buf.len() - 1];
        assert!(read_varint(&mut r).is_err());
    }

    #[test]
    fn varint_overflow_is_an_error() {
        // 19 continuation bytes: more than 128 bits of payload.
        let mut buf = vec![0x80u8; 19];
        buf.push(0x01);
        assert!(read_varint(&mut &buf[..]).is_err());
        // 19th byte present but with payload bits beyond bit 127.
        let mut buf = vec![0xffu8; 18];
        buf.push(0x04); // shift 126, payload 4 needs bit 128
        assert!(read_varint(&mut &buf[..]).is_err());
        // Same position with a fitting payload is fine (u128::MAX).
        let mut buf = vec![0xffu8; 18];
        buf.push(0x03);
        assert_eq!(read_varint(&mut &buf[..]).unwrap(), Some(u128::MAX));
    }

    #[test]
    fn compressed_roundtrip() {
        let el = EdgeList::new(10, vec![(0, 1), (0, 9), (3, 2), (3, 3), (9, 0), (9, 9)]);
        let mut buf = Vec::new();
        write_compressed(&mut buf, &el).unwrap();
        let back = read_compressed(&buf[..]).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn push_slice_bytes_identical_to_per_edge_push() {
        let edges = vec![(0u64, 1u64), (0, 9), (3, 2), (3, 3), (9, 0), (9, 9)];
        let mut per_edge = CompressedEdgeWriter::new(Vec::new(), 10).unwrap();
        for &(u, v) in &edges {
            per_edge.push(u, v).unwrap();
        }
        let (a, count_a) = per_edge.finish().unwrap();

        // Mixed granularities: slice, single push, slice, empty slice.
        let mut sliced = CompressedEdgeWriter::new(Vec::new(), 10).unwrap();
        sliced.push_slice(&edges[..3]).unwrap();
        sliced.push(edges[3].0, edges[3].1).unwrap();
        sliced.push_slice(&edges[4..]).unwrap();
        sliced.push_slice(&[]).unwrap();
        let (b, count_b) = sliced.finish().unwrap();

        assert_eq!(a, b);
        assert_eq!(count_a, count_b);
    }

    #[test]
    fn compressed_empty_stream() {
        let el = EdgeList::new(5, vec![]);
        let mut buf = Vec::new();
        write_compressed(&mut buf, &el).unwrap();
        let back = read_compressed(&buf[..]).unwrap();
        assert_eq!(back.n, 5);
        assert!(back.edges.is_empty());
    }

    #[test]
    fn compressed_sorted_stream_is_compact() {
        // Sorted edge lists take ~2-3 bytes per edge vs 16 raw.
        let edges: Vec<(u64, u64)> = (0..1000u64).map(|i| (i / 4, i % 997)).collect();
        let el = EdgeList::new(1000, edges);
        let mut buf = Vec::new();
        write_compressed(&mut buf, &el).unwrap();
        assert!(
            buf.len() < 1000 * 4 + 16,
            "compressed size {} too large",
            buf.len()
        );
        assert_eq!(read_compressed(&buf[..]).unwrap(), el);
    }

    #[test]
    fn compressed_rejects_bad_magic() {
        let buf = b"NOTMAGIC\0\0\0\0\0\0\0\0".to_vec();
        assert!(read_compressed(&buf[..]).is_err());
    }

    #[test]
    fn compressed_rejects_underflowing_delta() {
        // A first record whose u-delta is negative would decode to a
        // vertex id below zero: must be InvalidData, not a wrapped id.
        let mut buf = Vec::new();
        buf.extend_from_slice(&COMPRESSED_MAGIC);
        buf.extend_from_slice(&5u64.to_le_bytes());
        write_varint(&mut buf, 1).unwrap(); // zigzag(-1)
        write_varint(&mut buf, 0).unwrap(); // zigzag(0)
        assert!(read_compressed(&buf[..]).is_err());
    }

    #[test]
    fn compressed_multi_block_roundtrip() {
        // Cross several restart-block boundaries, including a ragged
        // final block; deltas restart per block so the stream must still
        // round-trip exactly.
        let m = COMPRESSED_BLOCK_EDGES as usize * 2 + 1234;
        let edges: Vec<(u64, u64)> = (0..m as u64).map(|i| (i / 3, (i * 7) % 5000)).collect();
        let el = EdgeList::new(5000, edges);
        let mut buf = Vec::new();
        write_compressed(&mut buf, &el).unwrap();
        assert_eq!(read_compressed(&buf[..]).unwrap(), el);

        // Byte identity between push and push_slice across block
        // boundaries.
        let mut per_edge = CompressedEdgeWriter::new(Vec::new(), 5000).unwrap();
        for &(u, v) in &el.edges {
            per_edge.push(u, v).unwrap();
        }
        let (a, _) = per_edge.finish().unwrap();
        let mut sliced = CompressedEdgeWriter::new(Vec::new(), 5000).unwrap();
        sliced.push_slice(&el.edges).unwrap();
        let (b, _) = sliced.finish().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn compressed_reader_verifies_block_checksums() {
        // Corrupting the stored block checksum (metadata the decoded
        // stream wouldn't otherwise notice) must fail the read: the
        // format is self-validating without a manifest.
        let el = EdgeList::new(100, (0..500u64).map(|i| (i % 100, (i + 1) % 100)).collect());
        let mut buf = Vec::new();
        write_compressed(&mut buf, &el).unwrap();
        // Bytes 16.. : varint(count), varint(len), then the checksum.
        let mut r = &buf[16..];
        let c = read_varint(&mut r).unwrap().unwrap();
        let l = read_varint(&mut r).unwrap().unwrap();
        let checksum_at = 16 + (varint_len(c) + varint_len(l)) as usize;
        let mut corrupt = buf.clone();
        corrupt[checksum_at] ^= 0x01;
        assert!(read_compressed(&corrupt[..]).is_err());
        // A payload flip is caught by the same check.
        let mut corrupt = buf.clone();
        corrupt[checksum_at + 9] ^= 0x01;
        assert!(read_compressed(&corrupt[..]).is_err());
        // The pristine stream still round-trips.
        assert_eq!(read_compressed(&buf[..]).unwrap(), el);
    }

    #[test]
    fn compressed_block_headers_are_walkable() {
        // The block headers alone must reproduce the edge count: this is
        // what sampled shard validation's structural walk relies on.
        let m = COMPRESSED_BLOCK_EDGES as usize + 77;
        let el = EdgeList::new(
            100,
            (0..m as u64).map(|i| (i % 100, (i + 1) % 100)).collect(),
        );
        let mut buf = Vec::new();
        write_compressed(&mut buf, &el).unwrap();
        let mut r = &buf[16..];
        let mut total = 0u64;
        let mut blocks = 0;
        while let Some(count) = read_varint(&mut r).unwrap() {
            let len = read_varint(&mut r).unwrap().unwrap() as usize;
            let mut ck = [0u8; 8];
            r.read_exact(&mut ck).unwrap();
            r = &r[len..];
            total += count as u64;
            blocks += 1;
        }
        assert_eq!(total, m as u64);
        assert_eq!(blocks, 2);
    }

    #[test]
    fn dot_output() {
        let mut buf = Vec::new();
        write_dot(&mut buf, &sample(), "g").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("graph g {"));
        assert!(text.contains("  1 -- 2;"));
        assert!(text.trim_end().ends_with('}'));
    }
}
