//! Redundant-computation agreement: wherever the paper's design generates
//! the same object on two PEs (undirected chunks, spatial halos, RHG
//! recomputed cells), the two copies must be bit-identical — that is what
//! replaces communication.

use kagen_repro::core::prelude::*;
use kagen_repro::core::rhg::common::{CellCache, RhgInstance};
use std::collections::HashSet;

#[test]
fn gnm_undirected_chunk_copies_agree() {
    let q = 8usize;
    let gen = GnmUndirected::new(600, 5000).with_seed(3).with_chunks(q);
    let parts = generate_parallel(&gen, 0);
    // For every pair (i, j), the edges between V_i and V_j must appear in
    // both PE i's and PE j's output, identically.
    let ranges: Vec<(u64, u64)> = parts
        .iter()
        .map(|p| (p.vertex_begin, p.vertex_end))
        .collect();
    let owner = |v: u64| ranges.iter().position(|&(a, b)| v >= a && v < b).unwrap();
    let sets: Vec<HashSet<(u64, u64)>> = parts
        .iter()
        .map(|p| p.edges.iter().copied().collect())
        .collect();
    let mut cross_checked = 0usize;
    for (pe, set) in sets.iter().enumerate() {
        for &(u, v) in set {
            let (ou, ov) = (owner(u), owner(v));
            assert!(ou == pe || ov == pe, "PE {pe} emitted a foreign edge");
            if ou != ov {
                let partner = if ou == pe { ov } else { ou };
                assert!(
                    sets[partner].contains(&(u, v)),
                    "({u},{v}) missing on {partner}"
                );
                cross_checked += 1;
            }
        }
    }
    assert!(
        cross_checked > 100,
        "test too weak: {cross_checked} cross edges"
    );
}

#[test]
fn rgg_halo_points_bit_identical() {
    // Two PEs that both materialize a cell (one as local, one as halo)
    // must hold byte-identical coordinates — verified through the edge
    // agreement AND by recomputing coordinates directly.
    let gen = Rgg2d::new(1000, 0.07).with_seed(5).with_chunks(16);
    let parts = generate_parallel(&gen, 0);
    // Coordinates are reported once per owner; collect them.
    let mut coords = std::collections::HashMap::new();
    for p in &parts {
        for &(id, c) in &p.coords2 {
            coords.insert(id, c);
        }
    }
    // Every cross-PE edge pair must be metrically valid under the owner's
    // coordinates (the halo copy was regenerated, not sent).
    for p in &parts {
        for &(u, v) in &p.edges {
            let cu = coords[&u];
            let cv = coords[&v];
            let d2 = (cu[0] - cv[0]).powi(2) + (cu[1] - cv[1]).powi(2);
            assert!(
                d2 <= 0.07f64 * 0.07 + 1e-12,
                "edge ({u},{v}) violates the radius under owner coordinates"
            );
        }
    }
}

#[test]
fn rhg_recomputed_cells_match_owners() {
    // A cell generated lazily by a *querying* PE must equal the owner's.
    let inst = RhgInstance::new(2000, 8.0, 2.8, 9);
    let mut cache_a = CellCache::default();
    let mut cache_b = CellCache::default();
    for i in 0..inst.num_annuli() {
        for c in 0..inst.ann_cells[i].min(4) {
            let a = cache_a.get(&inst, i, c).to_vec();
            let b = cache_b.get(&inst, i, c).to_vec();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.r.to_bits(), y.r.to_bits());
                assert_eq!(x.theta.to_bits(), y.theta.to_bits());
            }
        }
    }
}

#[test]
fn rdg_union_is_the_global_triangulation() {
    // Each PE certifies its local simplices against the full periodic
    // point set; the union over PEs must therefore be exactly the global
    // mesh — computed here with one chunk as reference.
    let reference = generate_undirected(&Rdg2d::new(500).with_seed(7).with_chunks(1));
    let distributed = generate_undirected(&Rdg2d::new(500).with_seed(7).with_chunks(16));
    assert_eq!(reference, distributed);
}

#[test]
fn redundancy_overhead_bounded() {
    // §4.2: the undirected scheme generates each edge at most twice.
    let m = 20_000u64;
    for q in [2usize, 4, 16] {
        let gen = GnmUndirected::new(2000, m).with_seed(11).with_chunks(q);
        let parts = generate_parallel(&gen, 0);
        let emitted: u64 = parts.iter().map(|p| p.edges.len() as u64).sum();
        assert!(emitted <= 2 * m, "Q={q}: emitted {emitted} > 2m");
        assert!(emitted >= m, "Q={q}: emitted {emitted} < m");
    }
}

#[test]
fn rgg_per_pe_output_covers_exactly_incident_edges() {
    let gen = Rgg2d::new(800, 0.06).with_seed(13).with_chunks(16);
    let parts = generate_parallel(&gen, 0);
    let merged = generate_undirected(&gen);
    let all: HashSet<(u64, u64)> = merged.edges.iter().copied().collect();
    for p in &parts {
        let local = p.vertex_begin..p.vertex_end;
        // (a) everything emitted is a real edge touching a local vertex;
        for &(u, v) in &p.edges {
            let canon = (u.min(v), u.max(v));
            assert!(all.contains(&canon), "PE {}: phantom edge {canon:?}", p.pe);
            assert!(
                local.contains(&u) || local.contains(&v),
                "PE {}: non-incident edge {canon:?}",
                p.pe
            );
        }
        // (b) every instance edge touching a local vertex is present.
        let have: HashSet<(u64, u64)> =
            p.edges.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
        for &(u, v) in &all {
            if local.contains(&u) || local.contains(&v) {
                assert!(have.contains(&(u, v)), "PE {}: missing incident edge", p.pe);
            }
        }
    }
}
