//! R-MAT kernel-matrix tests: the plain, interleaved-table, and
//! linear-work composed-table kernels across boundary scales (31 is the
//! last legacy-table scale, 32 the first composed-only one, 63 the
//! vertex-id ceiling), `levels ∤ scale` remainder cells, and — via
//! proptest — bit-identical delivery across per-edge, batched, and bulk
//! fill for every `(scale, levels, kernel)` cell.

use kagen_repro::core::prelude::*;
use proptest::prelude::*;

/// Concatenated per-edge stream over all chunks.
fn stream_per_edge(gen: &Rmat) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for pe in 0..gen.num_chunks() {
        gen.stream_pe(pe, &mut |u, v| out.push((u, v)));
    }
    out
}

/// Concatenated batched stream over all chunks.
fn stream_batched(gen: &Rmat) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut buf = Vec::new();
    for pe in 0..gen.num_chunks() {
        gen.stream_pe_batched(pe, &mut buf, &mut |batch| out.extend_from_slice(batch));
    }
    out
}

#[test]
fn boundary_scales_are_degree_exact_and_in_range() {
    // 31: last scale the legacy table handles; 32/33: composed-only
    // territory (the old `with_table_levels` silently fell back to plain
    // here); 63: the top of the supported range, where u and v each use
    // all their bits below the sign position.
    for scale in [31u32, 32, 33, 63] {
        let m = 40_000u64;
        let gen = Rmat::new(scale, m)
            .with_seed(5)
            .with_chunks(7)
            .with_kernel(RmatKernel::Linear { levels: 8 });
        let mut fill = Vec::new();
        gen.fill_edges(0..m, &mut fill);
        assert_eq!(fill.len() as u64, m, "scale {scale}: edge count");
        for &(u, v) in &fill {
            assert_eq!(u >> scale, 0, "scale {scale}: u {u:#x} out of range");
            assert_eq!(v >> scale, 0, "scale {scale}: v {v:#x} out of range");
        }
        assert_eq!(stream_per_edge(&gen), fill, "scale {scale}: per-edge");
        assert_eq!(stream_batched(&gen), fill, "scale {scale}: batched");
        // Chunk-count invariance: the stream is a pure function of the
        // edge-index range, not of the partition walked to cover it.
        let rechunked = Rmat::new(scale, m)
            .with_seed(5)
            .with_chunks(13)
            .with_kernel(RmatKernel::Linear { levels: 8 });
        assert_eq!(stream_batched(&rechunked), fill, "scale {scale}: rechunk");
    }
}

#[test]
fn default_levels_dispatch_crosses_the_scale32_wall() {
    // `with_table_levels(8)` (the old CLI default) keeps its legacy
    // bit-identical table below scale 32 and now upgrades to the
    // composed kernel above it — previously a silent no-op to plain.
    assert_eq!(
        Rmat::new(31, 10).with_table_levels(8).kernel(),
        RmatKernel::Table { levels: 8 }
    );
    assert_eq!(
        Rmat::new(32, 10).with_table_levels(8).kernel(),
        RmatKernel::Linear { levels: 8 }
    );
}

#[test]
fn remainder_cells_stay_bit_stable() {
    // levels ∤ scale: the last composed draw is a truncated remainder
    // stage. Every delivery path must still agree bit-for-bit.
    for (scale, levels) in [(20u32, 9u32), (31, 12), (33, 7), (63, 10)] {
        let m = 20_000u64;
        let gen = Rmat::new(scale, m)
            .with_seed(11)
            .with_chunks(5)
            .with_kernel(RmatKernel::Linear { levels });
        let mut fill = Vec::new();
        gen.fill_edges(0..m, &mut fill);
        assert_eq!(fill.len() as u64, m, "({scale},{levels}): edge count");
        for &(u, v) in &fill {
            assert_eq!(u >> scale, 0, "({scale},{levels}): u out of range");
            assert_eq!(v >> scale, 0, "({scale},{levels}): v out of range");
        }
        assert_eq!(stream_per_edge(&gen), fill, "({scale},{levels}): per-edge");
        assert_eq!(stream_batched(&gen), fill, "({scale},{levels}): batched");
    }
}

#[test]
fn linear_kernel_top_quadrant_mass_beyond_scale32() {
    // Distribution sanity where plain descent is the only alternative:
    // the top-level quadrant split at scale 33 must match the Graph 500
    // (a, b, c, d) masses. 200k edges put ~9 sigma inside the 0.01 band.
    let m = 200_000u64;
    let gen = Rmat::new(33, m)
        .with_seed(9)
        .with_kernel(RmatKernel::Linear { levels: 8 });
    let mut edges = Vec::new();
    gen.fill_edges(0..m, &mut edges);
    let mut counts = [0u64; 4];
    for &(u, v) in &edges {
        counts[((((u >> 32) & 1) << 1) | ((v >> 32) & 1)) as usize] += 1;
    }
    let expect = [0.57, 0.19, 0.19, 0.05];
    for (q, &c) in counts.iter().enumerate() {
        let frac = c as f64 / m as f64;
        assert!(
            (frac - expect[q]).abs() < 0.01,
            "quadrant {q}: observed {frac:.4}, expected {:.2}",
            expect[q]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Every (scale, levels, kernel) cell delivers the identical edge
    // sequence through bulk fill, per-edge streaming, and batched
    // streaming, at any chunking — the bit-stability contract the CLI
    // kernel flag relies on.
    #[test]
    fn delivery_paths_agree_for_every_kernel_cell(
        scale in 1u32..=63,
        levels in 1u32..=12,
        kernel_sel in 0usize..3,
        m in 1u64..3_000,
        seed in any::<u64>(),
        chunks in 1usize..9,
    ) {
        let levels = levels.min(scale);
        let kernel = match kernel_sel {
            0 => RmatKernel::Plain,
            // The legacy table is defined only below scale 32; fold
            // those cells into the composed kernel above the wall.
            1 if scale < 32 => RmatKernel::Table { levels },
            _ => RmatKernel::Linear { levels },
        };
        let gen = Rmat::new(scale, m)
            .with_seed(seed)
            .with_chunks(chunks)
            .with_kernel(kernel);
        let mut fill = Vec::new();
        gen.fill_edges(0..m, &mut fill);
        prop_assert_eq!(fill.len() as u64, m);
        for &(u, v) in &fill {
            prop_assert_eq!(u >> scale, 0);
            prop_assert_eq!(v >> scale, 0);
        }
        prop_assert_eq!(&stream_per_edge(&gen), &fill);
        prop_assert_eq!(&stream_batched(&gen), &fill);
    }
}
