//! Compressed sparse row adjacency, built from edge lists.

use crate::{EdgeList, Node};

/// CSR adjacency structure.
///
/// For an undirected graph build it with [`Csr::undirected`], which inserts
/// both orientations; `neighbors(v)` then yields every neighbor of `v`.
#[derive(Clone, Debug)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex `v`.
    pub offsets: Vec<usize>,
    /// Concatenated adjacency lists, each sorted ascending.
    pub targets: Vec<Node>,
}

impl Csr {
    /// Build from a directed edge list (edges kept as-is).
    pub fn directed(el: &EdgeList) -> Self {
        Self::build(el.n, el.edges.iter().copied())
    }

    /// Build from a canonical undirected edge list (both orientations
    /// inserted).
    pub fn undirected(el: &EdgeList) -> Self {
        Self::build(el.n, el.edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]))
    }

    fn build(n: Node, edges: impl Iterator<Item = (Node, Node)> + Clone) -> Self {
        let n = n as usize;
        let mut counts = vec![0usize; n + 1];
        for (u, _) in edges.clone() {
            counts[u as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as Node; offsets[n]];
        for (u, v) in edges {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }
        // Sort each adjacency list for deterministic iteration and binary
        // search.
        for v in 0..n {
            targets[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Csr { offsets, targets }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored arcs.
    pub fn arcs(&self) -> usize {
        self.targets.len()
    }

    /// Neighbors of `v`, ascending.
    pub fn neighbors(&self, v: Node) -> &[Node] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: Node) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Adjacency test via binary search, O(log deg).
    pub fn has_edge(&self, u: Node, v: Node) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Global clustering-style triangle count (each triangle counted once).
    /// Intended for validation on small/medium graphs.
    pub fn count_triangles(&self) -> u64 {
        let mut count = 0u64;
        for u in 0..self.n() as Node {
            let nu = self.neighbors(u);
            for &v in nu.iter().filter(|&&v| v > u) {
                let nv = self.neighbors(v);
                // Intersect the two sorted lists above u.
                let (mut i, mut j) = (0usize, 0usize);
                while i < nu.len() && j < nv.len() {
                    let (a, b) = (nu[i], nv[j]);
                    if a <= v {
                        i += 1;
                        continue;
                    }
                    match a.cmp(&b) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            count += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeList;

    fn path_graph() -> EdgeList {
        EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn undirected_degrees() {
        let csr = Csr::undirected(&path_graph());
        assert_eq!(csr.degree(0), 1);
        assert_eq!(csr.degree(1), 2);
        assert_eq!(csr.arcs(), 6);
    }

    #[test]
    fn neighbors_sorted() {
        let el = EdgeList::new(5, vec![(2, 4), (2, 0), (2, 3), (2, 1)]);
        let csr = Csr::directed(&el);
        assert_eq!(csr.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn has_edge_both_ways_undirected() {
        let csr = Csr::undirected(&path_graph());
        assert!(csr.has_edge(0, 1));
        assert!(csr.has_edge(1, 0));
        assert!(!csr.has_edge(0, 3));
    }

    #[test]
    fn triangle_count() {
        // K4 has 4 triangles.
        let el = EdgeList::new(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let csr = Csr::undirected(&el);
        assert_eq!(csr.count_triangles(), 4);
        // A path has none.
        assert_eq!(Csr::undirected(&path_graph()).count_triangles(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let el = EdgeList::new(10, vec![(0, 1)]);
        let csr = Csr::undirected(&el);
        assert_eq!(csr.degree(5), 0);
        assert_eq!(csr.n(), 10);
    }
}
