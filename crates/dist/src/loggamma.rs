//! Natural log of the gamma function, used by the HRUA hypergeometric
//! rejection sampler. Accuracy ~1e-10 over the range we evaluate (x ≥ 1),
//! via the asymptotic Stirling series after shifting small arguments
//! upward with `Γ(x+1) = x·Γ(x)`.

/// `ln Γ(x)` for `x > 0`.
pub(crate) fn loggamma(x: f64) -> f64 {
    debug_assert!(x > 0.0);
    if x == 1.0 || x == 2.0 {
        return 0.0;
    }
    // Shift into x0 >= 7 where the series below is accurate.
    let mut shift = 0.0f64;
    let mut x0 = x;
    while x0 < 7.0 {
        shift += x0.ln();
        x0 += 1.0;
    }
    // Stirling series coefficients B_{2k} / (2k (2k-1)).
    const A: [f64; 6] = [
        8.333333333333333e-02,
        -2.777777777777778e-03,
        7.936507936507937e-04,
        -5.952380952380952e-04,
        8.417508417508418e-04,
        -1.917526917526918e-03,
    ];
    let inv2 = 1.0 / (x0 * x0);
    let mut tail = A[5];
    for k in (0..5).rev() {
        tail = tail * inv2 + A[k];
    }
    let half_ln_tau = 0.918_938_533_204_672_7; // ln(2π)/2
    (x0 - 0.5) * x0.ln() - x0 + half_ln_tau + tail / x0 - shift
}

#[cfg(test)]
mod tests {
    use super::loggamma;

    #[test]
    fn matches_factorials() {
        // ln Γ(n+1) = ln n!
        let mut ln_fact = 0.0f64;
        for n in 1..40u64 {
            ln_fact += (n as f64).ln();
            let got = loggamma(n as f64 + 1.0);
            assert!(
                (got - ln_fact).abs() < 1e-9 * ln_fact.max(1.0),
                "n={n}: {got} vs {ln_fact}"
            );
        }
    }

    #[test]
    fn half_integer_value() {
        // Γ(1/2) = √π.
        let expect = std::f64::consts::PI.sqrt().ln();
        assert!((loggamma(0.5) - expect).abs() < 1e-9);
    }

    #[test]
    fn large_arguments() {
        // Stirling check at 2^40: relative error tiny.
        let x = (1u64 << 40) as f64;
        let approx = (x - 0.5) * x.ln() - x + 0.918_938_533_204_672_7;
        assert!((loggamma(x) - approx).abs() / approx.abs() < 1e-12);
    }
}
