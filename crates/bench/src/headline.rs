//! The headline claim (§1, §9): 2^43 vertices / 2^47 edges in under
//! 22 minutes on 32 768 cores, using the directed G(n,m) generator.
//!
//! We cannot rent SuperMUC, but the claim decomposes exactly because the
//! generator is communication-free: total time = (edges per PE) /
//! (per-PE throughput) + O(log P) splitting. We measure single-PE
//! throughput at a realistic per-PE portion and extrapolate.

use crate::support::*;
use kagen_core::{Generator, GnmDirected};

/// Measure per-PE throughput and extrapolate the headline configuration.
pub fn throughput(fast: bool) -> String {
    let m: u64 = if fast { 1 << 20 } else { 1 << 24 };
    let n = m / 16;
    let gen = GnmDirected::new(n, m).with_seed(25).with_chunks(1);
    let (edges, t) = time_once(|| gen.generate_pe(0).edges.len() as u64);
    let eps = edges as f64 / t.as_secs_f64();

    // Headline: 2^43 vertices, 2^47 edges, 32 768 PEs.
    let total_edges = (1u128 << 47) as f64;
    let pes = 32_768.0;
    let per_pe = total_edges / pes; // 2^32 edges per PE
    let est_seconds = per_pe / eps;
    let est_minutes = est_seconds / 60.0;

    let rows = vec![vec![
        format!("2^{}", m.ilog2()),
        format!("{:.1}", eps / 1e6),
        format!("2^32"),
        format!("{est_minutes:.1} min"),
        "22 min".to_string(),
    ]];
    report(
        "headline",
        "2^43 vertices / 2^47 edges in < 22 min on 32 768 cores",
        "The directed G(n,m) generator is embarrassingly parallel, so the \
         wall time is (edges per PE)/(per-PE throughput). SuperMUC's \
         Sandy Bridge cores (2012) sustained ~3.3 M edges/s/core; a modern \
         core is several times faster, so the extrapolated time should be \
         well under the paper's 22 minutes.",
        format_table(
            "Headline extrapolation",
            &[
                "measured m",
                "M edges/s/PE",
                "edges/PE at headline",
                "extrapolated time",
                "paper",
            ],
            &rows,
        ),
    )
}
