//! The lint rules: what the communication-free model requires, as code.
//!
//! Every PE's output must be a pure function of `(seed, params, pe)`.
//! Each rule bans one way that purity is lost in practice:
//!
//! * **D1** — `HashMap`/`HashSet` in crates whose iteration order can
//!   reach output bytes. `RandomState` hashing makes iteration order a
//!   per-process coin flip; use `BTreeMap`/`BTreeSet` or sorted vecs.
//! * **D2** — wall-clock / environment / thread-count reads
//!   (`Instant::now`, `SystemTime::now`, `env::var*`,
//!   `available_parallelism`) outside the observability allowlist.
//! * **D3** — RNG construction from a literal seed in generator crates:
//!   every PRNG must be seeded through the `(seed, pe, block)` derivation
//!   helpers (`derive_seed`/`rng_at`/`SeedTree`/`mix2`), or replayed
//!   streams silently decouple.
//! * **S1** — every `unsafe` site carries an adjacent `// SAFETY:`
//!   comment stating the invariant it relies on.
//! * **F1** — floating-point accumulation (`+=`, `sum`, `fold`,
//!   `reduce`) inside a `par_*` statement: float addition is not
//!   associative, so a parallel reduction order leak changes bytes.
//!
//! Suppression is only possible in-source, one site at a time:
//!
//! ```text
//! // kagen-lint: allow(d1) -- lookup-only map, never iterated
//! ```
//!
//! A pragma without a ` -- reason`, or one that suppresses nothing, is
//! itself a violation — exceptions must stay documented and alive.

use crate::lexer::{lex, Tok, Token};

/// Rule identifiers, lowercase as they appear in pragmas and reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    D1,
    D2,
    D3,
    S1,
    F1,
    /// Meta-rule: a malformed or unused `kagen-lint:` pragma.
    P0,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::D1 => "d1",
            Rule::D2 => "d2",
            Rule::D3 => "d3",
            Rule::S1 => "s1",
            Rule::F1 => "f1",
            Rule::P0 => "p0",
        }
    }

    fn parse(s: &str) -> Option<Rule> {
        match s.trim() {
            "d1" => Some(Rule::D1),
            "d2" => Some(Rule::D2),
            "d3" => Some(Rule::D3),
            "s1" => Some(Rule::S1),
            "f1" => Some(Rule::F1),
            _ => None,
        }
    }

    /// One-line description, for `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::D1 => {
                "HashMap/HashSet in an output-deterministic crate (use BTreeMap/sorted vecs)"
            }
            Rule::D2 => "wall-clock/env/thread-count read outside the observability allowlist",
            Rule::D3 => {
                "RNG constructed from a literal seed instead of the (seed, pe, block) helpers"
            }
            Rule::S1 => "unsafe site without an adjacent `// SAFETY:` comment",
            Rule::F1 => {
                "floating-point accumulation inside a par_* statement (order-dependent reduction)"
            }
            Rule::P0 => "malformed or unused kagen-lint pragma",
        }
    }

    pub const ALL: [Rule; 6] = [Rule::D1, Rule::D2, Rule::D3, Rule::S1, Rule::F1, Rule::P0];
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Violation {
    pub rule: Rule,
    pub line: u32,
    pub message: String,
}

/// Which rule sets apply to the file being linted, derived from its
/// crate. See [`crate::scan::classify`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RuleSet {
    /// D1: iteration order can reach output bytes.
    pub deterministic_output: bool,
    /// D2 exemption: the crate is observability/supervision machinery.
    pub clock_allowlisted: bool,
    /// D3: the crate constructs generator RNG streams.
    pub generator: bool,
    /// F1: the crate runs parallel numeric work feeding output.
    pub parallel_numeric: bool,
}

/// Lint one file's source. `rules` selects the applicable rule sets;
/// S1 and pragma hygiene always apply.
pub fn lint_source(src: &str, rules: RuleSet) -> Vec<Violation> {
    let tokens = lex(src);
    let in_test = test_mask(&tokens);
    let mut pragmas = collect_pragmas(src, &tokens);
    let mut out = Vec::new();

    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(i, t)| {
            !in_test[*i] && !matches!(t.kind, Tok::LineComment(_) | Tok::BlockComment(_))
        })
        .collect();

    if rules.deterministic_output {
        rule_d1(&code, &mut out);
    }
    if !rules.clock_allowlisted {
        rule_d2(&code, &mut out);
    }
    if rules.generator {
        rule_d3(&code, &mut out);
    }
    rule_s1(src, &tokens, &in_test, &mut out);
    if rules.parallel_numeric {
        rule_f1(&code, &mut out);
    }

    // Apply pragmas: a violation on a pragma's covered line (or its own
    // line, for trailing pragmas) is suppressed and marks the pragma used.
    out.retain(|v| {
        for p in pragmas.iter_mut() {
            if p.rules.contains(&v.rule) && (v.line == p.line || v.line == p.covers_line) {
                p.used = true;
                return false;
            }
        }
        true
    });

    // Pragma hygiene: malformed and unused pragmas are violations.
    for p in &pragmas {
        if let Some(problem) = &p.problem {
            out.push(Violation {
                rule: Rule::P0,
                line: p.line,
                message: problem.clone(),
            });
        } else if !p.used {
            out.push(Violation {
                rule: Rule::P0,
                line: p.line,
                message: format!(
                    "pragma `allow({})` suppresses nothing — remove it or it will mask a future regression",
                    p.rules.iter().map(|r| r.name()).collect::<Vec<_>>().join(", ")
                ),
            });
        }
    }

    out.sort_by_key(|v| v.line);
    out
}

// ---------------------------------------------------------------------------
// Test-code masking
// ---------------------------------------------------------------------------

/// Mark tokens belonging to `#[test]` / `#[cfg(test)]`-gated items, so
/// test-only code (literal seeds, HashSet-based assertions) is exempt.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let code_idx: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, Tok::LineComment(_) | Tok::BlockComment(_)))
        .map(|(i, _)| i)
        .collect();

    let mut k = 0usize;
    while k < code_idx.len() {
        if is_punct(tokens, code_idx[k], '#')
            && k + 1 < code_idx.len()
            && is_punct(tokens, code_idx[k + 1], '[')
        {
            // Parse the attribute's bracket group.
            let (attr_end, gated) = attr_is_test_gated(tokens, &code_idx, k + 1);
            if gated {
                // Skip any further attributes, then mask the whole item.
                let mut j = attr_end + 1;
                while j + 1 < code_idx.len()
                    && is_punct(tokens, code_idx[j], '#')
                    && is_punct(tokens, code_idx[j + 1], '[')
                {
                    let (e, _) = attr_is_test_gated(tokens, &code_idx, j + 1);
                    j = e + 1;
                }
                let item_end = item_extent(tokens, &code_idx, j);
                for &ci in &code_idx[k..=item_end.min(code_idx.len() - 1)] {
                    mask[ci] = true;
                }
                k = item_end + 1;
                continue;
            }
            k = attr_end + 1;
            continue;
        }
        k += 1;
    }
    mask
}

fn is_punct(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(&tokens[i].kind, Tok::Punct(p) if *p == c)
}

/// Starting at the `[` of an attribute (index into `code_idx`), return
/// (index of the matching `]` in `code_idx`, is-test-gated). An attr is
/// test-gated when it is `#[test]` or a `#[cfg(…)]` whose argument
/// mentions `test` without negation (`not`); `cfg_attr` never gates.
fn attr_is_test_gated(tokens: &[Token], code_idx: &[usize], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents = Vec::new();
    let mut j = open;
    while j < code_idx.len() {
        let ti = code_idx[j];
        match &tokens[ti].kind {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Ident(s) => idents.push(s.as_str().to_string()),
            _ => {}
        }
        j += 1;
    }
    let gated = match idents.first().map(|s| s.as_str()) {
        Some("test") => idents.len() == 1,
        Some("cfg") => idents.iter().any(|s| s == "test") && !idents.iter().any(|s| s == "not"),
        _ => false,
    };
    (j.min(code_idx.len().saturating_sub(1)), gated)
}

/// Extent of the item starting at `code_idx[start]`: through the matching
/// `}` of its first top-level brace, or through a `;` reached first.
fn item_extent(tokens: &[Token], code_idx: &[usize], start: usize) -> usize {
    let mut depth = 0usize;
    let mut j = start;
    while j < code_idx.len() {
        match &tokens[code_idx[j]].kind {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j;
                }
            }
            Tok::Punct(';') if depth == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    code_idx.len().saturating_sub(1)
}

// ---------------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------------

struct Pragma {
    line: u32,
    covers_line: u32,
    rules: Vec<Rule>,
    problem: Option<String>,
    used: bool,
}

fn collect_pragmas(src: &str, tokens: &[Token]) -> Vec<Pragma> {
    let lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    for t in tokens {
        let Tok::LineComment(text) = &t.kind else {
            continue;
        };
        let Some(rest) = text.trim_start().strip_prefix("kagen-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let mut pragma = Pragma {
            line: t.line,
            covers_line: next_code_line(&lines, t.line),
            rules: Vec::new(),
            problem: None,
            used: false,
        };
        let parsed = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split_once(')'))
            .map(|(names, tail)| {
                let rules: Vec<Option<Rule>> = names.split(',').map(Rule::parse).collect();
                (rules, tail.trim().to_string())
            });
        match parsed {
            None => {
                pragma.problem = Some(format!(
                    "malformed pragma `{}` — expected `kagen-lint: allow(<rule>[, …]) -- <reason>`",
                    rest
                ));
            }
            Some((rules, tail)) => {
                if rules.iter().any(|r| r.is_none()) {
                    pragma.problem = Some(format!(
                        "pragma names an unknown rule — known: {}",
                        Rule::ALL
                            .iter()
                            .filter(|r| !matches!(r, Rule::P0))
                            .map(|r| r.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                } else if tail
                    .strip_prefix("--")
                    .map(str::trim)
                    .is_none_or(str::is_empty)
                {
                    pragma.problem =
                        Some("pragma has no reason — append ` -- <why this is sound>`".to_string());
                } else {
                    pragma.rules = rules.into_iter().flatten().collect();
                }
            }
        }
        out.push(pragma);
    }
    out
}

/// First line after `line` that holds code (not blank, not a pure
/// comment): the line a leading pragma covers.
fn next_code_line(lines: &[&str], line: u32) -> u32 {
    let mut l = line as usize; // `line` is 1-based; this starts at the next line.
    while l < lines.len() {
        let t = lines[l].trim_start();
        if !t.is_empty() && !t.starts_with("//") {
            return (l + 1) as u32;
        }
        l += 1;
    }
    line
}

// ---------------------------------------------------------------------------
// The rules
// ---------------------------------------------------------------------------

fn rule_d1(code: &[(usize, &Token)], out: &mut Vec<Violation>) {
    for (_, t) in code {
        if let Tok::Ident(s) = &t.kind {
            if s == "HashMap" || s == "HashSet" {
                out.push(Violation {
                    rule: Rule::D1,
                    line: t.line,
                    message: format!(
                        "{s} iteration order is a per-process coin flip — use BTreeMap/BTreeSet or a sorted Vec so output bytes stay a pure function of (seed, params, pe)"
                    ),
                });
            }
        }
    }
}

/// Match `a :: b` at position `i` of the code slice.
fn path2(code: &[(usize, &Token)], i: usize, a: &str, b: &str) -> bool {
    i + 3 < code.len()
        && ident_is(code, i, a)
        && punct_is(code, i + 1, ':')
        && punct_is(code, i + 2, ':')
        && ident_is(code, i + 3, b)
}

fn ident_is(code: &[(usize, &Token)], i: usize, s: &str) -> bool {
    matches!(&code[i].1.kind, Tok::Ident(x) if x == s)
}

fn punct_is(code: &[(usize, &Token)], i: usize, c: char) -> bool {
    matches!(&code[i].1.kind, Tok::Punct(p) if *p == c)
}

fn rule_d2(code: &[(usize, &Token)], out: &mut Vec<Violation>) {
    for i in 0..code.len() {
        let t = code[i].1;
        let what = if path2(code, i, "Instant", "now") {
            Some("Instant::now() reads the wall clock")
        } else if path2(code, i, "SystemTime", "now") {
            Some("SystemTime::now() reads the wall clock")
        } else if path2(code, i, "env", "var")
            || path2(code, i, "env", "var_os")
            || path2(code, i, "env", "vars")
        {
            Some("std::env reads make output depend on the host environment")
        } else if ident_is(code, i, "available_parallelism") {
            Some("available_parallelism() makes behavior depend on the host's core count")
        } else {
            None
        };
        if let Some(what) = what {
            out.push(Violation {
                rule: Rule::D2,
                line: t.line,
                message: format!(
                    "{what} — route timing through kagen_obs spans, or pragma with a proof it cannot reach output bytes"
                ),
            });
        }
    }
}

const RNG_TYPES: [&str; 3] = ["Mt64", "SplitMix64", "BlockRng"];

fn rule_d3(code: &[(usize, &Token)], out: &mut Vec<Violation>) {
    for i in 0..code.len() {
        let Tok::Ident(ty) = &code[i].1.kind else {
            continue;
        };
        if !RNG_TYPES.contains(&ty.as_str()) {
            continue;
        }
        // `Ty :: new ( <int literal>` — a hard-coded seed.
        if path2(code, i, ty, "new")
            && i + 5 < code.len()
            && punct_is(code, i + 4, '(')
            && matches!(code[i + 5].1.kind, Tok::Int)
        {
            out.push(Violation {
                rule: Rule::D3,
                line: code[i].1.line,
                message: format!(
                    "{ty}::new(<literal>) hard-codes a seed — derive it with derive_seed/rng_at/SeedTree/mix2 from (seed, pe, block) so replayed streams stay coupled"
                ),
            });
        }
    }
}

/// S1 looks at raw source lines: an `unsafe` token is annotated when a
/// `// SAFETY:` comment trails it on the same line or heads the block of
/// comment lines immediately above it.
fn rule_s1(src: &str, tokens: &[Token], in_test: &[bool], out: &mut Vec<Violation>) {
    let lines: Vec<&str> = src.lines().collect();
    let has_safety = |line: u32| -> bool {
        // Trailing comment on the unsafe line itself.
        let idx = (line as usize).saturating_sub(1);
        if lines
            .get(idx)
            .is_some_and(|l| comment_text(l).is_some_and(|c| c.starts_with("SAFETY:")))
        {
            return true;
        }
        // Walk the contiguous block of pure-comment lines upward.
        let mut l = idx;
        while l > 0 {
            l -= 1;
            let trimmed = lines[l].trim_start();
            if !trimmed.starts_with("//") {
                break;
            }
            if comment_text(trimmed).is_some_and(|c| c.starts_with("SAFETY:")) {
                return true;
            }
        }
        false
    };
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        if matches!(&t.kind, Tok::Ident(s) if s == "unsafe") && !has_safety(t.line) {
            out.push(Violation {
                rule: Rule::S1,
                line: t.line,
                message: "unsafe without an adjacent `// SAFETY:` comment — state the invariant this site relies on".to_string(),
            });
        }
    }
}

/// The text of a `//` comment starting the (trimmed) line, if any.
fn comment_text(line: &str) -> Option<&str> {
    let t = line.trim_start();
    // Find a `//` that begins a comment on this line; for S1 purposes a
    // leading or trailing comment both count, so search anywhere. This
    // can match `//` inside a string on that line — acceptable: it only
    // ever *grants* SAFETY status when the text says SAFETY:.
    let at = t.find("//")?;
    Some(
        t[at + 2..]
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim(),
    )
}

fn rule_f1(code: &[(usize, &Token)], out: &mut Vec<Violation>) {
    let mut i = 0usize;
    while i < code.len() {
        let is_par = matches!(&code[i].1.kind, Tok::Ident(s) if s.contains("par_"));
        if !is_par {
            i += 1;
            continue;
        }
        // Region: to the end of the statement the par_* call lives in.
        let mut depth = 0i64;
        let mut end = i;
        while end < code.len() {
            match &code[end].1.kind {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                Tok::Punct(';') if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let region = &code[i..end.min(code.len())];
        let has_float = region.iter().any(|(_, t)| {
            matches!(t.kind, Tok::Float)
                || matches!(&t.kind, Tok::Ident(s) if s == "f32" || s == "f64")
        });
        if has_float {
            for j in 0..region.len() {
                let accum = (punct_is(region, j, '+')
                    || punct_is(region, j, '-')
                    || punct_is(region, j, '*'))
                    && j + 1 < region.len()
                    && punct_is(region, j + 1, '=');
                let reducer = matches!(&region[j].1.kind,
                    Tok::Ident(s) if s == "sum" || s == "fold" || s == "reduce");
                if accum || reducer {
                    out.push(Violation {
                        rule: Rule::F1,
                        line: region[j].1.line,
                        message: "floating-point accumulation inside a par_* statement — reduction order is schedule-dependent, so the result is not a pure function of (seed, params, pe); accumulate per-PE and combine in a fixed order".to_string(),
                    });
                }
            }
        }
        i = end + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_rules() -> RuleSet {
        RuleSet {
            deterministic_output: true,
            clock_allowlisted: false,
            generator: true,
            parallel_numeric: true,
        }
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = r#"
            fn real() { let m: HashMap<u64, u64> = HashMap::new(); }
            #[cfg(test)]
            mod tests {
                fn helper() { let s = std::collections::HashSet::new(); }
                #[test]
                fn t() { let mut r = Mt64::new(42); }
            }
        "#;
        let v = lint_source(src, all_rules());
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == Rule::D1));
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn real() { let m = HashMap::new(); }";
        assert_eq!(lint_source(src, all_rules()).len(), 1);
    }

    #[test]
    fn pragma_suppresses_and_requires_reason() {
        let ok = "// kagen-lint: allow(d1) -- lookup-only, never iterated\nuse std::collections::HashMap;";
        assert!(lint_source(ok, all_rules()).is_empty());

        let no_reason = "// kagen-lint: allow(d1)\nuse std::collections::HashMap;";
        let v = lint_source(no_reason, all_rules());
        assert!(v.iter().any(|x| x.rule == Rule::P0), "{v:?}");

        let unused =
            "// kagen-lint: allow(d2) -- says d2 but site is d1\nuse std::collections::HashMap;";
        let v = lint_source(unused, all_rules());
        assert!(v.iter().any(|x| x.rule == Rule::D1));
        assert!(v.iter().any(|x| x.rule == Rule::P0));
    }

    #[test]
    fn trailing_pragma_covers_its_own_line() {
        let src = "use std::collections::HashMap; // kagen-lint: allow(d1) -- exemplar\n";
        assert!(lint_source(src, all_rules()).is_empty());
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src = r#"
            // HashMap Instant::now() unsafe Mt64::new(3)
            /* HashSet SystemTime::now() */
            fn f() { let s = "HashMap unsafe Instant::now()"; }
        "#;
        assert!(lint_source(src, all_rules()).is_empty());
    }
}
