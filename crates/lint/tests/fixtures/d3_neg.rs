// Fixture: D3 must stay silent — every seed flows through the
// (seed, pe, block) derivation helpers.
pub fn stream(seed: u64, pe: u64, block: u64) -> u64 {
    let mut rng = Mt64::new(derive_seed(seed, pe, block));
    let mut sm = SplitMix64::new(mix2(seed, pe));
    rng.next_u64() ^ sm.next_u64()
}
