//! Offline stand-in for the [rayon](https://crates.io/crates/rayon) API
//! subset used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! provides source-compatible `ThreadPool`, `ThreadPoolBuilder` and the
//! `prelude` parallel-iterator adapters (`into_par_iter`, `par_iter`,
//! `map`, `enumerate`, `collect`) backed by `std::thread::scope`.
//!
//! Semantics preserved for the workspace's purposes:
//! * results come back in input order,
//! * `num_threads(n)` bounds worker count (`0` = all cores),
//! * `pool.install(op)` scopes the thread budget to `op`.
//!
//! It is **not** a work-stealing scheduler: each terminal operation
//! splits its input into contiguous chunks, one per worker thread. For
//! the coarse PE-sized tasks this workspace runs, that is equivalent.

use std::cell::Cell;

thread_local! {
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn current_threads() -> usize {
    let t = CURRENT_THREADS.with(|c| c.get());
    if t == 0 {
        default_threads()
    } else {
        t
    }
}

/// Error type returned by [`ThreadPoolBuilder::build`]; building never
/// actually fails here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with the default thread count (all cores).
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Bound the number of worker threads (`0` = all cores).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Infallible in this implementation.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: if self.num_threads == 0 {
                default_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A thread budget; parallel iterators running under [`ThreadPool::install`]
/// use at most this many worker threads.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread budget installed.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = CURRENT_THREADS.with(|c| c.replace(self.threads));
        let out = op();
        CURRENT_THREADS.with(|c| c.set(prev));
        out
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Order-preserving parallel map over owned items, on `threads` workers.
fn parallel_map<I, R, F>(items: Vec<I>, threads: usize, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let len = items.len();
    if threads <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = threads.min(len);
    let chunk = len.div_ceil(workers);
    let mut inputs: Vec<Vec<I>> = Vec::with_capacity(workers);
    let mut items = items.into_iter();
    for _ in 0..workers {
        inputs.push(items.by_ref().take(chunk).collect());
    }
    let f = &f;
    let outputs: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .into_iter()
            .map(|part| scope.spawn(move || part.into_iter().map(f).collect()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    outputs.into_iter().flatten().collect()
}

pub mod iter {
    //! The parallel-iterator traits and adapters.

    use super::{current_threads, parallel_map};

    /// A finite, order-preserving parallel iterator.
    pub trait ParallelIterator: Sized {
        /// Element type.
        type Item: Send;

        /// Materialize all items, applying the adapter chain with up to
        /// `threads` worker threads.
        fn run(self, threads: usize) -> Vec<Self::Item>;

        /// Map each item through `f` in parallel. (`F: Sync` suffices —
        /// workers share `&F`, the closure itself is never moved across
        /// threads.)
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync,
        {
            Map { base: self, f }
        }

        /// Pair each item with its index.
        fn enumerate(self) -> Enumerate<Self> {
            Enumerate { base: self }
        }

        /// Collect into any `FromIterator` container (order preserved).
        fn collect<C: FromIterator<Self::Item>>(self) -> C {
            self.run(current_threads()).into_iter().collect()
        }

        /// Fold all items into one value; `identity` seeds the fold.
        fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
        where
            ID: Fn() -> Self::Item + Sync,
            OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
        {
            self.run(current_threads()).into_iter().fold(identity(), op)
        }

        /// Sum the items.
        fn sum<S>(self) -> S
        where
            S: std::iter::Sum<Self::Item>,
        {
            self.run(current_threads()).into_iter().sum()
        }

        /// Number of items.
        fn count(self) -> usize {
            self.run(current_threads()).len()
        }
    }

    /// Source backed by a materialized vector.
    pub struct VecParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecParIter<T> {
        type Item = T;
        fn run(self, _threads: usize) -> Vec<T> {
            self.items
        }
    }

    /// `map` adapter: the stage that actually fans out to threads.
    pub struct Map<P, F> {
        base: P,
        f: F,
    }

    impl<P, R, F> ParallelIterator for Map<P, F>
    where
        P: ParallelIterator,
        R: Send,
        F: Fn(P::Item) -> R + Sync,
    {
        type Item = R;
        fn run(self, threads: usize) -> Vec<R> {
            let items = self.base.run(threads);
            parallel_map(items, threads, self.f)
        }
    }

    /// `enumerate` adapter.
    pub struct Enumerate<P> {
        base: P,
    }

    impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
        type Item = (usize, P::Item);
        fn run(self, threads: usize) -> Vec<(usize, P::Item)> {
            self.base.run(threads).into_iter().enumerate().collect()
        }
    }

    /// Conversion into a parallel iterator (by value).
    pub trait IntoParallelIterator {
        /// Iterator produced.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Element type.
        type Item: Send;
        /// Convert.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = VecParIter<T>;
        type Item = T;
        fn into_par_iter(self) -> VecParIter<T> {
            VecParIter { items: self }
        }
    }

    macro_rules! range_into_par_iter {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Iter = VecParIter<$t>;
                type Item = $t;
                fn into_par_iter(self) -> VecParIter<$t> {
                    VecParIter { items: self.collect() }
                }
            }
        )*};
    }
    range_into_par_iter!(usize, u32, u64, i32, i64);

    /// Conversion into a parallel iterator over references.
    pub trait IntoParallelRefIterator<'a> {
        /// Iterator produced.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Element type (a reference).
        type Item: Send + 'a;
        /// Convert.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = VecParIter<&'a T>;
        type Item = &'a T;
        fn par_iter(&'a self) -> VecParIter<&'a T> {
            VecParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = VecParIter<&'a T>;
        type Item = &'a T;
        fn par_iter(&'a self) -> VecParIter<&'a T> {
            VecParIter {
                items: self.iter().collect(),
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude`.
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..100usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_bounds_threads() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let out: Vec<u64> = pool.install(|| (0..17u64).into_par_iter().map(|x| x * x).collect());
        assert_eq!(out.len(), 17);
        assert_eq!(out[16], 256);
    }

    #[test]
    fn par_iter_over_refs() {
        let data = vec![1u64, 2, 3];
        let out: Vec<u64> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn enumerate_indices() {
        let data = vec!["a", "b", "c"];
        let out: Vec<(usize, &str)> = data
            .into_par_iter()
            .enumerate()
            .map(|(i, s)| (i, s))
            .collect();
        assert_eq!(out, vec![(0, "a"), (1, "b"), (2, "c")]);
    }
}
