//! Multi-process integration tests of `kagen launch` / `kagen worker`:
//! real child processes, real shard files, real resume.
//!
//! The acceptance bar (ISSUE 3): a multi-process launch produces a
//! federated `manifest.json` **byte-identical** to a single-process
//! `kagen stream` run of the same `(seed, params)`, and `--resume` after
//! a killed worker or corrupted/deleted shard regenerates only the
//! damaged shards.

use std::path::PathBuf;
use std::process::Command;

const KAGEN: &str = env!("CARGO_BIN_EXE_kagen");

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kagen_it_cluster_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Run the kagen binary; returns (success, stderr).
fn kagen(args: &[&str], envs: &[(&str, &str)]) -> (bool, String) {
    let mut cmd = Command::new(KAGEN);
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("cannot spawn kagen");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The stderr summary line of a successful launch, e.g.
/// `kagen launch: 2 ranks spawned, regenerated=[2, 6] reused=6 -> ...`.
fn launch_summary(stderr: &str) -> &str {
    stderr
        .lines()
        .find(|l| l.contains("federated manifest"))
        .unwrap_or_else(|| panic!("no launch summary in stderr:\n{stderr}"))
}

fn model_args(dir: &str) -> Vec<String> {
    [
        "gnm_undirected",
        "-n",
        "3000",
        "-m",
        "24000",
        "-c",
        "8",
        "-s",
        "42",
        "--shard-dir",
        dir,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn read_manifest(dir: &std::path::Path) -> String {
    std::fs::read_to_string(dir.join("manifest.json")).expect("missing manifest.json")
}

#[test]
fn launch_matches_stream_byte_for_byte() {
    let launch_dir = tmp("fed_launch");
    let stream_dir = tmp("fed_stream");

    let mut args: Vec<String> = vec!["launch".into()];
    args.extend(model_args(launch_dir.to_str().unwrap()));
    args.extend(["--workers".into(), "3".into()]);
    let (ok, stderr) = kagen(&args.iter().map(|s| s.as_str()).collect::<Vec<_>>(), &[]);
    assert!(ok, "launch failed:\n{stderr}");
    assert!(stderr.contains("3 ranks spawned"), "{stderr}");

    let mut args: Vec<String> = vec!["stream".into()];
    args.extend(model_args(stream_dir.to_str().unwrap()));
    let (ok, stderr) = kagen(&args.iter().map(|s| s.as_str()).collect::<Vec<_>>(), &[]);
    assert!(ok, "stream failed:\n{stderr}");

    assert_eq!(
        read_manifest(&launch_dir),
        read_manifest(&stream_dir),
        "federated manifest must be byte-identical to the single-process run"
    );
    // Every shard file byte-identical too.
    for entry in std::fs::read_dir(&stream_dir).unwrap() {
        let name = entry.unwrap().file_name();
        let name = name.to_str().unwrap();
        if name.starts_with("shard-") {
            let a = std::fs::read(stream_dir.join(name)).unwrap();
            let b = std::fs::read(launch_dir.join(name)).unwrap();
            assert_eq!(a, b, "shard {name} differs between launch and stream");
        }
    }
    // The launch dir additionally holds the ledger; no partial
    // manifests survive a successful run.
    assert!(launch_dir.join("ledger.json").exists());
    assert!(!std::fs::read_dir(&launch_dir).unwrap().any(|e| e
        .unwrap()
        .file_name()
        .to_str()
        .unwrap()
        .starts_with("part-")));

    std::fs::remove_dir_all(&launch_dir).ok();
    std::fs::remove_dir_all(&stream_dir).ok();
}

#[test]
fn killed_worker_is_resumable_and_resume_spawns_only_missing_ranges() {
    let dir = tmp("killed");
    let mut args: Vec<String> = vec!["launch".into()];
    args.extend(model_args(dir.to_str().unwrap()));
    args.extend(["--workers".into(), "3".into()]);
    let argv: Vec<&str> = args.iter().map(|s| s.as_str()).collect();

    // The worker owning PE 4 (rank 1, PEs 2..5 for 8 chunks / 3
    // workers) writes PEs 2 and 3, then dies before PE 4 — so it never
    // reports a partial manifest and all three of its PEs stay pending.
    let (ok, stderr) = kagen(&argv, &[("KAGEN_WORKER_FAIL_PE", "4")]);
    assert!(!ok, "launch must fail when a worker dies:\n{stderr}");
    assert!(stderr.contains("resumable"), "{stderr}");
    assert!(!dir.join("manifest.json").exists());
    assert!(dir.join("ledger.json").exists());

    // Resume without the injection: only the dead rank's PEs re-run.
    let mut resume_args = args.clone();
    resume_args.push("--resume".into());
    let (ok, stderr) = kagen(
        &resume_args.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &[],
    );
    assert!(ok, "resume failed:\n{stderr}");
    let summary = launch_summary(&stderr);
    assert!(
        summary.contains("regenerated=[2, 3, 4]") && summary.contains("reused=5"),
        "resume must regenerate exactly the dead worker's range: {summary}"
    );

    // And the result matches a fresh single-process run.
    let stream_dir = tmp("killed_stream");
    let mut args: Vec<String> = vec!["stream".into()];
    args.extend(model_args(stream_dir.to_str().unwrap()));
    let (ok, _) = kagen(&args.iter().map(|s| s.as_str()).collect::<Vec<_>>(), &[]);
    assert!(ok);
    assert_eq!(read_manifest(&dir), read_manifest(&stream_dir));

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&stream_dir).ok();
}

#[test]
fn resume_regenerates_exactly_corrupted_and_deleted_shards() {
    let dir = tmp("repair");
    let mut args: Vec<String> = vec!["launch".into()];
    args.extend(model_args(dir.to_str().unwrap()));
    args.extend(["--workers".into(), "3".into()]);
    let argv: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
    let (ok, stderr) = kagen(&argv, &[]);
    assert!(ok, "launch failed:\n{stderr}");
    let before = read_manifest(&dir);

    // Corrupt shard 2's payload; delete shard 6 outright.
    let corrupt = dir.join("shard-00002.kgc");
    let mut bytes = std::fs::read(&corrupt).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&corrupt, bytes).unwrap();
    std::fs::remove_file(dir.join("shard-00006.kgc")).unwrap();

    let mut resume_args = args.clone();
    resume_args.push("--resume".into());
    let (ok, stderr) = kagen(
        &resume_args.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &[],
    );
    assert!(ok, "resume failed:\n{stderr}");
    let summary = launch_summary(&stderr);
    assert!(
        summary.contains("regenerated=[2, 6]") && summary.contains("reused=6"),
        "resume must regenerate exactly the damaged shards: {summary}"
    );
    assert!(
        summary.contains("2 ranks spawned"),
        "two non-contiguous repairs want two one-PE workers: {summary}"
    );
    assert_eq!(
        read_manifest(&dir),
        before,
        "manifest must be restored bit-for-bit"
    );

    // A second resume finds nothing to do.
    let (ok, stderr) = kagen(
        &resume_args.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &[],
    );
    assert!(ok, "idempotent resume failed:\n{stderr}");
    assert!(
        launch_summary(&stderr).contains("regenerated=[] reused=8"),
        "{stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance criterion verbatim: for EVERY model, a multi-process
/// launch federates a manifest with per-shard checksums identical to a
/// single-process `kagen stream` run of the same `(seed, params)`.
#[test]
fn every_model_federates_identically_to_stream() {
    let models: &[&[&str]] = &[
        &["gnm_directed", "-n", "400", "-m", "2000"],
        &["gnm_undirected", "-n", "400", "-m", "2000"],
        &["gnp_directed", "-n", "400", "-p", "0.01"],
        &["gnp_undirected", "-n", "400", "-p", "0.01"],
        &["rgg2d", "-n", "300"],
        &["rgg3d", "-n", "300"],
        &["rdg2d", "-n", "300"],
        &["rdg3d", "-n", "200"],
        &["rhg", "-n", "300", "-d", "6", "-g", "2.9"],
        &["srhg", "-n", "300", "-d", "6", "-g", "2.9"],
        &["soft-rhg", "-n", "300", "-d", "6", "-g", "2.9", "-T", "0.4"],
        &["ba", "-n", "400", "-d", "4"],
        &["rmat", "-n", "512", "-m", "4000"],
        &[
            "sbm", "-n", "400", "-b", "3", "--p-in", "0.02", "--p-out", "0.002",
        ],
    ];
    for model in models {
        let name = model[0];
        let launch_dir = tmp(&format!("all_{name}_launch"));
        let stream_dir = tmp(&format!("all_{name}_stream"));
        let common = ["-c", "5", "-s", "9"];

        let mut args = vec!["launch"];
        args.extend_from_slice(model);
        args.extend_from_slice(&common);
        args.extend([
            "--shard-dir",
            launch_dir.to_str().unwrap(),
            "--workers",
            "3",
        ]);
        let (ok, stderr) = kagen(&args, &[]);
        assert!(ok, "{name} launch failed:\n{stderr}");

        let mut args = vec!["stream"];
        args.extend_from_slice(model);
        args.extend_from_slice(&common);
        args.extend(["--shard-dir", stream_dir.to_str().unwrap()]);
        let (ok, stderr) = kagen(&args, &[]);
        assert!(ok, "{name} stream failed:\n{stderr}");

        assert_eq!(
            read_manifest(&launch_dir),
            read_manifest(&stream_dir),
            "{name}: federated manifest differs from single-process stream"
        );
        std::fs::remove_dir_all(&launch_dir).ok();
        std::fs::remove_dir_all(&stream_dir).ok();
    }
}

/// `--retries` rescues a transient worker fault in-launch: the first
/// worker attempt fails (fail-once marker), the respawn succeeds, and
/// the run completes without any `--resume` — byte-identical to a clean
/// stream run.
#[test]
fn transient_worker_failure_is_retried_with_budget() {
    let dir = tmp("retry_cli");
    let marker = std::env::temp_dir().join("kagen_it_retry_marker");
    std::fs::remove_file(&marker).ok();

    let mut args: Vec<String> = vec!["launch".into()];
    args.extend(model_args(dir.to_str().unwrap()));
    args.extend([
        "--workers".into(),
        "2".into(),
        "--retries".into(),
        "2".into(),
    ]);
    let (ok, stderr) = kagen(
        &args.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &[("KAGEN_WORKER_FAIL_ONCE", marker.to_str().unwrap())],
    );
    assert!(
        ok,
        "launch with --retries must survive the fault:\n{stderr}"
    );
    assert!(
        stderr.contains("retrying: "),
        "the retry must be reported: {stderr}"
    );
    assert!(dir.join("manifest.json").exists());

    let stream_dir = tmp("retry_cli_stream");
    let mut args: Vec<String> = vec!["stream".into()];
    args.extend(model_args(stream_dir.to_str().unwrap()));
    let (ok, _) = kagen(&args.iter().map(|s| s.as_str()).collect::<Vec<_>>(), &[]);
    assert!(ok);
    assert_eq!(read_manifest(&dir), read_manifest(&stream_dir));

    // Without a budget the same fault fails the launch (resumable).
    let dir2 = tmp("retry_cli_nobudget");
    std::fs::remove_file(&marker).ok();
    let mut args: Vec<String> = vec!["launch".into()];
    args.extend(model_args(dir2.to_str().unwrap()));
    args.extend(["--workers".into(), "2".into()]);
    let (ok, stderr) = kagen(
        &args.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &[("KAGEN_WORKER_FAIL_ONCE", marker.to_str().unwrap())],
    );
    assert!(!ok, "without --retries the fault must fail the launch");
    assert!(stderr.contains("resumable"), "{stderr}");

    std::fs::remove_file(&marker).ok();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
    std::fs::remove_dir_all(&stream_dir).ok();
}

/// `--stall-timeout` turns a wedged worker (alive but making no
/// progress) into an ordinary failure the retry budget rescues: the
/// watchdog kills the stalled process, the respawn proceeds past the
/// one-shot stall marker, and the final manifest is byte-identical to a
/// clean stream run.
#[test]
fn stalled_worker_is_killed_and_retried() {
    let dir = tmp("stall_cli");
    let marker = std::env::temp_dir().join("kagen_it_stall_marker");
    std::fs::remove_file(&marker).ok();

    let mut args: Vec<String> = vec!["launch".into()];
    args.extend(model_args(dir.to_str().unwrap()));
    args.extend([
        "--workers".into(),
        "1".into(),
        "--retries".into(),
        "2".into(),
        "--stall-timeout".into(),
        "1".into(),
    ]);
    let (ok, stderr) = kagen(
        &args.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &[("KAGEN_WORKER_STALL_ONCE", marker.to_str().unwrap())],
    );
    assert!(
        ok,
        "launch with --retries must survive the stall:\n{stderr}"
    );
    assert!(
        stderr.contains("stalled: no heartbeat advance"),
        "the stall must be diagnosed as such, not a generic exit: {stderr}"
    );
    assert!(stderr.contains("retrying: "), "{stderr}");
    assert!(dir.join("manifest.json").exists());

    let stream_dir = tmp("stall_cli_stream");
    let mut args: Vec<String> = vec!["stream".into()];
    args.extend(model_args(stream_dir.to_str().unwrap()));
    let (ok, _) = kagen(&args.iter().map(|s| s.as_str()).collect::<Vec<_>>(), &[]);
    assert!(ok);
    assert_eq!(
        read_manifest(&dir),
        read_manifest(&stream_dir),
        "a launch that recovered from a stall must still be byte-identical"
    );

    // Without a retry budget the same stall fails the launch — but
    // resumable, like any other worker death.
    let dir2 = tmp("stall_cli_nobudget");
    std::fs::remove_file(&marker).ok();
    let mut args: Vec<String> = vec!["launch".into()];
    args.extend(model_args(dir2.to_str().unwrap()));
    args.extend([
        "--workers".into(),
        "1".into(),
        "--stall-timeout".into(),
        "1".into(),
    ]);
    let (ok, stderr) = kagen(
        &args.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &[("KAGEN_WORKER_STALL_ONCE", marker.to_str().unwrap())],
    );
    assert!(!ok, "without --retries the stall must fail the launch");
    assert!(stderr.contains("resumable"), "{stderr}");

    std::fs::remove_file(&marker).ok();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
    std::fs::remove_dir_all(&stream_dir).ok();
}

/// `--validate sampled` resumes a damaged run: a truncated shard is
/// caught by the structural walk and regenerated, valid shards are
/// reused without the full re-read.
#[test]
fn sampled_validation_resume_via_cli() {
    let dir = tmp("sampled_cli");
    let mut args: Vec<String> = vec!["launch".into()];
    args.extend(model_args(dir.to_str().unwrap()));
    args.extend(["--workers".into(), "2".into()]);
    let argv: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
    let (ok, stderr) = kagen(&argv, &[]);
    assert!(ok, "launch failed:\n{stderr}");
    let before = read_manifest(&dir);

    let victim = dir.join("shard-00005.kgc");
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() - 2]).unwrap();

    let mut resume_args = args.clone();
    resume_args.extend(["--resume".into(), "--validate".into(), "sampled".into()]);
    let (ok, stderr) = kagen(
        &resume_args.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &[],
    );
    assert!(ok, "sampled resume failed:\n{stderr}");
    let summary = launch_summary(&stderr);
    assert!(
        summary.contains("regenerated=[5] reused=7"),
        "sampled resume must regenerate exactly the truncated shard: {summary}"
    );
    assert_eq!(read_manifest(&dir), before);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn launch_rejects_invalid_flags_before_spawning_workers() {
    let dir = tmp("reject");
    let dir_s = dir.to_str().unwrap();
    for (args, needle) in [
        (
            vec![
                "launch",
                "gnm_undirected",
                "--shard-dir",
                dir_s,
                "--merge",
                "external",
            ],
            "--merge requires",
        ),
        (
            vec![
                "launch",
                "gnm_undirected",
                "--shard-dir",
                dir_s,
                "--pe-range",
                "0..4",
            ],
            "--pe-range requires",
        ),
        (
            vec![
                "launch",
                "gnm_undirected",
                "--shard-dir",
                dir_s,
                "-f",
                "metis",
            ],
            "unknown shard format",
        ),
        (
            vec![
                "launch",
                "gnm_undirected",
                "--shard-dir",
                dir_s,
                "--workers",
                "0",
            ],
            "--workers must be",
        ),
        (vec!["launch", "gnm_undirected"], "--shard-dir is required"),
        (
            vec![
                "launch",
                "gnm_undirected",
                "--shard-dir",
                dir_s,
                "--validate",
                "maybe",
            ],
            "unknown validate mode",
        ),
        (
            vec![
                "launch",
                "gnm_undirected",
                "--shard-dir",
                dir_s,
                "--no-validate",
                "--validate",
                "full",
            ],
            "--no-validate conflicts",
        ),
        (
            vec![
                "stream",
                "gnm_undirected",
                "--shard-dir",
                dir_s,
                "--retries",
                "2",
            ],
            "--retries requires",
        ),
        (
            vec!["worker", "gnm_undirected", "--shard-dir", dir_s],
            "--pe-range is required",
        ),
        (
            vec![
                "worker",
                "gnm_undirected",
                "--shard-dir",
                dir_s,
                "--pe-range",
                "5..3",
            ],
            "not a non-empty sub-range",
        ),
        (
            vec![
                "launch",
                "rmat",
                "--shard-dir",
                dir_s,
                "--rmat-kernel",
                "liner",
            ],
            "unknown --rmat-kernel",
        ),
        (
            vec![
                "launch",
                "rmat",
                "--shard-dir",
                dir_s,
                "--rmat-levels",
                "13",
            ],
            "out of range (want 0..=12)",
        ),
        (
            vec![
                "launch",
                "rmat",
                "--shard-dir",
                dir_s,
                "--rmat-kernel",
                "plain",
                "--rmat-levels",
                "8",
            ],
            "conflicts with --rmat-kernel plain",
        ),
        (
            vec![
                "launch",
                "rmat",
                "--shard-dir",
                dir_s,
                "-n",
                "4294967296",
                "--rmat-kernel",
                "table",
            ],
            "needs scale < 32",
        ),
    ] {
        let (ok, stderr) = kagen(&args, &[]);
        assert!(!ok, "{args:?} must be rejected");
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
        assert!(
            !dir.exists(),
            "{args:?} must be rejected before anything is written"
        );
    }
}
