//! Ablations for the design choices DESIGN.md calls out.

use crate::support::*;
use kagen_core::rhg::common::RhgInstance;
use kagen_core::{generate_parallel, GnmUndirected, Rgg2d};
use kagen_geometry::hyperbolic::PrePoint;

/// §7.2.1 "adjacency tests without trigonometric functions": measure the
/// Eq. 9 precomputed test against the direct Eq. 4 evaluation on the same
/// point sample.
pub fn trig_free(fast: bool) -> String {
    let n: u64 = if fast { 1 << 12 } else { 1 << 14 };
    let inst = RhgInstance::new(n, 16.0, 3.0, 27);
    let mut pts: Vec<PrePoint> = Vec::new();
    for i in 0..inst.num_annuli() {
        for c in 0..inst.ann_cells[i] {
            pts.extend(inst.cell_points(i, c));
        }
    }
    let cosh_r = inst.space.cosh_r;
    let r_max = inst.space.r_max;
    let sample: Vec<(usize, usize)> = (0..if fast { 2_000_000 } else { 8_000_000 })
        .map(|k| {
            let a = (k * 2654435761) % pts.len();
            let b = (k * 40503 + 7) % pts.len();
            (a, b)
        })
        .collect();

    let (count_fast, t_fast) = time_once(|| {
        let mut c = 0u64;
        for &(a, b) in &sample {
            c += pts[a].is_adjacent(&pts[b], cosh_r) as u64;
        }
        c
    });
    let (count_trig, t_trig) = time_once(|| {
        let mut c = 0u64;
        for &(a, b) in &sample {
            let (p, q) = (&pts[a], &pts[b]);
            let arg = p.r.cosh() * q.r.cosh() - p.r.sinh() * q.r.sinh() * (p.theta - q.theta).cos();
            c += ((arg.max(1.0)).acosh() < r_max) as u64;
        }
        c
    });
    assert_eq!(count_fast, count_trig, "the two tests must agree");

    let rows = vec![vec![
        sample.len().to_string(),
        ms(t_fast),
        ms(t_trig),
        format!(
            "{:.1}x",
            t_trig.as_secs_f64() / t_fast.as_secs_f64().max(1e-9)
        ),
    ]];
    report(
        "abl-trig",
        "trig-free adjacency tests (Eq. 9 vs Eq. 4)",
        "The precomputed form needs 5 multiplications and 2 additions per \
         test; the naive form evaluates cosh/sinh/cos/acosh — the paper \
         reports early versions were dominated by exactly this.",
        format_table(
            "Adjacency test ablation",
            &["tests", "Eq. 9 ms", "Eq. 4 ms", "speedup"],
            &rows,
        ),
    )
}

/// sRHG's per-cell batch processing vs HyperGen-style per-event priority
/// queue (§7.2.1 batch processing) — end-to-end generator comparison.
pub fn cell_batching(fast: bool) -> String {
    use kagen_baselines::hypergen_edges;
    use kagen_core::Srhg;
    let n_exps: Vec<u32> = if fast { vec![11] } else { vec![13, 15] };
    let mut rows = Vec::new();
    for &ne in &n_exps {
        let n = 1u64 << ne;
        let gen = Srhg::new(n, 16.0, 3.0).with_seed(29).with_chunks(1);
        let srhg = run_generator(&gen);
        let (edges, t_pq) = time_once(|| hypergen_edges(&gen.instance()));
        rows.push(vec![
            format!("2^{ne}"),
            edges.len().to_string(),
            ms(srhg.time),
            ms(t_pq),
            format!(
                "{:.1}x",
                t_pq.as_secs_f64() / srhg.time.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    report(
        "abl-cells",
        "sweep batch processing (cells) vs per-event priority queue",
        "Batching insertions/expiries per cell amortizes state maintenance \
         and keeps candidate scans contiguous; the per-event heap pays a \
         log factor plus cache misses per node.",
        format_table(
            "Sweep-state ablation (identical output verified in tests)",
            &["n", "edges", "sRHG batched ms", "per-event pq ms", "ratio"],
            &rows,
        ),
    )
}

/// §9 future work: the multi-level descent-table R-MAT against the plain
/// per-level generator.
pub fn rmat_tables(fast: bool) -> String {
    use kagen_core::Rmat;
    let m: u64 = if fast { 1 << 18 } else { 1 << 21 };
    let scale = 24u32;
    let mut rows = Vec::new();
    for levels in [0u32, 4, 8] {
        let gen = if levels == 0 {
            Rmat::new(scale, m).with_seed(33).with_chunks(1)
        } else {
            Rmat::new(scale, m)
                .with_seed(33)
                .with_chunks(1)
                .with_table_levels(levels)
        };
        let stats = run_generator(&gen);
        rows.push(vec![
            if levels == 0 {
                "per-level".into()
            } else {
                format!("table({levels})")
            },
            ms(stats.time),
            meps(stats.edges, stats.time),
        ]);
    }
    report(
        "abl-rmat",
        "R-MAT descent tables (§9 extension)",
        "Collapsing k recursion levels into one alias-table draw divides \
         the per-edge variate count by k; with scale 24 and 8-level tables \
         the descent needs 3 draws instead of 24.",
        format_table(
            "R-MAT acceleration (m edges, scale 24)",
            &["variant", "time ms", "MEPS"],
            &rows,
        ),
    )
}

/// Redundancy overhead: undirected G(n,m) chunk duplication (§4.2 bound:
/// ≤ 2m) and RGG halo recomputation share as the chunk count grows.
pub fn redundancy(fast: bool) -> String {
    let mut rows = Vec::new();
    let m: u64 = if fast { 1 << 16 } else { 1 << 20 };
    let n = m / 16;
    for p in [1usize, 2, 4, 8, 16, 32] {
        let gen = GnmUndirected::new(n, m).with_seed(31).with_chunks(p);
        let parts = generate_parallel(&gen, 0);
        let emitted: u64 = parts.iter().map(|q| q.edges.len() as u64).sum();
        let rgg_n = if fast { 1 << 12 } else { 1 << 16 };
        let r = Rgg2d::threshold_radius(rgg_n, p as u64);
        let rgg = Rgg2d::new(rgg_n, r).with_seed(31).with_chunks(p);
        let rgg_parts = generate_parallel(&rgg, 0);
        let rgg_emitted: u64 = rgg_parts.iter().map(|q| q.edges.len() as u64).sum();
        let rgg_edges = kagen_graph::merge_pe_edges(rgg_n, rgg_parts.into_iter().map(|q| q.edges))
            .edges
            .len() as u64;
        rows.push(vec![
            p.to_string(),
            format!("{:.3}", emitted as f64 / m as f64),
            format!("{:.3}", rgg_emitted as f64 / rgg_edges as f64),
        ]);
    }
    report(
        "abl-chunks",
        "recomputation overhead vs chunk count",
        "Undirected G(n,m): edges emitted across PEs divided by m grows \
         from 1.0 (P=1) towards the §4.2 bound of 2.0 (all chunks \
         off-diagonal). RGG: emitted/unique edges grows with the \
         surface-to-volume ratio of chunks but stays a small constant.",
        format_table(
            "Redundancy (emitted / unique edges)",
            &["P", "G(n,m) undirected", "RGG 2D"],
            &rows,
        ),
    )
}
