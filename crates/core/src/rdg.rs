//! Random Delaunay graphs in 2D and 3D (§6).
//!
//! Points are sampled uniformly in the unit cube with the same cell/count
//! infrastructure as the RGG generator, with cell side ≈ ((d+1)/n)^{1/d}
//! (the mean (d+1)-th-nearest-neighbor distance, \[37\]). The output graph is
//! the Delaunay triangulation of the point set on the *d-torus* (§2.1.4
//! periodic boundary conditions), realized by triangulating ±1-offset
//! replicas of wrapped halo cells.
//!
//! Each PE triangulates its chunk plus a halo of surrounding cell rings;
//! the halo grows until (a) no local point lies in a simplex touching the
//! artificial super-vertices and (b) every simplex containing a local point
//! has its circumsphere strictly inside chunk+halo. Both conditions
//! certify the local simplices against the full periodic point set, so the
//! union over PEs is exactly the global periodic Delaunay graph.

use crate::{Generator, PeGraph};
use kagen_delaunay::{circumcircle2, circumsphere3, Delaunay2, Delaunay3};
use kagen_geometry::cell_points::cell_points;
use kagen_geometry::grid::levels_for_min_side;
use kagen_geometry::{CellGrid, CellRangeCursor, CountTree, FrontierCache, FrontierStats, Point};
use std::collections::BTreeSet;

/// Shared implementation for both dimensions.
#[derive(Clone, Debug)]
pub struct Rdg<const D: usize> {
    n: u64,
    seed: u64,
    chunk_levels: u32,
}

/// 2D random Delaunay graph (planar triangulation on the torus).
pub type Rdg2d = Rdg<2>;
/// 3D random Delaunay graph (tetrahedral mesh on the torus).
pub type Rdg3d = Rdg<3>;

struct Instance<const D: usize> {
    grid: CellGrid<D>,
    tree: CountTree<D>,
    chunk_bits: u32,
}

impl<const D: usize> Rdg<D> {
    /// `n` points uniform on the unit d-torus.
    pub fn new(n: u64) -> Self {
        assert!(D == 2 || D == 3);
        assert!(n >= D as u64 + 2, "need at least d+2 points");
        Rdg {
            n,
            seed: 1,
            chunk_levels: 1,
        }
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Request ~`chunks` logical PEs (rounded down to a power of 2^d,
    /// capped by the grid refinement).
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks >= 1);
        let mut b = 0u32;
        while (1usize << (D as u32 * (b + 1))) <= chunks {
            b += 1;
        }
        self.chunk_levels = b;
        self
    }

    fn instance(&self) -> Instance<D> {
        // Cell side ≈ ((d+1)/n)^{1/d} (§6), snapped to powers of two.
        let c = ((D as f64 + 1.0) / self.n as f64).powf(1.0 / D as f64);
        let max_levels: u32 = if D == 2 { 24 } else { 16 };
        let levels = levels_for_min_side(c, max_levels);
        let grid = CellGrid::new(levels);
        let b = self.chunk_levels.min(levels);
        Instance {
            grid,
            tree: CountTree::<D>::new(self.seed, self.n, levels),
            chunk_bits: b,
        }
    }

    /// Points + first-vertex-id of one wrapped cell, translated by an
    /// integer replica offset.
    fn cell_with_offset(
        &self,
        inst: &Instance<D>,
        wrapped: [u64; D],
        offset: [i64; D],
        out_pts: &mut Vec<Point<D>>,
        out_ids: &mut Vec<u64>,
    ) {
        let morton = inst.grid.morton_of(wrapped);
        let count = inst.tree.leaf_count(morton);
        if count == 0 {
            return;
        }
        let first = inst.tree.prefix_before(morton);
        let mut pts = Vec::new();
        cell_points(&inst.grid, self.seed, morton, count, &mut pts);
        for (k, p) in pts.into_iter().enumerate() {
            let mut c = p.0;
            for i in 0..D {
                c[i] += offset[i] as f64;
            }
            out_pts.push(Point(c));
            out_ids.push(first + k as u64);
        }
    }

    /// Per-cell-group streaming (§6 over the cell cursor): for every
    /// non-empty local cell, triangulate the cell plus a halo of
    /// surrounding rings (grown until the same certification
    /// [`Generator::generate_pe`] uses — no center simplex touches the
    /// artificial hull, every center simplex' circumsphere lies strictly
    /// inside cell+halo — so the center's simplices are exactly the
    /// global periodic Delaunay's), then emit only the edges the center
    /// cell *owns*: the normalized edge `(x, y)` belongs to the cell
    /// holding `x` if `x` is PE-local, else to the cell holding `y`.
    /// Ownership is a pure function of the ids, so each edge with a
    /// local endpoint is emitted exactly once per PE without any cross-
    /// cell dedup state; memory is one cell group, never the per-PE
    /// edge count. Halo cell points are served by a frontier cache
    /// (distance-1 cells are retained across adjacent groups, anything
    /// farther is recomputed — the paper's recomputation trade).
    pub(crate) fn stream_cells(&self, pe: usize, emit: &mut impl FnMut(u64, u64)) -> FrontierStats {
        let inst = self.instance();
        let grid = &inst.grid;
        let g = grid.cells_per_dim() as i64;
        let side = grid.cell_side();
        let cells_per_chunk_bits = D as u32 * (grid.levels() - inst.chunk_bits);
        let lo = (pe as u64) << cells_per_chunk_bits;
        let hi = (pe as u64 + 1) << cells_per_chunk_bits;
        let cursor = CellRangeCursor::new(grid, &inst.tree, lo, hi);
        let pe_ids = cursor.first_id()..cursor.end_id();
        let max_halo = (g - 1).clamp(1, 16);
        // Cached halo cells, keyed by (wrapped cell, replica offset);
        // values are translated points with their global ids.
        type HaloCache<const D: usize> = FrontierCache<(u64, [i64; D]), (Vec<Point<D>>, Vec<u64>)>;
        let mut cache: HaloCache<D> = FrontierCache::new();
        let mut owned: Vec<(u64, u64)> = Vec::new();

        cursor.for_cells(&mut |cell, count, first| {
            cache.advance(cell);
            if count == 0 {
                return;
            }
            let center = grid.coords_of(cell);
            let cell_ids = first..first + count;
            // Group buffers: center points first, then halo rings.
            let mut pts: Vec<Point<D>> = Vec::new();
            let mut ids: Vec<u64> = Vec::new();
            cell_points(grid, self.seed, cell, count, &mut pts);
            ids.extend(first..first + count);
            let n_center = pts.len();
            cache.note_external(n_center as u64);

            let mut halo_seen: BTreeSet<(u64, [i64; D])> = BTreeSet::new();
            let mut h: i64 = 0;
            loop {
                h += 1;
                if h > max_halo {
                    panic!(
                        "RDG halo exceeded {max_halo} rings — degenerate configuration \
                         (n too small for the chunk count?)"
                    );
                }
                // Ring h: cells at Chebyshev distance exactly h around
                // the center cell, wrapped on the torus.
                let lo_c: Vec<i64> = (0..D).map(|i| center[i] as i64 - h).collect();
                let hi_c: Vec<i64> = (0..D).map(|i| center[i] as i64 + h).collect();
                enumerate_ring::<D>(&lo_c, &hi_c, &mut |raw| {
                    let mut wrapped = [0u64; D];
                    let mut offset = [0i64; D];
                    for i in 0..D {
                        let mut x = raw[i];
                        let mut o = 0i64;
                        while x < 0 {
                            x += g;
                            o -= 1;
                        }
                        while x >= g {
                            x -= g;
                            o += 1;
                        }
                        wrapped[i] = x as u64;
                        offset[i] = o;
                    }
                    let m = grid.morton_of(wrapped);
                    if !halo_seen.insert((m, offset)) {
                        return;
                    }
                    // Direct neighbors are re-requested by adjacent
                    // center cells; anything farther retires at once
                    // (recomputed on the rare deep-halo group).
                    let retire = if offset == [0i64; D] && h == 1 {
                        cursor.last_referencing_center(m)
                    } else {
                        cell
                    };
                    let (hpts, hids) = cache.get((m, offset), retire, || {
                        let mut hpts = Vec::new();
                        let mut hids = Vec::new();
                        self.cell_with_offset(&inst, wrapped, offset, &mut hpts, &mut hids);
                        (hpts, hids)
                    });
                    pts.extend_from_slice(hpts);
                    ids.extend_from_slice(hids);
                });

                // Triangulate the group and certify the center's
                // simplices against the full periodic point set.
                let region_lo: Vec<f64> = (0..D)
                    .map(|i| (center[i] as i64 - h) as f64 * side)
                    .collect();
                let region_hi: Vec<f64> = (0..D)
                    .map(|i| (center[i] as i64 + 1 + h) as f64 * side)
                    .collect();
                let (edges, converged) = match D {
                    2 => {
                        let coords: Vec<[f64; 2]> = pts.iter().map(|p| [p.0[0], p.0[1]]).collect();
                        let dt = Delaunay2::new(&coords);
                        let ok = check2(&dt, n_center, &region_lo, &region_hi);
                        (extract_edges2(&dt, n_center), ok)
                    }
                    3 => {
                        let coords: Vec<[f64; 3]> =
                            pts.iter().map(|p| [p.0[0], p.0[1], p.0[2]]).collect();
                        let dt = Delaunay3::new(&coords);
                        let ok = check3(&dt, n_center, &region_lo, &region_hi);
                        (extract_edges3(&dt, n_center), ok)
                    }
                    _ => unreachable!(),
                };
                if !converged {
                    continue;
                }

                // Ownership: normalized (x, y) belongs to this cell iff
                // x is one of its vertices, or x is not PE-local at all
                // and y is one of its vertices.
                owned.clear();
                for (a, b) in edges {
                    let (ga, gb) = (ids[a as usize], ids[b as usize]);
                    let (x, y) = (ga.min(gb), ga.max(gb));
                    if x == y {
                        continue; // a point meeting its own replica
                    }
                    if cell_ids.contains(&x) || (!pe_ids.contains(&x) && cell_ids.contains(&y)) {
                        owned.push((x, y));
                    }
                }
                owned.sort_unstable();
                owned.dedup();
                for &(x, y) in &owned {
                    emit(x, y);
                }
                return;
            }
        });
        cache.stats()
    }

    /// Stream PE `pe`'s edges and report the frontier accounting (halo
    /// cells held across groups) — the hook the memory tests use.
    pub fn stream_pe_instrumented(
        &self,
        pe: usize,
        emit: &mut impl FnMut(u64, u64),
    ) -> FrontierStats {
        self.stream_cells(pe, emit)
    }
}

impl<const D: usize> Generator for Rdg<D> {
    fn num_vertices(&self) -> u64 {
        self.n
    }

    fn num_chunks(&self) -> usize {
        let inst = self.instance();
        1usize << (D as u32 * inst.chunk_bits)
    }

    fn directed(&self) -> bool {
        false
    }

    fn generate_pe(&self, pe: usize) -> PeGraph {
        let inst = self.instance();
        let grid = &inst.grid;
        let g = grid.cells_per_dim() as i64;
        let side = grid.cell_side();
        let cells_per_chunk_bits = D as u32 * (grid.levels() - inst.chunk_bits);
        let lo = (pe as u64) << cells_per_chunk_bits;
        let hi = (pe as u64 + 1) << cells_per_chunk_bits;
        // The chunk is a Morton-aligned cube of cells.
        let origin = grid.coords_of(lo);
        let width = 1i64 << (grid.levels() - inst.chunk_bits);

        let mut out = PeGraph {
            pe,
            ..PeGraph::default()
        };

        // Local points (ids are global Morton prefix sums).
        let mut pts: Vec<Point<D>> = Vec::new();
        let mut ids: Vec<u64> = Vec::new();
        {
            let mut cells: Vec<(u64, u64)> = Vec::new();
            inst.tree
                .for_leaf_counts(lo, hi, &mut |cell, c| cells.push((cell, c)));
            let mut next_id = inst.tree.prefix_before(lo);
            out.vertex_begin = next_id;
            for (cell, c) in cells {
                let mut cp = Vec::new();
                cell_points(grid, self.seed, cell, c, &mut cp);
                for (k, p) in cp.into_iter().enumerate() {
                    pts.push(p);
                    ids.push(next_id + k as u64);
                }
                next_id += c;
            }
            out.vertex_end = next_id;
        }
        let n_local = pts.len();
        for (p, &id) in pts.iter().zip(&ids) {
            match D {
                2 => out.coords2.push((id, [p.0[0], p.0[1]])),
                3 => out.coords3.push((id, [p.0[0], p.0[1], p.0[2]])),
                _ => unreachable!(),
            }
        }
        if self.num_chunks() == 1 && self.n < (D as u64 + 2) * 4 {
            // Degenerate tiny instance: fall through with the same halo
            // machinery (replicas still needed for the torus).
        }

        // Grow the halo ring by ring until the triangulation is certified.
        let max_halo = (g - 1).clamp(1, 16);
        let mut halo_seen: BTreeSet<(u64, [i64; D])> = BTreeSet::new();
        let mut halo_pts: Vec<Point<D>> = Vec::new();
        let mut halo_ids: Vec<u64> = Vec::new();
        let mut h: i64 = 0;

        loop {
            h += 1;
            if h > max_halo {
                panic!(
                    "RDG halo exceeded {max_halo} rings — degenerate configuration \
                     (n too small for the chunk count?)"
                );
            }
            // Add ring h: cells at Chebyshev distance exactly h around the
            // chunk box, wrapped on the torus.
            let mut add_cell = |raw: [i64; D]| {
                let mut wrapped = [0u64; D];
                let mut offset = [0i64; D];
                for i in 0..D {
                    let mut x = raw[i];
                    let mut o = 0i64;
                    while x < 0 {
                        x += g;
                        o -= 1;
                    }
                    while x >= g {
                        x -= g;
                        o += 1;
                    }
                    wrapped[i] = x as u64;
                    offset[i] = o;
                }
                // Skip cells that are the chunk itself (offset 0 and inside
                // the box) or already added.
                let inside = (0..D).all(|i| {
                    offset[i] == 0
                        && wrapped[i] as i64 >= origin[i] as i64
                        && (wrapped[i] as i64) < origin[i] as i64 + width
                });
                if inside {
                    return;
                }
                let m = grid.morton_of(wrapped);
                if halo_seen.insert((m, offset)) {
                    self.cell_with_offset(&inst, wrapped, offset, &mut halo_pts, &mut halo_ids);
                }
            };
            // Enumerate the ring via the box surface.
            let lo_c: Vec<i64> = (0..D).map(|i| origin[i] as i64 - h).collect();
            let hi_c: Vec<i64> = (0..D).map(|i| origin[i] as i64 + width - 1 + h).collect();
            enumerate_ring::<D>(&lo_c, &hi_c, &mut |raw| add_cell(raw));

            // Triangulate local + halo.
            let mut all_pts = pts.clone();
            all_pts.extend(halo_pts.iter().copied());
            let region_lo: Vec<f64> = (0..D)
                .map(|i| (origin[i] as i64 - h) as f64 * side)
                .collect();
            let region_hi: Vec<f64> = (0..D)
                .map(|i| (origin[i] as i64 + width + h) as f64 * side)
                .collect();

            let (edges, converged) = match D {
                2 => {
                    let coords: Vec<[f64; 2]> = all_pts.iter().map(|p| [p.0[0], p.0[1]]).collect();
                    let dt = Delaunay2::new(&coords);
                    let ok = check2(&dt, n_local, &region_lo, &region_hi);
                    (extract_edges2(&dt, n_local), ok)
                }
                3 => {
                    let coords: Vec<[f64; 3]> =
                        all_pts.iter().map(|p| [p.0[0], p.0[1], p.0[2]]).collect();
                    let dt = Delaunay3::new(&coords);
                    let ok = check3(&dt, n_local, &region_lo, &region_hi);
                    (extract_edges3(&dt, n_local), ok)
                }
                _ => unreachable!(),
            };
            if !converged {
                continue;
            }

            // Map point indices to global ids and emit edges incident to
            // local vertices, deduplicated.
            let gid = |i: u32| -> u64 {
                if (i as usize) < n_local {
                    ids[i as usize]
                } else {
                    halo_ids[i as usize - n_local]
                }
            };
            let mut result: Vec<(u64, u64)> = edges
                .into_iter()
                .map(|(a, b)| {
                    let (ga, gb) = (gid(a), gid(b));
                    (ga.min(gb), ga.max(gb))
                })
                .filter(|&(a, b)| a != b)
                .collect();
            result.sort_unstable();
            result.dedup();
            out.edges = result;
            return out;
        }
    }
}

/// Call `f` for every integer coordinate on the surface of the box
/// `[lo, hi]` (inclusive) — the next halo ring.
fn enumerate_ring<const D: usize>(lo: &[i64], hi: &[i64], f: &mut impl FnMut([i64; D])) {
    // Iterate the full box but only surface cells (any coordinate at a
    // bound). Box volumes here are small (halo rings).
    fn rec<const D: usize>(
        lo: &[i64],
        hi: &[i64],
        dim: usize,
        cur: &mut [i64; D],
        on_surface: bool,
        f: &mut impl FnMut([i64; D]),
    ) {
        if dim == D {
            if on_surface {
                f(*cur);
            }
            return;
        }
        let mut x = lo[dim];
        while x <= hi[dim] {
            cur[dim] = x;
            let surf = on_surface || x == lo[dim] || x == hi[dim];
            // Interior sweep shortcut: if not at a bound in this dim and
            // deeper dims can still hit bounds, recurse normally.
            rec::<D>(lo, hi, dim + 1, cur, surf, f);
            x += 1;
        }
    }
    let mut cur = [0i64; D];
    rec::<D>(lo, hi, 0, &mut cur, false, f);
}

fn check2(dt: &Delaunay2, n_local: usize, lo: &[f64], hi: &[f64]) -> bool {
    for t in dt.all_triangles() {
        let has_local = t.iter().any(|&v| (v as usize) < n_local);
        if !has_local {
            continue;
        }
        if t.iter().any(|&v| dt.is_super(v)) {
            return false; // a local point still touches the hull
        }
        let (c, r2) = circumcircle2(
            dt.point(t[0] as usize),
            dt.point(t[1] as usize),
            dt.point(t[2] as usize),
        );
        let r = r2.sqrt();
        for i in 0..2 {
            if c[i] - r < lo[i] || c[i] + r > hi[i] {
                return false;
            }
        }
    }
    true
}

fn check3(dt: &Delaunay3, n_local: usize, lo: &[f64], hi: &[f64]) -> bool {
    for t in dt.all_tetrahedra() {
        let has_local = t.iter().any(|&v| (v as usize) < n_local);
        if !has_local {
            continue;
        }
        if t.iter().any(|&v| dt.is_super(v)) {
            return false;
        }
        let (c, r2) = circumsphere3(
            dt.point(t[0] as usize),
            dt.point(t[1] as usize),
            dt.point(t[2] as usize),
            dt.point(t[3] as usize),
        );
        let r = r2.sqrt();
        for i in 0..3 {
            if c[i] - r < lo[i] || c[i] + r > hi[i] {
                return false;
            }
        }
    }
    true
}

fn extract_edges2(dt: &Delaunay2, n_local: usize) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for t in dt.triangles() {
        for k in 0..3 {
            let a = t[k];
            let b = t[(k + 1) % 3];
            if (a as usize) < n_local || (b as usize) < n_local {
                edges.push((a.min(b), a.max(b)));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

fn extract_edges3(dt: &Delaunay3, n_local: usize) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for t in dt.tetrahedra() {
        for i in 0..4 {
            for j in (i + 1)..4 {
                let (a, b) = (t[i].min(t[j]), t[i].max(t[j]));
                if (a as usize) < n_local || (b as usize) < n_local {
                    edges.push((a, b));
                }
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_undirected;

    #[test]
    fn chunk_invariance_2d() {
        let a = generate_undirected(&Rdg2d::new(300).with_seed(3).with_chunks(1));
        let b = generate_undirected(&Rdg2d::new(300).with_seed(3).with_chunks(4));
        let c = generate_undirected(&Rdg2d::new(300).with_seed(3).with_chunks(16));
        assert_eq!(a, b, "1 vs 4 chunks");
        assert_eq!(a, c, "1 vs 16 chunks");
    }

    #[test]
    fn chunk_invariance_3d() {
        let a = generate_undirected(&Rdg3d::new(250).with_seed(5).with_chunks(1));
        let b = generate_undirected(&Rdg3d::new(250).with_seed(5).with_chunks(8));
        assert_eq!(a, b);
    }

    #[test]
    fn torus_degree_statistics_2d() {
        // On the torus there is no boundary: E = 3n exactly for a
        // triangulation of the torus (Euler characteristic 0), i.e. mean
        // degree exactly 6 — allow slack for rare cocircular ties.
        let n = 500u64;
        let el = generate_undirected(&Rdg2d::new(n).with_seed(7).with_chunks(4));
        let m = el.edges.len() as f64;
        assert!(
            (m - 3.0 * n as f64).abs() <= 3.0,
            "edges {m} vs 3n = {}",
            3 * n
        );
    }

    #[test]
    fn torus_degree_statistics_3d() {
        // Poisson–Delaunay in 3D: expected degree 2 + 48π²/35 ≈ 15.54.
        let n = 400u64;
        let el = generate_undirected(&Rdg3d::new(n).with_seed(9).with_chunks(1));
        let mean_deg = 2.0 * el.edges.len() as f64 / n as f64;
        assert!(
            (14.0..17.0).contains(&mean_deg),
            "mean degree {mean_deg} (expected ≈15.5)"
        );
    }

    #[test]
    fn connected_mesh() {
        let el = generate_undirected(&Rdg2d::new(400).with_seed(11).with_chunks(4));
        assert!(kagen_graph::components::is_connected(&el));
    }

    #[test]
    fn every_vertex_present() {
        let n = 300u64;
        let el = generate_undirected(&Rdg2d::new(n).with_seed(13).with_chunks(4));
        let deg = el.degrees_undirected();
        assert!(
            deg.iter().all(|&d| d >= 3),
            "torus Delaunay degree must be ≥ 3: {:?}",
            deg.iter()
                .enumerate()
                .filter(|(_, &d)| d < 3)
                .take(5)
                .collect::<Vec<_>>()
        );
    }
}
