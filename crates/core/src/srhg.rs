//! The streaming, request-centric RHG generator sRHG (§7.2).
//!
//! sRHG inverts the neighborhood search of [`crate::rhg::Rhg`]: instead of
//! querying, every point *announces* a request interval
//! `[θ − Δθ(r, ℓ_j), θ + Δθ(r, ℓ_j)]` in each annulus `j` at or above its
//! own, and a sweep over each annulus matches nodes against the requests
//! active at their angle. Only points in lower annuli can be neighbors of
//! a node through a request, so requests propagate upward only.
//!
//! Annuli fall into two groups (§7.2):
//! * **global annuli** — the inner annuli whose widest own-annulus request
//!   exceeds a chunk width `2π/P` (including the `r ≤ R/2` clique); their
//!   points are generated redundantly on every PE (pseudorandomness makes
//!   the copies identical) and their requests are clipped to the local
//!   sector, so the work of high-degree vertices is spread over all PEs;
//! * **streaming annuli** — swept locally. A PE generates the streaming
//!   points of its sector extended by one chunk width on each side, which
//!   covers every request that can reach its nodes (the paper's *final
//!   phase* over the adjacent chunk, done symmetrically).
//!
//! The sweep batches insertion/expiry of requests per angular *cell*
//! (§7.2.1 batch processing). Point generation is shared with `Rhg`
//! through [`crate::rhg::common::RhgInstance`], so for equal seeds the two
//! generators emit the *identical* graph — asserted in tests.

use crate::rhg::common::RhgInstance;
use crate::{Generator, PeGraph};
use kagen_geometry::hyperbolic::PrePoint;

/// Random hyperbolic graph, streaming generator.
#[derive(Clone, Debug)]
pub struct Srhg {
    n: u64,
    avg_deg: f64,
    gamma: f64,
    seed: u64,
    chunks: usize,
}

/// One active request during the sweep.
#[derive(Clone, Copy, Debug)]
struct Request {
    begin: f64,
    end: f64,
    ann: usize,
    p: PrePoint,
}

/// Per-PE generation statistics (see [`Srhg::generate_pe_stats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct SrhgPeStats {
    /// Distinct points generated: replicated globals plus each
    /// activated extended-sector cell counted **once** (a cell whose
    /// requests cannot reach any owned node — beyond the Δθ reach past
    /// the sector — is never generated at all). Recomputations of the
    /// same cell across later annulus sweeps are deliberately *not*
    /// double-counted: this is the instance-level point count the
    /// `abl-mem` table compares against the query generator's held
    /// state; the recomputation cost shows up in wall-clock, not here.
    pub generated_points: u64,
    /// Peak *live* state of the sweep: replicated global points plus the
    /// largest simultaneous active-request window summed over annuli —
    /// the quantity that bounds sRHG's memory footprint (§7.2; Lemmas
    /// 15/17 bound exactly these two terms).
    pub peak_state: u64,
}

impl Srhg {
    /// `n` vertices, target average degree, power-law exponent γ > 2.
    pub fn new(n: u64, avg_deg: f64, gamma: f64) -> Self {
        Srhg {
            n,
            avg_deg,
            gamma,
            seed: 1,
            chunks: 8,
        }
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of logical PEs (angular sectors).
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks >= 1);
        self.chunks = chunks;
        self
    }

    /// Build the shared instance skeleton.
    pub fn instance(&self) -> RhgInstance {
        RhgInstance::new(self.n, self.avg_deg, self.gamma, self.seed)
    }

    /// First streaming annulus: all annuli below it are "global".
    fn first_streaming(inst: &RhgInstance, chunks: usize) -> usize {
        let width = std::f64::consts::TAU / chunks as f64;
        (0..inst.num_annuli())
            .find(|&i| {
                let b = inst.space.bounds[i].max(1e-12);
                2.0 * inst.space.delta_theta(b, b) <= width
            })
            .unwrap_or(inst.num_annuli())
    }
}

/// Split a possibly-wrapping interval into ≤ 2 subintervals of `[0, 2π)`
/// and keep those intersecting `[lo, hi)`.
fn clip_interval(a: f64, b: f64, lo: f64, hi: f64, out: &mut Vec<(f64, f64)>) {
    let tau = std::f64::consts::TAU;
    let push = |x: f64, y: f64, out: &mut Vec<(f64, f64)>| {
        if y >= lo && x < hi {
            out.push((x, y));
        }
    };
    if b - a >= tau {
        push(0.0, tau, out);
    } else if a < 0.0 {
        push(a + tau, tau, out);
        push(0.0, b, out);
    } else if b > tau {
        push(a, tau, out);
        push(0.0, b - tau, out);
    } else {
        push(a, b, out);
    }
}

impl Generator for Srhg {
    fn num_vertices(&self) -> u64 {
        self.n
    }

    fn num_chunks(&self) -> usize {
        self.chunks
    }

    fn directed(&self) -> bool {
        false
    }

    fn generate_pe(&self, pe: usize) -> PeGraph {
        self.generate_pe_stats(pe).0
    }
}

/// One contributor annulus' generation cursor during a single-annulus
/// sweep: its cells over the extended sector, walked in linear angular
/// order and activated just before the sweep can first need them.
struct Contrib {
    /// Contributor annulus index.
    i: usize,
    /// Total cells of the annulus.
    cells: u64,
    /// First cell of the extended-sector sequence.
    first: u64,
    /// Cells in the sequence.
    count: u64,
    /// Linear angular position of the sequence's first cell (may be
    /// negative — the pre-extension of sector 0 sits below zero in
    /// linear coordinates; requests themselves are clipped in wrapped
    /// coordinates).
    pos0: f64,
    /// Cell width.
    w: f64,
    /// Upper bound of this annulus' request half-width into the swept
    /// annulus (Δθ at the annulus' lower radius).
    dt_max: f64,
    /// Next unactivated cell index.
    next: u64,
}

impl Srhg {
    /// The request-centric sweep (§7.2), processed **one annulus at a
    /// time with sliding request insertion** — the native streaming
    /// form. Per swept annulus, contributor cells (its own and every
    /// lower streaming annulus' extended-sector cells, regenerated on
    /// demand — the paper's recomputation trick) are activated just
    /// before the node sweep can first need their requests, and expired
    /// requests are dropped at cell boundaries, so the live state is the
    /// replicated global annuli plus the active-request windows — the
    /// exact two terms of [`SrhgPeStats::peak_state`] — never the PE's
    /// full request multiset.
    ///
    /// `emit` receives every edge incident to a sector-owned vertex,
    /// normalized `(min, max)`, in deterministic sweep order (globals
    /// first, then per swept annulus, per node, neighbors ascending);
    /// as a *set* it equals [`Generator::generate_pe`]'s list (which is
    /// this sweep, sorted). `on_local` is called once per sector-owned
    /// vertex.
    pub(crate) fn sweep(
        &self,
        pe: usize,
        emit: &mut impl FnMut(u64, u64),
        mut on_local: Option<&mut dyn FnMut(&PrePoint)>,
    ) -> SrhgPeStats {
        let inst = self.instance();
        let tau = std::f64::consts::TAU;
        let width = tau / self.chunks as f64;
        let (lo, hi) = (width * pe as f64, width * (pe as f64 + 1.0));
        let cosh_r = inst.space.cosh_r;
        let annuli = inst.num_annuli();
        let first_stream = Self::first_streaming(&inst, self.chunks);

        // ---- Global phase -------------------------------------------------
        // All global-annulus points, regenerated on every PE; pairs are
        // distributed by angular ownership of the smaller-id endpoint.
        let mut globals: Vec<(usize, PrePoint)> = Vec::new();
        for i in 0..first_stream {
            for c in 0..inst.ann_cells[i] {
                for p in inst.cell_points(i, c) {
                    globals.push((i, p));
                }
            }
        }
        let mut generated_points = globals.len() as u64;
        for (_, u) in &globals {
            if u.theta < lo || u.theta >= hi {
                continue;
            }
            if let Some(f) = on_local.as_deref_mut() {
                f(u);
            }
            for (_, w) in &globals {
                if u.id < w.id && u.is_adjacent(w, cosh_r) {
                    emit(u.id, w.id);
                }
            }
        }

        // ---- Sweep each streaming annulus, one at a time ------------------
        let mut peak_active_total = 0u64;
        let mut clipped: Vec<(f64, f64)> = Vec::new();
        let mut greqs: Vec<Request> = Vec::new();
        let mut nbrs: Vec<(u64, u64)> = Vec::new();
        for j in first_stream..annuli {
            if inst.ann_counts[j] == 0 {
                continue;
            }
            let w_j = inst.cell_width(j);
            let b_j = inst.space.bounds[j].max(1e-12);

            // Requests of the replicated globals, clipped to the local
            // sector (this is what spreads the work of hubs over all
            // PEs), inserted by begin as the sweep reaches them.
            greqs.clear();
            for &(ui, ref u) in &globals {
                let dt = inst.space.delta_theta(u.r, b_j);
                clipped.clear();
                clip_interval(u.theta - dt, u.theta + dt, lo, hi, &mut clipped);
                for &(a, b) in &clipped {
                    greqs.push(Request {
                        begin: a,
                        end: b,
                        ann: ui,
                        p: *u,
                    });
                }
            }
            greqs.sort_by(|a, b| a.begin.total_cmp(&b.begin));
            let mut gnext = 0usize;

            // Contributor cursors over the extended sector (one chunk on
            // each side — the symmetric version of the paper's final
            // phase), one per streaming annulus at or below j.
            let mut contribs: Vec<Contrib> = Vec::new();
            for i in first_stream..=j {
                if inst.ann_counts[i] == 0 {
                    continue;
                }
                let w_i = inst.cell_width(i);
                let (first, count) = inst.overlap_range(i, lo - width, hi + width);
                let lo_ext = lo - width;
                let wrapped = lo_ext.rem_euclid(tau);
                let pos0 = lo_ext - (wrapped - first as f64 * w_i);
                contribs.push(Contrib {
                    i,
                    cells: inst.ann_cells[i],
                    first,
                    count,
                    pos0,
                    w: w_i,
                    dt_max: inst.space.delta_theta(inst.space.bounds[i].max(1e-12), b_j),
                    next: 0,
                });
            }

            let mut active: Vec<Request> = Vec::new();
            let mut max_active_j = 0u64;
            let (n_first, n_count) = inst.overlap_range(j, lo, hi);
            let n_pos0 = lo - (lo.rem_euclid(tau) - n_first as f64 * w_j);
            for kn in 0..n_count {
                let cn = (n_first + kn) % inst.ann_cells[j];
                // Batch expiry at the cell boundary (§7.2.1): expired
                // requests are dropped once per cell, not per node.
                let cell_lo = cn as f64 * w_j;
                active.retain(|r| r.end >= cell_lo);
                // Activate every contributor cell the nodes of this cell
                // could need: anything whose earliest possible request
                // start lies at or before the cell's end.
                let cell_hi_linear = n_pos0 + (kn + 1) as f64 * w_j;
                for cb in contribs.iter_mut() {
                    while cb.next < cb.count
                        && cb.pos0 + cb.next as f64 * cb.w - cb.dt_max <= cell_hi_linear
                    {
                        let cc = (cb.first + cb.next) % cb.cells;
                        cb.next += 1;
                        let pts = inst.cell_points(cb.i, cc);
                        if cb.i == j {
                            generated_points += pts.len() as u64;
                        }
                        for p in pts {
                            let dt = inst.space.delta_theta(p.r, b_j);
                            clipped.clear();
                            clip_interval(p.theta - dt, p.theta + dt, lo, hi, &mut clipped);
                            for &(a, b) in &clipped {
                                active.push(Request {
                                    begin: a,
                                    end: b,
                                    ann: cb.i,
                                    p,
                                });
                            }
                        }
                    }
                }
                // Nodes: owned sector only (boundary cells also hold the
                // neighbor sector's points).
                for v in inst
                    .cell_points(j, cn)
                    .iter()
                    .filter(|p| p.theta >= lo && p.theta < hi)
                {
                    if let Some(f) = on_local.as_deref_mut() {
                        f(v);
                    }
                    while gnext < greqs.len() && greqs[gnext].begin <= v.theta {
                        active.push(greqs[gnext]);
                        gnext += 1;
                    }
                    max_active_j = max_active_j.max(active.len() as u64);
                    nbrs.clear();
                    for r in &active {
                        // Exact interval containment (activation may run
                        // ahead of a request's start).
                        if r.begin > v.theta || r.end < v.theta {
                            continue;
                        }
                        let u = &r.p;
                        if u.id == v.id {
                            continue;
                        }
                        // Emission rule: once globally per encounter
                        // direction.
                        let em = if r.ann < j { true } else { u.id < v.id };
                        if em && u.is_adjacent(v, cosh_r) {
                            nbrs.push((u.id.min(v.id), u.id.max(v.id)));
                        }
                    }
                    nbrs.sort_unstable();
                    nbrs.dedup();
                    for &(a, b) in &nbrs {
                        emit(a, b);
                    }
                }
            }
            // Report what an interleaved sweep would hold at once: every
            // annulus' window (Lemma 17's bound).
            peak_active_total += max_active_j;
        }

        SrhgPeStats {
            generated_points,
            peak_state: globals.len() as u64 + peak_active_total,
        }
    }

    /// Like [`Generator::generate_pe`], additionally returning
    /// [`SrhgPeStats`] — the sweep's materialized form: collect the
    /// streamed edges, sort, dedup. `peak_state` reports what the
    /// streaming run holds, which is what the `abl-mem` experiment
    /// compares against the query-centric
    /// [`crate::rhg::Rhg::generate_pe_stats`] footprint.
    pub fn generate_pe_stats(&self, pe: usize) -> (PeGraph, SrhgPeStats) {
        let mut out = PeGraph {
            pe,
            ..PeGraph::default()
        };
        let mut edges: Vec<(u64, u64)> = Vec::new();
        let mut locals: Vec<PrePoint> = Vec::new();
        let stats = self.sweep(
            pe,
            &mut |u, v| edges.push((u, v)),
            Some(&mut |p| locals.push(*p)),
        );
        locals.sort_by_key(|p| p.id);
        locals.dedup_by_key(|p| p.id);
        for v in &locals {
            out.coords2.push((v.id, [v.r, v.theta]));
        }
        out.vertex_begin = locals.first().map_or(0, |p| p.id);
        out.vertex_end = locals.last().map_or(0, |p| p.id + 1);
        edges.sort_unstable();
        edges.dedup();
        out.edges = edges;
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_undirected;
    use crate::rhg::Rhg;

    #[test]
    fn matches_query_centric_generator() {
        // Same instance skeleton + same adjacency rule ⇒ identical graphs.
        for &(n, deg, gamma, chunks) in &[
            (500u64, 8.0, 2.8, 4usize),
            (900, 6.0, 3.0, 8),
            (700, 12.0, 2.3, 5),
        ] {
            let srhg =
                generate_undirected(&Srhg::new(n, deg, gamma).with_seed(11).with_chunks(chunks));
            let rhg =
                generate_undirected(&Rhg::new(n, deg, gamma).with_seed(11).with_chunks(chunks));
            assert_eq!(
                srhg.edges, rhg.edges,
                "sRHG vs RHG mismatch at n={n}, γ={gamma}"
            );
        }
    }

    #[test]
    fn chunk_invariance() {
        let a = generate_undirected(&Srhg::new(800, 8.0, 2.9).with_seed(3).with_chunks(1));
        let b = generate_undirected(&Srhg::new(800, 8.0, 2.9).with_seed(3).with_chunks(8));
        let c = generate_undirected(&Srhg::new(800, 8.0, 2.9).with_seed(3).with_chunks(32));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn no_duplicate_edges_within_pe() {
        let gen = Srhg::new(600, 10.0, 2.5).with_seed(7).with_chunks(4);
        for pe in 0..4 {
            let part = gen.generate_pe(pe);
            let mut e = part.edges.clone();
            e.dedup();
            assert_eq!(e.len(), part.edges.len(), "PE {pe} emitted duplicates");
        }
    }

    #[test]
    fn clip_interval_cases() {
        let tau = std::f64::consts::TAU;
        let mut out = Vec::new();
        // Plain interval inside range.
        clip_interval(1.0, 2.0, 0.0, tau, &mut out);
        assert_eq!(out, vec![(1.0, 2.0)]);
        // Wrapping below zero.
        out.clear();
        clip_interval(-0.5, 0.5, 0.0, tau, &mut out);
        assert_eq!(out.len(), 2);
        // Wider than the circle.
        out.clear();
        clip_interval(-1.0, tau, 0.0, tau, &mut out);
        assert_eq!(out, vec![(0.0, tau)]);
        // Clipped away.
        out.clear();
        clip_interval(1.0, 2.0, 3.0, 4.0, &mut out);
        assert!(out.is_empty());
    }
}
