//! Cross-crate integration: streaming generation piped straight into the
//! IO writers (the §9 "generate graphs too large for memory" workflow),
//! plus CLI-level format round trips.

use kagen_repro::core::prelude::*;
use kagen_repro::core::streaming::StreamingGenerator;
use kagen_repro::graph::io::{read_binary, read_edge_list, write_edge_list};
use kagen_repro::graph::EdgeList;
use std::io::Write;

#[test]
fn stream_to_text_writer_without_materializing() {
    // Generate → format → parse back, never holding a Vec of edges for
    // the generation side.
    let gen = GnmDirected::new(500, 8000).with_seed(7).with_chunks(4);
    let mut text = Vec::new();
    for pe in 0..4 {
        let mut w = std::io::BufWriter::new(&mut text);
        gen.stream_pe(pe, &mut |u, v| {
            writeln!(w, "{u} {v}").unwrap();
        });
        w.flush().unwrap();
    }
    let parsed = read_edge_list(std::str::from_utf8(&text).unwrap(), Some(500)).unwrap();
    let mut direct = generate_directed(&gen);
    let mut sorted = parsed.clone();
    sorted.sort_dedup();
    direct.sort_dedup();
    assert_eq!(sorted, direct);
}

#[test]
fn stream_to_binary_roundtrip() {
    let gen = GnmUndirected::new(300, 2000).with_seed(9).with_chunks(3);
    let mut bytes = Vec::new();
    for pe in 0..3 {
        gen.stream_pe(pe, &mut |u, v| {
            bytes.extend_from_slice(&u.to_le_bytes());
            bytes.extend_from_slice(&v.to_le_bytes());
        });
    }
    let mut parsed = read_binary(&bytes, 300);
    parsed.canonicalize();
    let direct = generate_undirected(&gen);
    assert_eq!(parsed, direct);
}

#[test]
fn streamed_counts_match_generated() {
    let gens: Vec<Box<dyn Fn(usize) -> u64>> = vec![
        {
            let g = GnpDirected::new(400, 0.01).with_seed(1).with_chunks(8);
            Box::new(move |pe| {
                assert_eq!(g.count_pe(pe) as usize, g.generate_pe(pe).edges.len());
                g.count_pe(pe)
            })
        },
        {
            let g = Rmat::new(10, 5000).with_seed(2).with_chunks(8);
            Box::new(move |pe| {
                assert_eq!(g.count_pe(pe) as usize, g.generate_pe(pe).edges.len());
                g.count_pe(pe)
            })
        },
        {
            let g = StochasticBlockModel::planted(400, 4, 0.05, 0.005)
                .with_seed(3)
                .with_chunks(8);
            Box::new(move |pe| {
                assert_eq!(g.count_pe(pe) as usize, g.generate_pe(pe).edges.len());
                g.count_pe(pe)
            })
        },
    ];
    for g in &gens {
        let total: u64 = (0..8).map(g).sum();
        assert!(total > 0);
    }
}

#[test]
fn writers_produce_consistent_formats() {
    let gen = Rgg2d::new(200, 0.1).with_seed(4).with_chunks(4);
    let el = generate_undirected(&gen);
    // edge-list text
    let mut text = Vec::new();
    write_edge_list(&mut text, &el).unwrap();
    let parsed = read_edge_list(std::str::from_utf8(&text).unwrap(), Some(el.n)).unwrap();
    assert_eq!(parsed.edges, el.edges);
    // metis header line consistency
    let mut metis = Vec::new();
    kagen_repro::graph::io::write_metis(&mut metis, &el).unwrap();
    let header = String::from_utf8(metis)
        .unwrap()
        .lines()
        .next()
        .unwrap()
        .to_string();
    assert_eq!(header, format!("{} {}", el.n, el.edges.len()));
}

#[test]
fn merged_streams_equal_merged_pegraphs() {
    let gen = BarabasiAlbert::new(400, 3).with_seed(5).with_chunks(8);
    let mut streamed: Vec<(u64, u64)> = Vec::new();
    for pe in 0..8 {
        gen.stream_pe(pe, &mut |u, v| streamed.push((u, v)));
    }
    streamed.sort_unstable();
    let mut via_pegraph = generate_directed(&gen);
    via_pegraph.edges.sort_unstable();
    assert_eq!(EdgeList::new(400, streamed), via_pegraph);
}
