//! Binomial sampling: BINV inversion for small means, BTRS (Hörmann's
//! transformed rejection with squeeze) for large ones.
//!
//! The G(n,p) generators draw one binomial per chunk over universes as
//! large as `n(n−1) ≈ 2^127`, so `n` is `u128`; the count itself always
//! fits `u64` in every caller (edge counts). Exactness of the *support*
//! matters more than raw speed: the splitting recursions rely on
//! `0 ≤ X ≤ n`.

use kagen_util::Rng64;

/// Stirling's series tail `ln k! − [(k+½)ln k − k + ½ln 2π]`, the
/// correction BTRS needs for its acceptance bound (Hörmann 1993).
fn stirling_tail(k: f64) -> f64 {
    // Exact-ish table for the first ten values, series beyond.
    const TABLE: [f64; 10] = [
        0.08106146679532726,
        0.04134069595540929,
        0.02767792568499834,
        0.02079067210376509,
        0.01664469118982119,
        0.01387612882307075,
        0.01189670994589177,
        0.01041126526197209,
        0.009255462182712733,
        0.00833056343336287,
    ];
    if k < 10.0 {
        return TABLE[k as usize];
    }
    let kp1sq = (k + 1.0) * (k + 1.0);
    (1.0 / 12.0 - (1.0 / 360.0 - 1.0 / 1260.0 / kp1sq) / kp1sq) / (k + 1.0)
}

/// BINV: sequential inversion of the CDF; expected O(np) work.
/// Requires `np` modest (we call it for `np < 10`) and `p ≤ 0.5`.
fn binv<R: Rng64 + ?Sized>(rng: &mut R, n: f64, p: f64) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    let a = (n + 1.0) * s;
    let r0 = (n * q.ln()).exp(); // q^n, stable for huge n
    loop {
        let mut r = r0;
        let mut u = rng.next_f64();
        let mut x = 0u64;
        loop {
            if u <= r {
                return x;
            }
            u -= r;
            x += 1;
            if x as f64 > n {
                break; // numerical tail exhausted: redraw
            }
            r *= a / (x as f64) - s;
        }
    }
}

/// BTRS: Hörmann's transformed rejection sampler; O(1) expected.
/// Requires `np ≥ 10` and `p ≤ 0.5`.
fn btrs<R: Rng64 + ?Sized>(rng: &mut R, n: f64, p: f64) -> u64 {
    let q = 1.0 - p;
    let spq = (n * p * q).sqrt();
    let b = 1.15 + 2.53 * spq;
    let a = -0.0873 + 0.0248 * b + 0.01 * p;
    let c = n * p + 0.5;
    let v_r = 0.92 - 4.2 / b;
    let r = p / q;
    let alpha = (2.83 + 5.1 / b) * spq;
    let m = ((n + 1.0) * p).floor();
    loop {
        let u = rng.next_f64() - 0.5;
        let v = rng.next_f64_open();
        let us = 0.5 - u.abs();
        let k = ((2.0 * a / us + b) * u + c).floor();
        if k < 0.0 || k > n {
            continue;
        }
        // Squeeze region: the box is tight here, accept immediately.
        if us >= 0.07 && v <= v_r {
            return k as u64;
        }
        // Transformed-rejection acceptance test against log f(k).
        let lhs = (v * alpha / (a / (us * us) + b)).ln();
        let rhs = (m + 0.5) * ((m + 1.0) / (r * (n - m + 1.0))).ln()
            + (n + 1.0) * ((n - m + 1.0) / (n - k + 1.0)).ln()
            + (k + 0.5) * (r * (n - k + 1.0) / (k + 1.0)).ln()
            + stirling_tail(m)
            + stirling_tail(n - m)
            - stirling_tail(k)
            - stirling_tail(n - k);
        if lhs <= rhs {
            return k as u64;
        }
    }
}

/// Draw `X ~ Binomial(n, p)`.
///
/// Always satisfies `X ≤ n`; for the callers' parameter ranges the result
/// fits `u64` (counts are bounded by edge totals). Panics in debug builds
/// if a flipped draw would exceed `u64::MAX`.
pub fn binomial<R: Rng64 + ?Sized>(rng: &mut R, n: u128, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        debug_assert!(n <= u64::MAX as u128, "binomial count overflows u64");
        return n.min(u64::MAX as u128) as u64;
    }
    // Sample with the smaller tail probability, flip back afterwards.
    let flipped = p > 0.5;
    let ps = if flipped { 1.0 - p } else { p };
    let n_f = n as f64;
    let k = if n_f * ps < 10.0 {
        binv(rng, n_f, ps)
    } else {
        btrs(rng, n_f, ps)
    };
    let k = (k as u128).min(n); // exact support, guarding f64 edge rounding
    let x = if flipped { n - k } else { k };
    debug_assert!(x <= u64::MAX as u128, "binomial count overflows u64");
    x.min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use kagen_util::Mt64;

    #[test]
    fn support_and_degenerate_cases() {
        let mut rng = Mt64::new(1);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(binomial(&mut rng, 100, 1.0), 100);
        for n in [1u128, 5, 50, 1000, 1 << 40] {
            for p in [1e-9, 0.01, 0.3, 0.5, 0.7, 0.999] {
                let x = binomial(&mut rng, n, p);
                assert!((x as u128) <= n, "n={n} p={p} x={x}");
            }
        }
    }

    fn mean_sd(n: u64, p: f64, reps: usize, seed: u64) -> (f64, f64) {
        let mut rng = Mt64::new(seed);
        let xs: Vec<f64> = (0..reps)
            .map(|_| binomial(&mut rng, n as u128, p) as f64)
            .collect();
        let mean = xs.iter().sum::<f64>() / reps as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / reps as f64;
        (mean, var.sqrt())
    }

    #[test]
    fn binv_regime_moments() {
        // np = 5: BINV path. Mean within 5 standard errors.
        let (n, p, reps) = (500u64, 0.01, 20_000usize);
        let (mean, _) = mean_sd(n, p, reps, 2);
        let expect = n as f64 * p;
        let se = (n as f64 * p * (1.0 - p) / reps as f64).sqrt();
        assert!((mean - expect).abs() < 5.0 * se, "mean {mean} vs {expect}");
    }

    #[test]
    fn btrs_regime_moments() {
        // np = 30000: BTRS path. Mean and spread must match.
        let (n, p, reps) = (100_000u64, 0.3, 4_000usize);
        let (mean, sd) = mean_sd(n, p, reps, 3);
        let expect = n as f64 * p;
        let true_sd = (n as f64 * p * (1.0 - p)).sqrt();
        let se = true_sd / (reps as f64).sqrt();
        assert!((mean - expect).abs() < 5.0 * se, "mean {mean} vs {expect}");
        assert!((sd - true_sd).abs() / true_sd < 0.1, "sd {sd} vs {true_sd}");
    }

    #[test]
    fn flipped_p_regime() {
        // p > 0.5 flips; check the mean on the flipped branch.
        let (mean, _) = mean_sd(10_000, 0.9, 4_000, 4);
        let expect = 9_000.0;
        let se = (10_000.0f64 * 0.9 * 0.1 / 4_000.0).sqrt();
        assert!((mean - expect).abs() < 5.0 * se, "mean {mean}");
    }

    #[test]
    fn huge_universe_small_p() {
        // The G(n,p) regime for n >> 2^32: universe 2^80, p ~ 2^-60.
        let mut rng = Mt64::new(5);
        let n = 1u128 << 80;
        let p = 1.0 / (1u64 << 60) as f64; // mean ~ 2^20
        let x = binomial(&mut rng, n, p);
        let expect = (n as f64) * p;
        let sd = expect.sqrt();
        assert!(
            (x as f64 - expect).abs() < 8.0 * sd,
            "x={x} expect {expect}"
        );
    }

    #[test]
    fn chi_square_small_n() {
        // Exact-distribution check on Binomial(8, 0.3) via chi-square.
        let n = 8u64;
        let p = 0.3f64;
        let reps = 50_000u64;
        let mut rng = Mt64::new(6);
        let mut obs = [0u64; 9];
        for _ in 0..reps {
            obs[binomial(&mut rng, n as u128, p) as usize] += 1;
        }
        // pmf by recurrence.
        let mut pmf = [0.0f64; 9];
        pmf[0] = (1.0 - p).powi(8);
        for k in 1..=8usize {
            pmf[k] = pmf[k - 1] * ((n as f64 - k as f64 + 1.0) / k as f64) * (p / (1.0 - p));
        }
        let mut chi2 = 0.0;
        for k in 0..=8 {
            let e = pmf[k] * reps as f64;
            if e > 1.0 {
                chi2 += (obs[k] as f64 - e) * (obs[k] as f64 - e) / e;
            }
        }
        // χ²_{0.999, 8 dof} ≈ 26.1 — generous margin.
        assert!(chi2 < 30.0, "chi2 {chi2}");
    }
}
