//! Running logical PEs on a thread pool.

use std::ops::Range;
use std::time::{Duration, Instant};

/// Build a rayon pool with a fixed thread count (0 = rayon default).
pub fn thread_pool(threads: usize) -> rayon::ThreadPool {
    let mut builder = rayon::ThreadPoolBuilder::new();
    if threads > 0 {
        builder = builder.num_threads(threads);
    }
    builder.build().expect("failed to build thread pool")
}

/// Execute `f(pe)` for every logical PE `0..num_pes` on `threads` worker
/// threads and collect the results in PE order.
///
/// The results are identical for every `threads` value — that is the
/// communication-free property, and the integration tests assert it.
pub fn run_chunks<T: Send>(
    num_pes: usize,
    threads: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let pool = thread_pool(threads);
    pool.install(|| {
        use rayon::prelude::*;
        (0..num_pes).into_par_iter().map(&f).collect()
    })
}

/// Split `0..num_items` into at most `parts` contiguous, balanced,
/// non-empty ranges — the rank plan of a distributed run: rank `i` of a
/// `parts`-worker job owns the `i`-th returned range. Uses the same
/// rounding as the generators' vertex ranges (`i * num_items / parts`),
/// so item counts differ by at most one and the concatenation of all
/// ranges is exactly `0..num_items`.
///
/// With `parts > num_items`, only `num_items` (single-item) ranges are
/// returned — a rank with no work is never planned.
pub fn split_ranges(num_items: usize, parts: usize) -> Vec<Range<usize>> {
    if num_items == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(num_items);
    (0..parts)
        .map(|i| {
            let begin = i * num_items / parts;
            let end = (i + 1) * num_items / parts;
            begin..end
        })
        .collect()
}

/// Execute one task per *rank range* of the [`split_ranges`] plan —
/// `f(rank, range)` runs the whole range on a single worker, exactly as
/// one process of a `workers`-wide cluster run would — and collect the
/// results in rank order. This is the in-process twin of the
/// `kagen_cluster` multi-process launcher: same plan, threads instead of
/// processes.
pub fn run_rank_ranges<T: Send>(
    num_pes: usize,
    workers: usize,
    f: impl Fn(usize, Range<usize>) -> T + Sync,
) -> Vec<T> {
    let plan = split_ranges(num_pes, workers);
    let pool = thread_pool(plan.len());
    pool.install(|| {
        use rayon::prelude::*;
        plan.into_par_iter()
            .enumerate()
            .map(|(rank, range)| f(rank, range))
            .collect()
    })
}

/// Like [`run_chunks`] but also measures each PE's busy time.
pub fn run_chunks_timed<T: Send>(
    num_pes: usize,
    threads: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<(T, Duration)> {
    let pool = thread_pool(threads);
    pool.install(|| {
        use rayon::prelude::*;
        (0..num_pes)
            .into_par_iter()
            .map(|pe| {
                let start = Instant::now();
                let out = f(pe);
                (out, start.elapsed())
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_pe_order() {
        let out = run_chunks(16, 4, |pe| pe * 10);
        assert_eq!(out, (0..16).map(|pe| pe * 10).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let f = |pe: usize| (pe as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let a = run_chunks(32, 1, f);
        let b = run_chunks(32, 8, f);
        assert_eq!(a, b);
    }

    #[test]
    fn timing_is_recorded() {
        let out = run_chunks_timed(4, 2, |pe| {
            // Busy-wait a tiny deterministic amount.
            let mut acc = pe as u64;
            for i in 0..50_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        });
        assert_eq!(out.len(), 4);
        for (_, d) in &out {
            assert!(*d > Duration::ZERO);
        }
    }

    #[test]
    fn zero_pes() {
        let out: Vec<u32> = run_chunks(0, 2, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn split_ranges_partitions_exactly() {
        for num in [0usize, 1, 5, 64, 97] {
            for parts in [1usize, 2, 3, 7, 64, 100] {
                let plan = split_ranges(num, parts);
                // Concatenation is exactly 0..num, in order, no gaps.
                let mut next = 0;
                for r in &plan {
                    assert_eq!(r.start, next, "gap in {num}/{parts}");
                    assert!(r.end > r.start, "empty range in {num}/{parts}");
                    next = r.end;
                }
                assert_eq!(next, num);
                if num > 0 {
                    assert_eq!(plan.len(), parts.min(num));
                    // Balanced: sizes differ by at most one.
                    let sizes: Vec<usize> = plan.iter().map(|r| r.len()).collect();
                    let min = sizes.iter().min().unwrap();
                    let max = sizes.iter().max().unwrap();
                    assert!(max - min <= 1, "imbalanced: {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn rank_ranges_cover_all_pes_in_order() {
        let out = run_rank_ranges(64, 5, |rank, range| (rank, range));
        assert_eq!(out.len(), 5);
        let mut next = 0;
        for (i, (rank, range)) in out.into_iter().enumerate() {
            assert_eq!(rank, i);
            assert_eq!(range.start, next);
            next = range.end;
        }
        assert_eq!(next, 64);
    }

    #[test]
    fn rank_range_worker_count_does_not_change_per_pe_results() {
        // The communication-free property at rank granularity: each rank
        // computes a pure function of its PEs, so any worker count yields
        // the same concatenated per-PE outputs.
        let per_pe = |pe: usize| (pe as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let flat = |workers: usize| -> Vec<u64> {
            run_rank_ranges(32, workers, |_, range| {
                range.map(per_pe).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        };
        let expect: Vec<u64> = (0..32).map(per_pe).collect();
        for workers in [1, 2, 5, 32, 40] {
            assert_eq!(flat(workers), expect, "workers={workers}");
        }
    }
}
