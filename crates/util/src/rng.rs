//! The [`Rng64`] trait: the single PRNG interface used across the library.
//!
//! Implementors only provide [`Rng64::next_u64`]; everything else (floats,
//! unbiased bounded integers, ranges) is derived here so all generators and
//! distributions are PRNG-agnostic.

/// The canonical word-to-open-uniform mapping behind
/// [`Rng64::next_f64_open`]: top 53 bits, centered into `(0, 1)`.
/// Shared so block kernels that buffer raw words (e.g. the geometric
/// skip conversion) apply the *same* mapping by construction instead of
/// duplicating the formula.
#[inline(always)]
pub fn f64_open_of_word(word: u64) -> f64 {
    ((word >> 11) as f64 + 0.5) * (1.0 / 9_007_199_254_740_992.0)
}

/// A source of uniform 64-bit words plus derived helpers.
pub trait Rng64 {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline(always)]
    fn next_f64(&mut self) -> f64 {
        // Top 53 bits scaled by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Uniform `f64` in the open interval `(0, 1)` — safe for `ln()`.
    #[inline(always)]
    fn next_f64_open(&mut self) -> f64 {
        f64_open_of_word(self.next_u64())
    }

    /// Unbiased uniform integer in `[0, bound)` (Lemire's method with
    /// rejection). `bound` must be nonzero.
    #[inline]
    fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Unbiased uniform integer in `[0, bound)` for 128-bit bounds.
    /// Used for edge-index universes larger than 2^64 (n > 2^32 vertices).
    #[inline]
    fn next_below_u128(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        if bound <= u64::MAX as u128 {
            return self.next_below(bound as u64) as u128;
        }
        // Rejection from the smallest power-of-two envelope.
        let bits = 128 - bound.leading_zeros();
        let mask = if bits == 128 {
            u128::MAX
        } else {
            (1u128 << bits) - 1
        };
        loop {
            let hi = self.next_u64() as u128;
            let lo = self.next_u64() as u128;
            let x = ((hi << 64) | lo) & mask;
            if x < bound {
                return x;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next_below(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    fn next_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Collect `n` words (testing helper).
    fn take_vec(&mut self, n: usize) -> Vec<u64>
    where
        Self: Sized,
    {
        (0..n).map(|_| self.next_u64()).collect()
    }
}

impl<R: Rng64 + ?Sized> Rng64 for &mut R {
    #[inline(always)]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Words buffered per [`BlockRng`] refill.
pub const RNG_BLOCK: usize = 256;

/// Raw PRNG words drawn through [`BlockRng`] (counted once per
/// [`RNG_BLOCK`]-word refill, in the already-`#[cold]` slow path).
static RNG_WORDS: kagen_obs::Counter = kagen_obs::Counter::new("rng.words");

/// A block-buffering adapter over any [`Rng64`]: raw words are drawn
/// [`RNG_BLOCK`] at a time in one tight loop and served from a local
/// buffer.
///
/// Because the words are consumed in the identical order the inner PRNG
/// would produce them, **every** derived draw (`next_f64`,
/// `next_f64_open`, `next_below`, …) is bit-identical to running the
/// same algorithm against the inner PRNG directly — buffering changes
/// scheduling, never values. This is the "block treatment" of the
/// sampling hot paths: rejection-style consumers (Vitter's Method D
/// `vprime` draws, Lemire rejection) pull from the buffer instead of
/// paying a per-draw PRNG call on the serial dependency chain.
///
/// The buffer may run ahead of what the consumer uses: when the adapter
/// is dropped, up to `RNG_BLOCK − 1` words of the inner PRNG have been
/// consumed beyond the last served draw. Only wrap PRNGs that are
/// dedicated to the wrapped computation (true of every per-leaf-seeded
/// PRNG in this workspace).
pub struct BlockRng<'a, R: Rng64 + ?Sized> {
    inner: &'a mut R,
    buf: [u64; RNG_BLOCK],
    pos: usize,
}

// Manual impl: `R` need not be `Debug` and the buffered words are
// noise — the refill cursor is the only stable field.
impl<R: Rng64 + ?Sized> std::fmt::Debug for BlockRng<'_, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockRng")
            .field("pos", &self.pos)
            .finish_non_exhaustive()
    }
}

impl<'a, R: Rng64 + ?Sized> BlockRng<'a, R> {
    /// Wrap `inner`; no words are drawn until the first request.
    pub fn new(inner: &'a mut R) -> Self {
        BlockRng {
            inner,
            buf: [0u64; RNG_BLOCK],
            pos: RNG_BLOCK,
        }
    }

    #[cold]
    fn refill(&mut self) {
        RNG_WORDS.add(RNG_BLOCK as u64);
        for w in self.buf.iter_mut() {
            *w = self.inner.next_u64();
        }
        self.pos = 0;
    }
}

impl<R: Rng64 + ?Sized> Rng64 for BlockRng<'_, R> {
    #[inline(always)]
    fn next_u64(&mut self) -> u64 {
        if self.pos >= RNG_BLOCK {
            self.refill();
        }
        let x = self.buf[self.pos];
        self.pos += 1;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splitmix::SplitMix64;

    #[test]
    fn below_bounds_hold() {
        let mut rng = SplitMix64::new(1);
        for bound in [1u64, 2, 3, 7, 100, 1 << 33, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_u128_bounds_hold() {
        let mut rng = SplitMix64::new(2);
        for bound in [1u128, 5, 1 << 70, (1u128 << 100) + 12345] {
            for _ in 0..200 {
                assert!(rng.next_below_u128(bound) < bound);
            }
        }
    }

    #[test]
    fn open_interval_never_zero() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64_open();
            assert!(x > 0.0 && x < 1.0);
        }
    }

    #[test]
    fn range_endpoints() {
        let mut rng = SplitMix64::new(4);
        let mut saw_lo = false;
        for _ in 0..1000 {
            let v = rng.next_range(10, 12);
            assert!((10..12).contains(&v));
            saw_lo |= v == 10;
        }
        assert!(saw_lo);
    }

    #[test]
    fn block_rng_preserves_word_order() {
        // Any draw sequence through BlockRng must be bit-identical to
        // the same sequence against the raw PRNG — across refill
        // boundaries and mixed draw kinds.
        let mut raw = SplitMix64::new(11);
        let mut inner = SplitMix64::new(11);
        let mut blocked = BlockRng::new(&mut inner);
        for i in 0..(3 * RNG_BLOCK) {
            match i % 4 {
                0 => assert_eq!(raw.next_u64(), blocked.next_u64()),
                1 => assert_eq!(raw.next_f64(), blocked.next_f64()),
                2 => assert_eq!(raw.next_f64_open(), blocked.next_f64_open()),
                _ => assert_eq!(raw.next_below(12345), blocked.next_below(12345)),
            }
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SplitMix64::new(5);
        assert!(!rng.next_bool(0.0));
        assert!(rng.next_bool(1.0 + 1e-9));
    }
}
