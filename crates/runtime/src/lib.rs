//! # kagen-runtime
//!
//! The processing-element (PE) execution model.
//!
//! The paper runs one MPI rank per core on SuperMUC. Because the KaGen
//! generators are *communication-free*, a PE's output is a pure function of
//! `(seed, params, pe id)` — so logical PEs can be executed as tasks on a
//! shared-memory thread pool and the code path is identical to what MPI
//! ranks would run (see DESIGN.md, substitutions).
//!
//! * [`pe`] — run `k` logical PEs on `t` threads, optionally timing each;
//!   [`split_ranges`] is the rank plan shared with the multi-process
//!   `kagen_cluster` launcher, and [`run_rank_ranges`] executes it
//!   in-process (one task per rank range instead of per PE).
//! * [`scaling`] — weak/strong scaling harness: the *emulated parallel
//!   time* of a P-PE run is `max_i t_i`, which equals the wall time on a
//!   machine with ≥ P cores (plus startup) for communication-free programs.
//! * [`comm`] — a channel-based all-to-all communicator with volume
//!   accounting, used **only** by the communicating Holtgrewe baseline
//!   (the point of the paper is to not need this).

pub mod comm;
pub mod pe;
pub mod scaling;

pub use comm::Communicator;
pub use pe::{run_chunks, run_chunks_timed, run_rank_ranges, split_ranges, thread_pool};
pub use scaling::{PeTiming, ScalingPoint};
