//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! API subset used by this workspace's benches (the build environment has
//! no access to crates.io).
//!
//! It runs each benchmark closure in a short calibrated loop and prints a
//! `name ... <ns>/iter` line — enough to compare hot paths locally while
//! keeping the real criterion source compatibility (swap the path
//! dependency for the registry crate to get full statistics).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per benchmark (kept small: these run in CI too).
const TARGET: Duration = Duration::from_millis(200);

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Run `f` repeatedly and record its per-iteration time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up + calibration: time a single iteration.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.last_ns = t1.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { last_ns: 0.0 };
    f(&mut b);
    println!("{name:<40} {:>12.1} ns/iter", b.last_ns);
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// New benchmark driver.
    pub fn new() -> Self {
        Criterion
    }

    /// Benchmark a single function.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for compatibility; the stand-in ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark a function within the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Mirror of `criterion_group!`: defines a function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Mirror of `criterion_main!`: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::new();
        c.bench_function("noop", |b| b.iter(|| 1u64 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .bench_function("add", |b| b.iter(|| black_box(2u64) * 3));
        g.finish();
    }
}
