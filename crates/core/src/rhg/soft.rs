//! The soft (binomial / probabilistic) random hyperbolic graph — the §9
//! future-work model of Krioukov et al. [9].
//!
//! Instead of the hard threshold `d(p,q) < R`, every pair connects
//! independently with the Fermi–Dirac probability
//!
//! ```text
//! p_T(d) = 1 / (1 + exp((d − R) / (2T)))
//! ```
//!
//! with temperature `T > 0`; `T → 0` recovers the threshold model (§7).
//!
//! **Communication-free construction.** The vertex set is the *identical*
//! skeleton the threshold generators use ([`RhgInstance`]), so points are
//! recomputable by any PE. The per-pair coin is pseudorandom in the pair
//! identity — `mix2`-style hashing of `(seed, min_id, max_id)` — so the
//! two PEs owning the endpoints decide the pair identically without
//! messages, exactly like the Sanders–Schulz recomputation trick for
//! Barabási–Albert edges (§3.5.1) transplanted to pairwise coins.
//!
//! **Candidate truncation.** Pairs farther than
//! `R_eff = R + 2T · ln(1/ε − 1)` have connection probability `< ε` and
//! are never enumerated; the neighborhood queries simply use `R_eff` in
//! the Δθ bound of Eq. 8. With the default `ε = 10⁻⁹`, the expected
//! number of missed edges over *all* `Θ(n²)` pairs is below `n²ε` — for
//! the instance sizes this library targets, ≪ 1 edge. The truncation is
//! a documented approximation of the ideal model; its error bound is
//! checked statistically in the tests.

use super::common::{stream_pe_queries, CellCache, RhgInstance};
use crate::{Generator, PeGraph};
use kagen_geometry::hyperbolic::PrePoint;
use kagen_geometry::FrontierStats;
use kagen_util::seed::stream;
use kagen_util::{derive_seed, splitmix::mix64};

/// Soft random hyperbolic graph generator.
#[derive(Clone, Debug)]
pub struct SoftRhg {
    n: u64,
    avg_deg: f64,
    gamma: f64,
    temperature: f64,
    eps: f64,
    seed: u64,
    chunks: usize,
}

impl SoftRhg {
    /// `n` vertices, degree parameter `avg_deg` (calibrated for the `T→0`
    /// limit), power-law exponent `gamma` (> 2), temperature
    /// `temperature ∈ (0, 1)`.
    pub fn new(n: u64, avg_deg: f64, gamma: f64, temperature: f64) -> Self {
        assert!(
            temperature > 0.0 && temperature < 1.0,
            "temperature must be in (0,1); use Rhg for the threshold model"
        );
        SoftRhg {
            n,
            avg_deg,
            gamma,
            temperature,
            eps: 1e-9,
            seed: 1,
            chunks: 8,
        }
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of logical PEs (angular sectors).
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks >= 1);
        self.chunks = chunks;
        self
    }

    /// Set the truncation threshold ε (pairs with `p_T(d) < ε` are never
    /// enumerated).
    pub fn with_truncation(mut self, eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 0.5);
        self.eps = eps;
        self
    }

    /// Build the shared instance skeleton (identical to the threshold
    /// generators' for equal parameters and seed).
    pub fn instance(&self) -> RhgInstance {
        RhgInstance::new(self.n, self.avg_deg, self.gamma, self.seed)
    }

    /// The enlarged query distance `R_eff`.
    pub fn effective_radius(&self, inst: &RhgInstance) -> f64 {
        inst.space.r_max + 2.0 * self.temperature * (1.0 / self.eps - 1.0).ln()
    }

    /// Fermi–Dirac connection probability for hyperbolic distance `d`.
    pub fn connection_prob(&self, inst: &RhgInstance, d: f64) -> f64 {
        1.0 / (1.0 + ((d - inst.space.r_max) / (2.0 * self.temperature)).exp())
    }

    /// The pair's uniform coin in `[0,1)`: pseudorandom in `(seed, pair)`,
    /// identical on every PE that evaluates it.
    #[inline]
    fn pair_coin(&self, a: u64, b: u64) -> f64 {
        let (lo, hi) = (a.min(b), a.max(b));
        let h = mix64(derive_seed(self.seed, &[stream::HYP, 0x736f6674, lo, hi]));
        // 53-bit mantissa → uniform in [0,1).
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Hyperbolic distance between two pre-computed points (via the Eq. 9
    /// terms, no trigonometry beyond the stored sin/cos).
    #[inline]
    fn distance(u: &PrePoint, v: &PrePoint) -> f64 {
        let cos_dtheta = u.cos_theta * v.cos_theta + u.sin_theta * v.sin_theta;
        let cosh_d = (u.coth_r * v.coth_r - cos_dtheta) / (u.inv_sinh_r * v.inv_sinh_r);
        cosh_d.max(1.0).acosh()
    }

    /// Decide the pair `(u, v)`: enumerate-time test used by both owning
    /// PEs.
    #[inline]
    fn pair_connected(&self, inst: &RhgInstance, u: &PrePoint, v: &PrePoint) -> bool {
        let d = Self::distance(u, v);
        self.pair_coin(u.id, v.id) < self.connection_prob(inst, d)
    }

    /// All soft neighbors of `v` within the truncated query range.
    fn query_neighbors(
        &self,
        inst: &RhgInstance,
        cache: &mut CellCache,
        r_eff: f64,
        cosh_r_eff: f64,
        v: &PrePoint,
        emit: &mut impl FnMut(&PrePoint),
    ) {
        for j in 0..inst.num_annuli() {
            if inst.ann_counts[j] == 0 {
                continue;
            }
            let b = inst.space.bounds[j].max(1e-12);
            let dt = inst.space.delta_theta_at(v.r, b, r_eff, cosh_r_eff);
            let mut cells = Vec::new();
            inst.cells_overlapping(j, v.theta - dt, v.theta + dt, &mut |c| cells.push(c));
            for c in cells {
                for u in cache.get(inst, j, c) {
                    if u.id != v.id && self.pair_connected(inst, u, v) {
                        emit(u);
                    }
                }
            }
        }
    }

    /// The native streaming pass: the truncated-radius queries of
    /// [`Generator::generate_pe`] through the evicting frontier cache of
    /// [`stream_pe_queries`] — identical output (order included), memory
    /// bounded by the active query window.
    pub(crate) fn stream_query(&self, pe: usize, emit: &mut impl FnMut(u64, u64)) -> FrontierStats {
        let inst = self.instance();
        let r_eff = self.effective_radius(&inst);
        let cosh_r_eff = r_eff.cosh();
        stream_pe_queries(
            &inst,
            self.chunks,
            pe,
            &|i, j| {
                inst.space.delta_theta_at(
                    inst.space.bounds[i].max(1e-12),
                    inst.space.bounds[j].max(1e-12),
                    r_eff,
                    cosh_r_eff,
                )
            },
            &|v, j| {
                inst.space
                    .delta_theta_at(v.r, inst.space.bounds[j].max(1e-12), r_eff, cosh_r_eff)
            },
            &|u, v| self.pair_connected(&inst, u, v),
            emit,
        )
    }
}

impl Generator for SoftRhg {
    fn num_vertices(&self) -> u64 {
        self.n
    }

    fn num_chunks(&self) -> usize {
        self.chunks
    }

    fn directed(&self) -> bool {
        false
    }

    fn generate_pe(&self, pe: usize) -> PeGraph {
        let inst = self.instance();
        let r_eff = self.effective_radius(&inst);
        let cosh_r_eff = r_eff.cosh();
        let tau = std::f64::consts::TAU;
        let sector = (
            tau * pe as f64 / self.chunks as f64,
            tau * (pe as f64 + 1.0) / self.chunks as f64,
        );
        let mut cache = CellCache::default();
        let mut out = PeGraph {
            pe,
            ..PeGraph::default()
        };

        // Local vertices: angular ownership, as in the threshold Rhg.
        let mut locals: Vec<PrePoint> = Vec::new();
        for i in 0..inst.num_annuli() {
            if inst.ann_counts[i] == 0 {
                continue;
            }
            let mut cells = Vec::new();
            inst.cells_overlapping(i, sector.0, sector.1, &mut |c| cells.push(c));
            for c in cells {
                for p in cache.get(&inst, i, c) {
                    if p.theta >= sector.0 && p.theta < sector.1 {
                        locals.push(*p);
                    }
                }
            }
        }
        locals.sort_by_key(|p| p.id);
        let local_ids: std::collections::BTreeSet<u64> = locals.iter().map(|p| p.id).collect();
        for v in &locals {
            out.coords2.push((v.id, [v.r, v.theta]));
        }
        out.vertex_begin = locals.first().map_or(0, |p| p.id);
        out.vertex_end = locals.last().map_or(0, |p| p.id + 1);

        let mut edges = Vec::new();
        for v in &locals {
            self.query_neighbors(&inst, &mut cache, r_eff, cosh_r_eff, v, &mut |u| {
                if !local_ids.contains(&u.id) || u.id > v.id {
                    // Oriented local-first, like the threshold Rhg: the
                    // sorted result is then exactly the order the native
                    // streaming pass emits (normalization happens on
                    // merge, as for every undirected generator).
                    edges.push((v.id, u.id));
                }
            });
        }
        edges.sort_unstable();
        edges.dedup();
        out.edges = edges;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_undirected;
    use crate::rhg::Rhg;

    /// Brute-force reference: full point set, exact pair rule (no
    /// truncation at all).
    fn brute_force(gen: &SoftRhg) -> Vec<(u64, u64)> {
        let inst = gen.instance();
        let mut pts = Vec::new();
        for a in 0..inst.num_annuli() {
            for c in 0..inst.ann_cells[a] {
                pts.extend(inst.cell_points(a, c));
            }
        }
        let mut edges = Vec::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if gen.pair_connected(&inst, &pts[i], &pts[j]) {
                    let (a, b) = (pts[i].id.min(pts[j].id), pts[i].id.max(pts[j].id));
                    edges.push((a, b));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    #[test]
    fn matches_untruncated_brute_force() {
        // With ε = 1e-9 on a 500-vertex instance, missing even one edge
        // has probability < 500²·1e-9 ≈ 2.5e-4.
        let gen = SoftRhg::new(500, 8.0, 2.8, 0.3).with_seed(5).with_chunks(4);
        let el = generate_undirected(&gen);
        assert_eq!(el.edges, brute_force(&gen));
    }

    #[test]
    fn chunk_invariance() {
        let mk = |chunks| {
            generate_undirected(
                &SoftRhg::new(700, 6.0, 3.0, 0.5)
                    .with_seed(9)
                    .with_chunks(chunks),
            )
        };
        let a = mk(1);
        assert_eq!(a, mk(8));
        assert_eq!(a, mk(32));
    }

    #[test]
    fn zero_temperature_limit_recovers_threshold_model() {
        // At T = 1e-5 the sigmoid is a step except within |d−R| ≲ 4e-4;
        // the soft and threshold graphs may differ only on pairs that
        // close to the threshold.
        let n = 600u64;
        let soft =
            generate_undirected(&SoftRhg::new(n, 8.0, 2.8, 1e-5).with_seed(3).with_chunks(4));
        let hard = generate_undirected(&Rhg::new(n, 8.0, 2.8).with_seed(3).with_chunks(4));
        let s: std::collections::HashSet<_> = soft.edges.iter().collect();
        let h: std::collections::HashSet<_> = hard.edges.iter().collect();
        let sym_diff = s.symmetric_difference(&h).count();
        assert!(
            sym_diff * 50 <= hard.edges.len().max(50),
            "soft(T→0) vs threshold: {sym_diff} of {} edges differ",
            hard.edges.len()
        );
    }

    #[test]
    fn temperature_softens_the_threshold() {
        // At high T, a non-trivial fraction of edges crosses distance R
        // (impossible in the threshold model).
        let gen = SoftRhg::new(2000, 8.0, 2.8, 0.8)
            .with_seed(7)
            .with_chunks(4);
        let inst = gen.instance();
        let el = generate_undirected(&gen);
        let mut pts: Vec<Option<PrePoint>> = vec![None; 2000];
        for a in 0..inst.num_annuli() {
            for c in 0..inst.ann_cells[a] {
                for p in inst.cell_points(a, c) {
                    pts[p.id as usize] = Some(p);
                }
            }
        }
        let beyond = el
            .edges
            .iter()
            .filter(|&&(u, v)| {
                SoftRhg::distance(&pts[u as usize].unwrap(), &pts[v as usize].unwrap())
                    > inst.space.r_max
            })
            .count();
        assert!(
            beyond * 20 > el.edges.len(),
            "only {beyond}/{} edges beyond R at T=0.8",
            el.edges.len()
        );
    }

    #[test]
    fn connection_frequency_follows_sigmoid() {
        // Empirical P[edge | d bucket] must track p_T(d).
        let gen = SoftRhg::new(1500, 10.0, 2.6, 0.5)
            .with_seed(11)
            .with_chunks(1);
        let inst = gen.instance();
        let mut pts = Vec::new();
        for a in 0..inst.num_annuli() {
            for c in 0..inst.ann_cells[a] {
                pts.extend(inst.cell_points(a, c));
            }
        }
        let r = inst.space.r_max;
        // Buckets around R where the sigmoid varies meaningfully.
        let mut hits = [0u64; 4];
        let mut totals = [0u64; 4];
        let buckets = [
            (r - 2.0, r - 1.0),
            (r - 1.0, r),
            (r, r + 1.0),
            (r + 1.0, r + 2.0),
        ];
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let d = SoftRhg::distance(&pts[i], &pts[j]);
                for (k, &(lo, hi)) in buckets.iter().enumerate() {
                    if d >= lo && d < hi {
                        totals[k] += 1;
                        hits[k] += gen.pair_connected(&inst, &pts[i], &pts[j]) as u64;
                    }
                }
            }
        }
        for (k, &(lo, hi)) in buckets.iter().enumerate() {
            assert!(totals[k] > 500, "bucket {k} too thin: {}", totals[k]);
            let mid = (lo + hi) / 2.0;
            let expect = gen.connection_prob(&inst, mid);
            let got = hits[k] as f64 / totals[k] as f64;
            // Sigmoid varies across the bucket; allow a wide but shaped band.
            let lo_p = gen.connection_prob(&inst, hi);
            let hi_p = gen.connection_prob(&inst, lo);
            assert!(
                got >= lo_p * 0.8 && got <= hi_p * 1.2 + 0.01,
                "bucket {k}: freq {got} outside [{lo_p}, {hi_p}] (mid expect {expect})"
            );
        }
    }

    #[test]
    fn pair_coins_symmetric_and_seeded() {
        let gen = SoftRhg::new(100, 8.0, 2.8, 0.5).with_seed(42);
        assert_eq!(
            gen.pair_coin(3, 17).to_bits(),
            gen.pair_coin(17, 3).to_bits()
        );
        let other = SoftRhg::new(100, 8.0, 2.8, 0.5).with_seed(43);
        assert_ne!(
            gen.pair_coin(3, 17).to_bits(),
            other.pair_coin(3, 17).to_bits()
        );
        let c = gen.pair_coin(3, 17);
        assert!((0.0..1.0).contains(&c));
    }

    #[test]
    fn same_skeleton_as_threshold_model() {
        // The vertex set (ids and coordinates) is the threshold instance's.
        let soft = SoftRhg::new(400, 8.0, 2.8, 0.4).with_seed(5).with_chunks(4);
        let hard = Rhg::new(400, 8.0, 2.8).with_seed(5).with_chunks(4);
        let a = crate::generate_parallel(&soft, 0);
        let b = crate::generate_parallel(&hard, 0);
        let coords = |parts: &[PeGraph]| {
            let mut v: Vec<(u64, [f64; 2])> = parts
                .iter()
                .flat_map(|p| p.coords2.iter().copied())
                .collect();
            v.sort_by_key(|x| x.0);
            v.dedup_by_key(|x| x.0);
            v
        };
        let (ca, cb) = (coords(&a), coords(&b));
        assert_eq!(ca.len(), cb.len());
        for (x, y) in ca.iter().zip(&cb) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1[0].to_bits(), y.1[0].to_bits());
            assert_eq!(x.1[1].to_bits(), y.1[1].to_bits());
        }
    }
}
