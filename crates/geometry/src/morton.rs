//! Z-order (Morton) curves in 2 and 3 dimensions.
//!
//! The RGG/RDG generators create `2^(d·b)` chunks and "distribute them to
//! the PEs in a locality-aware way by using a Z-order curve" (§5.1). The
//! same encoding orders cells within chunks so that a chunk is exactly a
//! contiguous Morton range — which is what lets the count-splitting tree
//! address chunks as aligned subtrees.

/// Interleave the low 32 bits of `x` with zeros (2D helper).
#[inline]
fn part1by1(mut x: u64) -> u64 {
    x &= 0xffff_ffff;
    x = (x | (x << 16)) & 0x0000_ffff_0000_ffff;
    x = (x | (x << 8)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

#[inline]
fn compact1by1(mut x: u64) -> u64 {
    x &= 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x >> 4)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x >> 8)) & 0x0000_ffff_0000_ffff;
    x = (x | (x >> 16)) & 0x0000_0000_ffff_ffff;
    x
}

/// Spread the low 21 bits of `x` every third bit (3D helper).
#[inline]
fn part1by2(mut x: u64) -> u64 {
    x &= 0x1f_ffff;
    x = (x | (x << 32)) & 0x001f_0000_0000_ffff;
    x = (x | (x << 16)) & 0x001f_0000_ff00_00ff;
    x = (x | (x << 8)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x << 4)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

#[inline]
fn compact1by2(mut x: u64) -> u64 {
    x &= 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x >> 4)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x >> 8)) & 0x001f_0000_ff00_00ff;
    x = (x | (x >> 16)) & 0x001f_0000_0000_ffff;
    x = (x | (x >> 32)) & 0x001f_ffff;
    x
}

/// 2D Morton encode (x, y < 2^32).
#[inline]
pub fn encode2(x: u64, y: u64) -> u64 {
    part1by1(x) | (part1by1(y) << 1)
}

/// 2D Morton decode.
#[inline]
pub fn decode2(code: u64) -> (u64, u64) {
    (compact1by1(code), compact1by1(code >> 1))
}

/// 3D Morton encode (x, y, z < 2^21).
#[inline]
pub fn encode3(x: u64, y: u64, z: u64) -> u64 {
    part1by2(x) | (part1by2(y) << 1) | (part1by2(z) << 2)
}

/// 3D Morton decode.
#[inline]
pub fn decode3(code: u64) -> (u64, u64, u64) {
    (
        compact1by2(code),
        compact1by2(code >> 1),
        compact1by2(code >> 2),
    )
}

/// Dimension-generic encode for D in {2, 3}.
#[inline]
pub fn encode<const D: usize>(coords: [u64; D]) -> u64 {
    match D {
        2 => encode2(coords[0], coords[1]),
        3 => encode3(coords[0], coords[1], coords[2]),
        _ => panic!("Morton curves implemented for D in {{2,3}}"),
    }
}

/// Dimension-generic decode for D in {2, 3}.
#[inline]
pub fn decode<const D: usize>(code: u64) -> [u64; D] {
    let mut out = [0u64; D];
    match D {
        2 => {
            let (x, y) = decode2(code);
            out[0] = x;
            out[1] = y;
        }
        3 => {
            let (x, y, z) = decode3(code);
            out[0] = x;
            out[1] = y;
            out[2] = z;
        }
        _ => panic!("Morton curves implemented for D in {{2,3}}"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_2d() {
        for x in [0u64, 1, 2, 3, 255, 12345, (1 << 20) - 1] {
            for y in [0u64, 1, 7, 99, (1 << 20) - 3] {
                assert_eq!(decode2(encode2(x, y)), (x, y));
            }
        }
    }

    #[test]
    fn roundtrip_3d() {
        for x in [0u64, 5, 1 << 10, (1 << 21) - 1] {
            for y in [0u64, 3, 777] {
                for z in [0u64, 1, 1 << 15] {
                    assert_eq!(decode3(encode3(x, y, z)), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn first_codes_2d() {
        // The classic Z pattern: (0,0)(1,0)(0,1)(1,1).
        assert_eq!(encode2(0, 0), 0);
        assert_eq!(encode2(1, 0), 1);
        assert_eq!(encode2(0, 1), 2);
        assert_eq!(encode2(1, 1), 3);
    }

    #[test]
    fn quadrant_contiguity() {
        // All cells of one 2^k-aligned quadrant form a contiguous range.
        let k = 3u64; // 8x8 quadrant at (8, 0)
        let mut codes: Vec<u64> = (8..16)
            .flat_map(|x| (0..8).map(move |y| encode2(x, y)))
            .collect();
        codes.sort_unstable();
        for w in codes.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
        assert_eq!(codes[0] % (1 << (2 * k)), 0, "range is aligned");
    }

    #[test]
    fn generic_matches_specific() {
        assert_eq!(encode::<2>([5, 9]), encode2(5, 9));
        assert_eq!(encode::<3>([5, 9, 2]), encode3(5, 9, 2));
        assert_eq!(decode::<2>(123), {
            let (x, y) = decode2(123);
            [x, y]
        });
    }
}
