//! R-MAT experiments: Fig. 17 (weak scaling) and Fig. 18 (strong scaling),
//! plus the §8.6.1 comparison against the ER and sRHG generators.

use crate::support::*;
use kagen_core::{GnmDirected, Rmat, Srhg};

/// Fig. 17: weak scaling of R-MAT, with the KaGen comparison columns of
/// §8.6.1 (ER and sRHG at the same edge budget).
pub fn fig17_weak_scaling(fast: bool) -> String {
    let per_pe: Vec<u32> = if fast { vec![14] } else { vec![16, 18] };
    let pes: Vec<usize> = if fast { vec![1, 4] } else { vec![1, 4, 16, 64] };
    let mut rows = Vec::new();
    for &mexp in &per_pe {
        for &p in &pes {
            let m = (1u64 << mexp) * p as u64;
            let n = (m / 16).next_power_of_two().max(2);
            let scale = n.ilog2();
            let rmat = run_generator(&Rmat::new(scale, m).with_seed(21).with_chunks(p));
            let er = run_generator(&GnmDirected::new(n, m).with_seed(21).with_chunks(p));
            let srhg = run_generator(
                &Srhg::new((n / 16).max(1 << 8), 16.0, 3.0)
                    .with_seed(21)
                    .with_chunks(p),
            );
            rows.push(vec![
                format!("2^{mexp}"),
                p.to_string(),
                ms(rmat.time),
                meps(rmat.edges, rmat.time),
                ms(er.time),
                format!(
                    "{:.1}x",
                    rmat.time.as_secs_f64() / er.time.as_secs_f64().max(1e-9)
                ),
                ms(srhg.time),
            ]);
        }
    }
    report(
        "fig17",
        "weak scaling R-MAT (m = 24·n per paper; comparison §8.6.1)",
        "R-MAT scales (edges are independent) but needs Θ(log n) variates \
         per edge: a slight rise with P (growing n) and an order of \
         magnitude slower than the undirected/directed ER generators \
         (paper: up to 15x) and ~10x slower than sRHG per edge.",
        format_table(
            "Fig. 17 (emulated parallel time)",
            &[
                "m/P",
                "P",
                "R-MAT ms",
                "R-MAT MEPS",
                "ER ms",
                "R-MAT/ER",
                "sRHG ms",
            ],
            &rows,
        ),
    )
}

/// Fig. 18: strong scaling of R-MAT.
pub fn fig18_strong_scaling(fast: bool) -> String {
    let m_exps: Vec<u32> = if fast { vec![18] } else { vec![20, 22] };
    let pes: Vec<usize> = if fast { vec![1, 4] } else { vec![1, 4, 16, 64] };
    let mut rows = Vec::new();
    for &mexp in &m_exps {
        let m = 1u64 << mexp;
        let n = (m / 16).next_power_of_two().max(2);
        let scale = n.ilog2();
        let mut base = 0.0;
        for &p in &pes {
            let rmat = run_generator(&Rmat::new(scale, m).with_seed(23).with_chunks(p));
            if p == pes[0] {
                base = rmat.time.as_secs_f64();
            }
            rows.push(vec![
                format!("2^{mexp}"),
                p.to_string(),
                ms(rmat.time),
                format!("{:.1}", base / rmat.time.as_secs_f64().max(1e-9)),
                format!("{:.2}", rmat.imbalance),
            ]);
        }
    }
    report(
        "fig18",
        "strong scaling R-MAT",
        "Near-perfect speedup (independent edges, equal splits) — R-MAT's \
         weakness is the per-edge constant, not its scaling.",
        format_table(
            "Fig. 18 (speedup vs smallest P)",
            &["m", "P", "time ms", "speedup", "imbalance"],
            &rows,
        ),
    )
}
