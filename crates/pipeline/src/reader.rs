//! Reading shard directories back: stream shards edge-by-edge with O(1)
//! memory (validating the manifest checksums as it goes), or reassemble
//! the whole instance into an [`EdgeList`] when it fits.

use crate::manifest::{Manifest, ShardInfo};
use crate::sink::checksum_step;
use crate::writer::ShardFormat;
use kagen_graph::io::CompressedEdgeReader;
use kagen_graph::EdgeList;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read};
use std::path::{Path, PathBuf};

/// A shard directory opened for reading.
pub struct ShardReader {
    manifest: Manifest,
    format: ShardFormat,
    dir: PathBuf,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl ShardReader {
    /// Open `dir` by loading and validating its `manifest.json`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ShardReader> {
        let dir = dir.into();
        let manifest = Manifest::load(&dir)?;
        let format = ShardFormat::parse(&manifest.format)
            .ok_or_else(|| invalid(format!("unknown shard format '{}'", manifest.format)))?;
        Ok(ShardReader {
            manifest,
            format,
            dir,
        })
    }

    /// The run's manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Stream one shard through `emit`, verifying its edge count and
    /// checksum against the manifest. Returns the edge count.
    pub fn stream_shard(&self, index: usize, emit: &mut dyn FnMut(u64, u64)) -> io::Result<u64> {
        let info = self.manifest.shards.get(index).ok_or_else(|| {
            invalid(format!(
                "shard index {index} out of range ({} shards)",
                self.manifest.shards.len()
            ))
        })?;
        let path = self.dir.join(&info.file);
        let mut count = 0u64;
        let mut checksum = 0u64;
        let mut counted_emit = |u: u64, v: u64| {
            count += 1;
            checksum = checksum_step(checksum, u, v);
            emit(u, v);
        };
        stream_shard_file(&path, self.format, &mut counted_emit)?;
        if count != info.edges {
            return Err(invalid(format!(
                "shard {}: {count} edges on disk, {} in manifest",
                info.file, info.edges
            )));
        }
        if checksum != info.checksum {
            return Err(invalid(format!(
                "shard {}: checksum mismatch (corrupt or reordered)",
                info.file
            )));
        }
        Ok(count)
    }

    /// Stream every shard in PE order; total memory stays O(1).
    /// Returns the total edge count.
    pub fn stream(&self, emit: &mut dyn FnMut(u64, u64)) -> io::Result<u64> {
        let mut total = 0;
        for i in 0..self.manifest.shards.len() {
            total += self.stream_shard(i, emit)?;
        }
        Ok(total)
    }

    /// Reassemble the whole instance in memory, exactly as the per-PE
    /// streams concatenate (no dedup, no sort — see
    /// [`crate::merge::external_merge`] for canonical merging).
    pub fn read_all(&self) -> io::Result<EdgeList> {
        // Cap the pre-allocation: the manifest is untrusted input until
        // the per-shard counts and checksums have been validated.
        let cap = (self.manifest.edges as usize).min(1 << 20);
        let mut edges = Vec::with_capacity(cap);
        self.stream(&mut |u, v| edges.push((u, v)))?;
        Ok(EdgeList::new(self.manifest.n, edges))
    }
}

/// Stream one shard *file* (no manifest required) through `emit`.
pub fn stream_shard_file(
    path: &Path,
    format: ShardFormat,
    emit: &mut dyn FnMut(u64, u64),
) -> io::Result<()> {
    match format {
        ShardFormat::EdgeList => stream_text(path, emit),
        ShardFormat::Binary => stream_binary(path, emit),
        ShardFormat::Compressed => stream_compressed(path, emit),
    }
}

/// Re-read the shard described by `info` from `dir` and verify its edge
/// count and checksum. This is the resume-time integrity check: a
/// missing, truncated, corrupted or reordered shard comes back as an
/// error; `Ok(())` means the bytes on disk still produce exactly the
/// edge stream recorded at generation time.
pub fn validate_shard(dir: &Path, format: ShardFormat, info: &ShardInfo) -> io::Result<()> {
    let path = dir.join(&info.file);
    let mut count = 0u64;
    let mut checksum = 0u64;
    stream_shard_file(&path, format, &mut |u, v| {
        count += 1;
        checksum = checksum_step(checksum, u, v);
    })?;
    if count != info.edges {
        return Err(invalid(format!(
            "shard {}: {count} edges on disk, {} expected",
            info.file, info.edges
        )));
    }
    if checksum != info.checksum {
        return Err(invalid(format!(
            "shard {}: checksum mismatch (corrupt or reordered)",
            info.file
        )));
    }
    Ok(())
}

fn stream_text(path: &Path, emit: &mut dyn FnMut(u64, u64)) -> io::Result<()> {
    let r = BufReader::new(File::open(path)?);
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let mut field = || -> io::Result<u64> {
            it.next()
                .ok_or_else(|| invalid(format!("line {}: missing field", lineno + 1)))?
                .parse::<u64>()
                .map_err(|e| invalid(format!("line {}: {e}", lineno + 1)))
        };
        let u = field()?;
        let v = field()?;
        emit(u, v);
    }
    Ok(())
}

fn stream_binary(path: &Path, emit: &mut dyn FnMut(u64, u64)) -> io::Result<()> {
    let mut r = BufReader::new(File::open(path)?);
    let mut rec = [0u8; 16];
    loop {
        match r.read_exact(&mut rec) {
            Ok(()) => {
                let u = u64::from_le_bytes(rec[..8].try_into().unwrap());
                let v = u64::from_le_bytes(rec[8..].try_into().unwrap());
                emit(u, v);
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        }
    }
}

fn stream_compressed(path: &Path, emit: &mut dyn FnMut(u64, u64)) -> io::Result<()> {
    let mut dec = CompressedEdgeReader::new(BufReader::new(File::open(path)?))?;
    while let Some((u, v)) = dec.next_edge()? {
        emit(u, v);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{write_sharded, InstanceMeta, StreamConfig};
    use kagen_core::prelude::*;
    use kagen_core::streaming::StreamingGenerator;

    fn roundtrip(format: ShardFormat, tag: &str) {
        let gen = GnmDirected::new(150, 900).with_seed(11).with_chunks(3);
        let dir = std::env::temp_dir().join(format!("kagen_reader_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        let meta = InstanceMeta {
            model: "gnm_directed".into(),
            params: String::new(),
            seed: 11,
        };
        write_sharded(&gen, &meta, &StreamConfig::new(&dir, format)).unwrap();

        let reader = ShardReader::open(&dir).unwrap();
        let back = reader.read_all().unwrap();
        let mut expect = Vec::new();
        gen.stream_all(&mut |u, v| expect.push((u, v)));
        assert_eq!(back.edges, expect, "{tag}: stream order must be preserved");
        assert_eq!(back.n, 150);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn roundtrip_every_format() {
        roundtrip(ShardFormat::EdgeList, "text");
        roundtrip(ShardFormat::Binary, "bin");
        roundtrip(ShardFormat::Compressed, "comp");
    }

    #[test]
    fn corruption_is_detected() {
        let gen = GnmDirected::new(100, 400).with_seed(5).with_chunks(2);
        let dir = std::env::temp_dir().join("kagen_reader_corrupt");
        std::fs::remove_dir_all(&dir).ok();
        let meta = InstanceMeta {
            model: "gnm_directed".into(),
            params: String::new(),
            seed: 5,
        };
        let manifest =
            write_sharded(&gen, &meta, &StreamConfig::new(&dir, ShardFormat::Binary)).unwrap();
        // Flip one byte in some non-empty shard (small instances may leave
        // leading PEs without blocks, hence without edges).
        let victim = manifest.shards.iter().find(|s| s.edges > 0).unwrap();
        let path = dir.join(&victim.file);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();

        let reader = ShardReader::open(&dir).unwrap();
        let err = reader.read_all().unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = std::env::temp_dir().join("kagen_reader_nomanifest");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(ShardReader::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
