//! The cell-cursor streaming core shared by the spatial and hyperbolic
//! generators.
//!
//! The paper generates geometric graphs cell by cell over a
//! pseudorandomized grid: any PE can *recompute* any cell's points from
//! `(seed, cell)`, so the working set of a streaming pass never needs to
//! exceed the neighborhood of the cell currently being processed. This
//! module provides the two pieces every such pass shares:
//!
//! * [`FrontierCache`] — a regenerate-on-miss cell cache with
//!   retire-rank eviction. Callers tag each cached cell with the last
//!   sweep position that can still reference it; [`FrontierCache::advance`]
//!   evicts everything behind the sweep. Eviction is *purely* a memory
//!   policy: a cell fetched after its eviction is transparently
//!   regenerated (the paper's recomputation trick), so any retire
//!   estimate — even a wrong one — yields the identical edge stream.
//! * [`CellRangeCursor`] — a walk over a PE's Morton cell range that
//!   carries the running global-id prefix, so vertex ids fall out of the
//!   traversal without a second count-tree query per cell.
//!
//! Together they replace the per-PE materialization the RGG/RDG/RHG
//! family used before: memory becomes O(active cell neighborhood), not
//! O(per-PE edges).

use crate::counts::CountTree;
use crate::grid::CellGrid;
use kagen_obs::{Counter, Gauge};
use std::collections::BTreeMap;

/// Cells generated (including regenerations after eviction) across all
/// frontier caches — the paper's recomputation cost, run-wide.
static GEO_CELLS_GENERATED: Counter = Counter::new("geo.cells_generated");
/// Live/peak points held by frontier caches (value tracks the cache
/// that updated last; the peak is the run-wide high-water mark).
static GEO_FRONTIER_POINTS: Gauge = Gauge::new("geo.frontier_points");
/// Cells visited by cell-range cursors (counted once per sweep).
static GEO_CURSOR_CELLS: Counter = Counter::new("geo.cursor_cells");

/// Memory accounting of a [`FrontierCache`] (the `abl-mem`-style
/// footprint proxy: every held point carries its precomputed terms).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrontierStats {
    /// Cells generated over the whole pass, counting regenerations — the
    /// paper's recomputation cost.
    pub generated_cells: u64,
    /// Points currently held.
    pub live_points: u64,
    /// High-water mark of held points — the quantity that must stay
    /// bounded by the cell neighborhood for the streaming claim to hold.
    pub peak_points: u64,
}

/// Cache values report how many points they hold so the cache can keep
/// its high-water accounting without knowing the value type.
pub trait Weighted {
    /// Number of points (or equivalent units) this value holds.
    fn weight(&self) -> u64;
}

impl<T> Weighted for Vec<T> {
    fn weight(&self) -> u64 {
        self.len() as u64
    }
}

impl<T> Weighted for (u64, Vec<T>) {
    fn weight(&self) -> u64 {
        self.1.len() as u64
    }
}

impl<A, B> Weighted for (Vec<A>, Vec<B>) {
    fn weight(&self) -> u64 {
        self.0.len() as u64
    }
}

/// A regenerate-on-miss cell cache with retire-rank eviction.
///
/// Each entry carries a `retire` rank: the last sweep position (caller
/// defined, monotone over the pass) that may still reference it.
/// [`FrontierCache::advance`] drops every entry whose rank has passed. A
/// later fetch of an evicted key simply regenerates it — correctness
/// never depends on the retire estimate, only the memory/recompute trade
/// does.
pub struct FrontierCache<K, V> {
    map: BTreeMap<K, (u64, V)>,
    stats: FrontierStats,
    /// Points the caller currently holds outside the cache (the taken
    /// center cell); included in every peak update so the reported
    /// high-water covers the full working set, not just cached cells.
    external: u64,
}

// Manual impl: prints occupancy and stats without requiring
// `K: Debug` / `V: Debug`.
impl<K, V> std::fmt::Debug for FrontierCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontierCache")
            .field("len", &self.map.len())
            .field("stats", &self.stats)
            .field("external", &self.external)
            .finish()
    }
}

impl<K: Ord + Copy, V: Weighted> FrontierCache<K, V> {
    /// An empty cache.
    pub fn new() -> Self {
        FrontierCache {
            map: BTreeMap::new(),
            stats: FrontierStats::default(),
            external: 0,
        }
    }

    fn bump_peak(&mut self) {
        self.stats.peak_points = self
            .stats
            .peak_points
            .max(self.stats.live_points + self.external);
        GEO_FRONTIER_POINTS.record_peak(self.stats.peak_points);
    }

    /// Fetch `key`, generating it with `gen` on a miss. `retire` extends
    /// the entry's lifetime (ranks only ever grow — a re-fetch from a
    /// later sweep position keeps the cell alive longer).
    pub fn get(&mut self, key: K, retire: u64, gen: impl FnOnce() -> V) -> &V {
        let stats = &mut self.stats;
        let external = self.external;
        let entry = self.map.entry(key).or_insert_with(|| {
            let v = gen();
            stats.generated_cells += 1;
            stats.live_points += v.weight();
            // The peak can only move on an insertion; count the
            // caller's externally held points too.
            stats.peak_points = stats.peak_points.max(stats.live_points + external);
            GEO_CELLS_GENERATED.incr();
            GEO_FRONTIER_POINTS.set(stats.live_points + external);
            (0, v)
        });
        entry.0 = entry.0.max(retire);
        &entry.1
    }

    /// Remove and return `key` (generating it if absent) — for the
    /// center cell of a pass, whose points the caller iterates while
    /// fetching neighbors from the cache.
    pub fn take(&mut self, key: K, gen: impl FnOnce() -> V) -> V {
        match self.map.remove(&key) {
            Some((_, v)) => {
                self.stats.live_points -= v.weight();
                v
            }
            None => {
                self.stats.generated_cells += 1;
                GEO_CELLS_GENERATED.incr();
                gen()
            }
        }
    }

    /// Evict every entry whose retire rank is behind `now`.
    pub fn advance(&mut self, now: u64) {
        let stats = &mut self.stats;
        self.map.retain(|_, (retire, v)| {
            let keep = *retire >= now;
            if !keep {
                stats.live_points -= v.weight();
            }
            keep
        });
        GEO_FRONTIER_POINTS.set(self.stats.live_points + self.external);
    }

    /// Drop everything (e.g. at an annulus boundary of a hyperbolic
    /// sweep).
    pub fn clear(&mut self) {
        self.stats.live_points = 0;
        self.map.clear();
    }

    /// Current accounting. `live_points` excludes values handed out via
    /// [`FrontierCache::take`].
    pub fn stats(&self) -> FrontierStats {
        self.stats
    }

    /// Record the points the caller holds outside the cache (the taken
    /// center cell) — included in every peak update until the next call
    /// replaces it, so the reported high-water covers the full working
    /// set while neighbor fetches grow the frontier.
    pub fn note_external(&mut self, points: u64) {
        self.external = points;
        self.bump_peak();
    }
}

impl<K: Ord + Copy, V: Weighted> Default for FrontierCache<K, V> {
    fn default() -> Self {
        FrontierCache::new()
    }
}

/// A walk over one PE's aligned Morton cell range carrying the running
/// global-id prefix: the communication-free vertex ids of §5.1 fall out
/// of the traversal (one `prefix_before` for the range start, then a
/// running sum), instead of one O(levels·2^d) tree query per cell.
#[derive(Debug)]
pub struct CellRangeCursor<'a, const D: usize> {
    grid: &'a CellGrid<D>,
    tree: &'a CountTree<D>,
    lo: u64,
    hi: u64,
}

impl<'a, const D: usize> CellRangeCursor<'a, D> {
    /// Cursor over the Morton cell range `[lo, hi)`.
    pub fn new(grid: &'a CellGrid<D>, tree: &'a CountTree<D>, lo: u64, hi: u64) -> Self {
        CellRangeCursor { grid, tree, lo, hi }
    }

    /// The range's first global vertex id.
    pub fn first_id(&self) -> u64 {
        self.tree.prefix_before(self.lo)
    }

    /// One past the range's last global vertex id.
    pub fn end_id(&self) -> u64 {
        if self.hi == self.tree.num_leaves() {
            self.tree.total()
        } else {
            self.tree.prefix_before(self.hi)
        }
    }

    /// Visit every cell of the range in Morton order as
    /// `f(cell, count, first_id)`, where `first_id` is the global id of
    /// the cell's first vertex.
    pub fn for_cells(&self, f: &mut impl FnMut(u64, u64, u64)) {
        let mut next_id = self.first_id();
        let mut visited = 0u64;
        self.tree
            .for_leaf_counts(self.lo, self.hi, &mut |cell, count| {
                visited += 1;
                f(cell, count, next_id);
                next_id += count;
            });
        GEO_CURSOR_CELLS.add(visited);
    }

    /// Whether `cell` lies inside the range.
    pub fn contains(&self, cell: u64) -> bool {
        (self.lo..self.hi).contains(&cell)
    }

    /// The retire rank of `cell` for a center-cell sweep over this
    /// range: the largest in-range Morton rank among `cell` and its 3^d
    /// neighborhood — the last center cell whose pair enumeration can
    /// reference it. Cells outside every in-range neighborhood retire
    /// immediately (rank 0).
    pub fn last_referencing_center(&self, cell: u64) -> u64 {
        let mut last = if self.contains(cell) { cell } else { 0 };
        self.grid
            .for_neighbors(self.grid.coords_of(cell), false, &mut |ncoords, _| {
                let ncell = self.grid.morton_of(ncoords);
                if self.contains(ncell) {
                    last = last.max(ncell);
                }
            });
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_regenerates_after_eviction() {
        let mut cache: FrontierCache<u64, Vec<u32>> = FrontierCache::new();
        let mut gens = 0;
        let fetch = |cache: &mut FrontierCache<u64, Vec<u32>>, k: u64, retire: u64| {
            let mut local = 0;
            let v = cache
                .get(k, retire, || {
                    local += 1;
                    vec![k as u32; 3]
                })
                .clone();
            (v, local)
        };
        let (v1, g1) = fetch(&mut cache, 7, 2);
        gens += g1;
        let (v2, g2) = fetch(&mut cache, 7, 1);
        gens += g2;
        assert_eq!(v1, v2);
        assert_eq!(gens, 1, "second fetch must hit");
        // The retire rank was extended to 2 by the first fetch; rank 2
        // keeps it, rank 3 evicts it.
        cache.advance(2);
        let (_, g3) = fetch(&mut cache, 7, 5);
        assert_eq!(g3, 0, "rank 2 entry must survive advance(2)");
        cache.advance(6);
        let (v4, g4) = fetch(&mut cache, 7, 9);
        assert_eq!(g4, 1, "evicted entry must regenerate");
        assert_eq!(v4, v1, "regeneration must be deterministic");
    }

    #[test]
    fn cache_accounts_points() {
        let mut cache: FrontierCache<u64, Vec<u32>> = FrontierCache::new();
        cache.get(1, 10, || vec![0; 5]);
        cache.get(2, 10, || vec![0; 7]);
        assert_eq!(cache.stats().live_points, 12);
        assert_eq!(cache.stats().peak_points, 12);
        assert_eq!(cache.stats().generated_cells, 2);
        cache.advance(11);
        assert_eq!(cache.stats().live_points, 0);
        assert_eq!(cache.stats().peak_points, 12, "peak is a high-water mark");
        let taken = cache.take(3, || vec![0; 2]);
        assert_eq!(taken.len(), 2);
        assert_eq!(cache.stats().generated_cells, 3);
    }

    #[test]
    fn take_removes_cached_entry() {
        let mut cache: FrontierCache<u64, Vec<u32>> = FrontierCache::new();
        cache.get(4, 9, || vec![1, 2]);
        let v = cache.take(4, || unreachable!("must come from the cache"));
        assert_eq!(v, vec![1, 2]);
        assert_eq!(cache.stats().live_points, 0);
        let mut regenerated = false;
        cache.get(4, 9, || {
            regenerated = true;
            vec![1, 2]
        });
        assert!(regenerated, "take must remove the entry");
    }

    #[test]
    fn cursor_ids_match_tree_prefixes() {
        let grid: CellGrid<2> = CellGrid::new(3);
        let tree: CountTree<2> = CountTree::new(11, 500, 3);
        let cursor = CellRangeCursor::new(&grid, &tree, 16, 48);
        assert_eq!(cursor.first_id(), tree.prefix_before(16));
        assert_eq!(cursor.end_id(), tree.prefix_before(48));
        let mut seen = Vec::new();
        cursor.for_cells(&mut |cell, count, first| seen.push((cell, count, first)));
        assert_eq!(seen.len(), 32);
        for &(cell, count, first) in &seen {
            assert_eq!(first, tree.prefix_before(cell), "cell {cell}");
            assert_eq!(count, tree.leaf_count(cell), "cell {cell}");
        }
        // Full range: end_id is the total.
        let full = CellRangeCursor::new(&grid, &tree, 0, tree.num_leaves());
        assert_eq!(full.end_id(), 500);
    }

    #[test]
    fn last_referencing_center_is_max_in_range_neighbor() {
        let grid: CellGrid<2> = CellGrid::new(3);
        let tree: CountTree<2> = CountTree::new(1, 100, 3);
        let cursor = CellRangeCursor::new(&grid, &tree, 0, 64);
        for cell in 0..64u64 {
            let mut expect = cell;
            grid.for_neighbors(grid.coords_of(cell), false, &mut |nc, _| {
                expect = expect.max(grid.morton_of(nc));
            });
            assert_eq!(cursor.last_referencing_center(cell), expect, "cell {cell}");
        }
        // A restricted range clamps to in-range neighbors only.
        let half = CellRangeCursor::new(&grid, &tree, 0, 32);
        for cell in 0..64u64 {
            let got = half.last_referencing_center(cell);
            assert!(got < 32 || (cell < 32 && got == cell) || got == 0);
        }
    }
}
