//! SplitMix64 (Steele, Lea & Flood) — a tiny, fast, statistically strong
//! 64-bit generator and mixing function.
//!
//! Two uses in this library:
//!
//! 1. As a *stateless mixer*: [`mix64`] maps any 64-bit value to a
//!    decorrelated one. The Barabási–Albert generator (Sanders–Schulz
//!    recomputation scheme) needs an independent uniform draw *per edge-slot
//!    position*, queried in arbitrary order by arbitrary PEs — a stateless
//!    mix of `(seed, position)` is exactly that.
//! 2. As a cheap stream PRNG where seeding a Mersenne Twister (2.5 KiB of
//!    state) per tiny task would dominate the cost, e.g. per-cell point
//!    generation with a handful of points per cell.

use crate::rng::Rng64;

const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One application of the SplitMix64 output function.
#[inline(always)]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless uniform draw for a (seed, position) pair.
#[inline(always)]
pub fn mix2(seed: u64, position: u64) -> u64 {
    mix64(
        seed.wrapping_add(GAMMA.wrapping_mul(position ^ 0xA5A5_A5A5_A5A5_A5A5))
            .wrapping_add(GAMMA),
    )
}

/// Sequential SplitMix64 stream.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a stream starting from `seed`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Stream for element `position` of a block identified by `block_seed`:
    /// `SplitMix64::new(mix2(block_seed, position))` in one call.
    ///
    /// This is the hot-path seeding scheme of the batched generators: one
    /// (expensive) hashed seed per *block* of elements, one (cheap) `mix2`
    /// per element — instead of a hashed seed per element.
    #[inline(always)]
    pub fn at(block_seed: u64, position: u64) -> Self {
        SplitMix64::new(mix2(block_seed, position))
    }
}

impl Rng64 for SplitMix64 {
    #[inline(always)]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_deterministic() {
        let a = SplitMix64::new(123).take_vec(32);
        let b = SplitMix64::new(123).take_vec(32);
        assert_eq!(a, b);
        assert_ne!(a, SplitMix64::new(124).take_vec(32));
    }

    #[test]
    fn mixer_bijective_sample() {
        // mix64 is a bijection; on a sample, no collisions may occur.
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn mix2_decorrelates_positions() {
        // Adjacent positions must not produce correlated low bits.
        let mut ones = 0u32;
        for i in 0..4096u64 {
            ones += (mix2(42, i) & 1) as u32;
        }
        assert!((1700..2400).contains(&ones), "bit bias: {ones}/4096");
    }

    #[test]
    fn mean_of_f64_stream() {
        let mut rng = SplitMix64::new(5);
        let mean: f64 = (0..50_000).map(|_| rng.next_f64()).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
