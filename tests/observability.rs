//! Observability integration tests: telemetry must be a pure observer.
//!
//! The hard rule of `kagen_obs` (ISSUE 6): enabling metrics or tracing
//! never touches an RNG stream or an output byte. The matrix test below
//! proves it for **every** generator model by comparing shard files and
//! `manifest.json` of a telemetry-on run against a telemetry-off run,
//! byte for byte. The remaining tests pin the metrics/trace file
//! formats the CLI emits: both must parse with the repo's own JSON
//! parser, and a launch's per-rank edge counters must reconcile exactly
//! with the federated manifest.

use kagen_repro::pipeline::manifest::json;
use std::path::{Path, PathBuf};
use std::process::Command;

const KAGEN: &str = env!("CARGO_BIN_EXE_kagen");

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kagen_it_obs_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Run the kagen binary; returns (success, stderr).
fn kagen(args: &[&str]) -> (bool, String) {
    kagen_env(args, &[])
}

/// Run the kagen binary with extra environment variables.
fn kagen_env(args: &[&str], envs: &[(&str, &str)]) -> (bool, String) {
    let mut cmd = Command::new(KAGEN);
    cmd.args(args);
    // The tests' own environment must not leak into level-precedence
    // assertions.
    cmd.env_remove("KAGEN_LOG");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("cannot spawn kagen");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Sorted `(file name, bytes)` of every regular file in a directory.
fn dir_contents(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| {
            let entry = entry.unwrap();
            (
                entry.file_name().to_string_lossy().into_owned(),
                std::fs::read(entry.path()).unwrap(),
            )
        })
        .collect();
    out.sort();
    out
}

/// Every model of the CLI, with parameters small enough that the whole
/// matrix (2 runs x N models) stays in test-suite time.
fn model_matrix() -> Vec<Vec<&'static str>> {
    vec![
        vec!["gnm_directed", "-n", "2000", "-m", "8000"],
        vec!["gnm_undirected", "-n", "2000", "-m", "8000"],
        vec!["gnp_directed", "-n", "2000", "-p", "0.002"],
        vec!["gnp_undirected", "-n", "2000", "-p", "0.004"],
        vec![
            "gnp_undirected",
            "-n",
            "2000",
            "-p",
            "0.004",
            "--gnp-leaves",
            "algo-d",
        ],
        vec!["rgg2d", "-n", "2000"],
        vec!["rgg3d", "-n", "1000"],
        vec!["rdg2d", "-n", "600"],
        vec!["rdg3d", "-n", "300"],
        vec!["rhg", "-n", "2000", "-d", "8", "-g", "2.8"],
        vec!["srhg", "-n", "2000", "-d", "8", "-g", "2.8"],
        vec!["soft-rhg", "-n", "600", "-d", "8", "-g", "2.8", "-T", "0.5"],
        vec!["ba", "-n", "2000", "-d", "4"],
        vec!["rmat", "-n", "2048", "-m", "8000"],
        vec![
            "sbm", "-n", "2000", "-b", "4", "--p-in", "0.01", "--p-out", "0.001",
        ],
    ]
}

/// The tentpole guarantee, proven over the full generator matrix: a
/// `kagen stream` run with `--metrics-out` + `--trace-out` writes the
/// exact same shard bytes and `manifest.json` as a telemetry-off run.
#[test]
fn telemetry_on_off_shards_bit_identical_every_model() {
    for (i, model) in model_matrix().iter().enumerate() {
        let dir_off = tmp(&format!("det_off_{i}"));
        let dir_on = tmp(&format!("det_on_{i}"));
        let metrics = dir_on.with_extension("metrics.json");
        let trace = dir_on.with_extension("trace.json");

        let mut base: Vec<&str> = vec!["stream"];
        base.extend(model);
        base.extend(["-c", "6", "-s", "99", "--shard-dir"]);

        let mut off_args = base.clone();
        off_args.push(dir_off.to_str().unwrap());
        let (ok, stderr) = kagen(&off_args);
        assert!(ok, "{model:?} telemetry-off run failed:\n{stderr}");

        let mut on_args = base.clone();
        on_args.push(dir_on.to_str().unwrap());
        on_args.extend(["--metrics-out", metrics.to_str().unwrap()]);
        on_args.extend(["--trace-out", trace.to_str().unwrap()]);
        let (ok, stderr) = kagen(&on_args);
        assert!(ok, "{model:?} telemetry-on run failed:\n{stderr}");

        let off = dir_contents(&dir_off);
        let on = dir_contents(&dir_on);
        assert_eq!(
            off.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            on.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            "{model:?}: telemetry changed the file set"
        );
        for ((name, bytes_off), (_, bytes_on)) in off.iter().zip(on.iter()) {
            assert_eq!(
                bytes_off, bytes_on,
                "{model:?}: telemetry changed the bytes of {name}"
            );
        }

        // The telemetry artifacts themselves exist and parse.
        let m = std::fs::read_to_string(&metrics).expect("missing metrics file");
        json::parse(&m).unwrap_or_else(|e| panic!("{model:?}: bad metrics JSON: {e}"));
        let t = std::fs::read_to_string(&trace).expect("missing trace file");
        json::parse(&t).unwrap_or_else(|e| panic!("{model:?}: bad trace JSON: {e}"));

        std::fs::remove_dir_all(&dir_off).ok();
        std::fs::remove_dir_all(&dir_on).ok();
        std::fs::remove_file(&metrics).ok();
        std::fs::remove_file(&trace).ok();
    }
}

/// A launch-mode metrics file reconciles with its manifest: per-rank
/// edge counts (and the rank-local `gen.edges` counters from the worker
/// sidecars) sum to the federated edge total, and the sidecars are
/// cleaned off the shard directory after federation.
#[test]
fn launch_metrics_reconcile_with_manifest() {
    let dir = tmp("launch_metrics");
    let metrics = dir.with_extension("metrics.json");
    let (ok, stderr) = kagen(&[
        "launch",
        "gnm_undirected",
        "-n",
        "3000",
        "-m",
        "24000",
        "-c",
        "8",
        "-s",
        "42",
        "--workers",
        "3",
        "--shard-dir",
        dir.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert!(ok, "launch failed:\n{stderr}");

    let text = std::fs::read_to_string(&metrics).expect("missing metrics file");
    let rm = kagen_repro::cluster::RunMetrics::from_json(&text).expect("bad metrics file");
    assert_eq!(rm.model, "gnm_undirected");
    assert_eq!(rm.seed, 42);
    assert_eq!(rm.chunks, 8);
    assert_eq!(rm.ranks.len(), 3);

    let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    let doc = json::parse(&manifest).unwrap();
    let manifest_edges = doc
        .as_obj("manifest")
        .and_then(|o| o.get("edges").and_then(|v| v.as_u64("edges")))
        .unwrap();
    assert_eq!(rm.edges, manifest_edges);

    let rank_sum: u64 = rm.ranks.iter().map(|r| r.edges).sum();
    assert_eq!(rank_sum + rm.reused_edges, manifest_edges);
    for r in &rm.ranks {
        let counters: std::collections::HashMap<_, _> =
            r.counters.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        // The rank's own generator counter agrees with its ledger edge
        // count — the sidecar really came from that worker process.
        assert_eq!(counters.get("gen.edges"), Some(&r.edges), "{r:?}");
        assert!(counters.get("rng.words").copied().unwrap_or(0) > 0, "{r:?}");
        assert!(r.wall_us > 0, "{r:?}");
    }

    // Sidecars are consumed during federation, not left as litter that
    // a `--resume` of a different telemetry setting could misread.
    let leftover: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".metrics.json"))
        .collect();
    assert!(leftover.is_empty(), "sidecars not cleaned up: {leftover:?}");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&metrics).ok();
}

/// Launch shard output is byte-identical with and without telemetry —
/// the multi-process twin of the stream-mode matrix (workers enable
/// metrics when handed `--metrics-sidecar`, and must still write the
/// same shards).
#[test]
fn launch_telemetry_on_off_bit_identical() {
    let dir_off = tmp("launch_det_off");
    let dir_on = tmp("launch_det_on");
    let metrics = dir_on.with_extension("metrics.json");
    let base = |dir: &str| {
        vec![
            "launch".to_string(),
            "gnm_undirected".into(),
            "-n".into(),
            "3000".into(),
            "-m".into(),
            "24000".into(),
            "-c".into(),
            "8".into(),
            "-s".into(),
            "42".into(),
            "--workers".into(),
            "3".into(),
            "--shard-dir".into(),
            dir.to_string(),
        ]
    };
    let off_args = base(dir_off.to_str().unwrap());
    let (ok, stderr) = kagen(&off_args.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    assert!(ok, "telemetry-off launch failed:\n{stderr}");

    let mut on_args = base(dir_on.to_str().unwrap());
    on_args.extend(["--metrics-out".into(), metrics.to_str().unwrap().into()]);
    let (ok, stderr) = kagen(&on_args.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    assert!(ok, "telemetry-on launch failed:\n{stderr}");

    // Compare shards + manifest; the ledger records wall-clock times and
    // the on-run's metrics file lives outside the shard dir.
    let keep = |name: &str| name.ends_with(".kgc") || name == "manifest.json";
    let off: Vec<_> = dir_contents(&dir_off)
        .into_iter()
        .filter(|(n, _)| keep(n))
        .collect();
    let on: Vec<_> = dir_contents(&dir_on)
        .into_iter()
        .filter(|(n, _)| keep(n))
        .collect();
    assert!(!off.is_empty());
    assert_eq!(off, on, "telemetry changed launch output bytes");

    std::fs::remove_dir_all(&dir_off).ok();
    std::fs::remove_dir_all(&dir_on).ok();
    std::fs::remove_file(&metrics).ok();
}

/// The Chrome trace file is a `{"traceEvents": [...]}` document whose
/// events carry the fields the Perfetto/chrome://tracing loaders
/// require, including the phase spans of a launch run.
#[test]
fn trace_file_is_wellformed_chrome_json() {
    let dir = tmp("trace_shape");
    let trace = dir.with_extension("trace.json");
    let (ok, stderr) = kagen(&[
        "stream",
        "gnm_undirected",
        "-n",
        "2000",
        "-m",
        "8000",
        "-c",
        "4",
        "--merge",
        "external",
        "--shard-dir",
        dir.to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "stream failed:\n{stderr}");

    let text = std::fs::read_to_string(&trace).unwrap();
    let doc = json::parse(&text).unwrap();
    let events = doc
        .as_obj("trace")
        .and_then(|o| o.get("traceEvents").cloned())
        .unwrap();
    let json::Value::Arr(events) = events else {
        panic!("traceEvents is not an array");
    };
    assert!(!events.is_empty(), "no spans recorded");
    let mut names = Vec::new();
    for ev in &events {
        let obj = ev.as_obj("event").unwrap();
        // "X" complete events: name, category, timestamp, duration,
        // process and thread id are all mandatory for the viewers.
        for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid"] {
            assert!(obj.get(key).is_ok(), "event missing {key}: {ev:?}");
        }
        match obj.get("name").unwrap() {
            json::Value::Str(s) => names.push(s.clone()),
            other => panic!("non-string event name: {other:?}"),
        }
        match obj.get("ph").unwrap() {
            json::Value::Str(s) => assert_eq!(s, "X"),
            other => panic!("non-string ph: {other:?}"),
        }
    }
    assert!(
        names.iter().any(|n| n == "stream.write_shards"),
        "missing write span in {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "stream.merge"),
        "missing merge span in {names:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&trace).ok();
}

/// Flag plumbing: telemetry flags are rejected exactly where they make
/// no sense, before anything is generated or spawned.
#[test]
fn telemetry_flag_validation() {
    let cases: &[(&[&str], &str)] = &[
        (
            &["gnm_undirected", "--metrics-out", "/tmp/x.json"],
            "--metrics-out requires",
        ),
        (
            &["gnm_undirected", "--metrics-sidecar"],
            "--metrics-sidecar requires",
        ),
        (
            &["gnm_undirected", "--trace-sidecar"],
            "--trace-sidecar requires",
        ),
        (&["gnm_undirected", "--heartbeat"], "--heartbeat requires"),
        (
            &[
                "stream",
                "gnm_undirected",
                "--shard-dir",
                "/tmp/x",
                "--progress",
                "1",
            ],
            "--progress requires",
        ),
        (
            &[
                "worker",
                "gnm_undirected",
                "--shard-dir",
                "/tmp/x",
                "--pe-range",
                "0..2",
                "--stall-timeout",
                "5",
            ],
            "--stall-timeout requires",
        ),
        (
            &[
                "launch",
                "gnm_undirected",
                "--shard-dir",
                "/tmp/x",
                "--heartbeat",
            ],
            "--heartbeat requires",
        ),
        (
            &[
                "launch",
                "gnm_undirected",
                "--shard-dir",
                "/tmp/x",
                "--stall-timeout",
                "0",
            ],
            "--stall-timeout wants a positive",
        ),
        (
            &[
                "launch",
                "gnm_undirected",
                "--shard-dir",
                "/tmp/x",
                "--progress",
                "-1",
            ],
            "--progress wants a positive",
        ),
    ];
    for (args, needle) in cases {
        let (ok, stderr) = kagen(args);
        assert!(!ok, "{args:?} must be rejected");
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
    }
}

/// The tentpole acceptance shape: a 3-worker launch with `--trace-out`
/// produces ONE JSON document containing the coordinator's spans plus
/// every worker's spans under distinct pids, a `process_name` metadata
/// row per process, and flow events linking each supervisor `rank-N`
/// span to its worker's process-level span.
#[test]
fn launch_federated_trace_has_rank_rows_and_flows() {
    let dir = tmp("fed_trace");
    let trace = dir.with_extension("trace.json");
    let (ok, stderr) = kagen(&[
        "launch",
        "gnm_undirected",
        "-n",
        "3000",
        "-m",
        "24000",
        "-c",
        "8",
        "-s",
        "42",
        "--workers",
        "3",
        "--shard-dir",
        dir.to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "launch failed:\n{stderr}");

    let text = std::fs::read_to_string(&trace).expect("missing federated trace");
    let doc = json::parse(&text).unwrap();
    let events = doc
        .as_obj("trace")
        .unwrap()
        .get("traceEvents")
        .unwrap()
        .as_arr("traceEvents")
        .unwrap()
        .to_vec();

    let field = |ev: &json::Value, key: &str| -> Option<json::Value> {
        ev.as_obj("event").ok()?.get(key).ok().cloned()
    };
    let str_field = |ev: &json::Value, key: &str| -> Option<String> {
        match field(ev, key) {
            Some(json::Value::Str(s)) => Some(s),
            _ => None,
        }
    };
    let u64_field = |ev: &json::Value, key: &str| -> Option<u64> {
        field(ev, key).and_then(|v| v.as_u64(key).ok())
    };

    // One process_name metadata row per process: the coordinator and
    // each of the three ranks, all on distinct pids.
    let proc_names: Vec<String> = events
        .iter()
        .filter(|e| str_field(e, "name").as_deref() == Some("process_name"))
        .filter_map(|e| {
            e.as_obj("event")
                .ok()?
                .get("args")
                .ok()?
                .as_obj("args")
                .ok()?
                .get("name")
                .ok()
                .and_then(|v| v.as_str("name").ok().map(String::from))
        })
        .collect();
    assert!(
        proc_names.iter().any(|n| n.contains("coordinator")),
        "{proc_names:?}"
    );
    for rank in 0..3 {
        assert!(
            proc_names
                .iter()
                .any(|n| n.starts_with(&format!("rank {rank} worker"))),
            "missing rank {rank} metadata row: {proc_names:?}"
        );
    }
    let pids: std::collections::HashSet<u64> =
        events.iter().filter_map(|e| u64_field(e, "pid")).collect();
    assert!(pids.len() >= 4, "want 4 distinct pids, got {pids:?}");

    // Every worker's process-level span made it in (one per rank, each
    // from a different process than the coordinator's spans).
    let coord_pid = events
        .iter()
        .find(|e| str_field(e, "name").as_deref() == Some("launch.supervise"))
        .and_then(|e| u64_field(e, "pid"))
        .expect("coordinator supervise span missing");
    let worker_pids: std::collections::HashSet<u64> = events
        .iter()
        .filter(|e| str_field(e, "name").as_deref() == Some("worker.generate"))
        .filter_map(|e| u64_field(e, "pid"))
        .collect();
    assert_eq!(worker_pids.len(), 3, "one worker.generate span per rank");
    assert!(!worker_pids.contains(&coord_pid));

    // Flow arrows: an `s`/`f` pair per rank, start on the coordinator
    // pid, finish on a worker pid.
    for rank in 0u64..3 {
        let flows: Vec<&json::Value> = events
            .iter()
            .filter(|e| {
                str_field(e, "cat").as_deref() == Some("flow") && u64_field(e, "id") == Some(rank)
            })
            .collect();
        let phs: Vec<String> = flows.iter().filter_map(|e| str_field(e, "ph")).collect();
        assert!(
            phs.contains(&"s".to_string()) && phs.contains(&"f".to_string()),
            "rank {rank} flow pair missing: {phs:?}"
        );
        for f in &flows {
            match str_field(f, "ph").as_deref() {
                Some("s") => assert_eq!(u64_field(f, "pid"), Some(coord_pid)),
                Some("f") => assert!(worker_pids.contains(&u64_field(f, "pid").unwrap())),
                other => panic!("unexpected flow phase {other:?}"),
            }
        }
    }

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&trace).ok();
}

/// The PR-6 byte-identity rule extended to the full PR-8 surface: a
/// launch with heartbeats, stall watchdog, progress lines, metrics
/// federation AND trace federation all on writes the exact same shard
/// bytes and manifest as a telemetry-off launch.
#[test]
fn launch_full_telemetry_still_byte_identical() {
    let dir_off = tmp("fulltel_off");
    let dir_on = tmp("fulltel_on");
    let metrics = dir_on.with_extension("metrics.json");
    let trace = dir_on.with_extension("trace.json");
    let base = |dir: &str| {
        vec![
            "launch".to_string(),
            "gnm_undirected".into(),
            "-n".into(),
            "3000".into(),
            "-m".into(),
            "24000".into(),
            "-c".into(),
            "8".into(),
            "-s".into(),
            "42".into(),
            "--workers".into(),
            "3".into(),
            "--shard-dir".into(),
            dir.to_string(),
        ]
    };
    let off_args = base(dir_off.to_str().unwrap());
    let (ok, stderr) = kagen(&off_args.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    assert!(ok, "telemetry-off launch failed:\n{stderr}");

    let mut on_args = base(dir_on.to_str().unwrap());
    on_args.extend([
        "--metrics-out".into(),
        metrics.to_str().unwrap().into(),
        "--trace-out".into(),
        trace.to_str().unwrap().into(),
        "--progress".into(),
        "0.2".into(),
        "--stall-timeout".into(),
        "30".into(),
    ]);
    let (ok, stderr) = kagen(&on_args.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    assert!(ok, "full-telemetry launch failed:\n{stderr}");

    let keep = |name: &str| name.ends_with(".kgc") || name == "manifest.json";
    let off: Vec<_> = dir_contents(&dir_off)
        .into_iter()
        .filter(|(n, _)| keep(n))
        .collect();
    let on: Vec<_> = dir_contents(&dir_on)
        .into_iter()
        .filter(|(n, _)| keep(n))
        .collect();
    assert!(!off.is_empty());
    assert_eq!(off, on, "full telemetry changed launch output bytes");

    // No telemetry litter inside the shard dir: heartbeats and sidecars
    // are consumed or removed by the coordinator.
    for (name, _) in dir_contents(&dir_on) {
        assert!(
            !name.ends_with(".heartbeat.json")
                && !name.ends_with(".trace.json")
                && !name.ends_with(".metrics.json"),
            "telemetry file left behind: {name}"
        );
    }

    std::fs::remove_dir_all(&dir_off).ok();
    std::fs::remove_dir_all(&dir_on).ok();
    std::fs::remove_file(&metrics).ok();
    std::fs::remove_file(&trace).ok();
}

/// kagen-metrics/v2: the run document carries full per-rank histogram
/// bucket vectors and a bucket-wise merged run-wide view, and the v1
/// counter-reconciliation invariant still holds — each merged
/// histogram's count/sum equal the `<name>.count`/`<name>.sum` scalar
/// totals, and its bucket counts sum to `count`.
#[test]
fn launch_metrics_v2_histograms_reconcile_with_v1_scalars() {
    let dir = tmp("metrics_v2");
    let metrics = dir.with_extension("metrics.json");
    let (ok, stderr) = kagen(&[
        "launch",
        "gnm_undirected",
        "-n",
        "3000",
        "-m",
        "24000",
        "-c",
        "8",
        "-s",
        "42",
        "--workers",
        "3",
        "--shard-dir",
        dir.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert!(ok, "launch failed:\n{stderr}");

    let text = std::fs::read_to_string(&metrics).expect("missing metrics file");
    assert!(text.contains("\"schema\":\"kagen-metrics/v2\""), "{text}");
    let rm = kagen_repro::cluster::RunMetrics::from_json(&text).expect("bad metrics file");

    // Each rank carries histogram snapshots next to its scalars; the
    // shard-write wall histogram exists on every rank and counts that
    // rank's shards.
    for r in &rm.ranks {
        let (_, h) = r
            .histograms
            .iter()
            .find(|(n, _)| n == "sink.shard_wall_us")
            .unwrap_or_else(|| panic!("rank {} has no sink.shard_wall_us", r.rank));
        assert_eq!(h.count, r.pe_end - r.pe_begin, "{r:?}");
        assert_eq!(h.bucket_total(), h.count, "{r:?}");
    }

    // The run-wide merge reconciles exactly with the v1 scalar totals.
    let totals: std::collections::HashMap<String, u64> = rm.totals().into_iter().collect();
    let merged = rm.merged_histograms();
    assert!(!merged.is_empty());
    for (name, h) in &merged {
        assert_eq!(
            totals.get(&format!("{name}.count")),
            Some(&h.count),
            "{name}: merged count != scalar total"
        );
        assert_eq!(
            totals.get(&format!("{name}.sum")),
            Some(&h.sum),
            "{name}: merged sum != scalar total"
        );
        assert_eq!(h.bucket_total(), h.count, "{name}: buckets don't sum");
    }
    let (_, shard_wall) = merged
        .iter()
        .find(|(n, _)| n == "sink.shard_wall_us")
        .expect("merged sink.shard_wall_us missing");
    assert_eq!(shard_wall.count, 8, "every PE's shard write is counted");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&metrics).ok();
}

/// A standalone `kagen worker --pe-range a..b` (hand-run ranks over a
/// shared filesystem) accepts `--metrics-out`/`--trace-out` directly
/// and writes sidecar-shaped documents to those paths, plus a heartbeat
/// file under `--heartbeat`.
#[test]
fn worker_standalone_telemetry_files() {
    let dir = tmp("worker_standalone");
    let metrics = dir.with_extension("metrics.json");
    let trace = dir.with_extension("trace.json");
    let (ok, stderr) = kagen(&[
        "worker",
        "gnm_undirected",
        "-n",
        "3000",
        "-m",
        "24000",
        "-c",
        "8",
        "-s",
        "42",
        "--shard-dir",
        dir.to_str().unwrap(),
        "--pe-range",
        "2..5",
        "--heartbeat",
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "standalone worker failed:\n{stderr}");

    // Metrics: a sidecar-shaped document (the same counters +
    // histogram-vectors payload the coordinator federates) with live
    // values from this rank.
    let m = std::fs::read_to_string(&metrics).expect("missing metrics file");
    let doc = json::parse(&m).unwrap();
    let counters = doc
        .as_obj("sidecar")
        .unwrap()
        .get("counters")
        .unwrap()
        .as_obj("counters")
        .unwrap();
    assert_eq!(
        counters
            .get("worker.pes_done")
            .unwrap()
            .as_u64("worker.pes_done")
            .unwrap(),
        3,
        "{m}"
    );
    assert!(m.contains("sink.shard_wall_us"), "{m}");

    // Trace: a valid Chrome document that is also a loadable sidecar
    // (schema + pid + wall anchor), containing the worker span.
    let t = std::fs::read_to_string(&trace).expect("missing trace file");
    assert!(t.contains("\"schema\":\"kagen-trace-sidecar/v1\""), "{t}");
    assert!(t.contains("\"epoch_unix_us\":"), "{t}");
    assert!(t.contains("worker.generate"), "{t}");
    json::parse(&t).unwrap();

    // Heartbeat: the final beat reports the done stage and the full
    // range (standalone workers leave it as their liveness record; in a
    // launch the coordinator removes it).
    let hb = std::fs::read_to_string(dir.join("part-00002-00005.heartbeat.json"))
        .expect("missing heartbeat file");
    assert!(hb.contains("\"stage\":\"done\""), "{hb}");
    assert!(hb.contains("\"pes_done\":3"), "{hb}");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&metrics).ok();
    std::fs::remove_file(&trace).ok();
}

/// KAGEN_LOG sets the default level, `-v`/`-q` win over it, and an
/// invalid KAGEN_LOG value is ignored rather than fatal.
#[test]
fn kagen_log_env_and_flag_precedence() {
    let dir = tmp("log_env");
    let argv = |extra: &[&'static str]| -> Vec<&str> {
        let mut a: Vec<&str> = vec![
            "stream",
            "gnm_undirected",
            "-n",
            "1000",
            "-m",
            "4000",
            "-c",
            "4",
            "--shard-dir",
        ];
        a.push(dir.to_str().unwrap());
        a.extend_from_slice(extra);
        a
    };

    // KAGEN_LOG=error silences the Info summary.
    std::fs::remove_dir_all(&dir).ok();
    let (ok, stderr) = kagen_env(&argv(&[]), &[("KAGEN_LOG", "error")]);
    assert!(ok);
    assert!(!stderr.contains("wrote 4 shards"), "{stderr}");

    // ...but an explicit -v flag wins over the env default.
    std::fs::remove_dir_all(&dir).ok();
    let (ok, stderr) = kagen_env(&argv(&["-v"]), &[("KAGEN_LOG", "error")]);
    assert!(ok);
    assert!(stderr.contains("wrote 4 shards"), "{stderr}");

    // Malformed env values are ignored: the default Info level stays.
    for bad in ["bogus", "5", "-1", "in fo"] {
        std::fs::remove_dir_all(&dir).ok();
        let (ok, stderr) = kagen_env(&argv(&[]), &[("KAGEN_LOG", bad)]);
        assert!(ok, "KAGEN_LOG={bad} must not be fatal:\n{stderr}");
        assert!(
            stderr.contains("wrote 4 shards"),
            "KAGEN_LOG={bad} must fall back to Info: {stderr}"
        );
    }

    // Worker log lines keep their rank-attributable prefix.
    std::fs::remove_dir_all(&dir).ok();
    let (ok, stderr) = kagen(&[
        "worker",
        "gnm_undirected",
        "-n",
        "1000",
        "-m",
        "4000",
        "-c",
        "4",
        "--shard-dir",
        dir.to_str().unwrap(),
        "--pe-range",
        "0..2",
        "--rank",
        "7",
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("kagen worker rank 7: "), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

/// `-q` silences the Info-level summary lines; `-v` keeps them and adds
/// Debug detail. The machine-parseable summary only moves levels, never
/// changes content.
#[test]
fn verbosity_flags_gate_log_lines() {
    let dir = tmp("verbosity");
    let argv = |extra: &[&'static str]| -> Vec<&str> {
        let mut a: Vec<&str> = vec![
            "stream",
            "gnm_undirected",
            "-n",
            "1000",
            "-m",
            "4000",
            "-c",
            "4",
            "--shard-dir",
        ];
        a.push(dir.to_str().unwrap());
        a.extend_from_slice(extra);
        a
    };

    std::fs::remove_dir_all(&dir).ok();
    let (ok, stderr) = kagen(&argv(&[]));
    assert!(ok);
    assert!(stderr.contains("wrote 4 shards"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
    let (ok, stderr) = kagen(&argv(&["-q"]));
    assert!(ok);
    assert!(
        !stderr.contains("wrote 4 shards"),
        "-q must silence the info summary: {stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}
