//! # kagen-graph
//!
//! Graph data structures and algorithms for the KaGen reproduction.
//!
//! The generators emit *edge lists* (the Graph500-style output format the
//! paper's evaluation produces); this crate supplies everything downstream
//! of that: canonicalization and merging of per-PE outputs, CSR adjacency,
//! degree statistics, connected components, BFS, and writers.

pub mod bfs;
pub mod components;
pub mod csr;
pub mod edge;
pub mod io;
pub mod stats;

pub use bfs::bfs_distances;
pub use components::UnionFind;
pub use csr::Csr;
pub use edge::{merge_pe_edges, EdgeList};
pub use stats::DegreeStats;

/// Vertex identifier. The paper generates up to 2^43 vertices; u64
/// everywhere.
pub type Node = u64;

/// A directed edge (ordered pair) or an undirected edge stored in canonical
/// orientation, depending on context.
pub type Edge = (Node, Node);
