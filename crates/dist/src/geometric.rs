//! Geometric skip lengths for Bernoulli sampling (Batagelj–Brandes):
//! instead of testing every element of a universe with probability `p`,
//! jump directly over the gaps between selected elements.
//!
//! Two delivery shapes share one conversion:
//!
//! * [`geometric_skip`] — one skip per call, one uniform per skip (the
//!   per-edge path);
//! * [`SkipSampler::skip_block`] — a whole block of skips at once: the
//!   uniforms are drawn from the caller's PRNG **in the identical
//!   order**, then converted in a tight loop against the precomputed
//!   `1/ln(1−p)`. Because both shapes apply [`SkipSampler::skip_of`] to
//!   the same uniform stream, the block path is bit-identical to calling
//!   [`geometric_skip`] in a loop — batching changes delivery, never the
//!   skips.

use kagen_util::{f64_open_of_word, Rng64};

/// Deterministic natural log for *normal* `u ∈ (0, 1)` — the uniform
/// inputs of the geometric inversion (`next_f64_open` never yields 0,
/// 1, or a subnormal).
///
/// Pure arithmetic (bit split + centered atanh series), so it
/// auto-vectorizes inside [`SkipSampler::skip_block`]'s conversion loop
/// — a libm `ln` call per skip is exactly the Algorithm-D-era cost this
/// kernel exists to break — and, unlike libm, it is bit-identical on
/// every platform, which makes the skip-sampled instances portable.
/// Absolute accuracy is ~1 ulp-scale (series truncation < 1e-15
/// relative): a floor-boundary flip in the inversion needs the product
/// to land within that of an integer, a probability-~1e-15 event per
/// skip — far below the resolution of any statistical property of the
/// instance.
#[inline(always)]
fn ln_uniform(u: f64) -> f64 {
    debug_assert!(u > 0.0 && u < 1.0 && u.is_normal());
    const LN2: f64 = core::f64::consts::LN_2;
    let bits = u.to_bits();
    let e0 = ((bits >> 52) as i64) - 1023;
    let m0 = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000);
    // Center the mantissa on 1 (m ∈ [0.75, 1.5), |s| ≤ 0.2) so accuracy
    // is relative even as u → 1⁻. Select-form, so the whole function is
    // branch-free and the conversion loop in `skip_block` vectorizes.
    let high = m0 >= 1.5;
    let m = if high { m0 * 0.5 } else { m0 };
    let e = if high { e0 + 1 } else { e0 };
    // ln m = 2·atanh(s) with s = (m−1)/(m+1): odd series in s, Horner
    // over s² with the exact Taylor coefficients 1/(2k+1).
    let s = (m - 1.0) / (m + 1.0);
    let s2 = s * s;
    let poly = 1.0 / 21.0;
    let poly = poly * s2 + 1.0 / 19.0;
    let poly = poly * s2 + 1.0 / 17.0;
    let poly = poly * s2 + 1.0 / 15.0;
    let poly = poly * s2 + 1.0 / 13.0;
    let poly = poly * s2 + 1.0 / 11.0;
    let poly = poly * s2 + 1.0 / 9.0;
    let poly = poly * s2 + 1.0 / 7.0;
    let poly = poly * s2 + 1.0 / 5.0;
    let poly = poly * s2 + 1.0 / 3.0;
    let poly = poly * s2 + 1.0;
    e as f64 * LN2 + 2.0 * s * poly
}

/// Precomputed geometric-skip converter for a fixed `p ∈ (0, 1)`.
///
/// `P(skip = k) = (1−p)^k · p` via inversion: `⌊ln U · (1/ln(1−p))⌋`
/// with `U ~ (0,1)`. The reciprocal is precomputed once so the per-skip
/// work is one `ln`, one multiply and one floor — the multiply (unlike a
/// division by `ln(1−p)`) keeps the block conversion loop free of the
/// high-latency divider.
#[derive(Clone, Copy, Debug)]
pub struct SkipSampler {
    inv_denom: f64,
}

impl SkipSampler {
    /// Converter for success probability `p`; callers must handle the
    /// degenerate cases (`p ≤ 0`, `p ≥ 1`) themselves — see
    /// [`geometric_skip`].
    #[inline]
    pub fn new(p: f64) -> SkipSampler {
        debug_assert!(p > 0.0 && p < 1.0, "degenerate p={p}");
        // ln(1−p) via ln_1p: exact even when p is below f64 granularity.
        let denom = (-p).ln_1p();
        SkipSampler {
            // `denom` is 0 only for p = 0 (excluded); keep the defensive
            // branch anyway: −∞ makes `skip_of` saturate to u64::MAX,
            // matching the historical per-edge behavior.
            inv_denom: if denom == 0.0 {
                f64::NEG_INFINITY
            } else {
                1.0 / denom
            },
        }
    }

    /// Convert one uniform `u ∈ (0, 1)` to a skip length.
    #[inline(always)]
    pub fn skip_of(&self, u: f64) -> u64 {
        let skip = (ln_uniform(u) * self.inv_denom).floor();
        if skip >= u64::MAX as f64 {
            u64::MAX
        } else {
            // Negative values (u within one ulp of 1 rounding the log to
            // +0-side) saturate to 0 via the `as` cast.
            skip as u64
        }
    }

    /// Fill `skips` with consecutive skip lengths, drawing exactly
    /// `skips.len()` uniforms from `rng` in the same order the per-call
    /// path would.
    ///
    /// The work runs in fixed-width sub-chunks of three passes — raw
    /// word fill, the branch-free `ln`-and-scale loop (this is the
    /// autovectorizable heart of the kernel: independent `ln_uniform`
    /// lanes instead of Algorithm D's serial transcendental chain), and
    /// the exact floor/saturate cast of [`Self::skip_of`]. Splitting the
    /// passes keeps the middle loop free of the saturating `f64 → u64`
    /// cast, which the vectorizer refuses.
    pub fn skip_block<R: Rng64 + ?Sized>(&self, rng: &mut R, skips: &mut [u64]) {
        const CONV: usize = 128;
        let mut vals = [0f64; CONV];
        for chunk in skips.chunks_mut(CONV) {
            for s in chunk.iter_mut() {
                *s = rng.next_u64();
            }
            for (v, s) in vals.iter_mut().zip(chunk.iter()) {
                let u = f64_open_of_word(*s);
                *v = (ln_uniform(u) * self.inv_denom).floor();
            }
            for (s, v) in chunk.iter_mut().zip(vals.iter()) {
                *s = if *v >= u64::MAX as f64 {
                    u64::MAX
                } else {
                    // Negative values (u within one ulp of 1 rounding the
                    // log to the +0 side) saturate to 0 via the cast.
                    *v as u64
                };
            }
        }
    }
}

/// Number of consecutive failures before the next success of a Bernoulli
/// process with success probability `p` — i.e. the gap length to skip.
///
/// For `p ≥ 1` the skip is 0; for `p ≤ 0` it is `u64::MAX` (no further
/// successes within any finite universe). Neither degenerate case
/// consumes a uniform.
#[inline]
pub fn geometric_skip<R: Rng64 + ?Sized>(rng: &mut R, p: f64) -> u64 {
    if p >= 1.0 {
        return 0;
    }
    if p <= 0.0 {
        return u64::MAX;
    }
    SkipSampler::new(p).skip_of(rng.next_f64_open())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kagen_util::Mt64;

    #[test]
    fn degenerate_probabilities() {
        let mut rng = Mt64::new(1);
        assert_eq!(geometric_skip(&mut rng, 1.0), 0);
        assert_eq!(geometric_skip(&mut rng, 1.5), 0);
        assert_eq!(geometric_skip(&mut rng, 0.0), u64::MAX);
        assert_eq!(geometric_skip(&mut rng, -0.1), u64::MAX);
    }

    #[test]
    fn zero_skip_probability_is_p() {
        // P(skip = 0) = p.
        let mut rng = Mt64::new(2);
        let p = 0.3;
        let reps = 100_000;
        let zeros = (0..reps)
            .filter(|_| geometric_skip(&mut rng, p) == 0)
            .count();
        let frac = zeros as f64 / reps as f64;
        let se = (p * (1.0 - p) / reps as f64).sqrt();
        assert!((frac - p).abs() < 5.0 * se, "frac {frac}");
    }

    #[test]
    fn mean_matches_geometric() {
        // E[skip] = (1−p)/p.
        let mut rng = Mt64::new(3);
        let p = 0.05;
        let reps = 100_000u64;
        let sum: u64 = (0..reps).map(|_| geometric_skip(&mut rng, p)).sum();
        let mean = sum as f64 / reps as f64;
        let expect = (1.0 - p) / p; // 19
        let sd = ((1.0 - p) / (p * p)).sqrt();
        let se = sd / (reps as f64).sqrt();
        assert!((mean - expect).abs() < 5.0 * se, "mean {mean} vs {expect}");
    }

    #[test]
    fn tiny_p_does_not_overflow() {
        let mut rng = Mt64::new(4);
        let skip = geometric_skip(&mut rng, 1e-300);
        assert!(skip > 1u64 << 40); // astronomically large, but defined
    }

    #[test]
    fn block_matches_per_call_exactly() {
        // The block conversion must reproduce the per-call skips
        // bit-for-bit from the same PRNG state, for every block size and
        // across the probability range (including p within one ulp of 1
        // and denormal-adjacent p).
        for &p in &[0.9999999999999999f64, 0.75, 0.5, 0.01, 1e-9, 1e-300] {
            for &len in &[1usize, 2, 255, 256, 257, 1024] {
                let sampler = SkipSampler::new(p);
                let mut a = Mt64::new(42);
                let mut b = Mt64::new(42);
                let per_call: Vec<u64> = (0..len).map(|_| geometric_skip(&mut a, p)).collect();
                let mut block = vec![0u64; len];
                sampler.skip_block(&mut b, &mut block);
                assert_eq!(per_call, block, "p={p} len={len}");
                // Both paths consumed the same number of words.
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn ln_uniform_accuracy() {
        // The deterministic log must agree with libm to ~1 ulp-scale
        // relative accuracy across the full uniform range.
        let mut rng = Mt64::new(17);
        let mut worst = 0.0f64;
        for _ in 0..200_000 {
            let u = rng.next_f64_open();
            let got = ln_uniform(u);
            let want = u.ln();
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
        }
        // Extremes: near 1, near the smallest next_f64_open output.
        for &u in &[
            f64::from_bits(1.0f64.to_bits() - 1), // largest f64 < 1
            0.5 + f64::EPSILON,
            0.5 - f64::EPSILON,
            0.75,
            1.5 * (0.5f64).powi(54),
            (0.5f64).powi(53),
        ] {
            let rel = ((ln_uniform(u) - u.ln()) / u.ln()).abs();
            worst = worst.max(rel);
        }
        assert!(worst < 1e-14, "worst relative error {worst:e}");
    }

    #[test]
    fn chi_square_gap_distribution() {
        // The blocked skips must follow Geometric(p): chi-square over the
        // gap-length buckets {0, 1, …, 14, ≥15}.
        let p = 0.2f64;
        let sampler = SkipSampler::new(p);
        let mut rng = Mt64::new(7);
        let n = 200_000usize;
        let buckets = 16usize;
        let mut counts = vec![0u64; buckets];
        let mut block = vec![0u64; 1024];
        let mut drawn = 0usize;
        while drawn < n {
            sampler.skip_block(&mut rng, &mut block);
            for &s in &block {
                counts[(s as usize).min(buckets - 1)] += 1;
            }
            drawn += block.len();
        }
        let total: u64 = counts.iter().sum();
        let mut chi2 = 0.0f64;
        for (k, &c) in counts.iter().enumerate() {
            let prob = if k + 1 < buckets {
                (1.0 - p).powi(k as i32) * p
            } else {
                (1.0 - p).powi(k as i32) // tail: P(skip >= 15)
            };
            let expect = total as f64 * prob;
            chi2 += (c as f64 - expect).powi(2) / expect;
        }
        // 15 degrees of freedom: P(chi2 > 37.7) ≈ 0.001.
        assert!(chi2 < 37.7, "chi2 = {chi2}, counts = {counts:?}");
    }
}
