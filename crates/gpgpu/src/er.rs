//! GPGPU Erdős–Rényi generation (§4.3.1).
//!
//! "Since the ER generators are a direct application of sampling, the
//! GPGPU implementation from \[18\] can be used \[...\] each PE is assigned a
//! chunk and computes the correct sample size and seeds for the
//! pseudorandom generator on the CPU and then invokes the GPGPU algorithm
//! to sample the edges of the graph."
//!
//! The host side therefore runs the divide-and-conquer count recursion
//! (hypergeometric splits for G(n,m)) and hands each leaf block — seed
//! identity, universe range, and for G(n,m) its sample count — to one
//! device block, which samples its edges independently (Method D for
//! G(n,m), geometric skip sampling for G(n,p) since the skip-kernel
//! swap). Because leaf sampling uses the same block-id-derived seeds as
//! the CPU generators, the device output is **bit-identical** to
//! [`kagen_core::GnmDirected`] / [`kagen_core::GnpDirected`] — asserted
//! in tests.

use crate::device::Device;
use kagen_core::er::{directed_index_to_edge, er_leaf_blocks, er_pe_block_range};
use kagen_core::GnmDirected;
use kagen_sampling::bernoulli_sample_batched;
use kagen_util::seed::stream;
use kagen_util::{derive_seed, Mt64};

/// One device block's work: sample `count` indices from the block range.
struct LeafJob {
    block: u64,
    count: u64,
}

/// Directed G(n,m) on the simulated device.
#[derive(Clone, Debug)]
pub struct GpuGnmDirected {
    n: u64,
    m: u64,
    seed: u64,
}

impl GpuGnmDirected {
    /// `n` vertices, exactly `m` directed edges.
    pub fn new(n: u64, m: u64) -> Self {
        let universe = (n as u128) * (n as u128).saturating_sub(1);
        assert!((m as u128) <= universe, "m exceeds the directed universe");
        GpuGnmDirected { n, m, seed: 1 }
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generate the whole instance on `dev`; edges are returned in global
    /// index order (the concatenation of the sorted per-block samples).
    pub fn generate(&self, dev: &Device) -> Vec<(u64, u64)> {
        let cpu = GnmDirected::new(self.n, self.m).with_seed(self.seed);
        let Some(sampler) = cpu.sampler() else {
            return Vec::new();
        };
        // Host: count recursion (cheap, O(blocks) hypergeometric draws).
        let mut jobs: Vec<LeafJob> = Vec::new();
        sampler.for_block_counts(0, sampler.blocks(), &mut |block, count| {
            jobs.push(LeafJob { block, count })
        });
        let n = self.n;
        // Device: one block per leaf; PRNG seeded by the leaf id exactly as
        // the CPU path does inside `DistributedSampler::sample_block`.
        let per_block: Vec<Vec<(u64, u64)>> = dev.launch(jobs, move |ctx, job| {
            let mut out = Vec::with_capacity(job.count as usize);
            sampler.sample_block_with_count(job.block, job.count, &mut |idx| {
                out.push(directed_index_to_edge(n, idx));
            });
            // Lockstep accounting: each sampled edge is one lane of work
            // ending in a 16-byte global-memory store.
            ctx.simd_for(out.len(), |_| true);
            ctx.gmem_write(out.len() * 16);
            out
        });
        per_block.concat()
    }
}

/// Directed G(n,p) on the simulated device.
#[derive(Clone, Debug)]
pub struct GpuGnpDirected {
    n: u64,
    p: f64,
    seed: u64,
}

impl GpuGnpDirected {
    /// `n` vertices, each ordered pair kept with probability `p`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
        GpuGnpDirected { n, p, seed: 1 }
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generate the whole instance on `dev` (global index order).
    pub fn generate(&self, dev: &Device) -> Vec<(u64, u64)> {
        let universe = (self.n as u128) * (self.n as u128).saturating_sub(1);
        if universe == 0 || self.p == 0.0 {
            return Vec::new();
        }
        let expected = ((universe as f64) * self.p) as u64;
        let blocks = er_leaf_blocks(universe, expected.max(1));
        // Host: the leaf decomposition only — geometric skip sampling
        // needs no predetermined counts, each device block draws its own
        // skips from the leaf-seeded PRNG (the chunk distribution stays
        // "predetermined" in the §4.3 sense: it is a pure function of
        // the leaf id).
        let seed = self.seed;
        let p = self.p;
        let jobs: Vec<(u64, u128, u128)> = (0..blocks)
            .map(|b| {
                let start = universe * b as u128 / blocks as u128;
                let end = universe * (b + 1) as u128 / blocks as u128;
                (b, start, end)
            })
            .collect();
        let n = self.n;
        let per_block: Vec<Vec<(u64, u64)>> = dev.launch(jobs, move |ctx, (b, start, end)| {
            let mut rng = Mt64::new(derive_seed(seed, &[stream::SAMPLE, b]));
            let mut out = Vec::with_capacity((((end - start) as f64) * p) as usize + 1);
            // The block-batched skip kernel is the device-friendly shape:
            // a block of uniforms, one branch-free conversion loop, a
            // prefix sum — mirrored here against the same draw order as
            // the CPU generator.
            bernoulli_sample_batched(&mut rng, (end - start) as u64, p, &mut |idxs| {
                for &i in idxs {
                    out.push(directed_index_to_edge(n, start + i as u128));
                }
            });
            ctx.simd_for(out.len(), |_| true);
            ctx.gmem_write(out.len() * 16);
            out
        });
        per_block.concat()
    }
}

/// The block range of the directed universe PE `pe` would own — exposed so
/// a *distributed* accelerator setup (one device per PE, §2.3 "every PE
/// has a GPGPU available") can generate just its share.
pub fn pe_leaf_range(n: u64, m: u64, chunks: usize, pe: usize) -> (u64, u64) {
    let universe = (n as u128) * (n as u128).saturating_sub(1);
    let blocks = er_leaf_blocks(universe, m.max(1));
    er_pe_block_range(blocks, chunks, pe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kagen_core::{generate_directed, GnpDirected};

    #[test]
    fn gnm_bit_identical_to_cpu() {
        for &(n, m, seed) in &[(100u64, 800u64, 1u64), (500, 20_000, 7), (64, 64 * 63, 3)] {
            let dev = Device::default();
            let mut gpu = GpuGnmDirected::new(n, m).with_seed(seed).generate(&dev);
            let cpu = generate_directed(&GnmDirected::new(n, m).with_seed(seed));
            gpu.sort_unstable();
            assert_eq!(gpu, cpu.edges, "n={n} m={m} seed={seed}");
        }
    }

    #[test]
    fn gnp_bit_identical_to_cpu() {
        for &(n, p, seed) in &[(300u64, 0.01f64, 2u64), (100, 0.3, 9)] {
            let dev = Device::default();
            let mut gpu = GpuGnpDirected::new(n, p).with_seed(seed).generate(&dev);
            let cpu = generate_directed(&GnpDirected::new(n, p).with_seed(seed));
            gpu.sort_unstable();
            assert_eq!(gpu, cpu.edges, "n={n} p={p} seed={seed}");
        }
    }

    #[test]
    fn gnm_exact_count_and_write_volume() {
        let dev = Device::default();
        let edges = GpuGnmDirected::new(400, 5000).with_seed(4).generate(&dev);
        assert_eq!(edges.len(), 5000);
        // Every edge leaves the device exactly once: 16 bytes per edge.
        assert_eq!(dev.stats().gmem_write, 5000 * 16);
        assert_eq!(dev.stats().kernel_launches, 1);
    }

    #[test]
    fn blocks_match_host_plan() {
        let n = 1000u64;
        let m = 100_000u64;
        let universe = (n as u128) * (n as u128 - 1);
        let dev = Device::default();
        GpuGnmDirected::new(n, m).with_seed(1).generate(&dev);
        assert_eq!(
            dev.stats().blocks_executed,
            er_leaf_blocks(universe, m),
            "one device block per leaf block"
        );
    }

    #[test]
    fn pe_leaf_range_partitions() {
        let (n, m, chunks) = (2000u64, 50_000u64, 16usize);
        let mut prev_hi = 0;
        for pe in 0..chunks {
            let (lo, hi) = pe_leaf_range(n, m, chunks, pe);
            assert_eq!(lo, prev_hi, "contiguous coverage");
            prev_hi = hi;
        }
        let universe = (n as u128) * (n as u128 - 1);
        assert_eq!(prev_hi, er_leaf_blocks(universe, m));
    }

    #[test]
    fn empty_instances() {
        let dev = Device::default();
        assert!(GpuGnmDirected::new(5, 0).generate(&dev).is_empty());
        assert!(GpuGnpDirected::new(5, 0.0).generate(&dev).is_empty());
        assert!(GpuGnpDirected::new(1, 0.5).generate(&dev).is_empty());
    }
}
