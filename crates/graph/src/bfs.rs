//! Breadth-first search (the Graph500 kernel; used in examples/tests).

use crate::{Csr, Node};

/// BFS distances from `source`; unreachable vertices get `u32::MAX`.
pub fn bfs_distances(csr: &Csr, source: Node) -> Vec<u32> {
    let n = csr.n();
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in csr.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Eccentricity-style summary of a BFS: (reached vertices, max finite
/// distance).
pub fn bfs_summary(csr: &Csr, source: Node) -> (usize, u32) {
    let dist = bfs_distances(csr, source);
    let reached = dist.iter().filter(|&&d| d != u32::MAX).count();
    let max = dist
        .iter()
        .filter(|&&d| d != u32::MAX)
        .max()
        .copied()
        .unwrap_or(0);
    (reached, max)
}

/// Pseudo-diameter via the double-sweep heuristic: BFS from `start`, then
/// BFS again from the farthest vertex found. A lower bound on the true
/// diameter, exact on trees; standard for mesh/network diagnostics.
pub fn pseudo_diameter(csr: &Csr, start: Node) -> u32 {
    let first = bfs_distances(csr, start);
    let (far, _) = first
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != u32::MAX)
        .max_by_key(|(_, &d)| d)
        .expect("nonempty graph");
    let second = bfs_distances(csr, far as Node);
    second
        .iter()
        .filter(|&&d| d != u32::MAX)
        .max()
        .copied()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeList;

    #[test]
    fn path_distances() {
        let el = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let csr = Csr::undirected(&el);
        assert_eq!(bfs_distances(&csr, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&csr, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn unreachable_marked() {
        let el = EdgeList::new(4, vec![(0, 1)]);
        let csr = Csr::undirected(&el);
        let d = bfs_distances(&csr, 0);
        assert_eq!(d[2], u32::MAX);
        assert_eq!(bfs_summary(&csr, 0), (2, 1));
    }

    #[test]
    fn star_graph() {
        let el = EdgeList::new(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
        let csr = Csr::undirected(&el);
        let (reached, ecc) = bfs_summary(&csr, 1);
        assert_eq!(reached, 5);
        assert_eq!(ecc, 2);
    }

    #[test]
    fn pseudo_diameter_path_exact() {
        // A path's diameter is found by the double sweep from any start.
        let el = EdgeList::new(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let csr = Csr::undirected(&el);
        for start in 0..6 {
            assert_eq!(pseudo_diameter(&csr, start), 5);
        }
    }

    #[test]
    fn pseudo_diameter_star() {
        let el = EdgeList::new(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
        let csr = Csr::undirected(&el);
        assert_eq!(pseudo_diameter(&csr, 0), 2);
    }
}
