//! Observability integration tests: telemetry must be a pure observer.
//!
//! The hard rule of `kagen_obs` (ISSUE 6): enabling metrics or tracing
//! never touches an RNG stream or an output byte. The matrix test below
//! proves it for **every** generator model by comparing shard files and
//! `manifest.json` of a telemetry-on run against a telemetry-off run,
//! byte for byte. The remaining tests pin the metrics/trace file
//! formats the CLI emits: both must parse with the repo's own JSON
//! parser, and a launch's per-rank edge counters must reconcile exactly
//! with the federated manifest.

use kagen_repro::pipeline::manifest::json;
use std::path::{Path, PathBuf};
use std::process::Command;

const KAGEN: &str = env!("CARGO_BIN_EXE_kagen");

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kagen_it_obs_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Run the kagen binary; returns (success, stderr).
fn kagen(args: &[&str]) -> (bool, String) {
    let out = Command::new(KAGEN)
        .args(args)
        .output()
        .expect("cannot spawn kagen");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Sorted `(file name, bytes)` of every regular file in a directory.
fn dir_contents(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| {
            let entry = entry.unwrap();
            (
                entry.file_name().to_string_lossy().into_owned(),
                std::fs::read(entry.path()).unwrap(),
            )
        })
        .collect();
    out.sort();
    out
}

/// Every model of the CLI, with parameters small enough that the whole
/// matrix (2 runs x N models) stays in test-suite time.
fn model_matrix() -> Vec<Vec<&'static str>> {
    vec![
        vec!["gnm_directed", "-n", "2000", "-m", "8000"],
        vec!["gnm_undirected", "-n", "2000", "-m", "8000"],
        vec!["gnp_directed", "-n", "2000", "-p", "0.002"],
        vec!["gnp_undirected", "-n", "2000", "-p", "0.004"],
        vec![
            "gnp_undirected",
            "-n",
            "2000",
            "-p",
            "0.004",
            "--gnp-leaves",
            "algo-d",
        ],
        vec!["rgg2d", "-n", "2000"],
        vec!["rgg3d", "-n", "1000"],
        vec!["rdg2d", "-n", "600"],
        vec!["rdg3d", "-n", "300"],
        vec!["rhg", "-n", "2000", "-d", "8", "-g", "2.8"],
        vec!["srhg", "-n", "2000", "-d", "8", "-g", "2.8"],
        vec!["soft-rhg", "-n", "600", "-d", "8", "-g", "2.8", "-T", "0.5"],
        vec!["ba", "-n", "2000", "-d", "4"],
        vec!["rmat", "-n", "2048", "-m", "8000"],
        vec![
            "sbm", "-n", "2000", "-b", "4", "--p-in", "0.01", "--p-out", "0.001",
        ],
    ]
}

/// The tentpole guarantee, proven over the full generator matrix: a
/// `kagen stream` run with `--metrics-out` + `--trace-out` writes the
/// exact same shard bytes and `manifest.json` as a telemetry-off run.
#[test]
fn telemetry_on_off_shards_bit_identical_every_model() {
    for (i, model) in model_matrix().iter().enumerate() {
        let dir_off = tmp(&format!("det_off_{i}"));
        let dir_on = tmp(&format!("det_on_{i}"));
        let metrics = dir_on.with_extension("metrics.json");
        let trace = dir_on.with_extension("trace.json");

        let mut base: Vec<&str> = vec!["stream"];
        base.extend(model);
        base.extend(["-c", "6", "-s", "99", "--shard-dir"]);

        let mut off_args = base.clone();
        off_args.push(dir_off.to_str().unwrap());
        let (ok, stderr) = kagen(&off_args);
        assert!(ok, "{model:?} telemetry-off run failed:\n{stderr}");

        let mut on_args = base.clone();
        on_args.push(dir_on.to_str().unwrap());
        on_args.extend(["--metrics-out", metrics.to_str().unwrap()]);
        on_args.extend(["--trace-out", trace.to_str().unwrap()]);
        let (ok, stderr) = kagen(&on_args);
        assert!(ok, "{model:?} telemetry-on run failed:\n{stderr}");

        let off = dir_contents(&dir_off);
        let on = dir_contents(&dir_on);
        assert_eq!(
            off.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            on.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            "{model:?}: telemetry changed the file set"
        );
        for ((name, bytes_off), (_, bytes_on)) in off.iter().zip(on.iter()) {
            assert_eq!(
                bytes_off, bytes_on,
                "{model:?}: telemetry changed the bytes of {name}"
            );
        }

        // The telemetry artifacts themselves exist and parse.
        let m = std::fs::read_to_string(&metrics).expect("missing metrics file");
        json::parse(&m).unwrap_or_else(|e| panic!("{model:?}: bad metrics JSON: {e}"));
        let t = std::fs::read_to_string(&trace).expect("missing trace file");
        json::parse(&t).unwrap_or_else(|e| panic!("{model:?}: bad trace JSON: {e}"));

        std::fs::remove_dir_all(&dir_off).ok();
        std::fs::remove_dir_all(&dir_on).ok();
        std::fs::remove_file(&metrics).ok();
        std::fs::remove_file(&trace).ok();
    }
}

/// A launch-mode metrics file reconciles with its manifest: per-rank
/// edge counts (and the rank-local `gen.edges` counters from the worker
/// sidecars) sum to the federated edge total, and the sidecars are
/// cleaned off the shard directory after federation.
#[test]
fn launch_metrics_reconcile_with_manifest() {
    let dir = tmp("launch_metrics");
    let metrics = dir.with_extension("metrics.json");
    let (ok, stderr) = kagen(&[
        "launch",
        "gnm_undirected",
        "-n",
        "3000",
        "-m",
        "24000",
        "-c",
        "8",
        "-s",
        "42",
        "--workers",
        "3",
        "--shard-dir",
        dir.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert!(ok, "launch failed:\n{stderr}");

    let text = std::fs::read_to_string(&metrics).expect("missing metrics file");
    let rm = kagen_repro::cluster::RunMetrics::from_json(&text).expect("bad metrics file");
    assert_eq!(rm.model, "gnm_undirected");
    assert_eq!(rm.seed, 42);
    assert_eq!(rm.chunks, 8);
    assert_eq!(rm.ranks.len(), 3);

    let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    let doc = json::parse(&manifest).unwrap();
    let manifest_edges = doc
        .as_obj("manifest")
        .and_then(|o| o.get("edges").and_then(|v| v.as_u64("edges")))
        .unwrap();
    assert_eq!(rm.edges, manifest_edges);

    let rank_sum: u64 = rm.ranks.iter().map(|r| r.edges).sum();
    assert_eq!(rank_sum + rm.reused_edges, manifest_edges);
    for r in &rm.ranks {
        let counters: std::collections::HashMap<_, _> =
            r.counters.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        // The rank's own generator counter agrees with its ledger edge
        // count — the sidecar really came from that worker process.
        assert_eq!(counters.get("gen.edges"), Some(&r.edges), "{r:?}");
        assert!(counters.get("rng.words").copied().unwrap_or(0) > 0, "{r:?}");
        assert!(r.wall_us > 0, "{r:?}");
    }

    // Sidecars are consumed during federation, not left as litter that
    // a `--resume` of a different telemetry setting could misread.
    let leftover: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".metrics.json"))
        .collect();
    assert!(leftover.is_empty(), "sidecars not cleaned up: {leftover:?}");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&metrics).ok();
}

/// Launch shard output is byte-identical with and without telemetry —
/// the multi-process twin of the stream-mode matrix (workers enable
/// metrics when handed `--metrics-sidecar`, and must still write the
/// same shards).
#[test]
fn launch_telemetry_on_off_bit_identical() {
    let dir_off = tmp("launch_det_off");
    let dir_on = tmp("launch_det_on");
    let metrics = dir_on.with_extension("metrics.json");
    let base = |dir: &str| {
        vec![
            "launch".to_string(),
            "gnm_undirected".into(),
            "-n".into(),
            "3000".into(),
            "-m".into(),
            "24000".into(),
            "-c".into(),
            "8".into(),
            "-s".into(),
            "42".into(),
            "--workers".into(),
            "3".into(),
            "--shard-dir".into(),
            dir.to_string(),
        ]
    };
    let off_args = base(dir_off.to_str().unwrap());
    let (ok, stderr) = kagen(&off_args.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    assert!(ok, "telemetry-off launch failed:\n{stderr}");

    let mut on_args = base(dir_on.to_str().unwrap());
    on_args.extend(["--metrics-out".into(), metrics.to_str().unwrap().into()]);
    let (ok, stderr) = kagen(&on_args.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    assert!(ok, "telemetry-on launch failed:\n{stderr}");

    // Compare shards + manifest; the ledger records wall-clock times and
    // the on-run's metrics file lives outside the shard dir.
    let keep = |name: &str| name.ends_with(".kgc") || name == "manifest.json";
    let off: Vec<_> = dir_contents(&dir_off)
        .into_iter()
        .filter(|(n, _)| keep(n))
        .collect();
    let on: Vec<_> = dir_contents(&dir_on)
        .into_iter()
        .filter(|(n, _)| keep(n))
        .collect();
    assert!(!off.is_empty());
    assert_eq!(off, on, "telemetry changed launch output bytes");

    std::fs::remove_dir_all(&dir_off).ok();
    std::fs::remove_dir_all(&dir_on).ok();
    std::fs::remove_file(&metrics).ok();
}

/// The Chrome trace file is a `{"traceEvents": [...]}` document whose
/// events carry the fields the Perfetto/chrome://tracing loaders
/// require, including the phase spans of a launch run.
#[test]
fn trace_file_is_wellformed_chrome_json() {
    let dir = tmp("trace_shape");
    let trace = dir.with_extension("trace.json");
    let (ok, stderr) = kagen(&[
        "stream",
        "gnm_undirected",
        "-n",
        "2000",
        "-m",
        "8000",
        "-c",
        "4",
        "--merge",
        "external",
        "--shard-dir",
        dir.to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "stream failed:\n{stderr}");

    let text = std::fs::read_to_string(&trace).unwrap();
    let doc = json::parse(&text).unwrap();
    let events = doc
        .as_obj("trace")
        .and_then(|o| o.get("traceEvents").cloned())
        .unwrap();
    let json::Value::Arr(events) = events else {
        panic!("traceEvents is not an array");
    };
    assert!(!events.is_empty(), "no spans recorded");
    let mut names = Vec::new();
    for ev in &events {
        let obj = ev.as_obj("event").unwrap();
        // "X" complete events: name, category, timestamp, duration,
        // process and thread id are all mandatory for the viewers.
        for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid"] {
            assert!(obj.get(key).is_ok(), "event missing {key}: {ev:?}");
        }
        match obj.get("name").unwrap() {
            json::Value::Str(s) => names.push(s.clone()),
            other => panic!("non-string event name: {other:?}"),
        }
        match obj.get("ph").unwrap() {
            json::Value::Str(s) => assert_eq!(s, "X"),
            other => panic!("non-string ph: {other:?}"),
        }
    }
    assert!(
        names.iter().any(|n| n == "stream.write_shards"),
        "missing write span in {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "stream.merge"),
        "missing merge span in {names:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&trace).ok();
}

/// Flag plumbing: telemetry flags are rejected exactly where they make
/// no sense, before anything is generated or spawned.
#[test]
fn telemetry_flag_validation() {
    let cases: &[(&[&str], &str)] = &[
        (
            &["gnm_undirected", "--metrics-out", "/tmp/x.json"],
            "--metrics-out requires",
        ),
        (
            &["gnm_undirected", "--metrics-sidecar"],
            "--metrics-sidecar requires",
        ),
        (
            &[
                "worker",
                "gnm_undirected",
                "--shard-dir",
                "/tmp/x",
                "--pe-range",
                "0..2",
                "--trace-out",
                "/tmp/t.json",
            ],
            "--trace-out requires",
        ),
    ];
    for (args, needle) in cases {
        let (ok, stderr) = kagen(args);
        assert!(!ok, "{args:?} must be rejected");
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
    }
}

/// `-q` silences the Info-level summary lines; `-v` keeps them and adds
/// Debug detail. The machine-parseable summary only moves levels, never
/// changes content.
#[test]
fn verbosity_flags_gate_log_lines() {
    let dir = tmp("verbosity");
    let argv = |extra: &[&'static str]| -> Vec<&str> {
        let mut a: Vec<&str> = vec![
            "stream",
            "gnm_undirected",
            "-n",
            "1000",
            "-m",
            "4000",
            "-c",
            "4",
            "--shard-dir",
        ];
        a.push(dir.to_str().unwrap());
        a.extend_from_slice(extra);
        a
    };

    std::fs::remove_dir_all(&dir).ok();
    let (ok, stderr) = kagen(&argv(&[]));
    assert!(ok);
    assert!(stderr.contains("wrote 4 shards"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
    let (ok, stderr) = kagen(&argv(&["-q"]));
    assert!(ok);
    assert!(
        !stderr.contains("wrote 4 shards"),
        "-q must silence the info summary: {stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}
