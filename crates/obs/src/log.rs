//! Leveled stderr logger behind `-v`/`-q` and `KAGEN_LOG`.
//!
//! Replaces ad-hoc `eprintln!`s with one consistent channel: every line
//! is `<prefix>: <message>` where the prefix is the subcommand name
//! (`kagen launch`, `throughput`, ...), set once at startup with
//! [`set_prefix`]. The default level is [`Level::Info`]; binaries map
//! `-v` to Debug, `-vv` to Trace, `-q` to Warn, `-qq` to Error, and
//! [`init_from_env`] lets `KAGEN_LOG=debug` override the default
//! without touching flags.
//!
//! Use through the crate-root macros:
//!
//! ```
//! kagen_obs::log::set_prefix("doc");
//! kagen_obs::info!("{} ranks spawned", 3); // -> "doc: 3 ranks spawned"
//! kagen_obs::debug!("hidden at the default level");
//! ```

use std::fmt::Arguments;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Log severity, most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable problems; shown even under `-qq`.
    Error = 0,
    /// Recoverable anomalies (retries, invalidated shards).
    Warn = 1,
    /// Run progress and summaries (the default).
    Info = 2,
    /// Per-phase detail (`-v`).
    Debug = 3,
    /// Per-item detail (`-vv`).
    Trace = 4,
}

impl Level {
    /// Parse a level name (case-insensitive): `error`, `warn`, `info`,
    /// `debug`, `trace`, or a numeric `0`..`4`.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" | "0" => Some(Level::Error),
            "warn" | "warning" | "1" => Some(Level::Warn),
            "info" | "2" => Some(Level::Info),
            "debug" | "3" => Some(Level::Debug),
            "trace" | "4" => Some(Level::Trace),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Set the maximum level that gets printed.
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// The current maximum printed level.
pub fn level() -> Level {
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Whether a message at level `l` would be printed.
#[inline]
pub fn enabled(l: Level) -> bool {
    l as u8 <= LEVEL.load(Ordering::Relaxed)
}

/// Apply `KAGEN_LOG` (e.g. `KAGEN_LOG=debug`) if set and valid.
/// Call before parsing flags so `-v`/`-q` win over the environment.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("KAGEN_LOG") {
        if let Some(l) = Level::parse(&v) {
            set_level(l);
        }
    }
}

static PREFIX: Mutex<String> = Mutex::new(String::new());

/// Set the line prefix (subcommand name, e.g. `kagen launch`). Lines
/// print as `<prefix>: <message>`; an empty prefix prints bare.
pub fn set_prefix(p: &str) {
    *PREFIX.lock().unwrap_or_else(|e| e.into_inner()) = p.to_string();
}

/// Print one line at level `l` (no-op if the level is filtered). The
/// backend for the [`crate::error!`]/[`crate::warn!`]/[`crate::info!`]/
/// [`crate::debug!`]/[`crate::trace_log!`] macros.
pub fn log(l: Level, args: Arguments<'_>) {
    if !enabled(l) {
        return;
    }
    let prefix = PREFIX.lock().unwrap_or_else(|e| e.into_inner());
    if prefix.is_empty() {
        eprintln!("{args}");
    } else {
        eprintln!("{prefix}: {args}");
    }
}

/// Log at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Error, ::core::format_args!($($arg)*))
    };
}

/// Log at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Warn, ::core::format_args!($($arg)*))
    };
}

/// Log at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Info, ::core::format_args!($($arg)*))
    };
}

/// Log at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Debug, ::core::format_args!($($arg)*))
    };
}

/// Log at [`Level::Trace`] (named to avoid clashing with the
/// [`crate::trace`] module in `use` position).
#[macro_export]
macro_rules! trace_log {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Trace, ::core::format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_accepts_names_and_digits() {
        assert_eq!(Level::parse("error"), Some(Level::Error));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse(" info "), Some(Level::Info));
        assert_eq!(Level::parse("Debug"), Some(Level::Debug));
        assert_eq!(Level::parse("trace"), Some(Level::Trace));
        assert_eq!(Level::parse("3"), Some(Level::Debug));
        assert_eq!(Level::parse("verbose"), None);
        assert_eq!(Level::parse(""), None);
    }

    #[test]
    fn level_parse_rejects_malformed_inputs() {
        // Out-of-range digits, signs, floats, and embedded whitespace
        // all fail closed (caller keeps its current level).
        for bad in [
            "5",
            "-1",
            "+2",
            "99",
            "2.0",
            "0x1",
            "in fo",
            "debu",
            "debugg",
            "truee",
            "trace!",
            "\n\t",
            "２",
            "warn warn",
        ] {
            assert_eq!(Level::parse(bad), None, "{bad:?} must not parse");
        }
        // Surrounding whitespace (any amount) is tolerated; inner is not.
        assert_eq!(Level::parse("\t trace \n"), Some(Level::Trace));
        assert_eq!(Level::parse("  0  "), Some(Level::Error));
        // Mixed case resolves through ASCII lowercasing only.
        assert_eq!(Level::parse("ErRoR"), Some(Level::Error));
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
    }

    #[test]
    fn init_from_env_ignores_invalid_and_applies_valid() {
        // Env mutation is process-global: restore everything before
        // returning so parallel tests see the default level.
        let before = level();
        std::env::set_var("KAGEN_LOG", "not-a-level");
        init_from_env();
        assert_eq!(level(), before, "invalid KAGEN_LOG must be ignored");
        std::env::set_var("KAGEN_LOG", "error");
        init_from_env();
        assert_eq!(level(), Level::Error);
        // Flags are applied after init_from_env, so a later set_level
        // (the `-v`/`-q` path) wins over the environment.
        set_level(Level::Debug);
        assert_eq!(level(), Level::Debug);
        std::env::remove_var("KAGEN_LOG");
        set_level(before);
    }

    #[test]
    fn level_ordering_gates_enabled() {
        // Not using set_level here beyond restoring the default, to
        // avoid racing parallel tests that log.
        let before = level();
        set_level(Level::Info);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        assert!(!enabled(Level::Trace));
        set_level(before);
    }

    #[test]
    fn macros_compile_and_filter() {
        crate::debug!("filtered at the default level: {}", 42);
        crate::trace_log!("also filtered");
    }
}
