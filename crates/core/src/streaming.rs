//! Streaming edge output (§9 future work: "extend our remaining
//! generators to use a streaming approach … drastically reduce the memory
//! needed").
//!
//! [`StreamingGenerator::stream_pe`] emits a PE's edges through a callback
//! instead of materializing a [`PeGraph`](crate::PeGraph), so a PE's memory footprint is
//! its generator state (cells, counts, PRNGs) — not its output. For the
//! index-based generators (ER, BA, R-MAT, SBM) the state is O(log)-sized;
//! for RGG it is the current cell neighborhood.
//!
//! Every implementation is *output-identical* to `generate_pe` (asserted
//! in tests): streaming changes the delivery, never the instance.

use crate::ba::BarabasiAlbert;
use crate::er::{GnmDirected, GnmUndirected, GnpDirected, GnpUndirected};
use crate::rdg::Rdg;
use crate::rgg::Rgg;
use crate::rhg::{Rhg, SoftRhg};
use crate::rmat::Rmat;
use crate::sbm::StochasticBlockModel;
use crate::srhg::Srhg;
use crate::Generator;

/// Edge-streaming extension of [`Generator`].
pub trait StreamingGenerator: Generator {
    /// Emit every edge PE `pe` is responsible for, in the same order
    /// `generate_pe` would store them.
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64));

    /// Count a PE's edges without materializing them.
    fn count_pe(&self, pe: usize) -> u64 {
        let mut count = 0;
        self.stream_pe(pe, &mut |_, _| count += 1);
        count
    }

    /// Drive every PE in order through `emit` — the sequential sink
    /// driver used by the output pipeline when a single consumer wants
    /// the whole instance as one stream. Peak memory stays at
    /// generator-state size; no edge is ever buffered here.
    fn stream_all(&self, emit: &mut dyn FnMut(u64, u64)) {
        for pe in 0..self.num_chunks() {
            self.stream_pe(pe, emit);
        }
    }

    /// Total edge count of the instance without materializing it.
    fn count_edges(&self) -> u64 {
        (0..self.num_chunks()).map(|pe| self.count_pe(pe)).sum()
    }
}

/// Fallback used by generators whose natural implementation materializes
/// intermediate structure anyway (Delaunay meshes, hyperbolic sweeps).
macro_rules! materializing_stream {
    () => {
        fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64)) {
            for (u, v) in self.generate_pe(pe).edges {
                emit(u, v);
            }
        }
    };
}

impl StreamingGenerator for GnmDirected {
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64)) {
        self.stream_edges(pe, emit);
    }
}

impl StreamingGenerator for GnpDirected {
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64)) {
        self.stream_edges(pe, emit);
    }
}

impl StreamingGenerator for GnmUndirected {
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64)) {
        self.stream_edges(pe, emit);
    }
}

impl StreamingGenerator for GnpUndirected {
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64)) {
        self.stream_edges(pe, emit);
    }
}

impl StreamingGenerator for BarabasiAlbert {
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64)) {
        let begin = self.num_vertices() * pe as u64 / self.num_chunks() as u64;
        let end = self.num_vertices() * (pe as u64 + 1) / self.num_chunks() as u64;
        let d = self.degree_parameter();
        for slot in begin * d..end * d {
            let (u, v) = self.edge(slot);
            emit(u, v);
        }
    }
}

impl StreamingGenerator for Rmat {
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64)) {
        let m = self.num_edges();
        let lo = m * pe as u64 / self.num_chunks() as u64;
        let hi = m * (pe as u64 + 1) / self.num_chunks() as u64;
        for e in lo..hi {
            let (u, v) = self.edge(e);
            emit(u, v);
        }
    }
}

impl StreamingGenerator for StochasticBlockModel {
    fn stream_pe(&self, pe: usize, emit: &mut dyn FnMut(u64, u64)) {
        self.stream_edges(pe, emit);
    }
}

impl<const D: usize> StreamingGenerator for Rgg<D> {
    materializing_stream!();
}

impl<const D: usize> StreamingGenerator for Rdg<D> {
    materializing_stream!();
}

impl StreamingGenerator for Rhg {
    materializing_stream!();
}

impl StreamingGenerator for Srhg {
    materializing_stream!();
}

impl StreamingGenerator for SoftRhg {
    materializing_stream!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn assert_stream_matches<G: StreamingGenerator>(gen: &G) {
        for pe in 0..gen.num_chunks().min(5) {
            let materialized = gen.generate_pe(pe).edges;
            let mut streamed = Vec::new();
            gen.stream_pe(pe, &mut |u, v| streamed.push((u, v)));
            assert_eq!(materialized, streamed, "PE {pe}");
            assert_eq!(gen.count_pe(pe) as usize, materialized.len());
        }
    }

    #[test]
    fn gnm_directed_stream() {
        assert_stream_matches(&GnmDirected::new(300, 2000).with_seed(3).with_chunks(5));
    }

    #[test]
    fn gnm_undirected_stream() {
        assert_stream_matches(&GnmUndirected::new(300, 2000).with_seed(3).with_chunks(5));
    }

    #[test]
    fn gnp_streams() {
        assert_stream_matches(&GnpDirected::new(200, 0.05).with_seed(4).with_chunks(4));
        assert_stream_matches(&GnpUndirected::new(200, 0.05).with_seed(4).with_chunks(4));
    }

    #[test]
    fn ba_stream() {
        assert_stream_matches(&BarabasiAlbert::new(500, 3).with_seed(5).with_chunks(8));
    }

    #[test]
    fn rmat_stream() {
        assert_stream_matches(&Rmat::new(9, 3000).with_seed(6).with_chunks(8));
        assert_stream_matches(
            &Rmat::new(9, 3000)
                .with_seed(6)
                .with_chunks(8)
                .with_table_levels(4),
        );
    }

    #[test]
    fn sbm_stream() {
        assert_stream_matches(
            &StochasticBlockModel::planted(300, 3, 0.1, 0.01)
                .with_seed(7)
                .with_chunks(6),
        );
    }

    #[test]
    fn rgg_stream() {
        assert_stream_matches(&Rgg2d::new(400, 0.08).with_seed(8).with_chunks(16));
    }

    #[test]
    fn spatial_and_hyperbolic_streams() {
        assert_stream_matches(&Rdg2d::new(200).with_seed(9).with_chunks(4));
        assert_stream_matches(&Rhg::new(300, 6.0, 2.8).with_seed(10).with_chunks(4));
        assert_stream_matches(&Srhg::new(300, 6.0, 2.8).with_seed(10).with_chunks(4));
        assert_stream_matches(
            &SoftRhg::new(300, 6.0, 2.8, 0.4)
                .with_seed(11)
                .with_chunks(4),
        );
    }

    #[test]
    fn stream_all_concatenates_pes() {
        let gen = GnmDirected::new(300, 2000).with_seed(3).with_chunks(5);
        let mut streamed = Vec::new();
        gen.stream_all(&mut |u, v| streamed.push((u, v)));
        let mut materialized = Vec::new();
        for pe in 0..5 {
            materialized.extend(gen.generate_pe(pe).edges);
        }
        assert_eq!(streamed, materialized);
        assert_eq!(gen.count_edges(), 2000);
    }

    #[test]
    fn trait_is_object_safe() {
        // The CLI streams through `&dyn StreamingGenerator`.
        let gen = Rmat::new(8, 500).with_seed(2).with_chunks(4);
        let dyn_gen: &dyn StreamingGenerator = &gen;
        assert_eq!(dyn_gen.count_edges(), 500);
        let mut count = 0u64;
        dyn_gen.stream_all(&mut |_, _| count += 1);
        assert_eq!(count, 500);
    }

    #[test]
    fn streaming_needs_no_edge_buffer() {
        // A "write-to-sink" consumer: peak allocation is the generator
        // state, demonstrated by only keeping a running checksum.
        let gen = GnmDirected::new(2000, 50_000).with_seed(9).with_chunks(4);
        let mut checksum = 0u64;
        let mut count = 0u64;
        for pe in 0..4 {
            gen.stream_pe(pe, &mut |u, v| {
                checksum = checksum.wrapping_mul(31).wrapping_add(u ^ v);
                count += 1;
            });
        }
        assert_eq!(count, 50_000);
        assert_ne!(checksum, 0);
    }
}
