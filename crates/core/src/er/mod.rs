//! Erdős–Rényi generators (§4): G(n,m) and G(n,p), directed and undirected.
//!
//! The directed generators sample edge *indices* from the universe
//! `[0, n(n−1))` (all ordered pairs without self-loops) with the
//! distributed divide-and-conquer sampler; the undirected generators use
//! the triangular chunk-matrix scheme of §4.2 so that the two PEs adjacent
//! to a chunk regenerate identical edges.

mod directed;
mod undirected;

pub use directed::{GnmDirected, GnpDirected};
pub use undirected::{GnmUndirected, GnpUndirected};

/// Leaf-sampling algorithm of the G(n,p) generators.
///
/// The default is geometric skip sampling (Batagelj–Brandes): one
/// uniform per emitted edge, converted by the block-batched kernel
/// (`kagen_dist::geometric`) on the batched path. `AlgoD` reproduces the
/// pre-skip-kernel instances (per-leaf binomial count + Vitter Method D)
/// for anyone holding manifests generated before the kernel swap; it is
/// also the bench harness's "per-edge Algorithm D" comparison point.
/// Both samplers draw G(n,p) exactly — every pair kept independently
/// with probability `p` — they just walk different PRNG streams, so the
/// two settings produce different (equally valid) fixed-seed instances.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GnpLeaves {
    /// Geometric skip sampling over each leaf block (the default).
    #[default]
    Skip,
    /// Binomial count + Vitter Method D per leaf (the historical path).
    AlgoD,
}

/// Leaf-block granularity of the directed ER universe decomposition.
///
/// Public so accelerator backends (see `kagen-gpgpu`) replicate the exact
/// instance decomposition: the paper's GPU adaptation computes "the correct
/// sample size and seeds for the pseudorandom generator on the CPU"
/// (§4.3.1) — which requires agreeing with the CPU generators on block
/// granularity.
pub fn er_leaf_blocks(universe: u128, expected_samples: u64) -> u64 {
    directed::er_blocks(universe, expected_samples)
}

/// Contiguous leaf-block range `[lo, hi)` owned by PE `pe` of `chunks`.
pub fn er_pe_block_range(blocks: u64, chunks: usize, pe: usize) -> (u64, u64) {
    directed::pe_block_range(blocks, chunks, pe)
}

/// Map a directed edge index in `[0, n(n−1))` to the ordered pair `(u, v)`
/// with `u ≠ v` (§4.1 "simple offset computations": column indices skip the
/// diagonal).
#[inline]
pub fn directed_index_to_edge(n: u64, idx: u128) -> (u64, u64) {
    debug_assert!(idx < (n as u128) * (n as u128 - 1));
    let u = (idx / (n as u128 - 1)) as u64;
    let c = (idx % (n as u128 - 1)) as u64;
    let v = if c < u { c } else { c + 1 };
    (u, v)
}

/// Inverse of [`directed_index_to_edge`] (used by tests).
#[inline]
pub fn directed_edge_to_index(n: u64, u: u64, v: u64) -> u128 {
    debug_assert!(u != v && u < n && v < n);
    let c = if v < u { v } else { v - 1 };
    (u as u128) * (n as u128 - 1) + c as u128
}

/// Incremental `(row, offset)` splitter for *sorted* indices over
/// fixed-length rows.
///
/// A division and modulo per index is the dominant per-edge arithmetic
/// of the index-decoding hot paths (128-bit for the directed universe,
/// 64-bit for rectangular chunks). Sampled indices arrive sorted, so the
/// row is non-decreasing: the splitter advances it by subtraction
/// (amortized O(1)) and only falls back to the division when a gap skips
/// many rows at once (sparse instances), keeping the worst case O(m).
#[derive(Clone, Copy, Debug)]
pub struct MonotoneRowSplitter {
    row_len: u128,
    row: u64,
    base: u128,
    primed: bool,
}

impl MonotoneRowSplitter {
    /// Linear row advances per split before falling back to division.
    const MAX_LINEAR_ROWS: u32 = 8;

    /// Splitter over rows of `row_len` indices (`row_len ≥ 1`).
    #[inline]
    pub fn new(row_len: u128) -> Self {
        debug_assert!(row_len >= 1);
        MonotoneRowSplitter {
            row_len,
            row: 0,
            base: 0,
            primed: false,
        }
    }

    /// Split `idx` into `(row, offset)`; indices must arrive in
    /// non-decreasing order.
    #[inline]
    pub fn split(&mut self, idx: u128) -> (u64, u64) {
        debug_assert!(!self.primed || idx >= self.base);
        if !self.primed {
            self.primed = true;
            self.row = (idx / self.row_len) as u64;
            self.base = self.row as u128 * self.row_len;
        }
        let mut steps = 0u32;
        while idx - self.base >= self.row_len {
            if steps >= Self::MAX_LINEAR_ROWS {
                self.row = (idx / self.row_len) as u64;
                self.base = self.row as u128 * self.row_len;
                break;
            }
            self.base += self.row_len;
            self.row += 1;
            steps += 1;
        }
        (self.row, (idx - self.base) as u64)
    }
}

/// Incremental decoder for *sorted* directed edge indices — the
/// monotone counterpart of [`directed_index_to_edge`]: a
/// [`MonotoneRowSplitter`] over rows of `n − 1` plus the diagonal skip.
#[derive(Clone, Copy, Debug)]
pub struct MonotoneEdgeDecoder {
    rows: MonotoneRowSplitter,
}

impl MonotoneEdgeDecoder {
    /// Decoder over `n` vertices (`n ≥ 2`).
    #[inline]
    pub fn new(n: u64) -> Self {
        debug_assert!(n >= 2);
        MonotoneEdgeDecoder {
            rows: MonotoneRowSplitter::new(n as u128 - 1),
        }
    }

    /// Decode `idx`; indices must be passed in non-decreasing order.
    #[inline]
    pub fn decode(&mut self, idx: u128) -> (u64, u64) {
        let (u, c) = self.rows.split(idx);
        (u, c + (c >= u) as u64)
    }
}

/// Row/offset splitter over fixed-length `u64` rows via a float
/// reciprocal estimate with an exact integer fixup — stateless, O(1)
/// per index. The estimate is almost always exact or ±1 (one f64
/// rounding each from the cast and the reciprocal); when it is further
/// off — f64 granularity at the top of the `u64` range with tiny rows —
/// the split falls back to the exact division. Intermediate products
/// use `u128` so `row · len` cannot overflow near `u64::MAX` universes.
///
/// This is the chunk-decode counterpart of [`MonotoneRowSplitter`]: the
/// monotone splitter wins when consecutive indices usually stay within
/// a row (the directed universe), the reciprocal splitter wins when
/// gaps hop many rows at once (skip-sampled chunks).
#[derive(Clone, Copy, Debug)]
pub struct RowSplitter64 {
    len: u64,
    inv: f64,
}

impl RowSplitter64 {
    /// Splitter over rows of `len` indices (`len ≥ 1`).
    #[inline]
    pub fn new(len: u64) -> Self {
        debug_assert!(len >= 1);
        RowSplitter64 {
            len,
            inv: 1.0 / len as f64,
        }
    }

    /// Split `t` into `(row, offset)`.
    #[inline(always)]
    pub fn split(&self, t: u64) -> (u64, u64) {
        let est = (t as f64 * self.inv) as u64;
        let len = self.len as u128;
        let t128 = t as u128;
        let below = est as u128 * len;
        let row = if below > t128 {
            if below - len <= t128 {
                est - 1
            } else {
                t / self.len
            }
        } else if below + len <= t128 {
            if below + 2 * len > t128 {
                est + 1
            } else {
                t / self.len
            }
        } else {
            est
        };
        // row = ⌊t / len⌋, so row · len ≤ t: no overflow.
        (row, t - row * self.len)
    }
}

/// Incremental decoder for *sorted* lower-triangle indices — the
/// monotone counterpart of [`triangle_index_to_pair`]: rows (values of
/// `u`) only grow, so the decoder advances the row by addition and falls
/// back to the float inversion only when a gap skips many rows at once.
#[derive(Clone, Copy, Debug, Default)]
pub struct MonotoneTriangleDecoder {
    /// Current row `u`; `below = u(u−1)/2` indices precede it.
    row: u64,
    below: u128,
    primed: bool,
}

impl MonotoneTriangleDecoder {
    /// Linear row advances per decode before falling back to the float
    /// inversion (rows grow, so sparse streams skip many rows per gap).
    const MAX_LINEAR_ROWS: u32 = 8;

    /// Decoder positioned before the first row.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn reseat(&mut self, t: u128) {
        let (u, _) = triangle_index_to_pair(t);
        self.row = u;
        self.below = (u as u128) * (u as u128 - 1) / 2;
    }

    /// Decode `t` into `(u, v)` with `v < u`; indices must arrive in
    /// non-decreasing order.
    #[inline]
    pub fn decode(&mut self, t: u128) -> (u64, u64) {
        debug_assert!(!self.primed || t >= self.below);
        if !self.primed {
            self.primed = true;
            self.reseat(t);
        }
        // Gap too wide for the linear advance to pay off? Rows only
        // grow, so `row · MAX` underestimates the span of the next MAX
        // rows — reseat conservatively, without first burning the
        // linear iterations.
        if t - self.below >= (self.row as u128) << 3 {
            self.reseat(t);
        }
        let mut steps = 0u32;
        while t - self.below >= self.row as u128 {
            if steps >= Self::MAX_LINEAR_ROWS {
                self.reseat(t);
                break;
            }
            self.below += self.row as u128;
            self.row += 1;
            steps += 1;
        }
        (self.row, (t - self.below) as u64)
    }
}

/// Map a lower-triangle index `t ∈ [0, s(s−1)/2)` to the pair `(u, v)`
/// with `0 ≤ v < u < s` (diagonal chunks of the undirected scheme).
#[inline]
pub fn triangle_index_to_pair(t: u128) -> (u64, u64) {
    // u = floor((1 + sqrt(1 + 8t)) / 2), then fix up float rounding.
    let mut u = ((1.0 + (1.0 + 8.0 * t as f64).sqrt()) / 2.0) as u64;
    loop {
        let below = (u as u128) * (u as u128 - 1) / 2;
        if below > t {
            u -= 1;
            continue;
        }
        if (u as u128) * (u as u128 + 1) / 2 <= t {
            u += 1;
            continue;
        }
        let v = (t - below) as u64;
        return (u, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_index_roundtrip() {
        let n = 7u64;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..(n as u128) * (n as u128 - 1) {
            let (u, v) = directed_index_to_edge(n, idx);
            assert_ne!(u, v, "self loop from index {idx}");
            assert!(u < n && v < n);
            assert!(seen.insert((u, v)), "duplicate pair from {idx}");
            assert_eq!(directed_edge_to_index(n, u, v), idx);
        }
        assert_eq!(seen.len() as u128, (n as u128) * (n as u128 - 1));
    }

    #[test]
    fn monotone_decoder_matches_division() {
        // Dense scan, sparse jumps (forcing the division fallback) and a
        // restart mid-row must all agree with the per-index division.
        let n = 50u64;
        let mut dec = MonotoneEdgeDecoder::new(n);
        for idx in 0..(n as u128) * (n as u128 - 1) {
            assert_eq!(dec.decode(idx), directed_index_to_edge(n, idx), "{idx}");
        }
        let n = 1u64 << 20;
        let universe = (n as u128) * (n as u128 - 1);
        let mut dec = MonotoneEdgeDecoder::new(n);
        let mut idx = 7u128;
        let mut step = 1u128;
        while idx < universe {
            assert_eq!(dec.decode(idx), directed_index_to_edge(n, idx), "{idx}");
            idx += step;
            step = (step * 3 + 1) % (universe / 13);
        }
        // First index deep inside the universe (primes far from row 0).
        let mut dec = MonotoneEdgeDecoder::new(n);
        let deep = universe - 5;
        assert_eq!(dec.decode(deep), directed_index_to_edge(n, deep));
    }

    #[test]
    fn triangle_index_enumerates_lower_triangle() {
        let s = 12u64;
        let mut seen = std::collections::HashSet::new();
        for t in 0..(s as u128) * (s as u128 - 1) / 2 {
            let (u, v) = triangle_index_to_pair(t);
            assert!(v < u && u < s, "bad pair ({u},{v}) from {t}");
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len() as u128, (s as u128) * (s as u128 - 1) / 2);
    }

    #[test]
    fn row_splitter64_matches_division() {
        for &len in &[1u64, 2, 3, 7, 1000, 16384, u32::MAX as u64 + 7] {
            let sp = RowSplitter64::new(len);
            // Dense small range plus boundary-heavy probes across the
            // u64 range.
            for t in 0..(len.min(200) * 3) {
                assert_eq!(sp.split(t), (t / len, t % len), "t={t} len={len}");
            }
            let mut t = 1u64;
            while t < u64::MAX / 2 {
                for probe in [t - 1, t, t + 1] {
                    assert_eq!(
                        sp.split(probe),
                        (probe / len, probe % len),
                        "t={probe} len={len}"
                    );
                }
                t = t.saturating_mul(3) + 1;
            }
            for probe in [u64::MAX, u64::MAX - 1, u64::MAX / 2] {
                assert_eq!(sp.split(probe), (probe / len, probe % len));
            }
        }
    }

    #[test]
    fn monotone_triangle_decoder_matches_inversion() {
        // Dense scan.
        let s = 40u64;
        let mut dec = MonotoneTriangleDecoder::new();
        for t in 0..(s as u128) * (s as u128 - 1) / 2 {
            assert_eq!(dec.decode(t), triangle_index_to_pair(t), "{t}");
        }
        // Sparse jumps (forcing the reseat fallback) and a deep first
        // index.
        let universe = (1u128 << 40) * ((1u128 << 40) - 1) / 2;
        let mut dec = MonotoneTriangleDecoder::new();
        let mut t = 3u128;
        let mut step = 1u128;
        while t < universe {
            assert_eq!(dec.decode(t), triangle_index_to_pair(t), "{t}");
            t += step;
            step = (step * 5 + 1) % (universe / 7);
        }
        let mut dec = MonotoneTriangleDecoder::new();
        let deep = universe - 2;
        assert_eq!(dec.decode(deep), triangle_index_to_pair(deep));
    }

    #[test]
    fn triangle_index_large_values() {
        // Exercise the float fix-up far beyond exact f64 integers.
        for &t in &[(1u128 << 53) + 12345, (1u128 << 60) + 7] {
            let (u, v) = triangle_index_to_pair(t);
            let below = (u as u128) * (u as u128 - 1) / 2;
            assert!(below <= t && t < below + u as u128);
            assert_eq!(below + v as u128, t);
        }
    }
}
