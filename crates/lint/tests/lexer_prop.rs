//! Property tests for the lexer over the constructs that can hide or
//! fake a rule match: nested block comments, raw strings with hash
//! fences, and line comments. The lexer must never leak identifiers out
//! of them, never lose the code that follows them, and never panic.

use kagen_lint::lexer::{lex, Tok};
use proptest::prelude::*;

/// Comment/string body from a seed: lowercase words and spaces only, so
/// nesting delimiters are controlled entirely by the test.
fn words(seed: u64, len: usize) -> String {
    let mut s = String::new();
    let mut x = seed;
    for _ in 0..len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let c = (b'a' + ((x >> 33) % 27) as u8) as char;
        s.push(if c == '{' { ' ' } else { c });
    }
    s
}

fn idents(tokens: &[kagen_lint::lexer::Token]) -> Vec<String> {
    tokens
        .iter()
        .filter_map(|t| match &t.kind {
            Tok::Ident(s) => Some(s.clone()),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // A block comment nested to arbitrary depth swallows its body and
    // releases exactly the code after it.
    #[test]
    fn nested_block_comment_is_one_token(depth in 1usize..8, seed in any::<u64>(), len in 0usize..40) {
        let body = words(seed, len);
        let src = format!(
            "{}unsafe {} {}\nmarker",
            "/*".repeat(depth),
            body,
            "*/".repeat(depth)
        );
        let tokens = lex(&src);
        let n_comments = tokens
            .iter()
            .filter(|t| matches!(t.kind, Tok::BlockComment(_)))
            .count();
        prop_assert_eq!(n_comments, 1, "src: {}", src);
        // Nothing inside the comment may surface as code — in particular
        // not the `unsafe` keyword S1 keys on.
        prop_assert_eq!(idents(&tokens), vec!["marker".to_string()], "src: {}", src);
    }

    // A raw string with a k-hash fence swallows quotes and shorter
    // fences in its body; code resumes after the real terminator.
    #[test]
    fn raw_string_fences_hold(hashes in 1usize..5, seed in any::<u64>(), len in 0usize..30) {
        // Body mixes words with quotes and (hashes-1)-deep fake closers,
        // none of which may terminate the literal.
        let fake = format!("\"{}", "#".repeat(hashes - 1));
        let body = format!("{} {} HashMap {}", words(seed, len), fake, fake);
        let src = format!(
            "let s = r{h}\"{body}\"{h};\nmarker",
            h = "#".repeat(hashes),
            body = body
        );
        let tokens = lex(&src);
        let n_strings = tokens.iter().filter(|t| matches!(t.kind, Tok::Str)).count();
        prop_assert_eq!(n_strings, 1, "src: {}", src);
        let ids = idents(&tokens);
        // The D1 bait inside the literal must not leak out as an ident.
        prop_assert!(!ids.contains(&"HashMap".to_string()), "src: {}", src);
        prop_assert_eq!(ids.last().cloned(), Some("marker".to_string()), "src: {}", src);
    }

    // A line comment runs to the newline and no further.
    #[test]
    fn line_comment_stops_at_newline(seed in any::<u64>(), len in 0usize..60) {
        let src = format!("// Instant {}\nmarker", words(seed, len));
        let tokens = lex(&src);
        prop_assert_eq!(idents(&tokens), vec!["marker".to_string()], "src: {}", src);
    }

    // The lexer is total: arbitrary printable soup (including unpaired
    // delimiters and stray quotes) lexes without panicking, with
    // monotonically nondecreasing line numbers.
    #[test]
    fn lexer_is_total_and_lines_are_monotone(bytes in proptest::collection::vec(32u8..127, 0..200), breaks in 0usize..6) {
        let mut src: String = bytes.iter().map(|&b| b as char).collect();
        for i in 0..breaks {
            let at = (i * 37) % (src.len() + 1);
            src.insert(at, '\n');
        }
        let tokens = lex(&src);
        let mut prev = 1u32;
        for t in &tokens {
            prop_assert!(t.line >= prev, "line numbers regressed in {:?}", src);
            prev = t.line;
        }
    }
}
