// Fixture: P0 must fire three times — a pragma without a reason, one
// naming an unknown rule, and one that suppresses nothing.

// kagen-lint: allow(d1)
pub fn lookup() {}

// kagen-lint: allow(d9) -- no such rule
pub fn a() {}

// kagen-lint: allow(d2) -- nothing on the next line reads a clock
pub fn b() {}
