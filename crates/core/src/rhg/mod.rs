//! Random hyperbolic graph generators (§7).
//!
//! [`common`] holds the shared instance structure: the annulus
//! decomposition, per-annulus angular cells, deterministic per-cell point
//! generation and communication-free global vertex ids. Both the
//! query-centric in-memory generator ([`Rhg`], §7.1) and the
//! request-centric streaming generator ([`crate::srhg::Srhg`], §7.2)
//! sample *the same instance* for the same seed — their edge sets are
//! identical, which the integration tests assert.

pub mod common;
mod query;
mod soft;

pub use query::Rhg;
pub use soft::SoftRhg;
