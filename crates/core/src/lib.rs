//! # kagen-core
//!
//! The paper's contribution: communication-free distributed graph
//! generators.
//!
//! Every generator implements [`Generator`]: the instance is fully defined
//! by its parameters plus a seed, and [`Generator::generate_pe`] produces
//! the part of that one instance belonging to logical PE `pe` — all edges
//! incident to the PE's local vertices — as a pure function. PEs never
//! communicate; overlap regions are recomputed deterministically through
//! seed derivation (see `kagen-util::seed`).
//!
//! | Model | Type | Paper section |
//! |-------|------|---------------|
//! | [`GnmDirected`], [`GnmUndirected`] | Erdős–Rényi G(n,m) | §4.1, §4.2 |
//! | [`GnpDirected`], [`GnpUndirected`] | Gilbert G(n,p) | §4.3 |
//! | [`Rgg2d`], [`Rgg3d`] | random geometric | §5 |
//! | [`Rdg2d`], [`Rdg3d`] | random Delaunay (torus) | §6 |
//! | [`Rhg`] | random hyperbolic, in-memory | §7.1 |
//! | [`Srhg`] | random hyperbolic, streaming | §7.2 |
//! | [`SoftRhg`] | binomial/probabilistic hyperbolic | §9 (future work) |
//! | [`BarabasiAlbert`] | preferential attachment | §3.5.1 |
//! | [`Rmat`] | recursive matrix (baseline) | §3.5.2 |

pub mod ba;
pub mod er;
pub mod rdg;
pub mod rgg;
pub mod rhg;
pub mod rmat;
pub mod sbm;
pub mod srhg;
pub mod streaming;

use kagen_graph::EdgeList;

/// Per-PE output: the subgraph a single processing element generates.
#[derive(Clone, Debug, Default)]
pub struct PeGraph {
    /// The PE index this output belongs to.
    pub pe: usize,
    /// Local vertex id range `[vertex_begin, vertex_end)` for generators
    /// with contiguous ownership; spatial generators list ids in `coords*`.
    pub vertex_begin: u64,
    /// End of the local vertex range (exclusive).
    pub vertex_end: u64,
    /// All edges incident to local vertices (directed generators: exactly
    /// the locally-owned edges; undirected: cross-PE edges appear on both
    /// owning PEs and deduplicate on merge).
    pub edges: Vec<(u64, u64)>,
    /// 2D coordinates of local vertices (spatial generators).
    pub coords2: Vec<(u64, [f64; 2])>,
    /// 3D coordinates of local vertices (spatial generators).
    pub coords3: Vec<(u64, [f64; 3])>,
}

/// A communication-free graph generator.
pub trait Generator: Sync {
    /// Total number of vertices of the instance.
    fn num_vertices(&self) -> u64;
    /// Number of logical PEs (chunks) the instance is divided into.
    fn num_chunks(&self) -> usize;
    /// Whether emitted edges are directed.
    fn directed(&self) -> bool;
    /// Generate PE `pe`'s part of the instance. Pure function of
    /// `(parameters, seed, pe)`.
    fn generate_pe(&self, pe: usize) -> PeGraph;
}

/// Run all PEs of a generator on `threads` worker threads.
pub fn generate_parallel<G: Generator + ?Sized>(gen: &G, threads: usize) -> Vec<PeGraph> {
    kagen_runtime::run_chunks(gen.num_chunks(), threads, |pe| gen.generate_pe(pe))
}

/// Generate and merge an undirected instance into canonical form
/// (cross-PE duplicates removed).
pub fn generate_undirected<G: Generator + ?Sized>(gen: &G) -> EdgeList {
    assert!(!gen.directed());
    let parts = generate_parallel(gen, 0);
    kagen_graph::merge_pe_edges(gen.num_vertices(), parts.into_iter().map(|p| p.edges))
}

/// Generate and merge a directed instance (edges concatenated and sorted;
/// PEs own disjoint edge sets so no deduplication is involved).
pub fn generate_directed<G: Generator + ?Sized>(gen: &G) -> EdgeList {
    assert!(gen.directed());
    let parts = generate_parallel(gen, 0);
    let mut edges: Vec<(u64, u64)> = parts.into_iter().flat_map(|p| p.edges).collect();
    edges.sort_unstable();
    EdgeList::new(gen.num_vertices(), edges)
}

/// Convenient re-exports.
pub mod prelude {
    pub use crate::ba::BarabasiAlbert;
    pub use crate::er::{GnmDirected, GnmUndirected, GnpDirected, GnpLeaves, GnpUndirected};
    pub use crate::rdg::{Rdg2d, Rdg3d};
    pub use crate::rgg::{Rgg2d, Rgg3d};
    pub use crate::rhg::{Rhg, SoftRhg};
    pub use crate::rmat::{Rmat, RmatKernel};
    pub use crate::sbm::StochasticBlockModel;
    pub use crate::srhg::Srhg;
    pub use crate::streaming::StreamingGenerator;
    pub use crate::{
        generate_directed, generate_parallel, generate_undirected, Generator, PeGraph,
    };
}

pub use prelude::*;
