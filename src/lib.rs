//! # kagen-repro — umbrella crate
//!
//! Re-exports the whole workspace under one roof so examples, integration
//! tests and downstream users can depend on a single crate.
//!
//! This library is a from-scratch Rust reproduction of
//! *"Communication-free Massively Distributed Graph Generation"*
//! (Funke et al., IPDPS 2018 / arXiv:1710.07565): scalable generators for
//! Erdős–Rényi graphs (G(n,m), G(n,p), directed and undirected), random
//! geometric graphs (2D/3D), random Delaunay graphs (2D/3D), random
//! hyperbolic graphs (in-memory and streaming), Barabási–Albert graphs and
//! R-MAT graphs — all *communication-free*: each processing element derives
//! its share of one well-defined random instance purely from the seed.
//!
//! ## Quickstart
//!
//! ```
//! use kagen_repro::prelude::*;
//!
//! // An undirected Erdős–Rényi graph with 1000 vertices and 5000 edges,
//! // generated in 8 independent chunks (e.g. one per PE).
//! let gen = GnmUndirected::new(1000, 5000).with_seed(42).with_chunks(8);
//! let graph = generate_undirected(&gen);
//! assert_eq!(graph.edges.len(), 5000);
//! ```

pub use kagen_baselines as baselines;
pub use kagen_cluster as cluster;
pub use kagen_core as core;
pub use kagen_delaunay as delaunay;
pub use kagen_dist as dist;
pub use kagen_geometry as geometry;
pub use kagen_gpgpu as gpgpu;
pub use kagen_graph as graph;
pub use kagen_obs as obs;
pub use kagen_pipeline as pipeline;
pub use kagen_runtime as runtime;
pub use kagen_sampling as sampling;
pub use kagen_stats as stats;
pub use kagen_util as util;

/// The most common imports in one place.
pub mod prelude {
    pub use kagen_core::prelude::*;
    pub use kagen_graph::{Csr, EdgeList};
    pub use kagen_util::{Mt64, Rng64};
}
