// Fixture: P0 must stay silent — both pragmas are well-formed, carry a
// reason, and suppress a real finding.

// kagen-lint: allow(d1) -- lookup-only map, never iterated
use std::collections::HashMap;

pub fn stream(seed: u64) -> u64 {
    let mut rng = Mt64::new(7); // kagen-lint: allow(d3) -- fixture exemplar of a trailing pragma
    rng.next_u64() ^ seed
}
