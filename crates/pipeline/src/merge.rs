//! Bounded-memory external merge of shards into the instance's canonical
//! edge list.
//!
//! The in-RAM path (`kagen_graph::merge_pe_edges`) holds every per-PE
//! edge at once — exactly what the streaming pipeline exists to avoid.
//! This module replaces it with the classic external-memory pattern:
//!
//! 1. **Run formation** — stream the shards, buffering at most
//!    `budget_edges` edges; each full buffer is canonicalized (undirected
//!    edges re-oriented to `(min,max)`), sorted, locally deduplicated and
//!    spilled as a sorted *run* in the compressed shard codec (sorted
//!    runs delta-compress to a few bytes per edge).
//! 2. **K-way merge** — the runs are merged with a binary heap of one
//!    cursor per run; cross-PE duplicates of undirected edges become
//!    adjacent in the merged order and are dropped on the fly.
//!
//! Peak memory is `budget_edges` × 16 bytes plus one decoder per run,
//! independent of the instance's edge count. The output equals
//! `generate_undirected` / `generate_directed` edge-for-edge.

use crate::reader::ShardReader;
use crate::sink::EdgeSink;
use kagen_graph::io::{CompressedEdgeReader, CompressedEdgeWriter};
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter};
use std::path::PathBuf;

/// Statistics of one external merge.
#[derive(Clone, Debug, Default)]
pub struct MergeStats {
    /// Sorted runs spilled to disk.
    pub runs: usize,
    /// Edges read from the shards (before dedup).
    pub edges_in: u64,
    /// Edges emitted (after dedup for undirected instances).
    pub edges_out: u64,
    /// High-water mark of the run buffer — never exceeds the budget.
    pub max_buffered: usize,
}

/// One run's read cursor during the k-way merge.
struct RunCursor {
    dec: CompressedEdgeReader<BufReader<File>>,
}

impl RunCursor {
    fn next(&mut self) -> io::Result<Option<(u64, u64)>> {
        self.dec.next_edge()
    }
}

/// Heap entry: min-heap by edge via reversed `Ord`.
struct HeapEntry {
    edge: (u64, u64),
    run: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.edge == other.edge && self.run == other.run
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we need the smallest edge.
        other
            .edge
            .cmp(&self.edge)
            .then_with(|| other.run.cmp(&self.run))
    }
}

/// The external merge driver.
pub struct ExternalMerge {
    budget_edges: usize,
    run_dir: PathBuf,
}

impl ExternalMerge {
    /// Merger buffering at most `budget_edges` edges in memory and
    /// spilling sorted runs into `run_dir` (created if missing, run
    /// files removed afterwards).
    pub fn new(run_dir: impl Into<PathBuf>, budget_edges: usize) -> ExternalMerge {
        ExternalMerge {
            budget_edges: budget_edges.max(1),
            run_dir: run_dir.into(),
        }
    }

    fn spill(
        &self,
        buf: &mut Vec<(u64, u64)>,
        undirected: bool,
        runs: &mut Vec<PathBuf>,
    ) -> io::Result<()> {
        if buf.is_empty() {
            return Ok(());
        }
        buf.sort_unstable();
        if undirected {
            buf.dedup();
        }
        let path = self.run_dir.join(format!("run-{:05}.kgc", runs.len()));
        let mut enc = CompressedEdgeWriter::new(BufWriter::new(File::create(&path)?), 0)?;
        for &(u, v) in buf.iter() {
            enc.push(u, v)?;
        }
        enc.finish()?;
        runs.push(path);
        buf.clear();
        Ok(())
    }

    /// Merge every shard of `reader` into `out`, deduplicating cross-PE
    /// duplicates when the manifest says the instance is undirected
    /// (directed instances keep multi-edges, matching
    /// `generate_directed`). Edges arrive at `out` in sorted order.
    /// `out.finish()` is left to the caller.
    pub fn merge(&self, reader: &ShardReader, out: &mut dyn EdgeSink) -> io::Result<MergeStats> {
        let undirected = !reader.manifest().directed;
        std::fs::create_dir_all(&self.run_dir)?;
        let mut stats = MergeStats::default();
        let mut runs: Vec<PathBuf> = Vec::new();

        // Phase 1: bounded buffer → sorted runs.
        {
            let mut buf: Vec<(u64, u64)> = Vec::with_capacity(self.budget_edges);
            let mut spill_err: Option<io::Error> = None;
            for shard in 0..reader.manifest().shards.len() {
                let budget = self.budget_edges;
                let mut on_edge = |u: u64, v: u64| {
                    if spill_err.is_some() {
                        return;
                    }
                    stats.edges_in += 1;
                    let e = if undirected && u > v { (v, u) } else { (u, v) };
                    buf.push(e);
                    stats.max_buffered = stats.max_buffered.max(buf.len());
                    if buf.len() >= budget {
                        if let Err(e) = self.spill(&mut buf, undirected, &mut runs) {
                            spill_err = Some(e);
                        }
                    }
                };
                reader.stream_shard(shard, &mut on_edge)?;
                if let Some(e) = spill_err.take() {
                    return Err(e);
                }
            }
            self.spill(&mut buf, undirected, &mut runs)?;
        }
        stats.runs = runs.len();

        // Phase 2: k-way merge with adjacent dedup.
        let mut cursors = Vec::with_capacity(runs.len());
        for path in &runs {
            cursors.push(RunCursor {
                dec: CompressedEdgeReader::new(BufReader::new(File::open(path)?))?,
            });
        }
        let mut heap = BinaryHeap::with_capacity(cursors.len());
        for (i, c) in cursors.iter_mut().enumerate() {
            if let Some(edge) = c.next()? {
                heap.push(HeapEntry { edge, run: i });
            }
        }
        let mut last: Option<(u64, u64)> = None;
        while let Some(HeapEntry { edge, run }) = heap.pop() {
            if !(undirected && last == Some(edge)) {
                out.accept(edge.0, edge.1);
                stats.edges_out += 1;
                last = Some(edge);
            }
            if let Some(next) = cursors[run].next()? {
                heap.push(HeapEntry { edge: next, run });
            }
        }

        for path in runs {
            std::fs::remove_file(path).ok();
        }
        // Remove the run directory too if it is now empty (it may be a
        // pre-existing directory holding other files — leave those).
        std::fs::remove_dir(&self.run_dir).ok();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::FnSink;
    use crate::writer::{write_sharded, InstanceMeta, ShardFormat, StreamConfig};
    use kagen_core::prelude::*;

    fn run_merge<G: kagen_core::streaming::StreamingGenerator>(
        gen: &G,
        model: &str,
        budget: usize,
        tag: &str,
    ) -> (Vec<(u64, u64)>, MergeStats) {
        let dir = std::env::temp_dir().join(format!("kagen_merge_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        let meta = InstanceMeta {
            model: model.into(),
            params: String::new(),
            seed: 1,
        };
        write_sharded(
            gen,
            &meta,
            &StreamConfig::new(&dir, ShardFormat::Compressed),
        )
        .unwrap();
        let reader = ShardReader::open(&dir).unwrap();
        let mut edges = Vec::new();
        let mut sink = FnSink::new(|u, v| edges.push((u, v)));
        let stats = ExternalMerge::new(dir.join("runs"), budget)
            .merge(&reader, &mut sink)
            .unwrap();
        sink.finish().unwrap();
        std::fs::remove_dir_all(&dir).ok();
        (edges, stats)
    }

    #[test]
    fn undirected_equals_in_ram_merge() {
        let gen = GnmUndirected::new(250, 2000).with_seed(1).with_chunks(8);
        let expect = generate_undirected(&gen);
        for budget in [64usize, 1000, 1_000_000] {
            let (edges, stats) = run_merge(&gen, "gnm_undirected", budget, &format!("u{budget}"));
            assert_eq!(edges, expect.edges, "budget {budget}");
            assert_eq!(stats.edges_out, expect.edges.len() as u64);
            assert!(stats.max_buffered <= budget, "budget violated");
        }
    }

    #[test]
    fn directed_equals_in_ram_merge() {
        let gen = Rmat::new(8, 3000).with_seed(1).with_chunks(5);
        let expect = generate_directed(&gen);
        let (edges, stats) = run_merge(&gen, "rmat", 100, "d");
        // R-MAT may contain duplicate edges; they must all survive.
        assert_eq!(edges, expect.edges);
        assert_eq!(stats.edges_in, 3000);
    }

    #[test]
    fn tiny_budget_many_runs() {
        let gen = GnmUndirected::new(80, 500).with_seed(9).with_chunks(4);
        let expect = generate_undirected(&gen);
        let (edges, stats) = run_merge(&gen, "gnm_undirected", 16, "tiny");
        assert_eq!(edges, expect.edges);
        assert!(stats.runs > 10, "expected many runs, got {}", stats.runs);
    }

    #[test]
    fn empty_instance() {
        let gen = GnmUndirected::new(10, 0).with_seed(2).with_chunks(2);
        let (edges, stats) = run_merge(&gen, "gnm_undirected", 100, "empty");
        assert!(edges.is_empty());
        assert_eq!(stats.runs, 0);
        assert_eq!(stats.edges_out, 0);
    }
}
