//! Work-distribution sanity across chunk counts: the communication-free
//! design bounds total extra work (redundancy) and distributes items
//! evenly enough that emulated scaling is meaningful.

use kagen_repro::core::prelude::*;

/// Total edges emitted across PEs, and the max per-PE share.
fn work_profile<G: Generator>(gen: &G) -> (u64, u64) {
    let parts = generate_parallel(gen, 0);
    let total: u64 = parts.iter().map(|p| p.edges.len() as u64).sum();
    let max = parts
        .iter()
        .map(|p| p.edges.len() as u64)
        .max()
        .unwrap_or(0);
    (total, max)
}

#[test]
fn directed_er_work_is_partitioned_evenly() {
    let m = 64_000u64;
    for p in [4usize, 16, 64] {
        let gen = GnmDirected::new(4000, m).with_seed(3).with_chunks(p);
        let (total, max) = work_profile(&gen);
        assert_eq!(total, m, "directed ER emits each edge exactly once");
        let fair = m / p as u64;
        assert!(
            max < 2 * fair,
            "P={p}: max per-PE share {max} vs fair {fair}"
        );
    }
}

#[test]
fn undirected_er_redundancy_converges_to_two() {
    let m = 50_000u64;
    let (total_small, _) = work_profile(&GnmUndirected::new(4000, m).with_seed(5).with_chunks(2));
    let (total_large, _) = work_profile(&GnmUndirected::new(4000, m).with_seed(5).with_chunks(32));
    let r_small = total_small as f64 / m as f64;
    let r_large = total_large as f64 / m as f64;
    // §4.2: overhead grows with P toward (and never beyond) 2.
    assert!(r_small < r_large, "redundancy must grow with P");
    assert!(r_large <= 2.0 + 1e-9);
    assert!(r_large > 1.5, "at Q=32 nearly all chunks are off-diagonal");
}

#[test]
fn rmat_work_is_perfectly_strided() {
    let gen = Rmat::new(12, 10_000).with_seed(7).with_chunks(16);
    let parts = generate_parallel(&gen, 0);
    for p in &parts {
        let share = p.edges.len() as u64;
        assert!((624..=626).contains(&share), "share {share}");
    }
}

#[test]
fn ba_slots_follow_vertex_ranges() {
    let gen = BarabasiAlbert::new(1000, 5).with_seed(9).with_chunks(8);
    let parts = generate_parallel(&gen, 0);
    for p in &parts {
        assert_eq!(
            p.edges.len() as u64,
            (p.vertex_end - p.vertex_begin) * 5,
            "PE {} edge share must equal its slot range",
            p.pe
        );
        for &(u, _) in &p.edges {
            assert!(
                (p.vertex_begin..p.vertex_end).contains(&u),
                "PE {} emitted a slot of another PE",
                p.pe
            );
        }
    }
}

#[test]
fn srhg_distributes_hub_work() {
    // The request-centric design splits the global annuli's work by
    // sector: no PE should emit more than a small multiple of the fair
    // share even with heavy hubs (γ close to 2).
    let gen = Srhg::new(4000, 12.0, 2.2).with_seed(11).with_chunks(8);
    let parts = generate_parallel(&gen, 0);
    let total: u64 = parts.iter().map(|p| p.edges.len() as u64).sum();
    let max = parts.iter().map(|p| p.edges.len() as u64).max().unwrap();
    let fair = total / 8;
    assert!(
        max < 4 * fair.max(1),
        "hub work concentrated: max {max}, fair {fair}"
    );
}
