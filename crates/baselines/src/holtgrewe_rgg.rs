//! Holtgrewe et al.'s *communicating* distributed 2D RGG generator (§3.2).
//!
//! Every PE draws `n/P` points uniformly in the unit square from its own
//! stream, so nobody knows in advance where points land. Edges can only be
//! generated once points are co-located with their grid cell, so the
//! algorithm must (1) redistribute all points to the PE owning their cell
//! stripe (communication volume Θ(n/P) per PE) and (2) exchange the border
//! stripe of cells with the left and right neighbors. KaGen's Fig. 9
//! baseline: correct, but communication-bound at scale.

use kagen_graph::EdgeList;
use kagen_runtime::comm::Communicator;
use kagen_util::{derive_seed, Mt64, Rng64};
use std::sync::atomic::Ordering;

/// Result of a run: the merged graph plus the measured exchange volume.
#[derive(Debug)]
pub struct HoltgreweResult {
    /// The generated graph (canonical undirected edge list).
    pub graph: EdgeList,
    /// Total bytes moved between PEs.
    pub bytes_exchanged: u64,
    /// Wall time of the parallel phase.
    pub wall: std::time::Duration,
}

/// The communicating generator.
#[derive(Debug)]
pub struct HoltgreweRgg {
    n: u64,
    radius: f64,
    pes: usize,
    seed: u64,
}

#[derive(Clone, Copy)]
struct P2 {
    x: f64,
    y: f64,
    id: u64,
}

impl HoltgreweRgg {
    /// `n` points, radius `radius`, on `pes` communicating PEs.
    pub fn new(n: u64, radius: f64, pes: usize, seed: u64) -> Self {
        assert!(pes >= 1);
        assert!(radius > 0.0 && radius < 1.0);
        HoltgreweRgg {
            n,
            radius,
            pes,
            seed,
        }
    }

    /// Run the full point-generation + exchange + edge-generation pipeline
    /// on real threads with channel communication.
    pub fn run(&self) -> HoltgreweResult {
        let p = self.pes;
        let n = self.n;
        let r = self.radius;
        let seed = self.seed;
        // Vertical stripes of cells; stripe i owns x ∈ [i/p, (i+1)/p).
        let (endpoints, bytes) = Communicator::endpoints::<[f64; 3]>(p);
        // kagen-lint: allow(d2) -- baseline comparator reports its own wall time;
        // the generated edge set is a pure function of (seed, params, pe)
        let start = std::time::Instant::now();

        let per_pe: Vec<Vec<(u64, u64)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = endpoints
                .into_iter()
                .map(|mut ep| {
                    scope.spawn(move || {
                        let rank = ep.rank();
                        let lo = n * rank as u64 / p as u64;
                        let hi = n * (rank as u64 + 1) / p as u64;
                        let mut rng = Mt64::new(derive_seed(seed, &[rank as u64]));
                        // Phase 1: draw local points and bucket them by
                        // owner stripe.
                        let mut outgoing: Vec<Vec<[f64; 3]>> = (0..p).map(|_| Vec::new()).collect();
                        for id in lo..hi {
                            let x = rng.next_f64();
                            let y = rng.next_f64();
                            let owner = ((x * p as f64) as usize).min(p - 1);
                            outgoing[owner].push([x, y, id as f64]);
                        }
                        // Phase 2: all-to-all redistribution.
                        let incoming = ep.all_to_all(outgoing);
                        let mut mine: Vec<P2> = incoming
                            .into_iter()
                            .flatten()
                            .map(|[x, y, id]| P2 {
                                x,
                                y,
                                id: id as u64,
                            })
                            .collect();
                        // Phase 3: border exchange with stripe neighbors.
                        let stripe_lo = rank as f64 / p as f64;
                        let stripe_hi = (rank as f64 + 1.0) / p as f64;
                        let mut border: Vec<Vec<[f64; 3]>> = (0..p).map(|_| Vec::new()).collect();
                        for pt in &mine {
                            if rank > 0 && pt.x < stripe_lo + r {
                                border[rank - 1].push([pt.x, pt.y, pt.id as f64]);
                            }
                            if rank + 1 < p && pt.x >= stripe_hi - r {
                                border[rank + 1].push([pt.x, pt.y, pt.id as f64]);
                            }
                        }
                        let halo_in = ep.all_to_all(border);
                        let halo: Vec<P2> = halo_in
                            .into_iter()
                            .flatten()
                            .map(|[x, y, id]| P2 {
                                x,
                                y,
                                id: id as u64,
                            })
                            .collect();
                        // Phase 4: local cell-grid edge generation.
                        let mut all = mine.clone();
                        all.extend(halo.iter().copied());
                        mine.sort_by_key(|q| q.id);
                        local_edges(&mine, &all, r)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let wall = start.elapsed();
        let graph = kagen_graph::merge_pe_edges(n, per_pe);
        HoltgreweResult {
            graph,
            bytes_exchanged: bytes.load(Ordering::Relaxed),
            wall,
        }
    }
}

/// Cell-grid comparison of `mine` (owned points) against `all`
/// (owned + halo) — the sequential part of Holtgrewe's algorithm.
fn local_edges(mine: &[P2], all: &[P2], r: f64) -> Vec<(u64, u64)> {
    let g = ((1.0 / r) as u64).max(1);
    let cell = |q: &P2| -> (u64, u64) {
        (
            ((q.x * g as f64) as u64).min(g - 1),
            ((q.y * g as f64) as u64).min(g - 1),
        )
    };
    use std::collections::HashMap;
    let mut buckets: HashMap<(u64, u64), Vec<usize>> = HashMap::new();
    for (i, q) in all.iter().enumerate() {
        buckets.entry(cell(q)).or_default().push(i);
    }
    let owned: std::collections::HashSet<u64> = mine.iter().map(|q| q.id).collect();
    let r2 = r * r;
    let mut edges = Vec::new();
    for q in mine {
        let (cx, cy) = cell(q);
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= g as i64 || ny >= g as i64 {
                    continue;
                }
                if let Some(ids) = buckets.get(&(nx as u64, ny as u64)) {
                    for &k in ids {
                        let o = &all[k];
                        if o.id == q.id {
                            continue;
                        }
                        let dx = q.x - o.x;
                        let dy = q.y - o.y;
                        if dx * dx + dy * dy <= r2 {
                            // Emit once per local pair, always for halo.
                            if !owned.contains(&o.id) || o.id > q.id {
                                edges.push((q.id, o.id));
                            }
                        }
                    }
                }
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_brute_force_small() {
        let gen = HoltgreweRgg::new(300, 0.08, 4, 3);
        let result = gen.run();
        // Reconstruct the point set exactly as the PEs drew it.
        let mut pts = vec![(0.0, 0.0); 300];
        for rank in 0..4u64 {
            let lo = 300 * rank / 4;
            let hi = 300 * (rank + 1) / 4;
            let mut rng = Mt64::new(derive_seed(3, &[rank]));
            for id in lo..hi {
                let x = rng.next_f64();
                let y = rng.next_f64();
                pts[id as usize] = (x, y);
            }
        }
        let mut expect = Vec::new();
        for i in 0..300usize {
            for j in (i + 1)..300 {
                let dx = pts[i].0 - pts[j].0;
                let dy = pts[i].1 - pts[j].1;
                if dx * dx + dy * dy <= 0.08 * 0.08 {
                    expect.push((i as u64, j as u64));
                }
            }
        }
        expect.sort_unstable();
        assert_eq!(result.graph.edges, expect);
    }

    #[test]
    fn communication_happens() {
        let result = HoltgreweRgg::new(1000, 0.05, 4, 1).run();
        assert!(
            result.bytes_exchanged > 0,
            "the whole point of this baseline is that it communicates"
        );
    }

    #[test]
    fn single_pe_no_comm() {
        let result = HoltgreweRgg::new(200, 0.1, 1, 2).run();
        assert_eq!(result.bytes_exchanged, 0);
        assert!(!result.graph.edges.is_empty());
    }
}
