//! Writers and readers for the on-disk graph formats, including the
//! compressed varint+delta shard codec used by `kagen-pipeline`.

use crate::EdgeList;
use std::io::{self, BufRead, BufWriter, Read, Write};

/// Magic prefix of the compressed edge-stream format (version 1).
pub const COMPRESSED_MAGIC: [u8; 8] = *b"KGSHRD01";

/// Encode `x` as a LEB128 varint (7 bits per byte, MSB = continuation).
pub fn write_varint<W: Write>(w: &mut W, mut x: u128) -> io::Result<()> {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Decode one LEB128 varint; `Ok(None)` on clean EOF before the first
/// byte, an error on truncation mid-number.
pub fn read_varint<R: Read>(r: &mut R) -> io::Result<Option<u128>> {
    let mut x = 0u128;
    let mut shift = 0u32;
    let mut buf = [0u8; 1];
    loop {
        match r.read(&mut buf)? {
            0 => {
                return if shift == 0 {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "truncated varint",
                    ))
                };
            }
            _ => {
                let payload = (buf[0] & 0x7f) as u128;
                // Reject both too-long varints and a final byte whose
                // high payload bits would be shifted out of u128.
                if shift >= 128 || (shift > 121 && payload >> (128 - shift) != 0) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "varint overflows u128",
                    ));
                }
                x |= payload << shift;
                if buf[0] & 0x80 == 0 {
                    return Ok(Some(x));
                }
                shift += 7;
            }
        }
    }
}

/// Zigzag-map a signed delta to an unsigned varint payload.
#[inline]
fn zigzag(d: i128) -> u128 {
    ((d << 1) ^ (d >> 127)) as u128
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(z: u128) -> i128 {
    ((z >> 1) as i128) ^ -((z & 1) as i128)
}

/// Streaming encoder of the compressed edge format: a `KGSHRD01` magic,
/// the vertex count, then one zigzag-varint **delta pair** per edge
/// (`u − prev_u`, `v − prev_v`). Sorted or spatially clustered streams
/// compress to a few bytes per edge; arbitrary streams still round-trip.
pub struct CompressedEdgeWriter<W: Write> {
    w: W,
    prev_u: u64,
    prev_v: u64,
    count: u64,
    /// Reusable encode buffer of [`CompressedEdgeWriter::push_slice`]:
    /// whole batches varint-encode here, then leave in one `write_all`.
    scratch: Vec<u8>,
}

impl<W: Write> CompressedEdgeWriter<W> {
    /// Start a stream over `n` vertices (writes the header immediately).
    pub fn new(mut w: W, n: u64) -> io::Result<Self> {
        w.write_all(&COMPRESSED_MAGIC)?;
        w.write_all(&n.to_le_bytes())?;
        Ok(CompressedEdgeWriter {
            w,
            prev_u: 0,
            prev_v: 0,
            count: 0,
            scratch: Vec::new(),
        })
    }

    /// Append one edge.
    #[inline]
    pub fn push(&mut self, u: u64, v: u64) -> io::Result<()> {
        write_varint(&mut self.w, zigzag(u as i128 - self.prev_u as i128))?;
        write_varint(&mut self.w, zigzag(v as i128 - self.prev_v as i128))?;
        self.prev_u = u;
        self.prev_v = v;
        self.count += 1;
        Ok(())
    }

    /// Append a whole slice of edges: varint-encode into the reusable
    /// scratch buffer (infallible — it is memory), then hand the bytes
    /// to the writer in one `write_all` per internal chunk. Byte-
    /// identical to pushing the edges one at a time; arbitrarily large
    /// slices keep the scratch buffer bounded (the encode is chunked at
    /// 4096 edges, ≤ ~152 KiB of scratch).
    pub fn push_slice(&mut self, edges: &[(u64, u64)]) -> io::Result<()> {
        for chunk in edges.chunks(4096) {
            self.scratch.clear();
            for &(u, v) in chunk {
                // Writing into a Vec cannot fail; unwrap keeps the loop
                // tight.
                write_varint(&mut self.scratch, zigzag(u as i128 - self.prev_u as i128)).unwrap();
                write_varint(&mut self.scratch, zigzag(v as i128 - self.prev_v as i128)).unwrap();
                self.prev_u = u;
                self.prev_v = v;
            }
            self.count += chunk.len() as u64;
            self.w.write_all(&self.scratch)?;
        }
        Ok(())
    }

    /// Number of edges written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Flush and return the underlying writer and the edge count.
    pub fn finish(mut self) -> io::Result<(W, u64)> {
        self.w.flush()?;
        Ok((self.w, self.count))
    }
}

/// Streaming decoder of the compressed edge format; memory footprint is
/// O(1) regardless of stream length.
pub struct CompressedEdgeReader<R: BufRead> {
    r: R,
    n: u64,
    prev_u: u64,
    prev_v: u64,
}

impl<R: BufRead> CompressedEdgeReader<R> {
    /// Open a stream, validating the magic header.
    pub fn new(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if magic != COMPRESSED_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a KGSHRD01 compressed edge stream",
            ));
        }
        let mut n_bytes = [0u8; 8];
        r.read_exact(&mut n_bytes)?;
        Ok(CompressedEdgeReader {
            r,
            n: u64::from_le_bytes(n_bytes),
            prev_u: 0,
            prev_v: 0,
        })
    }

    /// Vertex count recorded in the header.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Decode the next edge; `Ok(None)` at end of stream.
    pub fn next_edge(&mut self) -> io::Result<Option<(u64, u64)>> {
        let Some(zu) = read_varint(&mut self.r)? else {
            return Ok(None);
        };
        let Some(zv) = read_varint(&mut self.r)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "edge record truncated after u-delta",
            ));
        };
        let u = self.prev_u as i128 + unzigzag(zu);
        let v = self.prev_v as i128 + unzigzag(zv);
        let (Ok(u), Ok(v)) = (u64::try_from(u), u64::try_from(v)) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "edge delta decodes outside the u64 vertex-id range",
            ));
        };
        self.prev_u = u;
        self.prev_v = v;
        Ok(Some((u, v)))
    }
}

/// Write a whole edge list in the compressed varint+delta format.
pub fn write_compressed<W: Write>(w: W, el: &EdgeList) -> io::Result<()> {
    let mut enc = CompressedEdgeWriter::new(BufWriter::new(w), el.n)?;
    for &(u, v) in &el.edges {
        enc.push(u, v)?;
    }
    enc.finish()?;
    Ok(())
}

/// Read a whole compressed edge stream back (inverse of
/// [`write_compressed`]).
pub fn read_compressed<R: BufRead>(r: R) -> io::Result<EdgeList> {
    let mut dec = CompressedEdgeReader::new(r)?;
    let mut edges = Vec::new();
    while let Some(e) = dec.next_edge()? {
        edges.push(e);
    }
    Ok(EdgeList::new(dec.n(), edges))
}

/// Write one `u v` pair per line (the format the KaGen tool emits).
pub fn write_edge_list<W: Write>(w: W, el: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    for &(u, v) in &el.edges {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Write METIS format: header `n m`, then one line of 1-based neighbors per
/// vertex. Expects a canonical undirected edge list.
pub fn write_metis<W: Write>(w: W, el: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    let csr = crate::Csr::undirected(el);
    writeln!(w, "{} {}", el.n, el.edges.len())?;
    for v in 0..el.n {
        let neigh = csr.neighbors(v);
        let mut first = true;
        for &u in neigh {
            if first {
                write!(w, "{}", u + 1)?;
                first = false;
            } else {
                write!(w, " {}", u + 1)?;
            }
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Write raw little-endian `u64` pairs (binary edge list).
pub fn write_binary<W: Write>(w: W, el: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    for &(u, v) in &el.edges {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Read raw little-endian `u64` pairs back (inverse of [`write_binary`]).
pub fn read_binary(bytes: &[u8], n: u64) -> EdgeList {
    assert_eq!(bytes.len() % 16, 0, "truncated binary edge list");
    let mut edges = Vec::with_capacity(bytes.len() / 16);
    for chunk in bytes.chunks_exact(16) {
        let u = u64::from_le_bytes(chunk[0..8].try_into().unwrap());
        let v = u64::from_le_bytes(chunk[8..16].try_into().unwrap());
        edges.push((u, v));
    }
    EdgeList::new(n, edges)
}

/// Parse a text edge list (`u v` per line; `#`/`%` comment lines skipped).
/// `n` is inferred as max id + 1 unless given.
pub fn read_edge_list(text: &str, n: Option<u64>) -> Result<EdgeList, String> {
    let mut edges = Vec::new();
    let mut max_id = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u64, String> {
            tok.ok_or_else(|| format!("line {}: missing field", lineno + 1))?
                .parse::<u64>()
                .map_err(|e| format!("line {}: {e}", lineno + 1))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = n.unwrap_or(if edges.is_empty() { 0 } else { max_id + 1 });
    Ok(EdgeList::new(n, edges))
}

/// Write Graphviz DOT (undirected), for visualizing small instances.
pub fn write_dot<W: Write>(w: W, el: &EdgeList, name: &str) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "graph {name} {{")?;
    for &(u, v) in &el.edges {
        writeln!(w, "  {u} -- {v};")?;
    }
    writeln!(w, "}}")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn edge_list_format() {
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &sample()).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "0 1\n1 2\n2 3\n");
    }

    #[test]
    fn metis_format() {
        let mut buf = Vec::new();
        write_metis(&mut buf, &sample()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "4 3");
        assert_eq!(lines[1], "2");
        assert_eq!(lines[2], "1 3");
        assert_eq!(lines[3], "2 4");
        assert_eq!(lines[4], "3");
    }

    #[test]
    fn binary_roundtrip() {
        let el = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &el).unwrap();
        assert_eq!(buf.len(), 3 * 16);
        let back = read_binary(&buf, 4);
        assert_eq!(back, el);
    }

    #[test]
    fn text_roundtrip() {
        let el = sample();
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &el).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let back = read_edge_list(&text, None).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn read_skips_comments_and_infers_n() {
        let el = read_edge_list("# header\n0 1\n% meta\n5 2\n", None).unwrap();
        assert_eq!(el.n, 6);
        assert_eq!(el.edges, vec![(0, 1), (5, 2)]);
    }

    #[test]
    fn read_reports_errors() {
        assert!(read_edge_list("0\n", None).is_err());
        assert!(read_edge_list("a b\n", None).is_err());
        assert_eq!(read_edge_list("", None).unwrap().n, 0);
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        let mut buf = Vec::new();
        let values = [0u128, 1, 127, 128, 300, u64::MAX as u128, u128::MAX];
        for &x in &values {
            write_varint(&mut buf, x).unwrap();
        }
        let mut r = &buf[..];
        for &x in &values {
            assert_eq!(read_varint(&mut r).unwrap(), Some(x));
        }
        assert_eq!(read_varint(&mut r).unwrap(), None);
    }

    #[test]
    fn varint_truncation_is_an_error() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1u128 << 40).unwrap();
        let mut r = &buf[..buf.len() - 1];
        assert!(read_varint(&mut r).is_err());
    }

    #[test]
    fn varint_overflow_is_an_error() {
        // 19 continuation bytes: more than 128 bits of payload.
        let mut buf = vec![0x80u8; 19];
        buf.push(0x01);
        assert!(read_varint(&mut &buf[..]).is_err());
        // 19th byte present but with payload bits beyond bit 127.
        let mut buf = vec![0xffu8; 18];
        buf.push(0x04); // shift 126, payload 4 needs bit 128
        assert!(read_varint(&mut &buf[..]).is_err());
        // Same position with a fitting payload is fine (u128::MAX).
        let mut buf = vec![0xffu8; 18];
        buf.push(0x03);
        assert_eq!(read_varint(&mut &buf[..]).unwrap(), Some(u128::MAX));
    }

    #[test]
    fn compressed_roundtrip() {
        let el = EdgeList::new(10, vec![(0, 1), (0, 9), (3, 2), (3, 3), (9, 0), (9, 9)]);
        let mut buf = Vec::new();
        write_compressed(&mut buf, &el).unwrap();
        let back = read_compressed(&buf[..]).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn push_slice_bytes_identical_to_per_edge_push() {
        let edges = vec![(0u64, 1u64), (0, 9), (3, 2), (3, 3), (9, 0), (9, 9)];
        let mut per_edge = CompressedEdgeWriter::new(Vec::new(), 10).unwrap();
        for &(u, v) in &edges {
            per_edge.push(u, v).unwrap();
        }
        let (a, count_a) = per_edge.finish().unwrap();

        // Mixed granularities: slice, single push, slice, empty slice.
        let mut sliced = CompressedEdgeWriter::new(Vec::new(), 10).unwrap();
        sliced.push_slice(&edges[..3]).unwrap();
        sliced.push(edges[3].0, edges[3].1).unwrap();
        sliced.push_slice(&edges[4..]).unwrap();
        sliced.push_slice(&[]).unwrap();
        let (b, count_b) = sliced.finish().unwrap();

        assert_eq!(a, b);
        assert_eq!(count_a, count_b);
    }

    #[test]
    fn compressed_empty_stream() {
        let el = EdgeList::new(5, vec![]);
        let mut buf = Vec::new();
        write_compressed(&mut buf, &el).unwrap();
        let back = read_compressed(&buf[..]).unwrap();
        assert_eq!(back.n, 5);
        assert!(back.edges.is_empty());
    }

    #[test]
    fn compressed_sorted_stream_is_compact() {
        // Sorted edge lists take ~2-3 bytes per edge vs 16 raw.
        let edges: Vec<(u64, u64)> = (0..1000u64).map(|i| (i / 4, i % 997)).collect();
        let el = EdgeList::new(1000, edges);
        let mut buf = Vec::new();
        write_compressed(&mut buf, &el).unwrap();
        assert!(
            buf.len() < 1000 * 4 + 16,
            "compressed size {} too large",
            buf.len()
        );
        assert_eq!(read_compressed(&buf[..]).unwrap(), el);
    }

    #[test]
    fn compressed_rejects_bad_magic() {
        let buf = b"NOTMAGIC\0\0\0\0\0\0\0\0".to_vec();
        assert!(read_compressed(&buf[..]).is_err());
    }

    #[test]
    fn compressed_rejects_underflowing_delta() {
        // A first record whose u-delta is negative would decode to a
        // vertex id below zero: must be InvalidData, not a wrapped id.
        let mut buf = Vec::new();
        buf.extend_from_slice(&COMPRESSED_MAGIC);
        buf.extend_from_slice(&5u64.to_le_bytes());
        write_varint(&mut buf, 1).unwrap(); // zigzag(-1)
        write_varint(&mut buf, 0).unwrap(); // zigzag(0)
        assert!(read_compressed(&buf[..]).is_err());
    }

    #[test]
    fn dot_output() {
        let mut buf = Vec::new();
        write_dot(&mut buf, &sample(), "g").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("graph g {"));
        assert!(text.contains("  1 -- 2;"));
        assert!(text.trim_end().ends_with('}'));
    }
}
