//! GPGPU random geometric graphs (§5.3).
//!
//! The paper's two-phase accelerator pipeline:
//!
//! * **Phase 1 — points.** The host generates "the appropriate seeds and
//!   vertex numbers for the cells" (the binomial count tree); the device
//!   samples the points. "Depending on the expected number of vertices per
//!   cell, a cell is either processed by a whole block with several
//!   threads or by a single thread, therefore grouping several cells in
//!   one block" — [`plan_point_blocks`] implements that grouping rule.
//! * **Phase 2 — edges,** three steps: (1) one block per cell *counts* the
//!   edges shorter than `r` against its 3^d neighborhood; (2) a device
//!   prefix sum turns counts into offsets and the total; (3) the host
//!   allocates the edge array and a second pass re-runs the comparisons,
//!   now *writing* every edge at its offset. "Each cell is processed by
//!   one block on the GPGPU to avoid any load-balancing issues."
//!
//! The per-cell PRNG seeds are the same as the CPU generator's, so the
//! output is bit-identical to [`kagen_core::Rgg2d`]/[`Rgg3d`]
//! (asserted in tests).
//!
//! [`Rgg3d`]: kagen_core::Rgg3d

use crate::device::{BlockCtx, Device};
use crate::scan::exclusive_scan;
use kagen_core::rgg::Rgg;
use kagen_geometry::cell_points::cell_points;
use kagen_geometry::{CellGrid, Point};

/// Random geometric graph on the simulated device.
#[derive(Clone, Debug)]
pub struct GpuRgg<const D: usize> {
    inner: Rgg<D>,
    radius: f64,
    seed: u64,
}

/// 2D specialization.
pub type GpuRgg2d = GpuRgg<2>;
/// 3D specialization.
pub type GpuRgg3d = GpuRgg<3>;

/// One phase-1 block: the cells it samples (cell, count, first vertex id).
type PointBlock = Vec<(u64, u64, u64)>;

/// Group cells into device blocks: a cell with at least half a block of
/// expected points gets its own block; runs of smaller cells share one
/// block until they fill it (§5.3 phase 1).
pub fn plan_point_blocks(cells: &[(u64, u64, u64)], threads_per_block: u64) -> Vec<PointBlock> {
    let mut blocks: Vec<PointBlock> = Vec::new();
    let mut open: PointBlock = Vec::new();
    let mut open_count = 0u64;
    for &(cell, count, first) in cells {
        if count >= threads_per_block / 2 {
            // Whole-block cell; flush the open group first so blocks keep
            // Morton order.
            if !open.is_empty() {
                blocks.push(std::mem::take(&mut open));
                open_count = 0;
            }
            blocks.push(vec![(cell, count, first)]);
            continue;
        }
        if open_count + count > threads_per_block && !open.is_empty() {
            blocks.push(std::mem::take(&mut open));
            open_count = 0;
        }
        open.push((cell, count, first));
        open_count += count;
    }
    if !open.is_empty() {
        blocks.push(open);
    }
    blocks
}

impl<const D: usize> GpuRgg<D> {
    /// `n` points in `[0,1)^D`, connection radius `radius`.
    pub fn new(n: u64, radius: f64) -> Self {
        GpuRgg {
            inner: Rgg::<D>::new(n, radius),
            radius,
            seed: 1,
        }
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.inner = self.inner.clone().with_seed(seed);
        self.seed = seed;
        self
    }

    /// Phase 1: sample all points on the device; returns per-cell point
    /// vectors (dense, Morton order) and each cell's first global id.
    fn device_points(&self, dev: &Device, grid: &CellGrid<D>) -> (Vec<Vec<Point<D>>>, Vec<u64>) {
        let (_, tree) = self.inner.instance_grid();
        let num_cells = grid.num_cells();
        // Host side: counts + id prefixes for every cell (the "seeds and
        // vertex numbers" of §5.3).
        let mut cells: Vec<(u64, u64, u64)> = Vec::with_capacity(num_cells as usize);
        let mut first = 0u64;
        {
            let mut acc: Vec<(u64, u64)> = Vec::with_capacity(num_cells as usize);
            tree.for_leaf_counts(0, num_cells, &mut |cell, count| acc.push((cell, count)));
            for (cell, count) in acc {
                cells.push((cell, count, first));
                first += count;
            }
        }
        let mut firsts = vec![0u64; num_cells as usize];
        for &(cell, _, f) in &cells {
            firsts[cell as usize] = f;
        }
        // Device side: grouped sampling.
        let plan = plan_point_blocks(&cells, dev.cfg.threads_per_block as u64);
        let seed = self.seed;
        let sampled: Vec<Vec<(u64, Vec<Point<D>>)>> = dev.launch(plan, move |ctx, block| {
            block
                .into_iter()
                .map(|(cell, count, _)| {
                    let mut pts = Vec::new();
                    cell_points(grid, seed, cell, count, &mut pts);
                    ctx.simd_for(pts.len(), |_| true);
                    ctx.gmem_write(pts.len() * 8 * D);
                    (cell, pts)
                })
                .collect()
        });
        let mut points: Vec<Vec<Point<D>>> = vec![Vec::new(); num_cells as usize];
        for (cell, pts) in sampled.into_iter().flatten() {
            points[cell as usize] = pts;
        }
        (points, firsts)
    }

    /// Visit every candidate pair of cell `cell` in deterministic order:
    /// within-cell pairs `(i < j)`, then cross pairs against each 3^d
    /// neighbor with a higher Morton rank (each unordered pair visited
    /// exactly once device-wide).
    fn for_cell_pairs(
        ctx: &mut BlockCtx,
        grid: &CellGrid<D>,
        points: &[Vec<Point<D>>],
        firsts: &[u64],
        cell: u64,
        r2: f64,
        mut sink: impl FnMut(u64, u64),
    ) {
        let pts = &points[cell as usize];
        if pts.is_empty() {
            return;
        }
        let first = firsts[cell as usize];
        // Within-cell pairs.
        for i in 0..pts.len() {
            let (a, b) = pts.split_at(i + 1);
            let p = &a[i];
            // One coordinate fetch for the pivot, one per candidate lane.
            ctx.gmem_read(8 * D * (1 + b.len()));
            ctx.simd_for(b.len(), |j| {
                let hit = p.dist2(&b[j]) <= r2;
                if hit {
                    sink(first + i as u64, first + (i + 1 + j) as u64);
                }
                hit
            });
        }
        // Cross pairs against higher-ranked neighbor cells.
        let coords = grid.coords_of(cell);
        let mut neighbors: Vec<u64> = Vec::new();
        grid.for_neighbors(coords, false, &mut |ncoords, _| {
            let ncell = grid.morton_of(ncoords);
            if ncell > cell && !points[ncell as usize].is_empty() {
                neighbors.push(ncell);
            }
        });
        neighbors.sort_unstable();
        for ncell in neighbors {
            let npts = &points[ncell as usize];
            let nfirst = firsts[ncell as usize];
            for (i, p) in pts.iter().enumerate() {
                ctx.gmem_read(8 * D * (1 + npts.len()));
                ctx.simd_for(npts.len(), |j| {
                    let hit = p.dist2(&npts[j]) <= r2;
                    if hit {
                        sink(first + i as u64, nfirst + j as u64);
                    }
                    hit
                });
            }
        }
    }

    /// Generate the whole instance on `dev`. Returns the canonical sorted
    /// undirected edge list — identical to the merged CPU output.
    pub fn generate(&self, dev: &Device) -> Vec<(u64, u64)> {
        let (grid, _) = self.inner.instance_grid();
        let (points, firsts) = self.device_points(dev, &grid);
        let r2 = self.radius * self.radius;
        let num_cells = grid.num_cells();

        // Step 1: count kernel — one block per cell.
        let counts: Vec<u64> = dev.launch((0..num_cells).collect(), |ctx, cell| {
            let mut count = 0u64;
            Self::for_cell_pairs(ctx, &grid, &points, &firsts, cell, r2, |_, _| count += 1);
            count
        });

        // Step 2: offsets via the device prefix sum.
        let (offsets, total) = exclusive_scan(dev, &counts);
        debug_assert_eq!(offsets.len() as u64, num_cells);

        // Step 3: fill kernel — host allocates, blocks write disjoint
        // slices at their offsets.
        let mut edges: Vec<(u64, u64)> = vec![(0, 0); total as usize];
        let mut slices: Vec<(u64, &mut [(u64, u64)])> = Vec::with_capacity(num_cells as usize);
        {
            let mut rest: &mut [(u64, u64)] = &mut edges;
            let mut at = 0u64;
            for cell in 0..num_cells {
                debug_assert_eq!(at, offsets[cell as usize], "offset mismatch");
                let len = counts[cell as usize] as usize;
                let (head, tail) = rest.split_at_mut(len);
                slices.push((cell, head));
                rest = tail;
                at += len as u64;
            }
        }
        dev.launch(slices, |ctx, (cell, out)| {
            let mut k = 0usize;
            Self::for_cell_pairs(ctx, &grid, &points, &firsts, cell, r2, |u, v| {
                out[k] = (u.min(v), u.max(v));
                k += 1;
            });
            ctx.gmem_write(k * 16);
            debug_assert_eq!(k, out.len(), "fill must match the counted total");
        });
        edges.sort_unstable();
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kagen_core::{generate_undirected, Rgg2d, Rgg3d};

    #[test]
    fn bit_identical_to_cpu_2d() {
        for &(n, r, seed) in &[(400u64, 0.08f64, 3u64), (1000, 0.03, 11), (50, 0.4, 2)] {
            let dev = Device::default();
            let gpu = GpuRgg2d::new(n, r).with_seed(seed).generate(&dev);
            let cpu = generate_undirected(&Rgg2d::new(n, r).with_seed(seed));
            assert_eq!(gpu, cpu.edges, "n={n} r={r} seed={seed}");
        }
    }

    #[test]
    fn bit_identical_to_cpu_3d() {
        let dev = Device::default();
        let gpu = GpuRgg3d::new(300, 0.15).with_seed(5).generate(&dev);
        let cpu = generate_undirected(&Rgg3d::new(300, 0.15).with_seed(5));
        assert_eq!(gpu, cpu.edges);
    }

    #[test]
    fn three_phase_launch_structure() {
        let dev = Device::default();
        GpuRgg2d::new(500, 0.05).with_seed(7).generate(&dev);
        // points + count + 3 (scan) + fill = 6 kernel launches.
        assert_eq!(dev.stats().kernel_launches, 6);
    }

    #[test]
    fn count_blocks_cover_every_cell() {
        let n = 600u64;
        let r = 0.09;
        let dev = Device::default();
        let gen = GpuRgg2d::new(n, r).with_seed(13);
        let (grid, _) = Rgg2d::new(n, r).with_seed(13).instance_grid();
        gen.generate(&dev);
        // Count kernel and fill kernel run one block per cell each.
        assert!(dev.stats().blocks_executed >= 2 * grid.num_cells());
    }

    #[test]
    fn divergence_is_observed() {
        // Radius chosen so some candidate pairs hit and others miss —
        // mixed warps must register as divergent.
        let dev = Device::default();
        GpuRgg2d::new(800, 0.07).with_seed(1).generate(&dev);
        let s = dev.stats();
        assert!(s.divergent_warps > 0, "no divergence in {s:?}");
        assert!(s.divergent_warps <= s.warp_steps);
    }

    #[test]
    fn point_block_planning_rules() {
        // Big cells isolated, small cells grouped, nothing lost.
        let cells: Vec<(u64, u64, u64)> = vec![
            (0, 10, 0),
            (1, 300, 10), // >= 128: own block
            (2, 20, 310),
            (3, 30, 330),
            (4, 200, 360), // own block
            (5, 5, 560),
        ];
        let blocks = plan_point_blocks(&cells, 256);
        let flat: Vec<u64> = blocks.iter().flatten().map(|&(c, _, _)| c).collect();
        assert_eq!(flat, vec![0, 1, 2, 3, 4, 5], "all cells, stable order");
        // The two big cells (1 and 4) each get a block of their own.
        for big in [1u64, 4] {
            let b = blocks.iter().find(|b| b.iter().any(|&(c, _, _)| c == big));
            assert_eq!(b.unwrap().len(), 1, "cell {big} must be alone");
        }
        for b in &blocks {
            if b.len() > 1 {
                let sum: u64 = b.iter().map(|&(_, c, _)| c).sum();
                assert!(sum <= 256 + 256 / 2, "grouped block overfull: {sum}");
            }
        }
    }

    #[test]
    fn grouping_respects_capacity() {
        let cells: Vec<(u64, u64, u64)> = (0..40).map(|i| (i, 100, i * 100)).collect();
        let blocks = plan_point_blocks(&cells, 256);
        for b in &blocks {
            let sum: u64 = b.iter().map(|&(_, c, _)| c).sum();
            assert!(sum <= 300, "block of {sum} expected points");
        }
        assert_eq!(blocks.iter().map(|b| b.len()).sum::<usize>(), 40);
    }

    #[test]
    fn empty_and_tiny_instances() {
        let dev = Device::default();
        let edges = GpuRgg2d::new(1, 0.5).with_seed(1).generate(&dev);
        assert!(edges.is_empty());
        let edges = GpuRgg2d::new(2, 0.99).with_seed(1).generate(&dev);
        let cpu = generate_undirected(&Rgg2d::new(2, 0.99).with_seed(1));
        assert_eq!(edges, cpu.edges);
    }
}
