//! Streaming pipeline: generate a graph **larger than you would want in
//! RAM** straight to sharded files, then merge it into canonical form —
//! all with bounded memory.
//!
//! ```text
//! cargo run --release --example streaming_pipeline
//! ```
//!
//! The §9 future-work scenario of the paper: every PE streams its edges
//! through an `EdgeSink` into its own compressed shard; the only
//! per-worker memory is the generator state and a write buffer. The
//! external merge then rebuilds the exact `generate_undirected` instance
//! using a fixed edge budget of RAM (sorted runs + k-way merge), never
//! the whole edge list.

use kagen_repro::core::prelude::*;
use kagen_repro::pipeline::{
    external_merge_to_vec, stream_into, write_sharded, CountingSink, DegreeStatsSink, InstanceMeta,
    ShardFormat, ShardReader, StreamConfig, TeeSink,
};

fn main() {
    let dir = std::env::temp_dir().join("kagen_streaming_example");
    std::fs::remove_dir_all(&dir).ok();

    // An R-MAT instance with 2^22 edges: ~67 MB as raw pairs, but the
    // streaming path never holds more than one PE's generator state.
    let rmat = Rmat::new(18, 1 << 22).with_seed(42).with_chunks(64);
    let meta = InstanceMeta {
        model: "rmat".into(),
        params: format!("scale=18 m={}", 1u64 << 22),
        seed: 42,
    };
    let started = std::time::Instant::now();
    let manifest = write_sharded(
        &rmat,
        &meta,
        &StreamConfig::new(&dir, ShardFormat::Compressed),
    )
    .expect("shard write failed");
    let shard_bytes: u64 = manifest
        .shards
        .iter()
        .map(|s| {
            std::fs::metadata(dir.join(&s.file))
                .map(|m| m.len())
                .unwrap_or(0)
        })
        .sum();
    println!(
        "wrote {} shards / {} edges in {:.2}s — {:.1} MB compressed ({:.1} bytes/edge vs 16 raw)",
        manifest.chunks,
        manifest.edges,
        started.elapsed().as_secs_f64(),
        shard_bytes as f64 / 1e6,
        shard_bytes as f64 / manifest.edges as f64,
    );

    // Stream the shards back with O(1) memory, validating checksums.
    let reader = ShardReader::open(&dir).expect("cannot open shards");
    let mut histogram = [0u64; 8];
    reader
        .stream(&mut |u, _v| {
            // Bucket sources by their top 3 bits: R-MAT skew at a glance.
            histogram[(u >> 15) as usize] += 1;
        })
        .expect("stream-back failed");
    println!("source-vertex octant masses (R-MAT skew): {histogram:?}");

    // Degree statistics without materializing: tee counting + degrees.
    let mut sinks = TeeSink::new(
        CountingSink::new(),
        DegreeStatsSink::new(rmat.num_vertices(), true),
    );
    stream_into(&rmat, &mut sinks).expect("stream failed");
    let (out_deg, in_deg) = sinks.b.stats();
    println!(
        "streamed degree stats: out max {}, in max {}, mean {:.2}",
        out_deg.max,
        in_deg.expect("directed").max,
        out_deg.mean,
    );

    // Bounded-memory canonical merge of an undirected instance.
    let rgg = Rgg2d::new(50_000, 0.004).with_seed(7).with_chunks(32);
    let rgg_dir = std::env::temp_dir().join("kagen_streaming_example_rgg");
    std::fs::remove_dir_all(&rgg_dir).ok();
    write_sharded(
        &rgg,
        &InstanceMeta {
            model: "rgg2d".into(),
            params: "n=50000 r=0.004".into(),
            seed: 7,
        },
        &StreamConfig::new(&rgg_dir, ShardFormat::Compressed),
    )
    .expect("shard write failed");
    let reader = ShardReader::open(&rgg_dir).expect("cannot open shards");
    let budget = 1 << 16;
    let (edges, stats) =
        external_merge_to_vec(&reader, &rgg_dir.join("runs"), budget).expect("merge failed");
    println!(
        "external merge: {} raw -> {} canonical edges via {} runs (peak buffer {} ≤ budget {})",
        stats.edges_in, stats.edges_out, stats.runs, stats.max_buffered, budget,
    );
    assert_eq!(edges.len() as u64, stats.edges_out);

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&rgg_dir).ok();
}
