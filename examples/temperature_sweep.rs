//! Soft random hyperbolic graphs (§9): sweep the temperature parameter
//! and watch the threshold model melt.
//!
//! ```text
//! cargo run --release --example temperature_sweep
//! ```
//!
//! The binomial/probabilistic RHG connects each pair with the Fermi–Dirac
//! probability `p(d) = 1/(1 + e^{(d−R)/2T})`. At `T → 0` this is the
//! threshold model; as `T` grows, long edges appear and short pairs are
//! dropped, lowering clustering while keeping the power-law degree
//! distribution — the knob real-network modelers tune to match observed
//! clustering coefficients.

use kagen_repro::graph::stats::{global_clustering, DegreeStats};
use kagen_repro::prelude::*;

fn main() {
    let n = 8_000u64;
    let (deg, gamma, seed) = (10.0, 2.7, 7);

    // The T = 0 reference: the hard-threshold generator.
    let hard = generate_undirected(&Rhg::new(n, deg, gamma).with_seed(seed).with_chunks(8));
    let hs = DegreeStats::undirected(&hard);
    println!(
        "T = 0.00 (threshold)  m = {:>7}  d̄ = {:>6.2}  max deg = {:>5}  clustering = {:.3}",
        hard.edges.len(),
        hs.mean,
        hs.max,
        global_clustering(&hard)
    );

    for &t in &[0.1, 0.3, 0.5, 0.7, 0.9] {
        let soft = generate_undirected(
            &SoftRhg::new(n, deg, gamma, t)
                .with_seed(seed)
                .with_chunks(8),
        );
        let s = DegreeStats::undirected(&soft);
        // How many edges survive from the threshold graph?
        let hard_set: std::collections::HashSet<_> = hard.edges.iter().collect();
        let kept = soft.edges.iter().filter(|e| hard_set.contains(e)).count();
        println!(
            "T = {t:.2}              m = {:>7}  d̄ = {:>6.2}  max deg = {:>5}  clustering = {:.3}  ({}% of T=0 edges kept)",
            soft.edges.len(),
            s.mean,
            s.max,
            global_clustering(&soft),
            100 * kept / hard.edges.len().max(1),
        );
    }

    println!(
        "\nAll soft instances share the threshold instance's vertex skeleton \
         (same seed ⇒ same coordinates), and every pair decision is a \
         pseudorandom function of (seed, pair) — still communication-free."
    );
}
