//! # kagen-cluster
//!
//! Multi-process distributed runs for the communication-free generators
//! — the ROADMAP's "MPI-style launcher mapping ranks to chunk ranges"
//! without MPI, because the paper makes it unnecessary: every PE's
//! output is a pure function of `(seed, params, pe id)`, so workers need
//! a *plan*, not a network.
//!
//! * [`plan`] — split the PE range into contiguous rank ranges
//!   (fresh runs) or coalesce missing PEs into repair tasks (resume).
//! * [`worker`] — the worker body: generate a PE range into shard files
//!   plus a partial manifest; shared verbatim between `kagen worker`
//!   subprocesses and the in-process runner.
//! * [`ledger`] — `ledger.json`: per-shard state with generation-time
//!   checksums and per-rank status, rewritten atomically after every
//!   rank, so an interrupted run resumes instead of restarting.
//! * [`launch`] — the coordinator: supervise up to W concurrent workers
//!   ([`ProcessRunner`] re-execs the `kagen` binary, [`InProcessRunner`]
//!   calls the same code in-process), validate shard checksums, federate
//!   partial manifests into the final `manifest.json` — byte-identical
//!   to a single-process `kagen stream` run of the same instance.
//!
//! ## Quickstart (in-process runner)
//!
//! ```
//! use kagen_core::prelude::*;
//! use kagen_cluster::{launch, InProcessRunner, LaunchOptions};
//! use kagen_pipeline::{InstanceMeta, ShardFormat};
//!
//! let gen = GnmUndirected::new(500, 3000).with_seed(3).with_chunks(8);
//! let dir = std::env::temp_dir().join("kagen_cluster_doc");
//! # std::fs::remove_dir_all(&dir).ok();
//! let meta = InstanceMeta {
//!     model: "gnm_undirected".into(),
//!     params: "n=500 m=3000".into(),
//!     seed: 3,
//! };
//! let header = meta.header(&gen, ShardFormat::Compressed);
//! let runner = InProcessRunner::new(&gen, &dir, ShardFormat::Compressed);
//! let opts = LaunchOptions { workers: 3, ..Default::default() };
//! let report = launch(&dir, &header, &opts, &runner).unwrap();
//! assert_eq!(report.manifest.chunks, 8);
//! assert_eq!(report.spawned.len(), 3);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod heartbeat;
pub mod launch;
pub mod ledger;
pub mod metrics;
pub mod plan;
pub mod trace;
pub mod worker;

pub use heartbeat::{Heartbeat, HeartbeatPublisher, HEARTBEAT_INTERVAL, HEARTBEAT_SCHEMA};
pub use launch::{
    launch, InProcessRunner, LaunchOptions, LaunchReport, ProcessRunner, RankTelemetry,
    ValidateMode, WorkerRunner, SAMPLED_BLOCKS,
};
pub use ledger::{Ledger, RankRecord, RankStatus, ShardState, LEDGER_FILE};
pub use metrics::{RankMetrics, RunMetrics, SidecarTelemetry, METRICS_SCHEMA, METRICS_SCHEMA_V1};
pub use plan::{plan_ranks, plan_repairs, RankTask};
pub use trace::{RankTrace, WorkerTrace, TRACE_SIDECAR_SCHEMA};
pub use worker::{run_worker, FailureInjection};

#[cfg(test)]
mod tests {
    use super::*;
    use kagen_core::prelude::*;
    use kagen_pipeline::{InstanceMeta, Manifest, ShardFormat, StreamConfig};
    use std::collections::HashSet;
    use std::path::PathBuf;

    fn test_gen() -> GnmUndirected {
        GnmUndirected::new(400, 3000).with_seed(11).with_chunks(6)
    }

    fn meta() -> InstanceMeta {
        InstanceMeta {
            model: "gnm_undirected".into(),
            params: "n=400 m=3000".into(),
            seed: 11,
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kagen_cluster_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// A cluster launch federates a manifest byte-identical to the
    /// single-process `write_sharded` run of the same instance.
    #[test]
    fn federated_manifest_equals_single_process_run() {
        let gen = test_gen();
        let single = tmp("single");
        kagen_pipeline::write_sharded(
            &gen,
            &meta(),
            &StreamConfig::new(&single, ShardFormat::Compressed),
        )
        .unwrap();
        let expect = std::fs::read_to_string(single.join("manifest.json")).unwrap();

        for workers in [1usize, 3, 4, 8] {
            let dir = tmp(&format!("fed{workers}"));
            let header = meta().header(&gen, ShardFormat::Compressed);
            let runner = InProcessRunner::new(&gen, &dir, ShardFormat::Compressed);
            let opts = LaunchOptions {
                workers,
                ..Default::default()
            };
            let report = launch(&dir, &header, &opts, &runner).unwrap();
            let got = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
            assert_eq!(got, expect, "workers={workers}");
            assert_eq!(report.regenerated_pes.len(), 6);
            assert_eq!(report.reused_shards, 0);
            // Shard files themselves are byte-identical too.
            for s in &report.manifest.shards {
                let a = std::fs::read(single.join(&s.file)).unwrap();
                let b = std::fs::read(dir.join(&s.file)).unwrap();
                assert_eq!(a, b, "workers={workers} shard {}", s.pe);
            }
            std::fs::remove_dir_all(&dir).ok();
        }
        std::fs::remove_dir_all(&single).ok();
    }

    /// A failed rank leaves the run resumable; resume regenerates only
    /// the failed rank's PEs and the final manifest matches a clean run.
    #[test]
    fn failed_rank_resumes_without_touching_done_shards() {
        let gen = test_gen();
        let dir = tmp("resume_fail");
        let header = meta().header(&gen, ShardFormat::Compressed);

        // Rank owning PE 3 dies before writing it.
        let mut runner = InProcessRunner::new(&gen, &dir, ShardFormat::Compressed);
        runner.fail_pes = HashSet::from([3]);
        let opts = LaunchOptions {
            workers: 3,
            ..Default::default()
        };
        let err = launch(&dir, &header, &opts, &runner).unwrap_err();
        assert!(err.to_string().contains("resumable"), "{err}");
        assert!(!dir.join("manifest.json").exists());

        let ledger = Ledger::load(&dir).unwrap();
        assert!(ledger.missing_pes().contains(&3));
        let done_before: Vec<u64> = ledger.done_shards().iter().map(|s| s.pe).collect();
        assert!(!done_before.is_empty(), "other ranks should have finished");

        // Resume with a healthy runner: only the missing PEs are spawned.
        let runner = InProcessRunner::new(&gen, &dir, ShardFormat::Compressed);
        let opts = LaunchOptions {
            workers: 3,
            resume: true,
            validate: ValidateMode::Full,
            ..Default::default()
        };
        let report = launch(&dir, &header, &opts, &runner).unwrap();
        assert_eq!(report.reused_shards, done_before.len() as u64);
        for pe in &done_before {
            assert!(
                !report.regenerated_pes.contains(&(*pe as usize)),
                "resume must not regenerate done shard {pe}"
            );
        }
        // The result matches a clean single-process run.
        let single = tmp("resume_fail_single");
        let expect = kagen_pipeline::write_sharded(
            &gen,
            &meta(),
            &StreamConfig::new(&single, ShardFormat::Compressed),
        )
        .unwrap();
        assert_eq!(report.manifest, expect);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&single).ok();
    }

    /// Corrupting and deleting shards flips exactly those PEs back to
    /// pending on resume.
    #[test]
    fn resume_regenerates_exactly_invalid_shards() {
        let gen = test_gen();
        let dir = tmp("resume_corrupt");
        let header = meta().header(&gen, ShardFormat::Compressed);
        let runner = InProcessRunner::new(&gen, &dir, ShardFormat::Compressed);
        let opts = LaunchOptions {
            workers: 2,
            ..Default::default()
        };
        let first = launch(&dir, &header, &opts, &runner).unwrap();

        // Corrupt shard 1 (flip a payload byte), delete shard 4.
        let corrupt = dir.join(&first.manifest.shards[1].file);
        let mut bytes = std::fs::read(&corrupt).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&corrupt, bytes).unwrap();
        std::fs::remove_file(dir.join(&first.manifest.shards[4].file)).unwrap();

        let report = launch(
            &dir,
            &header,
            &LaunchOptions {
                workers: 2,
                resume: true,
                validate: ValidateMode::Full,
                ..Default::default()
            },
            &runner,
        )
        .unwrap();
        assert_eq!(report.regenerated_pes, vec![1, 4]);
        let mut invalidated = report.invalidated_pes.clone();
        invalidated.sort_unstable();
        assert_eq!(invalidated, vec![1, 4]);
        assert_eq!(report.reused_shards, 4);
        // Two non-contiguous repairs → two one-PE tasks.
        assert_eq!(report.spawned.len(), 2);
        assert_eq!(report.manifest, first.manifest);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Resuming a complete, healthy run spawns nothing and rewrites the
    /// same manifest.
    #[test]
    fn resume_of_healthy_run_is_a_no_op() {
        let gen = test_gen();
        let dir = tmp("resume_noop");
        let header = meta().header(&gen, ShardFormat::Compressed);
        let runner = InProcessRunner::new(&gen, &dir, ShardFormat::Compressed);
        let first = launch(
            &dir,
            &header,
            &LaunchOptions {
                workers: 3,
                ..Default::default()
            },
            &runner,
        )
        .unwrap();
        let report = launch(
            &dir,
            &header,
            &LaunchOptions {
                workers: 3,
                resume: true,
                validate: ValidateMode::Full,
                ..Default::default()
            },
            &runner,
        )
        .unwrap();
        assert!(report.spawned.is_empty());
        assert_eq!(report.reused_shards, 6);
        assert_eq!(report.manifest, first.manifest);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A fresh launch refuses to clobber an existing ledger, and resume
    /// refuses mismatched parameters.
    #[test]
    fn ledger_guards_against_clobber_and_mismatch() {
        let gen = test_gen();
        let dir = tmp("guards");
        let header = meta().header(&gen, ShardFormat::Compressed);
        let runner = InProcessRunner::new(&gen, &dir, ShardFormat::Compressed);
        let opts = LaunchOptions {
            workers: 2,
            ..Default::default()
        };
        launch(&dir, &header, &opts, &runner).unwrap();

        let err = launch(&dir, &header, &opts, &runner).unwrap_err();
        assert!(err.to_string().contains("ledger"), "{err}");

        let mut other = header.clone();
        other.seed = 999;
        let err = launch(
            &dir,
            &other,
            &LaunchOptions {
                workers: 2,
                resume: true,
                validate: ValidateMode::Full,
                ..Default::default()
            },
            &runner,
        )
        .unwrap_err();
        assert!(err.to_string().contains("mismatch"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Supervisors must execute tasks concurrently — regression test
    /// for holding the queue lock across `runner.run()`, which silently
    /// serialized every worker. Each task blocks until *both* tasks are
    /// inside `run()`; with serialized supervisors the first task times
    /// out and the launch fails.
    #[test]
    fn supervisors_run_tasks_concurrently() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::time::{Duration, Instant};

        struct Rendezvous<'a> {
            inner: InProcessRunner<'a>,
            inside: AtomicUsize,
        }
        impl WorkerRunner for Rendezvous<'_> {
            fn run(&self, task: &RankTask) -> std::io::Result<Vec<kagen_pipeline::ShardInfo>> {
                self.inside.fetch_add(1, Ordering::SeqCst);
                let deadline = Instant::now() + Duration::from_secs(10);
                while self.inside.load(Ordering::SeqCst) < 2 {
                    if Instant::now() > deadline {
                        return Err(std::io::Error::other(
                            "workers are serialized: the second task never entered run()",
                        ));
                    }
                    std::thread::yield_now();
                }
                self.inner.run(task)
            }
        }

        let gen = GnmUndirected::new(100, 600).with_seed(2).with_chunks(2);
        let dir = tmp("concurrent");
        let meta = InstanceMeta {
            model: "gnm_undirected".into(),
            params: String::new(),
            seed: 2,
        };
        let header = meta.header(&gen, ShardFormat::Compressed);
        let runner = Rendezvous {
            inner: InProcessRunner::new(&gen, &dir, ShardFormat::Compressed),
            inside: AtomicUsize::new(0),
        };
        let opts = LaunchOptions {
            workers: 2,
            ..Default::default()
        };
        let report = launch(&dir, &header, &opts, &runner)
            .expect("both tasks must run concurrently under 2 workers");
        assert_eq!(report.spawned.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A transient rank failure is rescued by the in-launch retry
    /// budget: the launch succeeds without `--resume`, the ledger
    /// records the extra attempt, and the manifest is byte-identical to
    /// a clean run.
    #[test]
    fn transient_failures_are_retried_in_launch() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::Duration;

        /// Fails every rank's first attempt, succeeds afterwards.
        struct Flaky<'a> {
            inner: InProcessRunner<'a>,
            first_attempts: Mutex<HashSet<usize>>,
            failures: AtomicU64,
        }
        use std::sync::Mutex;
        impl WorkerRunner for Flaky<'_> {
            fn run(&self, task: &RankTask) -> std::io::Result<Vec<kagen_pipeline::ShardInfo>> {
                if self.first_attempts.lock().unwrap().insert(task.rank) {
                    self.failures.fetch_add(1, Ordering::SeqCst);
                    return Err(std::io::Error::other("transient fault"));
                }
                self.inner.run(task)
            }
        }

        let gen = test_gen();
        let dir = tmp("retry");
        let header = meta().header(&gen, ShardFormat::Compressed);
        let runner = Flaky {
            inner: InProcessRunner::new(&gen, &dir, ShardFormat::Compressed),
            first_attempts: Mutex::new(HashSet::new()),
            failures: AtomicU64::new(0),
        };

        let opts = LaunchOptions {
            workers: 3,
            retries: 1,
            retry_backoff: Duration::from_millis(1),
            ..Default::default()
        };
        let report = launch(&dir, &header, &opts, &runner).expect("retries must rescue the run");
        assert_eq!(runner.failures.load(Ordering::SeqCst), 3);
        let ledger = Ledger::load(&dir).unwrap();
        for r in &ledger.ranks {
            assert_eq!(r.attempts, 2, "rank {}: one failure + one success", r.rank);
            assert_eq!(r.status, RankStatus::Done);
        }

        // Byte-identical to a clean single-process run.
        let single = tmp("retry_single");
        let expect = kagen_pipeline::write_sharded(
            &gen,
            &meta(),
            &StreamConfig::new(&single, ShardFormat::Compressed),
        )
        .unwrap();
        assert_eq!(report.manifest, expect);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&single).ok();
    }

    /// A fault that outlives the retry budget still fails the launch
    /// (resumable), with every attempt on the ledger.
    #[test]
    fn exhausted_retry_budget_leaves_run_resumable() {
        let gen = test_gen();
        let dir = tmp("retry_exhausted");
        let header = meta().header(&gen, ShardFormat::Compressed);
        let mut runner = InProcessRunner::new(&gen, &dir, ShardFormat::Compressed);
        runner.fail_pes = HashSet::from([3]); // permanent fault on PE 3's rank
        let opts = LaunchOptions {
            workers: 3,
            retries: 2,
            retry_backoff: std::time::Duration::from_millis(1),
            ..Default::default()
        };
        let err = launch(&dir, &header, &opts, &runner).unwrap_err();
        assert!(err.to_string().contains("resumable"), "{err}");
        let ledger = Ledger::load(&dir).unwrap();
        let failed: Vec<_> = ledger
            .ranks
            .iter()
            .filter(|r| r.status == RankStatus::Failed)
            .collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].attempts, 3, "initial attempt + 2 retries");
        assert!(ledger.missing_pes().contains(&3));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A panicking runner must fail its rank (resumably), not deadlock
    /// the supervision — regression test for the outstanding-count
    /// shutdown: an unwinding supervisor used to leave its task counted
    /// forever, hanging the remaining supervisors on the condvar.
    #[test]
    fn panicking_runner_fails_rank_instead_of_deadlocking() {
        struct Panicky<'a> {
            inner: InProcessRunner<'a>,
        }
        impl WorkerRunner for Panicky<'_> {
            fn run(&self, task: &RankTask) -> std::io::Result<Vec<kagen_pipeline::ShardInfo>> {
                if task.pes().contains(&3) {
                    panic!("degenerate configuration on rank {}", task.rank);
                }
                self.inner.run(task)
            }
        }

        let gen = test_gen();
        let dir = tmp("panic");
        let header = meta().header(&gen, ShardFormat::Compressed);
        let runner = Panicky {
            inner: InProcessRunner::new(&gen, &dir, ShardFormat::Compressed),
        };
        let err = launch(
            &dir,
            &header,
            &LaunchOptions {
                workers: 3,
                ..Default::default()
            },
            &runner,
        )
        .unwrap_err();
        assert!(err.to_string().contains("resumable"), "{err}");
        let ledger = Ledger::load(&dir).unwrap();
        assert!(ledger.missing_pes().contains(&3));
        // Healthy ranks completed despite the sibling's panic.
        assert!(!ledger.done_shards().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Sampled validation drives resume reuse decisions: valid shards
    /// are reused, a truncated one is regenerated.
    #[test]
    fn sampled_resume_detects_truncation_and_reuses_the_rest() {
        let gen = test_gen();
        let dir = tmp("sampled_resume");
        let header = meta().header(&gen, ShardFormat::Compressed);
        let runner = InProcessRunner::new(&gen, &dir, ShardFormat::Compressed);
        let first = launch(
            &dir,
            &header,
            &LaunchOptions {
                workers: 2,
                ..Default::default()
            },
            &runner,
        )
        .unwrap();

        // Truncate shard 2 (size mismatch — sampled validation catches
        // it structurally).
        let victim = dir.join(&first.manifest.shards[2].file);
        let bytes = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &bytes[..bytes.len() - 2]).unwrap();

        let report = launch(
            &dir,
            &header,
            &LaunchOptions {
                workers: 2,
                resume: true,
                validate: ValidateMode::Sampled(SAMPLED_BLOCKS),
                ..Default::default()
            },
            &runner,
        )
        .unwrap();
        assert_eq!(report.regenerated_pes, vec![2]);
        assert_eq!(report.reused_shards, 5);
        assert_eq!(report.manifest, first.manifest);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_mode_parse_spellings() {
        assert_eq!(ValidateMode::parse("full"), Some(ValidateMode::Full));
        assert_eq!(ValidateMode::parse("none"), Some(ValidateMode::None));
        assert_eq!(
            ValidateMode::parse("sampled"),
            Some(ValidateMode::Sampled(SAMPLED_BLOCKS))
        );
        assert_eq!(
            ValidateMode::parse("sampled=1"),
            Some(ValidateMode::Sampled(1))
        );
        assert_eq!(
            ValidateMode::parse("sampled=4096"),
            Some(ValidateMode::Sampled(4096))
        );
        assert_eq!(ValidateMode::parse("sampled=0"), None);
        assert_eq!(ValidateMode::parse("sampled="), None);
        assert_eq!(ValidateMode::parse("sampled=x"), None);
        assert_eq!(ValidateMode::parse("samples"), None);
    }

    /// The `sampled=K` knob is a real coverage dial: a payload flip in
    /// a block the default K=4 spacing never decodes slips through
    /// (the documented trade), while a K at the shard's block count
    /// catches it — without a full re-read.
    #[test]
    fn sampled_k_controls_unsampled_block_coverage() {
        // One shard, many restart blocks: 6 chunks over enough edges
        // that shard 0 holds > 16 blocks.
        let gen = kagen_core::GnmUndirected::new(6000, 400_000)
            .with_seed(9)
            .with_chunks(6);
        let dir = tmp("sampled_k");
        let header = InstanceMeta {
            model: "gnm_undirected".into(),
            params: "n=6000 m=400000".into(),
            seed: 9,
        }
        .header(&gen, ShardFormat::Compressed);
        let runner = InProcessRunner::new(&gen, &dir, ShardFormat::Compressed);
        let report = launch(
            &dir,
            &header,
            &LaunchOptions {
                workers: 2,
                ..Default::default()
            },
            &runner,
        )
        .unwrap();
        let info = report
            .manifest
            .shards
            .iter()
            .max_by_key(|s| s.edges)
            .unwrap();
        let blocks = info.edges.div_ceil(kagen_pipeline::COMPRESSED_BLOCK_EDGES) as usize;
        assert!(blocks > 16, "need many blocks, got {blocks}");
        // Flip one byte inside a block that the evenly spaced K=4 picks
        // (indices k·blocks/4 — 0, B/4, B/2, 3B/4) never decode, leaving
        // the varint structure intact: ~1/8 into the payload bytes lands
        // mid-payload of a block near index B/8.
        let path = dir.join(&info.file);
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = 16 + (bytes.len() - 16) / 8;
        bytes[offset] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();

        let sampled_4 = kagen_pipeline::validate_shard_sampled(
            &dir,
            ShardFormat::Compressed,
            info,
            SAMPLED_BLOCKS,
        );
        let sampled_all =
            kagen_pipeline::validate_shard_sampled(&dir, ShardFormat::Compressed, info, blocks);
        let full = kagen_pipeline::validate_shard(&dir, ShardFormat::Compressed, info);
        assert!(full.is_err(), "full re-read must always catch the flip");
        assert!(
            sampled_all.is_err(),
            "K = block count decodes every block and must catch the flip"
        );
        // The flipped block evades the default picks in this layout; if
        // this ever starts failing the constant picks moved — the
        // documented trade (not a guarantee) is just that low K *can*
        // miss payload corruption.
        assert!(
            sampled_4.is_ok(),
            "expected the K=4 spacing to miss a mid-payload flip in this layout"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The federated manifest round-trips through `Manifest::load` like
    /// any single-process manifest (tools downstream cannot tell runs
    /// apart).
    #[test]
    fn federated_manifest_loads_like_any_other() {
        let gen = test_gen();
        let dir = tmp("load");
        let header = meta().header(&gen, ShardFormat::Compressed);
        let runner = InProcessRunner::new(&gen, &dir, ShardFormat::Compressed);
        let report = launch(
            &dir,
            &header,
            &LaunchOptions {
                workers: 4,
                ..Default::default()
            },
            &runner,
        )
        .unwrap();
        let loaded = Manifest::load(&dir).unwrap();
        assert_eq!(loaded, report.manifest);
        let reader = kagen_pipeline::ShardReader::open(&dir).unwrap();
        let mut count = 0u64;
        reader.stream(&mut |_, _| count += 1).unwrap();
        assert_eq!(count, report.manifest.edges);
        std::fs::remove_dir_all(&dir).ok();
    }
}
