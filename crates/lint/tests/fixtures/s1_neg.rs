// Fixture: S1 must stay silent — every unsafe site carries an adjacent
// SAFETY comment, in both accepted positions.
pub fn read_first(v: &[u64]) -> u64 {
    // SAFETY: caller guarantees `v` is non-empty, so the pointer is
    // valid for a read of one element.
    unsafe { *v.as_ptr() }
}

pub fn read_last(v: &[u64]) -> u64 {
    unsafe { *v.as_ptr().add(v.len() - 1) } // SAFETY: v is non-empty by contract.
}
