//! Property-based tests over randomized parameters: the invariants of the
//! core data structures and generators hold for *arbitrary* valid inputs,
//! not just the hand-picked ones.

use kagen_repro::core::prelude::*;
use kagen_repro::dist::{binomial, hypergeometric};
use kagen_repro::sampling::{
    bernoulli_sample, bernoulli_sample_batched, sample_sorted, sample_sorted_batched,
    DistributedSampler,
};
use kagen_repro::util::{Mt64, Rng64};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binomial_within_support(n in 0u64..1_000_000, p in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut rng = Mt64::new(seed);
        let x = binomial(&mut rng, n as u128, p);
        prop_assert!(x <= n);
    }

    #[test]
    fn hypergeometric_within_support(
        total in 1u64..100_000,
        good_frac in 0.0f64..=1.0,
        draw_frac in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let good = ((total as f64) * good_frac) as u64;
        let draws = ((total as f64) * draw_frac) as u64;
        let mut rng = Mt64::new(seed);
        let x = hypergeometric(&mut rng, total as u128, good as u128, draws);
        let bad = total - good;
        prop_assert!(x <= draws.min(good));
        prop_assert!(x >= draws.saturating_sub(bad));
    }

    #[test]
    fn sample_sorted_is_sorted_unique_in_range(
        universe in 1u64..1_000_000,
        k_frac in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let k = ((universe as f64) * k_frac) as u64;
        let mut rng = Mt64::new(seed);
        let mut prev: Option<u64> = None;
        let mut count = 0u64;
        sample_sorted(&mut rng, universe, k, &mut |x| {
            assert!(x < universe);
            if let Some(p) = prev {
                assert!(x > p);
            }
            prev = Some(x);
            count += 1;
        });
        prop_assert_eq!(count, k);
    }

    #[test]
    fn bernoulli_sample_sorted_in_range(
        universe in 1u64..200_000,
        p in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = Mt64::new(seed);
        let mut prev: Option<u64> = None;
        bernoulli_sample(&mut rng, universe, p, &mut |x| {
            assert!(x < universe);
            if let Some(q) = prev {
                assert!(x > q);
            }
            prev = Some(x);
        });
    }

    #[test]
    fn bernoulli_batched_equals_per_edge(
        universe in 1u64..400_000,
        p in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        // The block-batched skip kernel must reproduce the per-edge
        // index stream bit-for-bit from the same PRNG state, for
        // arbitrary (universe, p).
        let mut a = Mt64::new(seed);
        let mut per_edge = Vec::new();
        bernoulli_sample(&mut a, universe, p, &mut |x| per_edge.push(x));
        let mut b = Mt64::new(seed);
        let mut batched = Vec::new();
        bernoulli_sample_batched(&mut b, universe, p, &mut |s| batched.extend_from_slice(s));
        prop_assert_eq!(per_edge, batched);
    }

    #[test]
    fn sample_sorted_batched_equals_per_draw(
        universe in 1u64..2_000_000,
        k_frac in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        // The block-treated Method D must reproduce sample_sorted
        // bit-for-bit from the same PRNG state.
        let k = ((universe as f64) * k_frac) as u64;
        let mut a = Mt64::new(seed);
        let mut per_draw = Vec::new();
        sample_sorted(&mut a, universe, k, &mut |x| per_draw.push(x));
        let mut b = Mt64::new(seed);
        let mut batched = Vec::new();
        sample_sorted_batched(&mut b, universe, k, &mut |x| batched.push(x));
        prop_assert_eq!(per_draw, batched);
    }

    #[test]
    fn distributed_sampler_conserves_and_partitions(
        universe in 64u128..1_000_000,
        k_frac in 0.0f64..=1.0,
        blocks_exp in 1u32..6,
        seed in any::<u64>(),
    ) {
        let blocks = 1u64 << blocks_exp;
        let k = ((universe as f64) * k_frac) as u64;
        let s = DistributedSampler::new(universe, k, blocks, seed);
        let mut total = 0u64;
        s.for_block_counts(0, blocks, &mut |_, c| total += c);
        prop_assert_eq!(total, k);
        // Samples of consecutive blocks form a strictly increasing stream.
        let mut prev: Option<u128> = None;
        let mut count = 0u64;
        s.sample_range(0, blocks, &mut |x| {
            if let Some(q) = prev {
                assert!(x > q);
            }
            prev = Some(x);
            count += 1;
        });
        prop_assert_eq!(count, k);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn gnm_directed_instance_valid(
        n in 2u64..300,
        m_frac in 0.0f64..=1.0,
        seed in any::<u64>(),
        chunks in 1usize..24,
    ) {
        let universe = n * (n - 1);
        let m = ((universe as f64) * m_frac) as u64;
        let gen = GnmDirected::new(n, m).with_seed(seed).with_chunks(chunks);
        let el = generate_directed(&gen);
        prop_assert_eq!(el.edges.len() as u64, m);
        prop_assert!(!el.has_self_loops());
        prop_assert!(!el.has_out_of_range());
        let mut dedup = el.edges.clone();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), el.edges.len());
    }

    #[test]
    fn gnm_undirected_instance_valid(
        n in 2u64..300,
        m_frac in 0.0f64..=1.0,
        seed in any::<u64>(),
        chunks in 1usize..16,
    ) {
        let universe = n * (n - 1) / 2;
        let m = ((universe as f64) * m_frac) as u64;
        let gen = GnmUndirected::new(n, m).with_seed(seed).with_chunks(chunks);
        let el = generate_undirected(&gen);
        prop_assert_eq!(el.edges.len() as u64, m);
        prop_assert!(!el.has_self_loops());
        prop_assert!(!el.has_out_of_range());
    }

    #[test]
    fn rgg_edges_respect_radius(
        n in 10u64..400,
        r in 0.01f64..0.5,
        seed in any::<u64>(),
        chunks in 1usize..32,
    ) {
        let gen = Rgg2d::new(n, r).with_seed(seed).with_chunks(chunks);
        let parts = generate_parallel(&gen, 0);
        let mut coords = std::collections::HashMap::new();
        for p in &parts {
            for &(id, c) in &p.coords2 {
                coords.insert(id, c);
            }
        }
        prop_assert_eq!(coords.len() as u64, n);
        for p in &parts {
            for &(u, v) in &p.edges {
                let (a, b) = (coords[&u], coords[&v]);
                let d2 = (a[0]-b[0]).powi(2) + (a[1]-b[1]).powi(2);
                prop_assert!(d2 <= r * r + 1e-12);
            }
        }
    }

    #[test]
    fn ba_edges_point_backwards(
        n in 2u64..2000,
        d in 1u64..8,
        seed in any::<u64>(),
        chunks in 1usize..16,
    ) {
        let gen = BarabasiAlbert::new(n, d).with_seed(seed).with_chunks(chunks);
        let el = generate_directed(&gen);
        prop_assert_eq!(el.edges.len() as u64, n * d);
        for &(u, v) in &el.edges {
            prop_assert!(v <= u);
            prop_assert!(u < n);
        }
    }

    #[test]
    fn rmat_edges_in_range(
        scale in 2u32..12,
        m in 1u64..5000,
        seed in any::<u64>(),
    ) {
        let gen = Rmat::new(scale, m).with_seed(seed).with_chunks(4);
        let el = generate_directed(&gen);
        prop_assert_eq!(el.edges.len() as u64, m);
        prop_assert!(!el.has_out_of_range());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn rhg_instance_chunk_invariant(
        n in 50u64..400,
        deg in 4.0f64..12.0,
        gamma in 2.2f64..3.5,
        seed in any::<u64>(),
    ) {
        let a = generate_undirected(&Rhg::new(n, deg, gamma).with_seed(seed).with_chunks(1));
        let b = generate_undirected(&Rhg::new(n, deg, gamma).with_seed(seed).with_chunks(7));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rdg_chunk_invariant(n in 20u64..300, seed in any::<u64>()) {
        let a = generate_undirected(&Rdg2d::new(n).with_seed(seed).with_chunks(1));
        let b = generate_undirected(&Rdg2d::new(n).with_seed(seed).with_chunks(4));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn delaunay_empty_circle_property(seed in any::<u64>()) {
        use kagen_repro::delaunay::{incircle2, Delaunay2, Sign};
        let mut rng = Mt64::new(seed);
        let pts: Vec<[f64; 2]> = (0..60).map(|_| [rng.next_f64(), rng.next_f64()]).collect();
        let dt = Delaunay2::new(&pts);
        for t in dt.triangles() {
            for (i, p) in pts.iter().enumerate() {
                if t.contains(&(i as u32)) {
                    continue;
                }
                prop_assert!(incircle2(
                    pts[t[0] as usize],
                    pts[t[1] as usize],
                    pts[t[2] as usize],
                    *p
                ) != Sign::Positive);
            }
        }
    }
}
