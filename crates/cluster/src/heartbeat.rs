//! Worker liveness: atomically published heartbeat files, polled by the
//! supervisor for live progress lines and stall detection.
//!
//! A heartbeating worker runs one background thread
//! ([`HeartbeatPublisher`]) that samples the process-global obs
//! counters (`gen.edges`, `worker.pes_done`) every ~100 ms and, **only
//! when something advanced**, rewrites `part-<a>-<b>.heartbeat.json`
//! via write-to-temp + rename — readers never see a torn file, and an
//! unchanged file is itself the signal. The hot path is untouched: the
//! generators already maintain these counters at batch granularity, so
//! heartbeats cost one sampling thread and zero per-edge work (and, by
//! the PR-6 rule the byte-identity matrix enforces, no output byte).
//!
//! The supervisor side needs no clock agreement with the worker — it
//! watches the file's *content*: whenever the bytes change it resets a
//! local `Instant`, and a worker whose heartbeat has not advanced
//! within `--stall-timeout` is killed and reported as a failed attempt,
//! which feeds the existing retry/backoff machinery instead of hanging
//! the launch forever. The `unix_us` field in the file is informational
//! (operators inspecting a run by hand), not part of the staleness
//! decision.

use kagen_pipeline::manifest::json;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Schema tag of the heartbeat document.
pub const HEARTBEAT_SCHEMA: &str = "kagen-heartbeat/v1";

/// Default publisher sampling interval.
pub const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(100);

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Heartbeat file name for the rank covering PEs `[pe_begin, pe_end)`.
pub fn heartbeat_file_name(pe_begin: u64, pe_end: u64) -> String {
    format!("part-{pe_begin:05}-{pe_end:05}.heartbeat.json")
}

/// Worker lifecycle stages reported in heartbeats.
const STAGES: [&str; 3] = ["start", "generate", "done"];
static STAGE: AtomicUsize = AtomicUsize::new(0);

/// Record the worker's current lifecycle stage (`start`, `generate`,
/// `done`). Unknown names are ignored.
pub fn set_stage(stage: &str) {
    if let Some(i) = STAGES.iter().position(|s| *s == stage) {
        STAGE.store(i, Ordering::Relaxed);
    }
}

/// The worker's current lifecycle stage.
pub fn stage() -> &'static str {
    STAGES[STAGE.load(Ordering::Relaxed).min(STAGES.len() - 1)]
}

/// One published heartbeat: where the worker is and how far it got.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Heartbeat {
    /// First PE of the worker's contiguous range.
    pub pe_begin: u64,
    /// One past the worker's last PE.
    pub pe_end: u64,
    /// Lifecycle stage (`start`, `generate`, `done`).
    pub stage: String,
    /// Shards of this range finished so far.
    pub pes_done: u64,
    /// Edges emitted so far (process-wide `gen.edges`).
    pub edges: u64,
    /// Publish sequence number, starting at 1.
    pub seq: u64,
    /// Wall-clock unix microseconds of the publish (informational).
    pub unix_us: u64,
}

impl Heartbeat {
    /// Serialize as integer-only JSON.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":\"{HEARTBEAT_SCHEMA}\",\"pe_begin\":{},\"pe_end\":{},\
             \"stage\":\"{}\",\"pes_done\":{},\"edges\":{},\"seq\":{},\"unix_us\":{}}}",
            self.pe_begin,
            self.pe_end,
            self.stage,
            self.pes_done,
            self.edges,
            self.seq,
            self.unix_us
        )
    }

    /// Parse a document produced by [`Heartbeat::to_json`].
    pub fn from_json(text: &str) -> io::Result<Heartbeat> {
        let parse = || -> Result<Heartbeat, String> {
            let doc = json::parse(text)?;
            let obj = doc.as_obj("heartbeat")?;
            let schema = obj.get("schema")?.as_str("schema")?;
            if schema != HEARTBEAT_SCHEMA {
                return Err(format!("unsupported heartbeat schema '{schema}'"));
            }
            Ok(Heartbeat {
                pe_begin: obj.get("pe_begin")?.as_u64("pe_begin")?,
                pe_end: obj.get("pe_end")?.as_u64("pe_end")?,
                stage: obj.get("stage")?.as_str("stage")?.to_string(),
                pes_done: obj.get("pes_done")?.as_u64("pes_done")?,
                edges: obj.get("edges")?.as_u64("edges")?,
                seq: obj.get("seq")?.as_u64("seq")?,
                unix_us: obj.get("unix_us")?.as_u64("unix_us")?,
            })
        };
        parse().map_err(invalid)
    }
}

fn unix_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Write `hb` atomically: the document lands under a temporary name and
/// is renamed into place, so a polling reader sees either the previous
/// or the new heartbeat, never a torn one.
pub fn write_atomic(dir: &Path, hb: &Heartbeat) -> io::Result<()> {
    let path = dir.join(heartbeat_file_name(hb.pe_begin, hb.pe_end));
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, hb.to_json())?;
    std::fs::rename(&tmp, &path)
}

/// Read the heartbeat for PEs `[pe_begin, pe_end)`, if present.
pub fn read(dir: &Path, pe_begin: u64, pe_end: u64) -> io::Result<Option<Heartbeat>> {
    let path = dir.join(heartbeat_file_name(pe_begin, pe_end));
    match std::fs::read_to_string(&path) {
        Ok(t) => Heartbeat::from_json(&t).map(Some),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Every heartbeat currently published in `dir` (live ranks of a
/// launch), in file-name order.
pub fn read_all(dir: &Path) -> Vec<Heartbeat> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("part-") && n.ends_with(".heartbeat.json"))
        .collect();
    names.sort();
    names
        .iter()
        .filter_map(|n| std::fs::read_to_string(dir.join(n)).ok())
        .filter_map(|t| Heartbeat::from_json(&t).ok())
        .collect()
}

/// Sample the process-global obs counters a heartbeat reports:
/// `(edges emitted, PEs done)`.
fn sample_counters() -> (u64, u64) {
    let mut edges = 0;
    let mut pes_done = 0;
    for (name, v) in kagen_obs::metrics::counters() {
        match name {
            "gen.edges" => edges = v,
            "worker.pes_done" => pes_done = v,
            _ => {}
        }
    }
    (edges, pes_done)
}

/// The worker-side publisher thread. Spawn once per worker process;
/// dropping it publishes one final heartbeat (so `done` states land on
/// disk) and joins the thread.
#[derive(Debug)]
pub struct HeartbeatPublisher {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    dir: PathBuf,
    pe_begin: u64,
    pe_end: u64,
}

impl HeartbeatPublisher {
    /// Start publishing heartbeats for PEs `[pe_begin, pe_end)` into
    /// `dir` every `interval`. Requires obs metrics to be enabled —
    /// progress is sampled from the metric counters, never from the
    /// generation hot path.
    pub fn spawn(
        dir: impl Into<PathBuf>,
        pe_begin: u64,
        pe_end: u64,
        interval: Duration,
    ) -> io::Result<HeartbeatPublisher> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread_dir = dir.clone();
        let handle = std::thread::Builder::new()
            .name("kagen-heartbeat".into())
            .spawn(move || {
                let mut seq = 0u64;
                let mut last = (u64::MAX, u64::MAX, ""); // (edges, pes, stage)
                while !thread_stop.load(Ordering::Relaxed) {
                    let (edges, pes_done) = sample_counters();
                    let st = stage();
                    // First pass always publishes (u64::MAX sentinel);
                    // after that only on advance, so an unchanged file
                    // means a genuinely idle worker.
                    if (edges, pes_done, st) != last {
                        last = (edges, pes_done, st);
                        seq += 1;
                        let _ = write_atomic(
                            &thread_dir,
                            &Heartbeat {
                                pe_begin,
                                pe_end,
                                stage: st.to_string(),
                                pes_done,
                                edges,
                                seq,
                                unix_us: unix_us(),
                            },
                        );
                    }
                    std::thread::sleep(interval);
                }
                // Final publish: capture the end state even if the last
                // advance fell between samples.
                let (edges, pes_done) = sample_counters();
                seq += 1;
                let _ = write_atomic(
                    &thread_dir,
                    &Heartbeat {
                        pe_begin,
                        pe_end,
                        stage: stage().to_string(),
                        pes_done,
                        edges,
                        seq,
                        unix_us: unix_us(),
                    },
                );
            })?;
        Ok(HeartbeatPublisher {
            stop,
            handle: Some(handle),
            dir,
            pe_begin,
            pe_end,
        })
    }

    /// The path this publisher writes to.
    pub fn path(&self) -> PathBuf {
        self.dir
            .join(heartbeat_file_name(self.pe_begin, self.pe_end))
    }
}

impl Drop for HeartbeatPublisher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_and_schema_gate() {
        let hb = Heartbeat {
            pe_begin: 4,
            pe_end: 8,
            stage: "generate".into(),
            pes_done: 2,
            edges: 123_456,
            seq: 7,
            unix_us: 1_700_000_000_000_000,
        };
        let back = Heartbeat::from_json(&hb.to_json()).unwrap();
        assert_eq!(back, hb);
        let bad = hb.to_json().replace("kagen-heartbeat/v1", "x/v0");
        assert!(Heartbeat::from_json(&bad).is_err());
    }

    #[test]
    fn atomic_write_read_and_scan() {
        let dir = std::env::temp_dir().join("kagen_heartbeat_rw");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        assert!(read(&dir, 0, 4).unwrap().is_none());
        let mut hb = Heartbeat {
            pe_begin: 0,
            pe_end: 4,
            stage: "generate".into(),
            pes_done: 1,
            edges: 10,
            seq: 1,
            unix_us: 1,
        };
        write_atomic(&dir, &hb).unwrap();
        assert_eq!(read(&dir, 0, 4).unwrap().unwrap().pes_done, 1);
        // Rewrites replace; no temp files linger.
        hb.pes_done = 3;
        hb.seq = 2;
        write_atomic(&dir, &hb).unwrap();
        assert_eq!(read(&dir, 0, 4).unwrap().unwrap().pes_done, 3);
        let hb2 = Heartbeat {
            pe_begin: 4,
            pe_end: 6,
            ..hb.clone()
        };
        write_atomic(&dir, &hb2).unwrap();
        let all = read_all(&dir);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].pe_begin, 0);
        assert_eq!(all[1].pe_begin, 4);
        assert!(std::fs::read_dir(&dir).unwrap().all(|e| !e
            .unwrap()
            .file_name()
            .to_string_lossy()
            .ends_with(".tmp")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn publisher_publishes_and_finalizes() {
        let dir = std::env::temp_dir().join("kagen_heartbeat_pub");
        std::fs::remove_dir_all(&dir).ok();
        let p = HeartbeatPublisher::spawn(&dir, 2, 6, Duration::from_millis(5)).unwrap();
        // The first sample publishes immediately.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while read(&dir, 2, 6).unwrap().is_none() {
            assert!(std::time::Instant::now() < deadline, "no first heartbeat");
            std::thread::sleep(Duration::from_millis(5));
        }
        let first = read(&dir, 2, 6).unwrap().unwrap();
        assert_eq!(first.pe_begin, 2);
        assert_eq!(first.pe_end, 6);
        assert!(first.seq >= 1);
        drop(p); // final publish + join
        let last = read(&dir, 2, 6).unwrap().unwrap();
        assert!(last.seq > first.seq, "drop must publish a final beat");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stage_tracking_ignores_unknown() {
        set_stage("generate");
        assert_eq!(stage(), "generate");
        set_stage("no-such-stage");
        assert_eq!(stage(), "generate");
        set_stage("start");
        assert_eq!(stage(), "start");
    }
}
