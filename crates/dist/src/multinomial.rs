//! Multinomial sampling via the conditional-binomial chain: exact, and
//! conserves the total by construction (the last bucket takes the
//! remainder). Used for the per-annulus vertex counts of the hyperbolic
//! generators (§7.1).

use crate::binomial::binomial;
use kagen_util::Rng64;

/// Distribute `n` items over `probs.len()` buckets with probabilities
/// proportional to `probs` (need not be normalized). Returns one count
/// per bucket; the counts always sum to exactly `n`.
pub fn multinomial<R: Rng64 + ?Sized>(rng: &mut R, n: u64, probs: &[f64]) -> Vec<u64> {
    assert!(!probs.is_empty(), "multinomial needs at least one bucket");
    let mut out = Vec::with_capacity(probs.len());
    let mut remaining = n;
    let mut rest: f64 = probs.iter().sum();
    for (i, &p) in probs.iter().enumerate() {
        if i + 1 == probs.len() {
            out.push(remaining);
        } else {
            let cond = if rest > 0.0 {
                (p / rest).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let c = binomial(rng, remaining as u128, cond);
            out.push(c);
            remaining -= c;
            rest -= p;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kagen_util::Mt64;

    #[test]
    fn conserves_total() {
        let mut rng = Mt64::new(1);
        for n in [0u64, 1, 17, 10_000] {
            let counts = multinomial(&mut rng, n, &[0.2, 0.3, 0.5]);
            assert_eq!(counts.len(), 3);
            assert_eq!(counts.iter().sum::<u64>(), n);
        }
    }

    #[test]
    fn proportions_match() {
        let mut rng = Mt64::new(2);
        let probs = [0.1, 0.2, 0.3, 0.4];
        let n = 400_000u64;
        let counts = multinomial(&mut rng, n, &probs);
        for (i, (&c, &p)) in counts.iter().zip(&probs).enumerate() {
            let expect = n as f64 * p;
            let sd = (n as f64 * p * (1.0 - p)).sqrt();
            assert!(
                (c as f64 - expect).abs() < 6.0 * sd,
                "bucket {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn unnormalized_weights() {
        let mut rng = Mt64::new(3);
        let counts = multinomial(&mut rng, 100_000, &[1.0, 1.0]);
        assert_eq!(counts.iter().sum::<u64>(), 100_000);
        let ratio = counts[0] as f64 / 100_000.0;
        assert!((ratio - 0.5).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn zero_probability_buckets() {
        let mut rng = Mt64::new(4);
        let counts = multinomial(&mut rng, 5000, &[0.0, 1.0, 0.0]);
        assert_eq!(counts[0], 0);
        assert_eq!(counts[1], 5000);
        assert_eq!(counts[2], 0);
    }

    #[test]
    fn single_bucket() {
        let mut rng = Mt64::new(5);
        assert_eq!(multinomial(&mut rng, 42, &[3.0]), vec![42]);
    }
}
