// Fixture: F1 must stay silent — the parallel reduction is over
// integers (associative), and the float accumulation is sequential.
pub fn edge_count(blocks: &[Vec<u64>]) -> u64 {
    blocks.par_iter().map(|b| b.len() as u64).sum()
}

pub fn sequential_mean(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += x;
    }
    acc / xs.len() as f64
}
