//! CPU cache-size detection for cache-sized lookup tables.
//!
//! The linear-work R-MAT kernel sizes its composed path-block alias table
//! to the L2 cache (Hübschle-Schneider & Sanders: the table must be hot or
//! every draw is a memory round-trip). Detection reads Linux sysfs; on any
//! other platform — or inside containers that mask sysfs, as CI sandboxes
//! often do — it falls back to a deterministic 512 KiB, a conservative
//! size for every x86-64/aarch64 part of the last decade.
//!
//! Determinism note: callers that *derive parameters* from the detected
//! size (e.g. the CLI's auto table-levels) must resolve the value once and
//! pin the result into the instance's params string, so that re-running on
//! a host with a different cache still reproduces the original stream.

/// Deterministic fallback when no cache hierarchy is exposed.
pub const L2_FALLBACK_BYTES: usize = 512 * 1024;

/// Parse a sysfs cache-size string such as `"1024K"`, `"2M"` or `"512"`.
fn parse_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1024usize),
        b'M' | b'm' => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    digits.parse::<usize>().ok().map(|v| v * mult)
}

/// Unified L2 data-cache capacity in bytes of cpu0, or the fallback.
///
/// Scans `/sys/devices/system/cpu/cpu0/cache/index*` for a level-2 entry
/// whose type is `Data` or `Unified` and returns its size. Any read or
/// parse failure yields [`L2_FALLBACK_BYTES`] — never an error, so table
/// sizing stays infallible.
pub fn l2_cache_bytes() -> usize {
    l2_from_sysfs("/sys/devices/system/cpu/cpu0/cache").unwrap_or(L2_FALLBACK_BYTES)
}

fn l2_from_sysfs(base: &str) -> Option<usize> {
    let dir = std::fs::read_dir(base).ok()?;
    for entry in dir.flatten() {
        let path = entry.path();
        if !path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("index"))
        {
            continue;
        }
        let read = |leaf: &str| std::fs::read_to_string(path.join(leaf)).ok();
        if read("level").map(|l| l.trim() != "2").unwrap_or(true) {
            continue;
        }
        if read("type").is_some_and(|t| t.trim() == "Instruction") {
            continue;
        }
        if let Some(bytes) = read("size").as_deref().and_then(parse_size) {
            return Some(bytes);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sysfs_size_spellings() {
        assert_eq!(parse_size("1024K"), Some(1 << 20));
        assert_eq!(parse_size("2M"), Some(2 << 20));
        assert_eq!(parse_size("512\n"), Some(512));
        assert_eq!(parse_size(""), None);
        assert_eq!(parse_size("xK"), None);
    }

    #[test]
    fn detection_is_infallible_and_sane() {
        let b = l2_cache_bytes();
        // Real parts are 128 KiB .. 64 MiB; the fallback is in range too.
        assert!((128 * 1024..=64 << 20).contains(&b), "L2 = {b}");
        // Pure: repeated detection must agree (params pinning relies on it).
        assert_eq!(b, l2_cache_bytes());
    }

    #[test]
    fn missing_sysfs_falls_back() {
        assert_eq!(l2_from_sysfs("/nonexistent/cache"), None);
    }

    /// Build a fake sysfs cache directory: one subdir per entry with the
    /// given `level`/`type`/`size` leaves (a leaf is skipped when empty,
    /// modeling sysfs trees with missing attribute files).
    fn fake_tree(name: &str, entries: &[(&str, &str, &str, &str)]) -> std::path::PathBuf {
        let base =
            std::env::temp_dir().join(format!("kagen-cache-fake-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        for (dir, level, ty, size) in entries {
            let d = base.join(dir);
            std::fs::create_dir_all(&d).unwrap();
            for (leaf, val) in [("level", level), ("type", ty), ("size", size)] {
                if !val.is_empty() {
                    std::fs::write(d.join(leaf), format!("{val}\n")).unwrap();
                }
            }
        }
        base
    }

    fn probe(name: &str, entries: &[(&str, &str, &str, &str)]) -> Option<usize> {
        let base = fake_tree(name, entries);
        let got = l2_from_sysfs(base.to_str().unwrap());
        let _ = std::fs::remove_dir_all(&base);
        got
    }

    #[test]
    fn unified_l2_is_detected() {
        let got = probe(
            "unified",
            &[
                ("index0", "1", "Data", "32K"),
                ("index2", "2", "Unified", "1024K"),
            ],
        );
        assert_eq!(got, Some(1 << 20));
    }

    #[test]
    fn instruction_l2_is_skipped() {
        assert_eq!(
            probe("icache", &[("index2", "2", "Instruction", "1024K")]),
            None
        );
    }

    #[test]
    fn non_l2_levels_are_skipped() {
        let got = probe(
            "levels",
            &[
                ("index0", "1", "Data", "32K"),
                ("index3", "3", "Unified", "8M"),
            ],
        );
        assert_eq!(got, None);
    }

    #[test]
    fn unparsable_size_is_skipped() {
        assert_eq!(
            probe("garbage", &[("index2", "2", "Unified", "lots")]),
            None
        );
    }

    #[test]
    fn missing_level_leaf_is_skipped() {
        // `level` file absent: the entry cannot be classified, so it is
        // ignored rather than guessed at.
        assert_eq!(probe("noleaf", &[("index2", "", "Unified", "1024K")]), None);
    }

    #[test]
    fn non_index_dirs_are_ignored() {
        assert_eq!(probe("weird", &[("power", "2", "Unified", "1024K")]), None);
    }
}
