//! Barabási–Albert preferential attachment, communication-free version of
//! Sanders & Schulz \[4\] (§3.5.1).
//!
//! The sequential Batagelj–Brandes generator fills a virtual array `M` of
//! length 2·n·d where `M[2i] = ⌊i/d⌋` (the source of edge slot `i`) and
//! `M[2i+1] = M[r]` for `r` uniform in `[0, 2i+1)`. Reading `M[r]` is what
//! makes it look inherently sequential — Sanders & Schulz observe that the
//! value of any odd position can be *recomputed* by replaying its random
//! choice, which is fixed by a per-position hash. Each edge then becomes an
//! independent function of the seed: PE `p` simply evaluates the slots of
//! its vertex range.
//!
//! The chain `r → r' → …` halves at least the index each step in
//! expectation; its length is O(1) expected and O(log) w.h.p.

use crate::{Generator, PeGraph};
use kagen_util::seed::stream;
use kagen_util::splitmix::mix2;
use kagen_util::{derive_seed, Rng64, SplitMix64};

/// Preferential attachment: each new vertex attaches `d` edges to earlier
/// vertices with probability proportional to their current degree.
/// Self-loops and parallel edges occur with the model's natural (small)
/// probability, exactly as in \[4\] and Batagelj–Brandes.
#[derive(Clone, Debug)]
pub struct BarabasiAlbert {
    n: u64,
    d: u64,
    seed: u64,
    chunks: usize,
}

impl BarabasiAlbert {
    /// `n` vertices each attaching `d` edges.
    pub fn new(n: u64, d: u64) -> Self {
        assert!(d >= 1);
        BarabasiAlbert {
            n,
            d,
            seed: 1,
            chunks: 64,
        }
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of logical PEs.
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks >= 1);
        self.chunks = chunks;
        self
    }

    /// The instance's base seed for slot resolution — hashed once, shared
    /// by every slot (the batched fill hoists this out of the edge loop).
    #[inline]
    fn resolve_base(&self) -> u64 {
        derive_seed(self.seed, &[stream::BA])
    }

    /// Resolve virtual array position `pos` under a precomputed base seed.
    #[inline]
    fn resolve_with_base(&self, base: u64, mut pos: u64) -> u64 {
        loop {
            if pos & 1 == 0 {
                // Even positions hold the slot's source vertex directly.
                return (pos / 2) / self.d;
            }
            // Replay the random draw made for this odd position:
            // r ~ U[0, pos). (mix2 gives an independent uniform per
            // position; a bounded draw via a one-shot stream.)
            let mut rng = SplitMix64::new(mix2(base, pos));
            pos = rng.next_below(pos);
        }
    }

    /// Edge of slot `i` (pure function): `(⌊i/d⌋, M[2i+1])`.
    #[inline]
    pub fn edge(&self, slot: u64) -> (u64, u64) {
        (
            slot / self.d,
            self.resolve_with_base(self.resolve_base(), 2 * slot + 1),
        )
    }

    /// Append the edges of slot range `slots` to `out` — identical to
    /// calling [`BarabasiAlbert::edge`] per slot, with the hashed base
    /// seed derived once for the whole range.
    pub fn fill_edges(&self, slots: std::ops::Range<u64>, out: &mut Vec<(u64, u64)>) {
        out.reserve((slots.end - slots.start) as usize);
        let base = self.resolve_base();
        for slot in slots {
            out.push((slot / self.d, self.resolve_with_base(base, 2 * slot + 1)));
        }
    }

    /// Slot range owned by PE `pe` (its vertex range × `d`).
    #[inline]
    pub fn pe_slot_range(&self, pe: usize) -> std::ops::Range<u64> {
        let begin = self.n * pe as u64 / self.chunks as u64;
        let end = self.n * (pe as u64 + 1) / self.chunks as u64;
        begin * self.d..end * self.d
    }

    /// Edges attached per vertex (the model's `d`).
    pub fn degree_parameter(&self) -> u64 {
        self.d
    }
}

impl Generator for BarabasiAlbert {
    fn num_vertices(&self) -> u64 {
        self.n
    }

    fn num_chunks(&self) -> usize {
        self.chunks
    }

    fn directed(&self) -> bool {
        true
    }

    fn generate_pe(&self, pe: usize) -> PeGraph {
        // PE p owns a contiguous vertex range and therefore the slot range
        // [begin*d, end*d).
        let begin = self.n * pe as u64 / self.chunks as u64;
        let end = self.n * (pe as u64 + 1) / self.chunks as u64;
        let mut out = PeGraph {
            pe,
            vertex_begin: begin,
            vertex_end: end,
            ..PeGraph::default()
        };
        self.fill_edges(self.pe_slot_range(pe), &mut out.edges);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_directed;

    #[test]
    fn edge_count_and_targets_older() {
        let gen = BarabasiAlbert::new(1000, 4).with_seed(3).with_chunks(8);
        let el = generate_directed(&gen);
        assert_eq!(el.edges.len(), 4000);
        for &(u, v) in &el.edges {
            assert!(v <= u, "target {v} newer than source {u}");
        }
    }

    #[test]
    fn chunk_invariance() {
        let a = generate_directed(&BarabasiAlbert::new(500, 3).with_seed(7).with_chunks(1));
        let b = generate_directed(&BarabasiAlbert::new(500, 3).with_seed(7).with_chunks(16));
        assert_eq!(a, b);
    }

    #[test]
    fn degrees_skewed_towards_early_vertices() {
        let gen = BarabasiAlbert::new(5000, 4).with_seed(1);
        let el = generate_directed(&gen);
        let mut indeg = vec![0u64; 5000];
        for &(_, v) in &el.edges {
            indeg[v as usize] += 1;
        }
        // Preferential attachment: the first percentile of vertices must
        // receive far more than a uniform share of the in-edges.
        let early: u64 = indeg[..50].iter().sum();
        let uniform_share = el.edges.len() as u64 / 100;
        assert!(
            early > 3 * uniform_share,
            "early mass {early} vs uniform {uniform_share}"
        );
    }

    #[test]
    fn power_law_tail() {
        // BA degree distribution has exponent 3: max degree grows ~ sqrt(n).
        let gen = BarabasiAlbert::new(20_000, 2).with_seed(9);
        let el = generate_directed(&gen);
        let mut deg = vec![0u64; 20_000];
        for &(u, v) in &el.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        assert!(
            max > 100,
            "hub degree {max} too small for preferential attachment"
        );
    }

    #[test]
    fn resolve_chain_terminates_fast() {
        let gen = BarabasiAlbert::new(1_000_000, 8).with_seed(2);
        // Spot-check a few far positions — must terminate (and quickly).
        for slot in [0u64, 1, 999, 7_999_999] {
            let (_, v) = gen.edge(slot);
            assert!(v <= slot / 8);
        }
    }
}
