//! The `kagen-lint` binary. Usage:
//!
//! ```text
//! kagen-lint [ROOT]      lint the workspace rooted at ROOT (default `.`)
//! kagen-lint --list-rules
//! ```
//!
//! Exit status: 0 when clean, 1 when violations were found, 2 on usage
//! or I/O errors. Output is one `path:line: [rule] message` per finding,
//! GCC-style, so editors and CI annotate it natively.

use std::path::PathBuf;

fn main() {
    let mut root = PathBuf::from(".");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--list-rules" => {
                for r in kagen_lint::Rule::ALL {
                    println!("{}  {}", r.name(), r.describe());
                }
                return;
            }
            "--help" | "-h" => {
                println!("usage: kagen-lint [--list-rules] [ROOT]");
                return;
            }
            other if !other.starts_with('-') => root = PathBuf::from(other),
            other => {
                eprintln!("kagen-lint: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let report = match kagen_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("kagen-lint: cannot scan {}: {e}", root.display());
            std::process::exit(2);
        }
    };

    for file in &report.files {
        for v in &file.violations {
            println!(
                "{}:{}: [{}] {}",
                file.path,
                v.line,
                v.rule.name(),
                v.message
            );
        }
    }
    let n = report.violation_count();
    eprintln!(
        "kagen-lint: {} violation{} in {} file{} ({} scanned)",
        n,
        if n == 1 { "" } else { "s" },
        report.files.len(),
        if report.files.len() == 1 { "" } else { "s" },
        report.files_scanned,
    );
    if n > 0 {
        std::process::exit(1);
    }
}
