//! Offline stand-in for the [crossbeam](https://crates.io/crates/crossbeam)
//! API subset used by this workspace (the build environment has no access
//! to crates.io).
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is needed —
//! provided here on top of `std::sync::mpsc`, which has the same unbounded
//! MPSC semantics and error types shaped the same way for the call sites
//! in `kagen_runtime::comm`.

pub mod channel {
    //! Unbounded MPSC channels.

    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half (clonable).
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a message; errors only if the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; errors only if all senders are
        /// gone and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::channel();
        (Sender(s), Receiver(r))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn send_recv_roundtrip() {
        let (s, r) = unbounded();
        s.send(41u64).unwrap();
        let s2 = s.clone();
        s2.send(42).unwrap();
        assert_eq!(r.recv().unwrap(), 41);
        assert_eq!(r.recv().unwrap(), 42);
    }

    #[test]
    fn cross_thread() {
        let (s, r) = unbounded();
        std::thread::spawn(move || s.send(7u32).unwrap());
        assert_eq!(r.recv().unwrap(), 7);
    }
}
