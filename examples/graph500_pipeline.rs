//! A Graph 500-style benchmark pipeline on generated instances.
//!
//! The Graph 500 benchmark generates an R-MAT graph and measures BFS
//! throughput. The paper argues its generators make *other* model families
//! viable at benchmark scale — so this example runs the same
//! generate→build→BFS pipeline over R-MAT, G(n,m) and RHG instances of
//! equal size and compares both generation and traversal rates.
//!
//! ```text
//! cargo run --release --example graph500_pipeline
//! ```

use kagen_repro::core::{generate_directed, generate_undirected, GnmUndirected, Rhg, Rmat};
use kagen_repro::graph::bfs::bfs_summary;
use kagen_repro::graph::{Csr, EdgeList};
use std::time::Instant;

fn pipeline(name: &str, make: impl FnOnce() -> EdgeList) {
    let t0 = Instant::now();
    let el = make();
    let t_gen = t0.elapsed();

    let t1 = Instant::now();
    let csr = Csr::undirected(&el);
    let t_build = t1.elapsed();

    // BFS from a few deterministic roots, Graph 500 style.
    let t2 = Instant::now();
    let mut reached_total = 0usize;
    let roots = [0u64, 1, 2, 3];
    for &root in &roots {
        let (reached, _) = bfs_summary(&csr, root % el.n);
        reached_total += reached;
    }
    let t_bfs = t2.elapsed();
    let traversed = reached_total as f64;

    println!(
        "{name:<18} m = {:>9}  gen {:>7.1} ms ({:>6.2} Medges/s)  csr {:>6.1} ms  bfs {:>6.1} ms ({:>6.2} MTEPS)",
        el.edges.len(),
        t_gen.as_secs_f64() * 1e3,
        el.edges.len() as f64 / t_gen.as_secs_f64() / 1e6,
        t_build.as_secs_f64() * 1e3,
        t_bfs.as_secs_f64() * 1e3,
        traversed / t_bfs.as_secs_f64() / 1e6,
    );
}

fn main() {
    let scale = 16u32; // 2^16 vertices
    let n = 1u64 << scale;
    let m = 16 * n;

    println!("Graph500-style pipeline at scale {scale} (n = {n}, m = {m}):\n");

    pipeline("R-MAT (Graph500)", || {
        let mut el = generate_directed(&Rmat::new(scale, m).with_seed(5).with_chunks(8));
        el.canonicalize();
        el
    });

    pipeline("G(n,m) undirected", || {
        generate_undirected(&GnmUndirected::new(n, m / 2).with_seed(5).with_chunks(8))
    });

    pipeline("RHG γ=2.8", || {
        generate_undirected(
            &Rhg::new(n, 2.0 * (m / 2) as f64 / n as f64, 2.8)
                .with_seed(5)
                .with_chunks(8),
        )
    });

    println!(
        "\nshape check (paper §8.6.1): R-MAT generation is roughly an order \
         of magnitude slower per edge than the ER generator — its recursive \
         descent costs Θ(log n) variates per edge, ER costs O(1)."
    );
}
