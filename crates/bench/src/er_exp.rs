//! Erdős–Rényi experiments: Fig. 6 (sequential vs Boost), Fig. 7 (weak
//! scaling), Fig. 8 (strong scaling).

use crate::support::*;
use kagen_baselines::{boost_gnm_directed, boost_gnm_undirected};
use kagen_core::{GnmDirected, GnmUndirected};

/// Fig. 6: sequential G(n,m) running time vs m for two vertex counts,
/// KaGen vs the Boost-style generator.
pub fn fig6_sequential(fast: bool) -> String {
    let ns: [u64; 2] = if fast {
        [1 << 14, 1 << 16]
    } else {
        [1 << 18, 1 << 20]
    };
    let m_exps: Vec<u32> = if fast {
        vec![14, 16, 18]
    } else {
        vec![16, 18, 20, 22]
    };
    let mut rows = Vec::new();
    for &n in &ns {
        for &me in &m_exps {
            let m = 1u64 << me;
            if m as u128 > (n as u128) * (n as u128 - 1) / 2 {
                continue;
            }
            let (kd, td) =
                time_once(|| run_generator(&GnmDirected::new(n, m).with_seed(1).with_chunks(1)));
            let (ku, tu) =
                time_once(|| run_generator(&GnmUndirected::new(n, m).with_seed(1).with_chunks(1)));
            let (_, bd) = time_once(|| boost_gnm_directed(n, m, 1));
            let (_, bu) = time_once(|| boost_gnm_undirected(n, m, 1));
            let _ = (kd.edges, ku.edges);
            rows.push(vec![
                format!("2^{}", n.ilog2()),
                format!("2^{me}"),
                ms(td),
                ms(bd),
                format!("{:.1}x", bd.as_secs_f64() / td.as_secs_f64().max(1e-9)),
                ms(tu),
                ms(bu),
                format!("{:.1}x", bu.as_secs_f64() / tu.as_secs_f64().max(1e-9)),
            ]);
        }
    }
    report(
        "fig6",
        "sequential G(n,m): KaGen vs Boost-style",
        "KaGen's time per edge is independent of n (edge list, no graph \
         structure); the Boost-style generator slows down with growing n \
         and is several times slower at large m (paper: ~10x directed, \
         ~21x undirected at m=2^28).",
        format_table(
            "Fig. 6 (times in ms)",
            &[
                "n",
                "m",
                "KaGen dir",
                "Boost dir",
                "speedup",
                "KaGen undir",
                "Boost undir",
                "speedup",
            ],
            &rows,
        ),
    )
}

/// Fig. 7: weak scaling — fixed m/P, growing P; near-constant time for
/// the directed generator, a bounded (≤2x) rise for the undirected one.
pub fn fig7_weak_scaling(fast: bool) -> String {
    let per_pe_exps: Vec<u32> = if fast { vec![16] } else { vec![18, 20] };
    let pes: Vec<usize> = if fast {
        vec![1, 4, 16]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64]
    };
    let mut rows = Vec::new();
    for &mexp in &per_pe_exps {
        for &p in &pes {
            let m = (1u64 << mexp) * p as u64;
            let n = m / 16; // paper: n = m / 2^4
            let dir = run_generator(&GnmDirected::new(n, m).with_seed(3).with_chunks(p));
            let undir = run_generator(&GnmUndirected::new(n, m).with_seed(3).with_chunks(p));
            rows.push(vec![
                format!("2^{mexp}"),
                p.to_string(),
                ms(dir.time),
                meps(dir.edges, dir.time),
                ms(undir.time),
                format!("{:.2}", undir.edges as f64 / m as f64),
            ]);
        }
    }
    report(
        "fig7",
        "weak scaling G(n,m)",
        "Directed: flat per-PE time (near-optimal weak scaling). \
         Undirected: time rises with P towards at most 2x the sequential \
         cost (chunk redundancy bound of §4.2), then flattens.",
        format_table(
            "Fig. 7 (emulated parallel time)",
            &[
                "m/P",
                "P",
                "dir time ms",
                "dir MEPS",
                "undir time ms",
                "undir edges/m",
            ],
            &rows,
        ),
    )
}

/// Fig. 8: strong scaling — fixed m, growing P.
pub fn fig8_strong_scaling(fast: bool) -> String {
    let m_exps: Vec<u32> = if fast { vec![20] } else { vec![22, 24] };
    let pes: Vec<usize> = if fast {
        vec![1, 4, 16]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64]
    };
    let mut rows = Vec::new();
    for &mexp in &m_exps {
        let m = 1u64 << mexp;
        let n = m / 16;
        let mut base_dir = 0.0;
        let mut base_undir = 0.0;
        for &p in &pes {
            let dir = run_generator(&GnmDirected::new(n, m).with_seed(4).with_chunks(p));
            let undir = run_generator(&GnmUndirected::new(n, m).with_seed(4).with_chunks(p));
            if p == pes[0] {
                base_dir = dir.time.as_secs_f64();
                base_undir = undir.time.as_secs_f64();
            }
            rows.push(vec![
                format!("2^{mexp}"),
                p.to_string(),
                ms(dir.time),
                format!("{:.1}", base_dir / dir.time.as_secs_f64().max(1e-9)),
                ms(undir.time),
                format!("{:.1}", base_undir / undir.time.as_secs_f64().max(1e-9)),
            ]);
        }
    }
    report(
        "fig8",
        "strong scaling G(n,m)",
        "Directed: speedup close to P. Undirected: speedup close to P/2 \
         asymptotically (every edge is generated twice across PEs).",
        format_table(
            "Fig. 8 (emulated parallel time; speedup vs P=1)",
            &[
                "m",
                "P",
                "dir time ms",
                "dir speedup",
                "undir time ms",
                "undir speedup",
            ],
            &rows,
        ),
    )
}
