//! Scaling measurement: the emulation layer behind the paper's weak and
//! strong scaling figures (Figs. 7–18).
//!
//! On a real cluster, the wall time of a communication-free program with P
//! ranks is `max_i t_i` (+ negligible startup). We therefore execute the P
//! logical PEs on however many cores are available, measure each PE's busy
//! time, and report that maximum as the *emulated parallel time*. This is
//! exact for the KaGen generators and conservative for the communicating
//! baseline (which additionally reports its exchange volume).

use std::time::Duration;

/// Per-PE timings of one emulated run.
#[derive(Clone, Debug)]
pub struct PeTiming {
    /// Busy time of every logical PE.
    pub per_pe: Vec<Duration>,
}

impl PeTiming {
    /// Wrap raw measurements.
    pub fn new(per_pe: Vec<Duration>) -> Self {
        PeTiming { per_pe }
    }

    /// Emulated parallel wall time: the slowest PE.
    pub fn max_time(&self) -> Duration {
        self.per_pe.iter().copied().max().unwrap_or(Duration::ZERO)
    }

    /// Aggregate work (sum over PEs).
    pub fn total_work(&self) -> Duration {
        self.per_pe.iter().sum()
    }

    /// Load imbalance: max / mean (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        if self.per_pe.is_empty() {
            return 1.0;
        }
        let max = self.max_time().as_secs_f64();
        let mean = self.total_work().as_secs_f64() / self.per_pe.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// One point of a scaling experiment (one P / size configuration).
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Number of logical PEs.
    pub pes: usize,
    /// Problem size descriptor (n or m, experiment-specific).
    pub size: u64,
    /// Emulated parallel time (max over PEs).
    pub time: Duration,
    /// Load imbalance factor.
    pub imbalance: f64,
    /// Total edges (or vertices) produced across PEs.
    pub items: u64,
}

impl ScalingPoint {
    /// Throughput in items per emulated second.
    pub fn throughput(&self) -> f64 {
        let s = self.time.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.items as f64 / s
        }
    }
}

/// Render scaling points as an aligned text table (used by the experiment
/// harness to produce EXPERIMENTS.md content).
pub fn format_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("### {title}\n\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!(" {:<width$} |", c, width = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_aggregates() {
        let t = PeTiming::new(vec![
            Duration::from_millis(10),
            Duration::from_millis(30),
            Duration::from_millis(20),
        ]);
        assert_eq!(t.max_time(), Duration::from_millis(30));
        assert_eq!(t.total_work(), Duration::from_millis(60));
        assert!((t.imbalance() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_timing() {
        let t = PeTiming::new(vec![]);
        assert_eq!(t.max_time(), Duration::ZERO);
        assert_eq!(t.imbalance(), 1.0);
    }

    #[test]
    fn throughput() {
        let p = ScalingPoint {
            pes: 4,
            size: 100,
            time: Duration::from_secs(2),
            imbalance: 1.0,
            items: 1000,
        };
        assert!((p.throughput() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn table_formatting() {
        let s = format_table(
            "demo",
            &["P", "time"],
            &[
                vec!["1".into(), "2.0s".into()],
                vec!["16".into(), "0.5s".into()],
            ],
        );
        assert!(s.contains("### demo"));
        assert!(s.contains("| P  | time |"));
        assert!(s.contains("| 16 | 0.5s |"));
    }
}
