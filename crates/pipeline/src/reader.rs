//! Reading shard directories back: stream shards edge-by-edge with O(1)
//! memory (validating the manifest checksums as it goes), or reassemble
//! the whole instance into an [`EdgeList`] when it fits.

use crate::manifest::{Manifest, ShardInfo};
use crate::sink::checksum_step;
use crate::writer::ShardFormat;
use kagen_graph::io::CompressedEdgeReader;
use kagen_graph::EdgeList;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read};
use std::path::{Path, PathBuf};

/// A shard directory opened for reading.
#[derive(Debug)]
pub struct ShardReader {
    manifest: Manifest,
    format: ShardFormat,
    dir: PathBuf,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl ShardReader {
    /// Open `dir` by loading and validating its `manifest.json`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ShardReader> {
        let dir = dir.into();
        let manifest = Manifest::load(&dir)?;
        let format = ShardFormat::parse(&manifest.format)
            .ok_or_else(|| invalid(format!("unknown shard format '{}'", manifest.format)))?;
        Ok(ShardReader {
            manifest,
            format,
            dir,
        })
    }

    /// The run's manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Stream one shard through `emit`, verifying its edge count and
    /// checksum against the manifest. Returns the edge count.
    pub fn stream_shard(&self, index: usize, emit: &mut dyn FnMut(u64, u64)) -> io::Result<u64> {
        let info = self.manifest.shards.get(index).ok_or_else(|| {
            invalid(format!(
                "shard index {index} out of range ({} shards)",
                self.manifest.shards.len()
            ))
        })?;
        let path = self.dir.join(&info.file);
        let mut count = 0u64;
        let mut checksum = 0u64;
        let mut counted_emit = |u: u64, v: u64| {
            count += 1;
            checksum = checksum_step(checksum, u, v);
            emit(u, v);
        };
        stream_shard_file(&path, self.format, &mut counted_emit)?;
        if count != info.edges {
            return Err(invalid(format!(
                "shard {}: {count} edges on disk, {} in manifest",
                info.file, info.edges
            )));
        }
        if checksum != info.checksum {
            return Err(invalid(format!(
                "shard {}: checksum mismatch (corrupt or reordered)",
                info.file
            )));
        }
        Ok(count)
    }

    /// Stream every shard in PE order; total memory stays O(1).
    /// Returns the total edge count.
    pub fn stream(&self, emit: &mut dyn FnMut(u64, u64)) -> io::Result<u64> {
        let mut total = 0;
        for i in 0..self.manifest.shards.len() {
            total += self.stream_shard(i, emit)?;
        }
        Ok(total)
    }

    /// Reassemble the whole instance in memory, exactly as the per-PE
    /// streams concatenate (no dedup, no sort — see
    /// [`crate::merge::external_merge`] for canonical merging).
    pub fn read_all(&self) -> io::Result<EdgeList> {
        // Cap the pre-allocation: the manifest is untrusted input until
        // the per-shard counts and checksums have been validated.
        let cap = (self.manifest.edges as usize).min(1 << 20);
        let mut edges = Vec::with_capacity(cap);
        self.stream(&mut |u, v| edges.push((u, v)))?;
        Ok(EdgeList::new(self.manifest.n, edges))
    }
}

/// Stream one shard *file* (no manifest required) through `emit`.
pub fn stream_shard_file(
    path: &Path,
    format: ShardFormat,
    emit: &mut dyn FnMut(u64, u64),
) -> io::Result<()> {
    match format {
        ShardFormat::EdgeList => stream_text(path, emit),
        ShardFormat::Binary => stream_binary(path, emit),
        ShardFormat::Compressed => stream_compressed(path, emit),
    }
}

/// Re-read the shard described by `info` from `dir` and verify its edge
/// count and checksum. This is the resume-time integrity check: a
/// missing, truncated, corrupted or reordered shard comes back as an
/// error; `Ok(())` means the bytes on disk still produce exactly the
/// edge stream recorded at generation time.
pub fn validate_shard(dir: &Path, format: ShardFormat, info: &ShardInfo) -> io::Result<()> {
    let path = dir.join(&info.file);
    let mut count = 0u64;
    let mut checksum = 0u64;
    stream_shard_file(&path, format, &mut |u, v| {
        count += 1;
        checksum = checksum_step(checksum, u, v);
    })?;
    if count != info.edges {
        return Err(invalid(format!(
            "shard {}: {count} edges on disk, {} expected",
            info.file, info.edges
        )));
    }
    if checksum != info.checksum {
        return Err(invalid(format!(
            "shard {}: checksum mismatch (corrupt or reordered)",
            info.file
        )));
    }
    Ok(())
}

/// Fast-path shard validation: a size/structure check plus
/// `sample_blocks` fully decoded (and checksum-verified) restart blocks,
/// instead of [`validate_shard`]'s full re-read.
///
/// * **binary** — exact: the file length must equal `16 · edges`
///   (metadata only, no read).
/// * **compressed** — walk the block headers (seeking over payloads),
///   verify the header-derived edge total against the manifest, then
///   decode `sample_blocks` evenly spaced blocks and verify their
///   stored per-block checksums. O(blocks + samples·block) instead of
///   O(edges).
/// * **edge-list** — text has no sampled structure; falls back to the
///   full re-read.
///
/// Sampled validation catches deletion, truncation, reordering of whole
/// blocks and any corruption inside a sampled block; a flipped byte in
/// an *unsampled* compressed block can escape it — that is the
/// documented latency trade, and why the full re-read stays the
/// default.
pub fn validate_shard_sampled(
    dir: &Path,
    format: ShardFormat,
    info: &ShardInfo,
    sample_blocks: usize,
) -> io::Result<()> {
    let path = dir.join(&info.file);
    match format {
        ShardFormat::Binary => {
            let len = std::fs::metadata(&path)?.len();
            if len != info.edges * 16 {
                return Err(invalid(format!(
                    "shard {}: {len} bytes on disk, {} expected for {} edges",
                    info.file,
                    info.edges * 16,
                    info.edges
                )));
            }
            Ok(())
        }
        ShardFormat::EdgeList => validate_shard(dir, format, info),
        ShardFormat::Compressed => validate_compressed_sampled(&path, info, sample_blocks),
    }
}

/// Walk every restart block of an open compressed shard positioned
/// right after the 16-byte file header. `on_block(index, count,
/// checksum, reader)` returns whether it consumed the payload itself
/// (`len` bytes); otherwise the walk seeks over it. Returns
/// `(blocks, total_edges, end_pos)`. Memory is O(1) — the huge-run fast
/// path must not materialize per-block metadata.
fn walk_blocks(
    r: &mut BufReader<File>,
    file: &str,
    mut on_block: impl FnMut(u64, u64, u64, u64, &mut BufReader<File>) -> io::Result<bool>,
) -> io::Result<(u64, u64, u64)> {
    use kagen_graph::io::{read_varint, varint_len};
    let mut pos = 16u64;
    let mut blocks = 0u64;
    let mut total = 0u64;
    while let Some(count) = read_varint(r)? {
        let Some(len) = read_varint(r)? else {
            return Err(invalid(format!("shard {file}: block header truncated")));
        };
        let mut ck = [0u8; 8];
        r.read_exact(&mut ck)?;
        let (Ok(count), Ok(len)) = (u64::try_from(count), u64::try_from(len)) else {
            return Err(invalid(format!("shard {file}: block header overflows u64")));
        };
        if count == 0 {
            return Err(invalid(format!("shard {file}: empty block")));
        }
        pos += varint_len(count as u128) + varint_len(len as u128) + 8;
        total = total
            .checked_add(count)
            .ok_or_else(|| invalid(format!("shard {file}: edge total overflows")))?;
        if !on_block(blocks, count, len, u64::from_le_bytes(ck), r)? {
            r.seek_relative(
                i64::try_from(len)
                    .map_err(|_| invalid(format!("shard {file}: implausible block length")))?,
            )?;
        }
        pos += len;
        blocks += 1;
    }
    Ok((blocks, total, pos))
}

fn validate_compressed_sampled(
    path: &Path,
    info: &ShardInfo,
    sample_blocks: usize,
) -> io::Result<()> {
    use kagen_graph::io::{decode_block, COMPRESSED_MAGIC};
    use std::io::Seek;
    let open = |path: &Path| -> io::Result<BufReader<File>> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if magic != COMPRESSED_MAGIC {
            return Err(invalid(format!(
                "shard {}: not a compressed edge stream",
                info.file
            )));
        }
        let mut n_bytes = [0u8; 8];
        r.read_exact(&mut n_bytes)?;
        Ok(r)
    };

    // Pass 1 — structural walk, headers only, O(1) memory.
    let mut r = open(path)?;
    let (blocks, total, pos) = walk_blocks(&mut r, &info.file, |_, _, _, _, _| Ok(false))?;
    if total != info.edges {
        return Err(invalid(format!(
            "shard {}: {total} edges in block headers, {} in manifest",
            info.file, info.edges
        )));
    }
    // The walk's end position must be the exact file size: seeking does
    // not notice a truncated final payload, the byte count does.
    let file_len = std::fs::metadata(path)?.len();
    if pos != file_len {
        return Err(invalid(format!(
            "shard {}: {file_len} bytes on disk, {pos} accounted by block headers",
            info.file
        )));
    }

    // Pass 2 — decode the evenly spaced sample blocks in stream order
    // and verify their stored checksums.
    let picks = sample_blocks.min(blocks as usize) as u64;
    if picks == 0 {
        return Ok(());
    }
    let mut next_sample = 0u64;
    let mut payload = Vec::new();
    let mut r = open(path)?;
    r.seek(io::SeekFrom::Start(16))?;
    walk_blocks(&mut r, &info.file, |idx, count, len, checksum, r| {
        if next_sample >= picks || idx != next_sample * blocks / picks {
            return Ok(false);
        }
        next_sample += 1;
        payload.resize(len as usize, 0);
        r.read_exact(&mut payload)?;
        let got = decode_block(&payload, count)
            .map_err(|e| invalid(format!("shard {}: sampled block: {e}", info.file)))?;
        if got != checksum {
            return Err(invalid(format!(
                "shard {}: sampled block checksum mismatch (corrupt)",
                info.file
            )));
        }
        Ok(true)
    })?;
    Ok(())
}

fn stream_text(path: &Path, emit: &mut dyn FnMut(u64, u64)) -> io::Result<()> {
    let r = BufReader::new(File::open(path)?);
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let mut field = || -> io::Result<u64> {
            it.next()
                .ok_or_else(|| invalid(format!("line {}: missing field", lineno + 1)))?
                .parse::<u64>()
                .map_err(|e| invalid(format!("line {}: {e}", lineno + 1)))
        };
        let u = field()?;
        let v = field()?;
        emit(u, v);
    }
    Ok(())
}

fn stream_binary(path: &Path, emit: &mut dyn FnMut(u64, u64)) -> io::Result<()> {
    let mut r = BufReader::new(File::open(path)?);
    let mut rec = [0u8; 16];
    loop {
        match r.read_exact(&mut rec) {
            Ok(()) => {
                let u = u64::from_le_bytes(rec[..8].try_into().unwrap());
                let v = u64::from_le_bytes(rec[8..].try_into().unwrap());
                emit(u, v);
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        }
    }
}

fn stream_compressed(path: &Path, emit: &mut dyn FnMut(u64, u64)) -> io::Result<()> {
    let mut dec = CompressedEdgeReader::new(BufReader::new(File::open(path)?))?;
    while let Some((u, v)) = dec.next_edge()? {
        emit(u, v);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{write_sharded, InstanceMeta, StreamConfig};
    use kagen_core::prelude::*;
    use kagen_core::streaming::StreamingGenerator;

    fn roundtrip(format: ShardFormat, tag: &str) {
        let gen = GnmDirected::new(150, 900).with_seed(11).with_chunks(3);
        let dir = std::env::temp_dir().join(format!("kagen_reader_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        let meta = InstanceMeta {
            model: "gnm_directed".into(),
            params: String::new(),
            seed: 11,
        };
        write_sharded(&gen, &meta, &StreamConfig::new(&dir, format)).unwrap();

        let reader = ShardReader::open(&dir).unwrap();
        let back = reader.read_all().unwrap();
        let mut expect = Vec::new();
        gen.stream_all(&mut |u, v| expect.push((u, v)));
        assert_eq!(back.edges, expect, "{tag}: stream order must be preserved");
        assert_eq!(back.n, 150);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn roundtrip_every_format() {
        roundtrip(ShardFormat::EdgeList, "text");
        roundtrip(ShardFormat::Binary, "bin");
        roundtrip(ShardFormat::Compressed, "comp");
    }

    #[test]
    fn corruption_is_detected() {
        let gen = GnmDirected::new(100, 400).with_seed(5).with_chunks(2);
        let dir = std::env::temp_dir().join("kagen_reader_corrupt");
        std::fs::remove_dir_all(&dir).ok();
        let meta = InstanceMeta {
            model: "gnm_directed".into(),
            params: String::new(),
            seed: 5,
        };
        let manifest =
            write_sharded(&gen, &meta, &StreamConfig::new(&dir, ShardFormat::Binary)).unwrap();
        // Flip one byte in some non-empty shard (small instances may leave
        // leading PEs without blocks, hence without edges).
        let victim = manifest.shards.iter().find(|s| s.edges > 0).unwrap();
        let path = dir.join(&victim.file);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();

        let reader = ShardReader::open(&dir).unwrap();
        let err = reader.read_all().unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sampled_validation_accepts_valid_shards_of_every_format() {
        // Enough edges for multiple compressed restart blocks per shard.
        let gen = GnmDirected::new(2000, 20_000).with_seed(3).with_chunks(2);
        for (format, tag) in [
            (ShardFormat::EdgeList, "s_text"),
            (ShardFormat::Binary, "s_bin"),
            (ShardFormat::Compressed, "s_comp"),
        ] {
            let dir = std::env::temp_dir().join(format!("kagen_sampled_{tag}"));
            std::fs::remove_dir_all(&dir).ok();
            let meta = InstanceMeta {
                model: "gnm_directed".into(),
                params: String::new(),
                seed: 3,
            };
            let manifest = write_sharded(&gen, &meta, &StreamConfig::new(&dir, format)).unwrap();
            for info in &manifest.shards {
                validate_shard_sampled(&dir, format, info, 4).unwrap();
                // Degenerate sample counts behave.
                validate_shard_sampled(&dir, format, info, 0).unwrap();
                validate_shard_sampled(&dir, format, info, 1000).unwrap();
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn sampled_validation_catches_structural_damage() {
        let gen = GnmDirected::new(2000, 20_000).with_seed(5).with_chunks(2);
        let dir = std::env::temp_dir().join("kagen_sampled_damage");
        std::fs::remove_dir_all(&dir).ok();
        let meta = InstanceMeta {
            model: "gnm_directed".into(),
            params: String::new(),
            seed: 5,
        };
        let manifest = write_sharded(
            &gen,
            &meta,
            &StreamConfig::new(&dir, ShardFormat::Compressed),
        )
        .unwrap();
        let info = manifest.shards.iter().find(|s| s.edges > 0).unwrap();
        let path = dir.join(&info.file);
        let pristine = std::fs::read(&path).unwrap();

        // Truncation: the last block's payload ends early.
        std::fs::write(&path, &pristine[..pristine.len() - 3]).unwrap();
        assert!(validate_shard_sampled(&dir, ShardFormat::Compressed, info, 2).is_err());

        // Corruption inside the first (always sampled) block: the
        // per-block checksum catches it even when the varints stay
        // well-formed.
        let mut corrupt = pristine.clone();
        corrupt[40] ^= 0x01;
        std::fs::write(&path, &corrupt).unwrap();
        assert!(validate_shard_sampled(&dir, ShardFormat::Compressed, info, 2).is_err());

        // Deletion.
        std::fs::remove_file(&path).unwrap();
        assert!(validate_shard_sampled(&dir, ShardFormat::Compressed, info, 2).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sampled_validation_checks_binary_size_exactly() {
        let gen = GnmDirected::new(500, 3000).with_seed(7).with_chunks(1);
        let dir = std::env::temp_dir().join("kagen_sampled_binsize");
        std::fs::remove_dir_all(&dir).ok();
        let meta = InstanceMeta {
            model: "gnm_directed".into(),
            params: String::new(),
            seed: 7,
        };
        let manifest =
            write_sharded(&gen, &meta, &StreamConfig::new(&dir, ShardFormat::Binary)).unwrap();
        let info = &manifest.shards[0];
        validate_shard_sampled(&dir, ShardFormat::Binary, info, 4).unwrap();
        let path = dir.join(&info.file);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 16]);
        std::fs::write(&path, bytes).unwrap();
        assert!(validate_shard_sampled(&dir, ShardFormat::Binary, info, 4).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = std::env::temp_dir().join("kagen_reader_nomanifest");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(ShardReader::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
