//! Stochastic block model — the first §9 future-work item ("we would like
//! to extend our communication-free paradigm to various other network
//! models such as the stochastic block-model"), built entirely from the
//! paper's own machinery.
//!
//! Vertices are grouped into blocks; a pair inside block `a` appears with
//! probability `P[a][a]`, a pair across blocks `(a, b)` with `P[a][b]`.
//! Each unordered block pair is a G(n,p)-style sampling problem over a
//! rectangular (or triangular) universe — exactly the chunk sampling of
//! §4: the pair's universe is split into fixed-size pieces, each piece
//! gets a Binomial count and an Algorithm-D sample from a piece-seeded
//! PRNG. Pieces are strided over PEs, so the instance is independent of
//! the PE count and no communication is ever needed.

use crate::er::triangle_index_to_pair;
use crate::{Generator, PeGraph};
use kagen_dist::binomial;
use kagen_sampling::vitter::sample_sorted;
use kagen_util::seed::stream;
use kagen_util::{derive_seed, Mt64};

/// Stochastic block model generator (undirected, simple).
#[derive(Clone, Debug)]
pub struct StochasticBlockModel {
    sizes: Vec<u64>,
    offsets: Vec<u64>,
    probs: Vec<Vec<f64>>,
    seed: u64,
    chunks: usize,
}

impl StochasticBlockModel {
    /// Planted-partition instance: `k` equal blocks over `n` vertices,
    /// within-block probability `p_in`, cross-block probability `p_out`.
    pub fn planted(n: u64, k: usize, p_in: f64, p_out: f64) -> Self {
        assert!(k >= 1 && (k as u64) <= n);
        let sizes: Vec<u64> = (0..k as u64)
            .map(|i| n * (i + 1) / k as u64 - n * i / k as u64)
            .collect();
        let probs = (0..k)
            .map(|a| (0..k).map(|b| if a == b { p_in } else { p_out }).collect())
            .collect();
        Self::new(sizes, probs)
    }

    /// Fully general instance: explicit block sizes and a symmetric
    /// probability matrix.
    pub fn new(sizes: Vec<u64>, probs: Vec<Vec<f64>>) -> Self {
        let k = sizes.len();
        assert!(k >= 1);
        assert_eq!(probs.len(), k);
        for (a, row) in probs.iter().enumerate() {
            assert_eq!(row.len(), k);
            for (b, &p) in row.iter().enumerate() {
                assert!((0.0..=1.0).contains(&p), "P[{a}][{b}] = {p} out of range");
                assert!(
                    (p - probs[b][a]).abs() < 1e-15,
                    "probability matrix must be symmetric"
                );
            }
        }
        let mut offsets = Vec::with_capacity(k + 1);
        let mut acc = 0u64;
        for &s in &sizes {
            offsets.push(acc);
            acc += s;
        }
        offsets.push(acc);
        StochasticBlockModel {
            sizes,
            offsets,
            probs,
            seed: 1,
            chunks: 64,
        }
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of logical PEs.
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks >= 1);
        self.chunks = chunks;
        self
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.sizes.len()
    }

    /// Block id of a vertex.
    pub fn block_of(&self, v: u64) -> usize {
        debug_assert!(v < *self.offsets.last().unwrap());
        self.offsets.partition_point(|&o| o <= v) - 1
    }

    /// Universe size of block pair (a, b), a ≤ b.
    fn pair_universe(&self, a: usize, b: usize) -> u64 {
        if a == b {
            self.sizes[a] * self.sizes[a].saturating_sub(1) / 2
        } else {
            self.sizes[a] * self.sizes[b]
        }
    }

    /// Number of equal pieces a pair's universe is cut into — a pure
    /// function of the instance (never of the PE count).
    fn pair_pieces(&self, a: usize, b: usize) -> u64 {
        let expected = self.pair_universe(a, b) as f64 * self.probs[a][b];
        ((expected / 8192.0) as u64)
            .next_power_of_two()
            .clamp(1, 4096)
    }

    /// All (pair, piece) work units in deterministic order.
    fn units(&self) -> Vec<(usize, usize, u64)> {
        let k = self.num_blocks();
        let mut units = Vec::new();
        for a in 0..k {
            for b in a..k {
                if self.probs[a][b] > 0.0 && self.pair_universe(a, b) > 0 {
                    for piece in 0..self.pair_pieces(a, b) {
                        units.push((a, b, piece));
                    }
                }
            }
        }
        units
    }

    /// Sample one work unit, emitting global edges.
    fn sample_unit<F: FnMut(u64, u64) + ?Sized>(
        &self,
        a: usize,
        b: usize,
        piece: u64,
        emit: &mut F,
    ) {
        let universe = self.pair_universe(a, b);
        let pieces = self.pair_pieces(a, b);
        let start = universe as u128 * piece as u128 / pieces as u128;
        let end = universe as u128 * (piece + 1) as u128 / pieces as u128;
        let len = (end - start) as u64;
        if len == 0 {
            return;
        }
        let tags = [stream::MISC, 0x73626d, a as u64, b as u64, piece]; // "sbm"
        let mut count_rng = Mt64::new(derive_seed(self.seed, &tags));
        let count = binomial(&mut count_rng, len as u128, self.probs[a][b]);
        let sample_tags = [stream::SAMPLE, 0x73626d, a as u64, b as u64, piece];
        let mut rng = Mt64::new(derive_seed(self.seed, &sample_tags));
        let (oa, ob) = (self.offsets[a], self.offsets[b]);
        let sb = self.sizes[b];
        sample_sorted(&mut rng, len, count, &mut |i| {
            let t = start + i as u128;
            if a == b {
                let (u, v) = triangle_index_to_pair(t);
                emit(oa + u, oa + v);
            } else {
                emit(oa + (t / sb as u128) as u64, ob + (t % sb as u128) as u64);
            }
        });
    }
}

impl Generator for StochasticBlockModel {
    fn num_vertices(&self) -> u64 {
        *self.offsets.last().unwrap()
    }

    fn num_chunks(&self) -> usize {
        self.chunks
    }

    fn directed(&self) -> bool {
        false
    }

    fn generate_pe(&self, pe: usize) -> PeGraph {
        let mut out = PeGraph {
            pe,
            vertex_begin: 0,
            vertex_end: self.num_vertices(),
            ..PeGraph::default()
        };
        self.stream_edges(pe, &mut |u, v| out.edges.push((u, v)));
        out
    }
}

impl StochasticBlockModel {
    /// Emit PE `pe`'s edges without materializing them (§9 streaming).
    /// Strided unit assignment: PEs own disjoint unit sets, each edge is
    /// emitted exactly once globally. Generic over the consumer so
    /// concrete callers monomorphize.
    pub(crate) fn stream_edges<F: FnMut(u64, u64) + ?Sized>(&self, pe: usize, emit: &mut F) {
        for (idx, (a, b, piece)) in self.units().into_iter().enumerate() {
            if idx % self.chunks == pe {
                self.sample_unit(a, b, piece, emit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_undirected;

    #[test]
    fn chunk_invariance() {
        let a = generate_undirected(
            &StochasticBlockModel::planted(600, 4, 0.1, 0.01)
                .with_seed(3)
                .with_chunks(1),
        );
        let b = generate_undirected(
            &StochasticBlockModel::planted(600, 4, 0.1, 0.01)
                .with_seed(3)
                .with_chunks(13),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn densities_match_matrix() {
        let n = 3000u64;
        let (p_in, p_out) = (0.05, 0.005);
        let gen = StochasticBlockModel::planted(n, 3, p_in, p_out)
            .with_seed(5)
            .with_chunks(8);
        let el = generate_undirected(&gen);
        let mut within = 0u64;
        let mut across = 0u64;
        for &(u, v) in &el.edges {
            if gen.block_of(u) == gen.block_of(v) {
                within += 1;
            } else {
                across += 1;
            }
        }
        let s = n / 3;
        let within_universe = 3 * s * (s - 1) / 2;
        let across_universe = 3 * s * s;
        let win_rate = within as f64 / within_universe as f64;
        let across_rate = across as f64 / across_universe as f64;
        assert!((win_rate - p_in).abs() / p_in < 0.1, "within {win_rate}");
        assert!(
            (across_rate - p_out).abs() / p_out < 0.1,
            "across {across_rate}"
        );
    }

    #[test]
    fn simple_graph_no_self_loops() {
        let gen = StochasticBlockModel::planted(500, 5, 0.2, 0.02).with_seed(7);
        let el = generate_undirected(&gen);
        assert!(!el.has_self_loops());
        assert!(!el.has_out_of_range());
        let mut e = el.edges.clone();
        e.dedup();
        assert_eq!(e.len(), el.edges.len(), "duplicate edges");
    }

    #[test]
    fn block_of_vertex() {
        let gen = StochasticBlockModel::new(
            vec![10, 20, 5],
            vec![
                vec![0.5, 0.1, 0.0],
                vec![0.1, 0.5, 0.2],
                vec![0.0, 0.2, 0.5],
            ],
        );
        assert_eq!(gen.block_of(0), 0);
        assert_eq!(gen.block_of(9), 0);
        assert_eq!(gen.block_of(10), 1);
        assert_eq!(gen.block_of(29), 1);
        assert_eq!(gen.block_of(30), 2);
        assert_eq!(gen.num_vertices(), 35);
    }

    #[test]
    fn zero_probability_blocks_empty() {
        let gen = StochasticBlockModel::new(vec![50, 50], vec![vec![0.3, 0.0], vec![0.0, 0.3]])
            .with_seed(9);
        let el = generate_undirected(&gen);
        for &(u, v) in &el.edges {
            assert_eq!(gen.block_of(u), gen.block_of(v), "cross edge despite P=0");
        }
        assert!(!el.edges.is_empty());
    }

    #[test]
    fn extreme_probability_one() {
        let gen = StochasticBlockModel::new(vec![20, 10], vec![vec![1.0, 0.0], vec![0.0, 0.0]])
            .with_seed(11);
        let el = generate_undirected(&gen);
        assert_eq!(
            el.edges.len() as u64,
            20 * 19 / 2,
            "block 0 must be complete"
        );
    }
}
