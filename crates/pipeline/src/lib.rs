//! # kagen-pipeline
//!
//! Bounded-memory streaming output for the communication-free generators
//! — the §9 future-work direction ("extend our remaining generators to
//! use a streaming approach") turned into a production output path.
//!
//! The seed crates could already *generate* edges as a stream
//! ([`StreamingGenerator::stream_pe`]), but every consumer materialized a
//! full edge vector, capping instance size at RAM. This crate keeps the
//! whole path at generator-state memory:
//!
//! * [`sink`] — the [`EdgeSink`] trait plus composable sinks: counting,
//!   checksumming, degree statistics, text / binary / compressed writers,
//!   tees and closure adapters.
//! * [`writer`] — the sharded parallel writer: one shard file per PE,
//!   written concurrently on the `kagen-runtime` pool, plus a
//!   `manifest.json` recording model, params, seed, per-shard edge counts
//!   and checksums. Shard bytes are independent of the thread count.
//!   [`write_shard`] is the single-PE building block the multi-process
//!   cluster workers reuse.
//! * [`reader`] — stream shards back (validating the checksums),
//!   [`validate_shard`] against recorded info (the resume-time integrity
//!   check), or reassemble an [`EdgeList`](kagen_graph::EdgeList).
//! * [`manifest`] — manifest (de)serialization, plus the multi-process
//!   pieces: [`PartialManifest`] (one worker's slice) and
//!   [`RunHeader::federate`] (parts → final manifest, identical to the
//!   single-process constructor).
//! * [`merge`] — bounded-memory external merge: shard-level parallel
//!   reading forms sorted runs, a k-way merge reproduces
//!   `generate_undirected` / `generate_directed` exactly, with peak
//!   memory set by an explicit edge budget instead of the instance size.
//!
//! ## Quickstart
//!
//! ```
//! use kagen_core::prelude::*;
//! use kagen_pipeline::{stream_into, CountingSink};
//!
//! // Drive a generator into a sink without materializing edges.
//! let gen = GnmDirected::new(1000, 5000).with_seed(42).with_chunks(8);
//! let mut sink = CountingSink::new();
//! let edges = stream_into(&gen, &mut sink).unwrap();
//! assert_eq!(edges, 5000);
//! ```
//!
//! Sharded write → merge round trip:
//!
//! ```
//! use kagen_core::prelude::*;
//! use kagen_pipeline::{
//!     external_merge_to_vec, write_sharded, InstanceMeta, ShardFormat,
//!     ShardReader, StreamConfig,
//! };
//!
//! let gen = GnmUndirected::new(300, 2000).with_seed(7).with_chunks(4);
//! let dir = std::env::temp_dir().join("kagen_pipeline_doc");
//! let meta = InstanceMeta {
//!     model: "gnm_undirected".into(),
//!     params: "n=300 m=2000".into(),
//!     seed: 7,
//! };
//! write_sharded(&gen, &meta, &StreamConfig::new(&dir, ShardFormat::Compressed)).unwrap();
//!
//! let reader = ShardReader::open(&dir).unwrap();
//! let (edges, _stats) = external_merge_to_vec(&reader, &dir.join("runs"), 1 << 16).unwrap();
//! assert_eq!(edges, generate_undirected(&gen).edges);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod manifest;
pub mod merge;
pub mod reader;
pub mod sink;
pub mod writer;

pub use kagen_graph::io::COMPRESSED_BLOCK_EDGES;
pub use manifest::{Manifest, PartialManifest, RunHeader, ShardInfo, MANIFEST_FILE};
pub use merge::{ExternalMerge, MergeStats, DEFAULT_FAN_IN};
pub use reader::{stream_shard_file, validate_shard, validate_shard_sampled, ShardReader};
pub use sink::{
    checksum_step, BinarySink, ChecksumSink, CompressedSink, CountingSink, DegreeStatsSink,
    EdgeSink, FnSink, TeeSink, TextSink,
};
pub use writer::{
    shard_file_name, write_shard, write_sharded, InstanceMeta, ShardFormat, StreamConfig,
};

use kagen_core::streaming::StreamingGenerator;
use std::io;

/// Drive every PE of `gen` sequentially into `sink` and finish it.
/// Returns the edge count. This is the single-consumer driver; for
/// parallel per-PE output use [`write_sharded`].
pub fn stream_into<G: StreamingGenerator + ?Sized, S: EdgeSink>(
    gen: &G,
    sink: &mut S,
) -> io::Result<u64> {
    gen.stream_all(&mut |u, v| sink.accept(u, v));
    sink.finish()
}

/// Convenience wrapper around [`ExternalMerge`]: merge a shard directory
/// into a sorted, canonical edge vector (tests and small instances).
pub fn external_merge_to_vec(
    reader: &ShardReader,
    run_dir: &std::path::Path,
    budget_edges: usize,
) -> io::Result<(Vec<(u64, u64)>, MergeStats)> {
    let mut edges = Vec::new();
    let stats = {
        let mut sink = FnSink::new(|u, v| edges.push((u, v)));
        let stats = ExternalMerge::new(run_dir, budget_edges).merge(reader, &mut sink)?;
        sink.finish()?;
        stats
    };
    Ok((edges, stats))
}
