//! Bernoulli sampling with geometric skips (Batagelj & Brandes).
//!
//! Walks a universe selecting each element independently with probability
//! `p`, but in O(selected) time by jumping over the gaps. Used by the
//! G(n,p) leaves and by the Boost-style baseline.

use kagen_dist::geometric::geometric_skip;
use kagen_util::Rng64;

/// Emit every index of `[0, universe)` independently selected with
/// probability `p`, in increasing order.
pub fn bernoulli_sample<R: Rng64>(rng: &mut R, universe: u64, p: f64, emit: &mut impl FnMut(u64)) {
    if p <= 0.0 || universe == 0 {
        return;
    }
    if p >= 1.0 {
        for i in 0..universe {
            emit(i);
        }
        return;
    }
    let mut idx = geometric_skip(rng, p);
    while idx < universe {
        emit(idx);
        let skip = geometric_skip(rng, p);
        idx = match idx.checked_add(1).and_then(|x| x.checked_add(skip)) {
            Some(next) => next,
            None => break,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kagen_util::Mt64;

    #[test]
    fn count_matches_expectation() {
        let mut rng = Mt64::new(1);
        let universe = 1_000_000u64;
        let p = 0.001;
        let mut count = 0u64;
        bernoulli_sample(&mut rng, universe, p, &mut |_| count += 1);
        let expect = universe as f64 * p;
        let sd = (universe as f64 * p * (1.0 - p)).sqrt();
        assert!(
            (count as f64 - expect).abs() < 5.0 * sd,
            "count {count} vs {expect}"
        );
    }

    #[test]
    fn sorted_unique_in_range() {
        let mut rng = Mt64::new(2);
        let mut last: Option<u64> = None;
        bernoulli_sample(&mut rng, 100_000, 0.01, &mut |x| {
            if let Some(l) = last {
                assert!(x > l);
            }
            assert!(x < 100_000);
            last = Some(x);
        });
    }

    #[test]
    fn p_one_selects_everything() {
        let mut rng = Mt64::new(3);
        let mut out = Vec::new();
        bernoulli_sample(&mut rng, 10, 1.0, &mut |x| out.push(x));
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn p_zero_selects_nothing() {
        let mut rng = Mt64::new(4);
        let mut any = false;
        bernoulli_sample(&mut rng, 1000, 0.0, &mut |_| any = true);
        assert!(!any);
    }

    #[test]
    fn inclusion_probability_uniform() {
        // Every position equally likely: compare first and last decile.
        let mut rng = Mt64::new(5);
        let universe = 1000u64;
        let mut lo = 0u32;
        let mut hi = 0u32;
        for _ in 0..2000 {
            bernoulli_sample(&mut rng, universe, 0.05, &mut |x| {
                if x < 100 {
                    lo += 1;
                } else if x >= 900 {
                    hi += 1;
                }
            });
        }
        let ratio = lo as f64 / hi as f64;
        assert!((0.9..1.1).contains(&ratio), "lo {lo} hi {hi}");
    }
}
