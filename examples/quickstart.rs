//! Quickstart: generate one instance of every supported network model and
//! print its basic statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Every generator is *communication-free*: the graph is a pure function
//! of its parameters and the seed, split into chunks that independent
//! workers (threads here, MPI ranks on a cluster) can produce without
//! exchanging a single message.

use kagen_repro::graph::stats::DegreeStats;
use kagen_repro::prelude::*;

fn describe(name: &str, el: &kagen_repro::graph::EdgeList) {
    let stats = DegreeStats::undirected(el);
    println!(
        "{name:<22} n = {:>8}  m = {:>9}  deg min/avg/max = {}/{:.2}/{}",
        el.n,
        el.edges.len(),
        stats.min,
        stats.mean,
        stats.max,
    );
}

fn main() {
    let seed = 42;

    // Erdős–Rényi G(n,m): exactly m uniform edges.
    let gnm = GnmUndirected::new(10_000, 80_000)
        .with_seed(seed)
        .with_chunks(8);
    describe("G(n,m) undirected", &generate_undirected(&gnm));

    // Gilbert G(n,p): each pair independently with probability p.
    let gnp = GnpUndirected::new(10_000, 0.0016)
        .with_seed(seed)
        .with_chunks(8);
    describe("G(n,p) undirected", &generate_undirected(&gnp));

    // Random geometric graph at the connectivity-threshold radius.
    let n = 10_000;
    let rgg = Rgg2d::new(n, Rgg2d::threshold_radius(n, 1))
        .with_seed(seed)
        .with_chunks(16);
    describe("RGG 2D", &generate_undirected(&rgg));

    // Random Delaunay graph: a triangulated mesh on the unit torus.
    let rdg = Rdg2d::new(10_000).with_seed(seed).with_chunks(16);
    describe("RDG 2D (torus mesh)", &generate_undirected(&rdg));

    // Random hyperbolic graph: power-law degrees, high clustering.
    let rhg = Rhg::new(10_000, 16.0, 2.8).with_seed(seed).with_chunks(8);
    describe("RHG (γ=2.8, d̄=16)", &generate_undirected(&rhg));

    // The same model through the streaming generator — same instance!
    let srhg = Srhg::new(10_000, 16.0, 2.8).with_seed(seed).with_chunks(8);
    let srhg_graph = generate_undirected(&srhg);
    describe("sRHG (same seed)", &srhg_graph);

    // Barabási–Albert preferential attachment.
    let ba = BarabasiAlbert::new(10_000, 8)
        .with_seed(seed)
        .with_chunks(8);
    describe("Barabási–Albert d=8", &{
        let mut el = generate_directed(&ba);
        el.canonicalize();
        el
    });

    // R-MAT (Graph 500 style).
    let rmat = Rmat::new(14, 160_000).with_seed(seed).with_chunks(8);
    describe("R-MAT scale 14", &{
        let mut el = generate_directed(&rmat);
        el.canonicalize();
        el
    });

    // Stochastic block model (§9 future-work extension): 4 communities.
    let sbm = StochasticBlockModel::planted(10_000, 4, 0.012, 0.0004)
        .with_seed(seed)
        .with_chunks(8);
    describe("SBM 4 communities", &generate_undirected(&sbm));

    // Reproducibility: regenerating with the same seed is bit-identical.
    let again = generate_undirected(&Rhg::new(10_000, 16.0, 2.8).with_seed(seed).with_chunks(8));
    let rhg_graph = generate_undirected(&rhg);
    assert_eq!(rhg_graph, again, "same seed ⇒ same graph");
    assert_eq!(
        rhg_graph.edges, srhg_graph.edges,
        "RHG and sRHG sample the identical instance"
    );
    println!("\nreproducibility checks passed: same seed ⇒ bit-identical graph");
}
