//! The paper's central claims as executable invariants, for every
//! generator:
//!
//! 1. **Purity** — a PE's output is a pure function of (params, seed, pe).
//! 2. **Schedule independence** — thread count / execution order never
//!    changes any PE's output.
//! 3. **Chunk invariance** — the merged instance depends only on
//!    (params, seed), not on the number of PEs (our strengthening of the
//!    paper's reproducibility; DESIGN.md).
//! 4. **Seed sensitivity** — different seeds give different instances.

use kagen_repro::core::prelude::*;
use kagen_repro::graph::EdgeList;

/// Run the four invariants for one generator family via a factory
/// `make(seed, chunks)`.
fn check_invariants<G: Generator>(
    name: &str,
    make: impl Fn(u64, usize) -> G,
    chunk_variants: &[usize],
    merge: impl Fn(&G) -> EdgeList,
) {
    // 1. Purity.
    let g = make(7, chunk_variants[0]);
    for pe in 0..g.num_chunks().min(4) {
        let a = g.generate_pe(pe);
        let b = g.generate_pe(pe);
        assert_eq!(a.edges, b.edges, "{name}: PE {pe} not pure");
        assert_eq!(a.vertex_begin, b.vertex_begin, "{name}: PE {pe} range");
    }

    // 2. Schedule independence.
    let one_thread = generate_parallel(&g, 1);
    let many_threads = generate_parallel(&g, 8);
    for (a, b) in one_thread.iter().zip(&many_threads) {
        assert_eq!(a.edges, b.edges, "{name}: thread count changed PE {}", a.pe);
    }

    // 3. Chunk invariance of the merged instance.
    let reference = merge(&make(7, chunk_variants[0]));
    for &chunks in &chunk_variants[1..] {
        let other = merge(&make(7, chunks));
        assert_eq!(
            reference, other,
            "{name}: instance changed between {} and {chunks} chunks",
            chunk_variants[0]
        );
    }

    // 4. Seed sensitivity.
    let other_seed = merge(&make(8, chunk_variants[0]));
    assert_ne!(reference, other_seed, "{name}: seed has no effect");
}

#[test]
fn gnm_directed_invariants() {
    check_invariants(
        "GnmDirected",
        |s, c| GnmDirected::new(400, 3000).with_seed(s).with_chunks(c),
        &[1, 3, 8, 32],
        generate_directed,
    );
}

#[test]
fn gnm_undirected_invariants() {
    check_invariants(
        "GnmUndirected",
        |s, c| GnmUndirected::new(400, 3000).with_seed(s).with_chunks(c),
        &[4, 4], // Q is an instance parameter for the undirected scheme…
        generate_undirected,
    );
    // …so chunk invariance is asserted only for scheduling, plus the
    // redundancy agreement below replaces cross-Q equality.
}

#[test]
fn gnp_invariants() {
    check_invariants(
        "GnpDirected",
        |s, c| GnpDirected::new(300, 0.02).with_seed(s).with_chunks(c),
        &[1, 2, 16],
        generate_directed,
    );
}

#[test]
fn rgg2d_invariants() {
    check_invariants(
        "Rgg2d",
        |s, c| Rgg2d::new(800, 0.05).with_seed(s).with_chunks(c),
        &[1, 4, 16, 64],
        generate_undirected,
    );
}

#[test]
fn rgg3d_invariants() {
    check_invariants(
        "Rgg3d",
        |s, c| Rgg3d::new(500, 0.12).with_seed(s).with_chunks(c),
        &[1, 8, 64],
        generate_undirected,
    );
}

#[test]
fn rdg2d_invariants() {
    check_invariants(
        "Rdg2d",
        |s, c| Rdg2d::new(400).with_seed(s).with_chunks(c),
        &[1, 4, 16],
        generate_undirected,
    );
}

#[test]
fn rdg3d_invariants() {
    check_invariants(
        "Rdg3d",
        |s, c| Rdg3d::new(300).with_seed(s).with_chunks(c),
        &[1, 8],
        generate_undirected,
    );
}

#[test]
fn rhg_invariants() {
    check_invariants(
        "Rhg",
        |s, c| Rhg::new(600, 8.0, 2.8).with_seed(s).with_chunks(c),
        &[1, 4, 16],
        generate_undirected,
    );
}

#[test]
fn srhg_invariants() {
    check_invariants(
        "Srhg",
        |s, c| Srhg::new(600, 8.0, 2.8).with_seed(s).with_chunks(c),
        &[1, 4, 16],
        generate_undirected,
    );
}

#[test]
fn ba_invariants() {
    check_invariants(
        "BarabasiAlbert",
        |s, c| BarabasiAlbert::new(500, 4).with_seed(s).with_chunks(c),
        &[1, 2, 8, 32],
        generate_directed,
    );
}

#[test]
fn rmat_invariants() {
    check_invariants(
        "Rmat",
        |s, c| Rmat::new(9, 4000).with_seed(s).with_chunks(c),
        &[1, 2, 8, 32],
        generate_directed,
    );
}

#[test]
fn sbm_invariants() {
    check_invariants(
        "StochasticBlockModel",
        |s, c| {
            StochasticBlockModel::planted(300, 3, 0.1, 0.01)
                .with_seed(s)
                .with_chunks(c)
        },
        &[1, 2, 8, 32],
        generate_undirected,
    );
}

#[test]
fn rmat_table_invariants() {
    check_invariants(
        "Rmat(table)",
        |s, c| {
            Rmat::new(9, 4000)
                .with_seed(s)
                .with_table_levels(8)
                .with_chunks(c)
        },
        &[1, 2, 8],
        generate_directed,
    );
}

#[test]
fn soft_rhg_invariants() {
    check_invariants(
        "SoftRhg",
        |s, c| SoftRhg::new(500, 8.0, 2.8, 0.5).with_seed(s).with_chunks(c),
        &[1, 4, 16],
        generate_undirected,
    );
}

#[test]
fn rhg_and_srhg_sample_the_same_instance() {
    for seed in [1u64, 2, 3] {
        let a = generate_undirected(&Rhg::new(700, 10.0, 2.6).with_seed(seed).with_chunks(4));
        let b = generate_undirected(&Srhg::new(700, 10.0, 2.6).with_seed(seed).with_chunks(8));
        assert_eq!(a.edges, b.edges, "seed {seed}");
    }
}

#[test]
fn gpu_backends_sample_the_cpu_instance() {
    // The §4.3.1/§5.3 device pipelines must produce the CPU instance
    // bit-for-bit — the communication-free guarantee extends across
    // heterogeneous backends.
    use kagen_repro::gpgpu::{Device, GpuGnmDirected, GpuGnpDirected, GpuRgg2d, GpuRgg3d};
    let dev = Device::default();
    for seed in [1u64, 9] {
        let mut gpu = GpuGnmDirected::new(300, 5000)
            .with_seed(seed)
            .generate(&dev);
        gpu.sort_unstable();
        let cpu = generate_directed(&GnmDirected::new(300, 5000).with_seed(seed));
        assert_eq!(gpu, cpu.edges, "GnM seed {seed}");

        let mut gpu = GpuGnpDirected::new(300, 0.02)
            .with_seed(seed)
            .generate(&dev);
        gpu.sort_unstable();
        let cpu = generate_directed(&GnpDirected::new(300, 0.02).with_seed(seed));
        assert_eq!(gpu, cpu.edges, "GnP seed {seed}");

        let gpu = GpuRgg2d::new(400, 0.07).with_seed(seed).generate(&dev);
        let cpu = generate_undirected(&Rgg2d::new(400, 0.07).with_seed(seed));
        assert_eq!(gpu, cpu.edges, "RGG2D seed {seed}");

        let gpu = GpuRgg3d::new(200, 0.15).with_seed(seed).generate(&dev);
        let cpu = generate_undirected(&Rgg3d::new(200, 0.15).with_seed(seed));
        assert_eq!(gpu, cpu.edges, "RGG3D seed {seed}");
    }
}
