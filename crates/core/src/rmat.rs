//! R-MAT (recursive matrix) generator (§3.5.2) — the Graph 500 baseline the
//! paper compares against in §8.6.1.
//!
//! Each of the `m` edges is sampled independently by recursively descending
//! the adjacency matrix: at each of the log₂(n) levels one of the four
//! quadrants is chosen with probabilities (a, b, c, d). Because edges are
//! independent, distribution over PEs is trivial: PE `p` owns a contiguous
//! edge-index range and seeds a cheap PRNG per edge. The Θ(m log n) variate
//! cost is exactly the slowdown relative to the ER generators that Fig. 17
//! and 18 demonstrate.
//!
//! **Hot-path seeding.** Edge `e`'s PRNG is seeded in two steps: one hashed
//! seed per fixed-size *block* of `SEED_BLOCK_EDGES` consecutive edge
//! indices, then a single `mix2` for the edge's offset inside its block.
//! `edge(e)` recomputes the block seed every call (it is a pure function),
//! while [`Rmat::fill_edges`] derives it once per block — amortizing the
//! hash over thousands of edges, which is where the per-edge constant
//! factors live (cf. Hübschle-Schneider & Sanders, "Linear Work Generation
//! of R-MAT Graphs"). Chunk invariance is unaffected: the seed of edge `e`
//! depends only on `(instance seed, e)`, never on the PE boundaries.

use crate::{Generator, PeGraph};
use kagen_dist::AliasTable;
use kagen_obs::Counter;
use kagen_util::seed::stream;
use kagen_util::{derive_seed, Rng64, SplitMix64};
use std::ops::Range;
use std::sync::Arc;

/// Edges descended through the multi-level alias tables (counted once
/// per seed block, not per edge).
static RMAT_TABLE_EDGES: Counter = Counter::new("gen.rmat.table_edges");
/// Edges descended with the plain per-level loop.
static RMAT_PLAIN_EDGES: Counter = Counter::new("gen.rmat.plain_edges");

/// Edge indices per hashed seed block (the amortization granularity of
/// [`Rmat::fill_edges`]).
pub const SEED_BLOCK_EDGES: u64 = 4096;

/// Compact the even-position bits of `x` (bits 0, 2, 4, …) into the low
/// half — the Morton deinterleave step.
#[inline(always)]
fn compact_even_bits(mut x: u64) -> u64 {
    x &= 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF
}

/// Precomputed multi-level descent table: one alias draw selects
/// `levels` recursion steps at once (the §9 "faster R-MAT" extension,
/// following the path-probability precomputation idea of
/// Hübschle-Schneider & Sanders).
///
/// An outcome is a *path*: `levels` quadrant choices of 2 bits each,
/// most-significant level first, so the u-bits sit at odd and the v-bits
/// at even positions of the path index. The sampler therefore needs no
/// per-outcome payload array — the bits deinterleave from the index in a
/// handful of ALU ops, keeping the table's memory traffic to the single
/// fused alias slot per draw.
#[derive(Clone, Debug)]
struct DescentTable {
    levels: u32,
    alias: AliasTable,
}

impl DescentTable {
    fn new(levels: u32, a: f64, b: f64, c: f64) -> Self {
        assert!((1..=12).contains(&levels));
        let d = 1.0 - a - b - c;
        let quadrant = [a, b, c, d]; // (u_bit, v_bit) = (0,0) (0,1) (1,0) (1,1)
        let k = 1usize << (2 * levels);
        let mut weights = Vec::with_capacity(k);
        for path in 0..k {
            let mut w = 1.0f64;
            for level in 0..levels {
                w *= quadrant[(path >> (2 * level)) & 3];
            }
            weights.push(w);
        }
        DescentTable {
            levels,
            alias: AliasTable::new(&weights),
        }
    }

    /// Draw one path: `levels` quadrant choices, u- and v-bits still
    /// interleaved (u at odd, v at even positions).
    #[inline(always)]
    fn sample_path<R: Rng64>(&self, rng: &mut R) -> u64 {
        self.alias.sample(rng) as u64
    }
}

/// R-MAT generator with Graph 500 default parameters.
#[derive(Clone, Debug)]
pub struct Rmat {
    scale: u32,
    m: u64,
    a: f64,
    b: f64,
    c: f64,
    /// Precomputed prefix sums a+b and a+b+c of the quadrant
    /// probabilities — the two extra thresholds of the branchless descent.
    ab: f64,
    abc: f64,
    seed: u64,
    chunks: usize,
    /// Multi-level descent tables (main + remainder), if enabled.
    tables: Option<Arc<(DescentTable, Option<DescentTable>)>>,
}

impl Rmat {
    /// `n = 2^scale` vertices, `m` edges, Graph 500 probabilities
    /// (a, b, c, d) = (0.57, 0.19, 0.19, 0.05).
    pub fn new(scale: u32, m: u64) -> Self {
        Self::with_probabilities(scale, m, 0.57, 0.19, 0.19)
    }

    /// Custom quadrant probabilities; `d = 1 − a − b − c`.
    pub fn with_probabilities(scale: u32, m: u64, a: f64, b: f64, c: f64) -> Self {
        assert!((1..63).contains(&scale));
        assert!(a > 0.0 && b >= 0.0 && c >= 0.0 && a + b + c < 1.0 + 1e-12);
        Rmat {
            scale,
            m,
            a,
            b,
            c,
            ab: a + b,
            abc: a + b + c,
            seed: 1,
            chunks: 64,
            tables: None,
        }
    }

    /// Set the instance seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of logical PEs.
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks >= 1);
        self.chunks = chunks;
        self
    }

    /// Enable multi-level descent tables: one alias draw replaces `levels`
    /// recursion steps (§9 future work; typically `levels = 8`, a 64 Ki
    /// entry table). `levels = 0` disables the tables (plain per-level
    /// descent). Note: the accelerated generator samples the same
    /// *distribution* but consumes randomness differently, so it defines a
    /// different (equally valid) instance per seed.
    pub fn with_table_levels(mut self, levels: u32) -> Self {
        if levels == 0 || self.scale >= 32 {
            // `0` disables; scale ≥ 32 stays on plain descent (the
            // table sampler packs the 2·scale interleaved path bits
            // into a u64).
            self.tables = None;
            return self;
        }
        let levels = levels.clamp(1, 12).min(self.scale);
        let main = DescentTable::new(levels, self.a, self.b, self.c);
        let rem = self.scale % levels;
        let remainder = (rem > 0).then(|| DescentTable::new(rem, self.a, self.b, self.c));
        self.tables = Some(Arc::new((main, remainder)));
        self
    }

    /// Total number of edges of the instance.
    pub fn num_edges(&self) -> u64 {
        self.m
    }

    /// Hashed seed of the block of edge indices containing edge `e`.
    #[inline]
    fn block_seed(&self, block: u64) -> u64 {
        derive_seed(self.seed, &[stream::RMAT, block])
    }

    /// Branchless per-level descent: the three threshold comparisons fold
    /// into the quadrant bits without data-dependent branches
    /// (`u_bit = [x ≥ a+b]`, `v_bit = [x ≥ a] ⊕ [x ≥ a+b] ⊕ [x ≥ a+b+c]`).
    #[inline(always)]
    fn descend_plain<R: Rng64>(&self, rng: &mut R) -> (u64, u64) {
        let mut u = 0u64;
        let mut v = 0u64;
        for _ in 0..self.scale {
            let x = rng.next_f64();
            let t0 = (x >= self.a) as u64;
            let t1 = (x >= self.ab) as u64;
            let t2 = (x >= self.abc) as u64;
            u = (u << 1) | t1;
            v = (v << 1) | (t0 ^ t1 ^ t2);
        }
        (u, v)
    }

    /// Table-accelerated descent: one alias draw per `levels` recursion
    /// steps, plus one remainder draw when `levels ∤ scale`. The drawn
    /// paths stay *interleaved* while they accumulate (one shift+or per
    /// draw) and deinterleave once per edge — `scale < 32` always holds
    /// when tables are enabled (see [`Rmat::with_table_levels`]), so the
    /// 2·scale interleaved bits fit a u64.
    #[inline(always)]
    fn descend_tables<R: Rng64>(
        &self,
        tables: &(DescentTable, Option<DescentTable>),
        rng: &mut R,
    ) -> (u64, u64) {
        let (main, remainder) = tables;
        let mut z = 0u64;
        let mut remaining = self.scale;
        while remaining >= main.levels {
            z = (z << (2 * main.levels)) | main.sample_path(rng);
            remaining -= main.levels;
        }
        if remaining > 0 {
            let t = remainder.as_ref().expect("remainder table");
            debug_assert_eq!(t.levels, remaining);
            z = (z << (2 * t.levels)) | t.sample_path(rng);
        }
        (compact_even_bits(z >> 1), compact_even_bits(z))
    }

    /// Sample edge number `e` of the instance (pure function).
    #[inline]
    pub fn edge(&self, e: u64) -> (u64, u64) {
        let block_seed = self.block_seed(e / SEED_BLOCK_EDGES);
        let mut rng = SplitMix64::at(block_seed, e % SEED_BLOCK_EDGES);
        match &self.tables {
            None => self.descend_plain(&mut rng),
            Some(tables) => self.descend_tables(tables.as_ref(), &mut rng),
        }
    }

    /// Append the edges of the index range `range` to `out` — identical to
    /// calling [`Rmat::edge`] per index, but the hashed block seed is
    /// derived once per `SEED_BLOCK_EDGES` indices and the descent-mode
    /// dispatch is hoisted out of the loop.
    pub fn fill_edges(&self, range: Range<u64>, out: &mut Vec<(u64, u64)>) {
        debug_assert!(range.end <= self.m);
        out.reserve((range.end - range.start) as usize);
        let mut e = range.start;
        while e < range.end {
            let block = e / SEED_BLOCK_EDGES;
            let hi = ((block + 1) * SEED_BLOCK_EDGES).min(range.end);
            let block_seed = self.block_seed(block);
            let offsets = (e % SEED_BLOCK_EDGES)..(e % SEED_BLOCK_EDGES + (hi - e));
            // `extend` over an exact-size iterator: one reservation, no
            // per-push capacity check inside the hot loop.
            match &self.tables {
                None => {
                    RMAT_PLAIN_EDGES.add(hi - e);
                    out.extend(offsets.map(|off| {
                        let mut rng = SplitMix64::at(block_seed, off);
                        self.descend_plain(&mut rng)
                    }));
                }
                Some(tables) => {
                    RMAT_TABLE_EDGES.add(hi - e);
                    let tables = tables.as_ref();
                    out.extend(offsets.map(|off| {
                        let mut rng = SplitMix64::at(block_seed, off);
                        self.descend_tables(tables, &mut rng)
                    }));
                }
            }
            e = hi;
        }
    }

    /// Edge-index range `[lo, hi)` owned by PE `pe`.
    #[inline]
    pub fn pe_edge_range(&self, pe: usize) -> Range<u64> {
        let lo = self.m * pe as u64 / self.chunks as u64;
        let hi = self.m * (pe as u64 + 1) / self.chunks as u64;
        lo..hi
    }
}

impl Generator for Rmat {
    fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    fn num_chunks(&self) -> usize {
        self.chunks
    }

    fn directed(&self) -> bool {
        true
    }

    fn generate_pe(&self, pe: usize) -> PeGraph {
        let mut out = PeGraph {
            pe,
            vertex_begin: 0,
            vertex_end: self.num_vertices(),
            ..PeGraph::default()
        };
        self.fill_edges(self.pe_edge_range(pe), &mut out.edges);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_directed;

    #[test]
    fn edge_count_and_range() {
        let gen = Rmat::new(10, 5000).with_seed(4).with_chunks(8);
        let el = generate_directed(&gen);
        assert_eq!(el.edges.len(), 5000);
        assert!(!el.has_out_of_range());
    }

    #[test]
    fn chunk_invariance() {
        let a = generate_directed(&Rmat::new(8, 2000).with_seed(9).with_chunks(1));
        let b = generate_directed(&Rmat::new(8, 2000).with_seed(9).with_chunks(7));
        assert_eq!(a, b);
    }

    #[test]
    fn skew_matches_parameters() {
        // With a = 0.57, vertex 0's quadrant is hit most: expect the top
        // half of rows to receive much more than half the edges.
        let gen = Rmat::new(12, 40_000).with_seed(2);
        let el = generate_directed(&gen);
        let half = 1u64 << 11;
        let top = el.edges.iter().filter(|&&(u, _)| u < half).count();
        let frac = top as f64 / el.edges.len() as f64;
        // P[top half] = a + b = 0.76 per level-0 split.
        assert!((frac - 0.76).abs() < 0.02, "top fraction {frac}");
    }

    #[test]
    fn degree_skew_power_law_ish() {
        let gen = Rmat::new(10, 30_000).with_seed(7);
        let el = generate_directed(&gen);
        let deg = el.out_degrees();
        let max = *deg.iter().max().unwrap();
        let mean = 30_000.0 / 1024.0;
        assert!(
            max as f64 > 6.0 * mean,
            "R-MAT must be skewed: max {max}, mean {mean}"
        );
    }

    #[test]
    fn fill_edges_matches_edge_across_block_boundaries() {
        // A range straddling a seed-block boundary must produce exactly
        // the per-edge results (same block seed, same offsets).
        let m = SEED_BLOCK_EDGES * 2 + 100;
        let range = SEED_BLOCK_EDGES - 50..SEED_BLOCK_EDGES + 50;
        for gen in [
            Rmat::new(10, m).with_seed(5),
            Rmat::new(10, m).with_seed(5).with_table_levels(4),
        ] {
            let mut filled = Vec::new();
            gen.fill_edges(range.clone(), &mut filled);
            let expect: Vec<_> = range.clone().map(|e| gen.edge(e)).collect();
            assert_eq!(filled, expect);
        }
    }

    #[test]
    fn table_levels_zero_disables_tables() {
        let plain = Rmat::new(9, 500).with_seed(3);
        let toggled = Rmat::new(9, 500).with_seed(3).with_table_levels(8);
        let off = toggled.with_table_levels(0);
        assert_eq!(
            generate_directed(&plain).edges,
            generate_directed(&off).edges
        );
    }

    #[test]
    fn edge_is_pure_function() {
        let gen = Rmat::new(9, 10).with_seed(5);
        for e in 0..10 {
            assert_eq!(gen.edge(e), gen.edge(e));
        }
    }

    #[test]
    fn table_variant_same_distribution() {
        // Table-accelerated sampling draws from the identical edge
        // distribution: compare first-level quadrant masses.
        let m = 60_000u64;
        let plain = generate_directed(&Rmat::new(10, m).with_seed(6));
        let fast = generate_directed(&Rmat::new(10, m).with_seed(6).with_table_levels(5));
        assert_eq!(fast.edges.len() as u64, m);
        let half = 1u64 << 9;
        let mass = |el: &kagen_graph::EdgeList| {
            let mut q = [0u64; 4];
            for &(u, v) in &el.edges {
                q[(((u >= half) as usize) << 1) | ((v >= half) as usize)] += 1;
            }
            q
        };
        let (qa, qb) = (mass(&plain), mass(&fast));
        for k in 0..4 {
            let (x, y) = (qa[k] as f64 / m as f64, qb[k] as f64 / m as f64);
            assert!((x - y).abs() < 0.01, "quadrant {k}: {x} vs {y}");
        }
    }

    #[test]
    fn table_variant_chunk_invariant() {
        let a = generate_directed(
            &Rmat::new(8, 2000)
                .with_seed(9)
                .with_table_levels(8)
                .with_chunks(1),
        );
        let b = generate_directed(
            &Rmat::new(8, 2000)
                .with_seed(9)
                .with_table_levels(8)
                .with_chunks(7),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn table_levels_not_dividing_scale() {
        // scale = 10, levels = 4 → remainder table of 2 levels.
        let gen = Rmat::new(10, 100).with_seed(3).with_table_levels(4);
        let el = generate_directed(&gen);
        assert!(!el.has_out_of_range());
        assert_eq!(el.edges.len(), 100);
    }
}
