//! # kagen-delaunay
//!
//! Delaunay triangulation substrate for the RDG generator (§6) — the CGAL
//! replacement (see DESIGN.md substitutions).
//!
//! * [`dd`] — error-free transformations and double-double ("compensated")
//!   arithmetic (~106-bit mantissa);
//! * [`predicates`] — orientation / in-circle / in-sphere tests with a
//!   fast floating-point filter and a double-double exact-enough fallback,
//!   with deterministic tie handling;
//! * [`tri2`] — incremental Bowyer–Watson triangulation in 2D;
//! * [`tet3`] — incremental Bowyer–Watson tetrahedralization in 3D.
//!
//! The triangulations are plain Euclidean; the RDG generator implements the
//! paper's periodic boundary conditions by inserting ±1-offset replica
//! points (halos), exactly as described in §2.1.4.

pub mod dd;
pub mod predicates;
pub mod tet3;
pub mod tri2;

pub use predicates::{incircle2, insphere3, orient2, orient3, Sign};
pub use tet3::Delaunay3;
pub use tri2::Delaunay2;

/// Circumcircle of a 2D triangle: (center, squared radius).
pub fn circumcircle2(a: [f64; 2], b: [f64; 2], c: [f64; 2]) -> ([f64; 2], f64) {
    let (bx, by) = (b[0] - a[0], b[1] - a[1]);
    let (cx, cy) = (c[0] - a[0], c[1] - a[1]);
    let d = 2.0 * (bx * cy - by * cx);
    let b2 = bx * bx + by * by;
    let c2 = cx * cx + cy * cy;
    let ux = (cy * b2 - by * c2) / d;
    let uy = (bx * c2 - cx * b2) / d;
    ([a[0] + ux, a[1] + uy], ux * ux + uy * uy)
}

/// Circumsphere of a 3D tetrahedron: (center, squared radius).
pub fn circumsphere3(a: [f64; 3], b: [f64; 3], c: [f64; 3], d: [f64; 3]) -> ([f64; 3], f64) {
    let r = |p: [f64; 3]| [p[0] - a[0], p[1] - a[1], p[2] - a[2]];
    let (u, v, w) = (r(b), r(c), r(d));
    let norm2 = |p: [f64; 3]| p[0] * p[0] + p[1] * p[1] + p[2] * p[2];
    let cross = |p: [f64; 3], q: [f64; 3]| {
        [
            p[1] * q[2] - p[2] * q[1],
            p[2] * q[0] - p[0] * q[2],
            p[0] * q[1] - p[1] * q[0],
        ]
    };
    let dot = |p: [f64; 3], q: [f64; 3]| p[0] * q[0] + p[1] * q[1] + p[2] * q[2];
    let denom = 2.0 * dot(u, cross(v, w));
    let vw = cross(v, w);
    let wu = cross(w, u);
    let uv = cross(u, v);
    let (nu, nv, nw) = (norm2(u), norm2(v), norm2(w));
    let center = [
        (nu * vw[0] + nv * wu[0] + nw * uv[0]) / denom,
        (nu * vw[1] + nv * wu[1] + nw * uv[1]) / denom,
        (nu * vw[2] + nv * wu[2] + nw * uv[2]) / denom,
    ];
    let r2 = norm2(center);
    ([a[0] + center[0], a[1] + center[1], a[2] + center[2]], r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circumcircle_equidistant() {
        let (c, r2) = circumcircle2([0.0, 0.0], [1.0, 0.0], [0.0, 1.0]);
        for p in [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]] {
            let d2 = (p[0] - c[0]).powi(2) + (p[1] - c[1]).powi(2);
            assert!((d2 - r2).abs() < 1e-12);
        }
        assert!((c[0] - 0.5).abs() < 1e-12 && (c[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn circumsphere_equidistant() {
        let pts = [
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ];
        let (c, r2) = circumsphere3(pts[0], pts[1], pts[2], pts[3]);
        for p in pts {
            let d2: f64 = (0..3).map(|i| (p[i] - c[i]).powi(2)).sum();
            assert!((d2 - r2).abs() < 1e-12, "{d2} vs {r2}");
        }
    }
}
